"""Tests for CDFG serialization, LP export, and testbench generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MapScheduler, SchedulerConfig
from repro.designs import random_dfg
from repro.errors import IRError, ModelError
from repro.ir import graph_from_dict, graph_to_dict, loads as ir_loads, dumps as ir_dumps
from repro.milp import Model, parse_solution_listing, write_lp
from repro.rtl import emit_testbench, lint_verilog
from repro.sim import FunctionalSimulator
from repro.tech.device import XC7

from .conftest import build_recurrent


class TestSerialization:
    def test_roundtrip_preserves_structure(self, recurrent_graph):
        data = graph_to_dict(recurrent_graph)
        clone = graph_from_dict(data)
        assert clone.op_histogram() == recurrent_graph.op_histogram()
        assert len(clone) == len(recurrent_graph)
        for nid in recurrent_graph.node_ids:
            a = recurrent_graph.node(nid)
            c = clone.node(nid)
            assert a.kind == c.kind and a.width == c.width
            assert [(o.source, o.distance) for o in a.operands] == \
                [(o.source, o.distance) for o in c.operands]
            assert a.attrs == c.attrs

    def test_roundtrip_preserves_semantics(self, rng):
        g = build_recurrent()
        clone = ir_loads(ir_dumps(g))
        stream = [{"s": rng.randrange(256), "t": rng.randrange(256)}
                  for _ in range(10)]
        assert FunctionalSimulator(g).run(stream) == \
            FunctionalSimulator(clone).run(stream)

    def test_bad_format_version(self):
        with pytest.raises(IRError, match="format"):
            graph_from_dict({"format": 99, "nodes": []})

    def test_non_dense_ids_rejected(self):
        with pytest.raises(IRError, match="dense"):
            graph_from_dict({
                "format": 1, "name": "x",
                "nodes": [{"id": 1, "kind": "input", "width": 4,
                           "operands": []}],
            })

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_roundtrip_random_graphs(self, seed):
        g = random_dfg(seed, ops=12, recurrences=1)
        clone = ir_loads(ir_dumps(g))
        rng = random.Random(seed)
        stream = [{f"i{k}": rng.randrange(256) for k in range(3)}
                  for _ in range(6)]
        assert FunctionalSimulator(g).run(stream) == \
            FunctionalSimulator(clone).run(stream)


class TestLPWriter:
    def make_model(self):
        m = Model("demo")
        x = m.integer("x", 0, 10)
        y = m.binary("y[2]")
        z = m.continuous("z", 0.0, 5.0)
        m.add(x + 2 * y - z <= 7, name="cap")
        m.add(x - y >= 1)
        m.add(z + y == 2)
        m.minimize(3 * x - y + 0.5 * z)
        return m, (x, y, z)

    def test_lp_sections_present(self):
        m, _ = self.make_model()
        text = write_lp(m)
        for section in ("Minimize", "Subject To", "Bounds", "Generals",
                        "Binaries", "End"):
            assert section in text

    def test_lp_constraint_rendering(self):
        m, _ = self.make_model()
        text = write_lp(m)
        assert "cap:" in text
        assert "<= 7" in text
        assert ">= 1" in text
        assert "= 2" in text

    def test_solution_listing_roundtrip(self):
        m, (x, y, z) = self.make_model()
        sol = m.solve("scipy")
        listing = "\n".join(
            f"{'x' if v is x else 'y_2_' if v is y else 'z'} "
            f"{sol[v]}" for v in (x, y, z)
        )
        parsed = parse_solution_listing(m, listing)
        assert parsed.objective == pytest.approx(sol.objective)
        assert m.check(parsed.values) == []

    def test_unknown_variable_rejected(self):
        m, _ = self.make_model()
        with pytest.raises(ModelError, match="unknown variable"):
            parse_solution_listing(m, "ghost 3")

    def test_unlisted_variables_default_zero(self):
        m, (x, y, z) = self.make_model()
        parsed = parse_solution_listing(m, "")
        assert parsed.values[x.index] == 0.0


class TestTestbench:
    def test_self_checking_structure(self):
        sched = MapScheduler(build_recurrent(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        stream = [{"s": 3 * k % 256, "t": 7 * k % 256} for k in range(6)]
        tb = emit_testbench(sched, XC7, stream)
        assert "module recur_tb;" in tb
        assert "dut (" in tb
        assert tb.count("_gold[") >= 6  # expectations loaded
        assert "$fatal" in tb and "PASS" in tb
        assert "TIMEOUT" in tb

    def test_expectations_match_pipeline_replay(self):
        from repro.sim import PipelineSimulator

        sched = MapScheduler(build_recurrent(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        stream = [{"s": 11 * k % 256, "t": 5 * k % 256} for k in range(4)]
        expected = PipelineSimulator(sched, XC7).run(stream)
        tb = emit_testbench(sched, XC7, stream)
        for k, row in enumerate(expected):
            assert f"_gold[{k}] = 8'd{row['out']};" in tb

"""Tests for the symbolic translation-validation engine.

Covers the AIG/SAT core, the word-level encoders (exhaustively, per
opcode, at small widths), the stage validators end to end, injected-bug
detection with counterexample decode + replay, the warm-up gating that
seeds recurrences correctly in hardware, the extended RTL parser/linter
checks, the DEP001 SAT tier and the opt-in EQ lint rules.
"""

import itertools

import pytest

from repro.analysis import lint_graph, lint_schedule
from repro.analysis.equiv import (
    AIG,
    EquivBudget,
    PairInstance,
    StageVerdict,
    validate_flow,
)
from repro.analysis.equiv.aig import FALSE, TRUE, lit_not
from repro.analysis.equiv.encode import bits_to_int, encode_node
from repro.analysis.equiv.machines import GraphMachine, PipelineMachine
from repro.analysis.equiv.netlist import RtlMachine
from repro.analysis.equiv.sat import solve_lit
from repro.analysis.equiv.validate import _check_stage
from repro.core import MapScheduler, SchedulerConfig
from repro.ir.builder import DFGBuilder
from repro.ir.semantics import eval_node
from repro.ir.types import OpKind
from repro.rtl import emit_verilog, lint_verilog
from repro.rtl.parse import Num, parse_module
from repro.tech.device import XC7

from .conftest import build_fig1, build_recurrent


def _schedule(graph):
    return MapScheduler(graph, XC7,
                        SchedulerConfig(ii=1, tcp=10.0)).schedule()


# ----------------------------------------------------------------------
# AIG core and SAT solver
# ----------------------------------------------------------------------

class TestAigCore:
    def test_rewriting_identities(self):
        aig = AIG()
        a = aig.new_input("a")
        b = aig.new_input("b")
        assert aig.and_(a, a) == a
        assert aig.and_(a, lit_not(a)) == FALSE
        assert aig.and_(a, TRUE) == a
        assert aig.and_(a, FALSE) == FALSE
        # Structural hashing: the same AND is the same literal.
        assert aig.and_(a, b) == aig.and_(b, a)

    def test_eval_lit_xor_mux(self):
        aig = AIG()
        a = aig.new_input("a")
        b = aig.new_input("b")
        s = aig.new_input("s")
        x = aig.xor_(a, b)
        m = aig.mux(s, a, b)
        for va, vb, vs in itertools.product((False, True), repeat=3):
            env = {a >> 1: va, b >> 1: vb, s >> 1: vs}
            assert aig.eval_lit(env, x) == (va ^ vb)
            assert aig.eval_lit(env, m) == (va if vs else vb)


class TestSat:
    def test_unsat_contradiction(self):
        aig = AIG()
        a = aig.new_input("a")
        assert solve_lit(aig, aig.and_(a, lit_not(a))).status == "unsat"

    def test_miter_of_identical_cones_is_unsat(self):
        aig = AIG()
        ins = [aig.new_input(f"i{k}") for k in range(4)]
        f = aig.or_(aig.and_(ins[0], ins[1]), aig.xor_(ins[2], ins[3]))
        g = aig.or_(aig.xor_(ins[2], ins[3]), aig.and_(ins[1], ins[0]))
        assert solve_lit(aig, aig.xor_(f, g)).status == "unsat"

    def test_sat_model_satisfies_cone(self):
        aig = AIG()
        a = aig.new_input("a")
        b = aig.new_input("b")
        lit = aig.and_(aig.xor_(a, b), a)
        res = solve_lit(aig, lit)
        assert res.status == "sat"
        env = {v: bool(res.model.get(v, False)) for v in aig.inputs}
        assert aig.eval_lit(env, lit) is True

    def test_cnf_agrees_with_aig_semantics(self):
        """Pinning inputs with assumptions, SAT == direct evaluation."""
        aig = AIG()
        ins = [aig.new_input(f"i{k}") for k in range(3)]
        f = aig.mux(ins[0], aig.xor_(ins[1], ins[2]),
                    aig.and_(ins[1], lit_not(ins[2])))
        for vals in itertools.product((False, True), repeat=3):
            env = dict(zip((l >> 1 for l in ins), vals))
            assumptions = [l if v else lit_not(l)
                           for l, v in zip(ins, vals)]
            res = solve_lit(aig, f, assumptions=assumptions)
            assert (res.status == "sat") == aig.eval_lit(env, f)


# ----------------------------------------------------------------------
# Word-level encoders: exhaustive per-opcode cross-check
# ----------------------------------------------------------------------

def _ops_graph():
    b = DFGBuilder("ops", width=3)
    a = b.input("a", 3)
    c = b.input("c", 3)
    vals = [
        a & c, a | c, a ^ c, ~a, a + c, a - c, -a, a * c,
        a.eq(c), a.ne(c), a.lt(c), a.ge(c), a.slt(c), a.sge(c),
        a.trunc(2), a.zext(5), a.slice(1, 2), a.bit(2),
        a << 1, a >> 2, b.mux(a.bit(0), a, c), b.concat(a, c),
    ]
    for i, v in enumerate(vals):
        b.output(v, f"o{i}")
    return b.build()


class TestEncodersExhaustive:
    def test_every_opcode_matches_functional_semantics(self):
        graph = _ops_graph()
        covered = set()
        for node in graph:
            if node.kind in (OpKind.INPUT, OpKind.OUTPUT, OpKind.CONST):
                continue
            covered.add(node.kind)
            aig = AIG()
            widths = [graph.node(op.source).width for op in node.operands]
            arg_bits = [[aig.new_input(f"s{s}b{i}") for i in range(w)]
                        for s, w in enumerate(widths)]
            out = encode_node(aig, node, arg_bits, widths)
            assert len(out) == node.width
            for vals in itertools.product(
                    *(range(1 << w) for w in widths)):
                env = {}
                for bits, val in zip(arg_bits, vals):
                    for i, lit in enumerate(bits):
                        env[lit >> 1] = bool((val >> i) & 1)
                got = bits_to_int([aig.eval_lit(env, l) for l in out])
                want = eval_node(node, list(vals), widths)
                assert got == want, (node.kind, vals)
        # The graph must actually exercise a healthy opcode spread.
        assert {OpKind.ADD, OpKind.MUL, OpKind.SLT, OpKind.MUX,
                OpKind.CONCAT} <= covered


# ----------------------------------------------------------------------
# Stage validators end to end
# ----------------------------------------------------------------------

class TestValidateFlow:
    @pytest.mark.parametrize("build", [build_fig1, build_recurrent])
    def test_all_stages_proved(self, build):
        graph = build()
        sched = _schedule(graph)
        report = validate_flow(graph, sched)
        assert [v.stage for v in report.stages] == [
            "narrow", "cover", "pipeline", "rtl"]
        for v in report.stages:
            assert v.status == "proved", (v.stage, v.detail, v.notes)
        assert report.ok

    def test_narrow_alone_without_schedule(self, fig1_graph):
        report = validate_flow(fig1_graph, None, stages=("narrow",))
        assert report.stages[0].status == "proved"

    def test_verdict_dict_round_trip(self, fig1_graph):
        sched = _schedule(fig1_graph)
        report = validate_flow(fig1_graph, sched, stages=("rtl",))
        v = report.stages[0]
        again = StageVerdict.from_dict(v.to_dict())
        assert again.to_dict() == v.to_dict()


class TestInjectedBugs:
    def test_tampered_rtl_is_caught_with_replayed_cex(self, fig1_graph):
        sched = _schedule(fig1_graph)
        text = emit_verilog(sched)
        assert " ^ " in text
        # The last xor is the mux's (t ^ s) data leg; AND-ing it instead
        # is observable whenever the two share a set bit.
        idx = text.rindex(" ^ ")
        bad = text[:idx] + " & " + text[idx + 3:]
        module = parse_module(bad)
        verdict = _check_stage(
            "rtl", sched.graph,
            lambda: (GraphMachine(sched.graph), RtlMachine(module, sched)),
            [], EquivBudget())
        assert verdict.status == "inequivalent", verdict.notes
        cex = verdict.counterexample
        assert cex is not None
        assert cex.stream, "decoded input stream must not be empty"
        assert cex.a_value != cex.b_value
        # The model was independently confirmed — at minimum by abstract
        # re-evaluation, and for output goals by functional replay.
        assert cex.confirmed in ("abstract", "replay")

    def test_corrupted_schedule_cycle_is_caught(self, recurrent_graph):
        sched = _schedule(recurrent_graph)
        # Delay every covered root by one cycle but leave the declared
        # latency/output taps alone: replayed iterations misalign.
        import dataclasses

        cycle = dict(sched.cycle)
        out_src = {op.source for n in sched.graph.outputs
                   for op in n.operands}
        bump = [nid for nid in sched.cover
                if nid in cycle and nid not in out_src]
        if not bump:
            pytest.skip("no interior root to misalign")
        for nid in bump:
            cycle[nid] += 1
        bad = dataclasses.replace(sched, cycle=cycle)
        verdict = _check_stage(
            "pipeline", sched.graph,
            lambda: (GraphMachine(sched.graph), PipelineMachine(bad)),
            [], EquivBudget())
        assert verdict.status in ("inequivalent", "error"), verdict


# ----------------------------------------------------------------------
# Warm-up gating: recurrences must see their declared initials
# ----------------------------------------------------------------------

class TestWarmGating:
    def test_warm_sr_emitted_for_carried_state(self, recurrent_graph):
        sched = _schedule(recurrent_graph)
        text = emit_verilog(sched)
        assert "warm_sr" in text
        assert lint_verilog(text) == []
        machine = RtlMachine(parse_module(text), sched)
        assert machine.warm_frames >= 1

    def test_no_warm_sr_for_feedforward(self, fig1_graph):
        sched = _schedule(fig1_graph)
        assert "warm_sr" not in emit_verilog(sched)

    def test_nonzero_initial_recurrence_proves(self):
        # Seed-4 regression class: a true recurrence (acc += step) whose
        # declared initial is nonzero. Without the warm gate the
        # hardware seeds the accumulator from a junk cold-pipeline value
        # and every frame diverges.
        b = DFGBuilder("warmacc", width=8)
        t = b.input("t", 8)
        acc = b.recurrence("acc", width=8, initial=107)
        nxt = -(~acc)  # acc + 1, via the seed-4 shape
        nxt.feed(acc)
        b.output(nxt ^ t, "out")
        graph = b.build()
        sched = _schedule(graph)
        report = validate_flow(graph, sched)
        for v in report.stages:
            assert v.status == "proved", (v.stage, v.detail, v.notes)

    def test_wrong_warm_initial_is_caught_in_cold_frames(
            self, recurrent_graph):
        # Soundness of the induction split: the steady state is proved by
        # induction with the gate saturated, so an initialization bug is
        # only visible while warm_sr fills — BMC must cover those frames.
        sched = _schedule(recurrent_graph)
        text = emit_verilog(sched)
        assert ": 8'd3)" in text  # the warm mux's declared-initial leg
        bad = text.replace(": 8'd3)", ": 8'd5)")
        module = parse_module(bad)
        verdict = _check_stage(
            "rtl", sched.graph,
            lambda: (GraphMachine(sched.graph), RtlMachine(module, sched)),
            [], EquivBudget())
        assert verdict.status == "inequivalent", verdict.notes
        machine = RtlMachine(module, sched)
        assert verdict.counterexample.frame < machine.warm_frames


# ----------------------------------------------------------------------
# RTL parser + linter extensions
# ----------------------------------------------------------------------

class TestParserAndLint:
    def test_parser_accepts_binary_and_hex_literals(self):
        text = (
            "module m (input wire clk, input wire in_valid,\n"
            "          input wire [3:0] a_0, output wire [3:0] o_1,\n"
            "          output wire out_valid);\n"
            "wire [3:0] x_2 = {a_0[2:0], 1'b1} ^ 4'hA;\n"
            "reg [1:0] valid_sr = 0;\n"
            "always @(posedge clk) begin\n"
            "    valid_sr <= {valid_sr[0:0], in_valid};\n"
            "end\n"
            "assign o_1 = x_2;\n"
            "assign out_valid = valid_sr[0];\n"
            "endmodule\n"
        )
        module = parse_module(text)
        wire = next(w for w in module.wires if w.name == "x_2")
        nums = []

        def walk(e):
            if isinstance(e, Num):
                nums.append((e.value, e.width))
            for attr in ("left", "right", "arg", "cond", "if_true",
                         "if_false", "index"):
                sub = getattr(e, attr, None)
                if sub is not None:
                    walk(sub)
            for p in getattr(e, "parts", ()):
                walk(p)

        walk(wire.expr)
        assert (1, 1) in nums  # 1'b1
        assert (10, 4) in nums  # 4'hA

    def test_lint_flags_undriven_wire(self):
        text = ("module m (input wire clk);\n"
                "wire [3:0] floating;\n"
                "endmodule\n")
        assert any("never driven" in p for p in lint_verilog(text))

    def test_lint_flags_out_of_range_select(self):
        probs = lint_verilog("module m (\n    input wire [3:0] a_0,\n"
                             "    output wire [3:0] o_1\n);\n"
                             "wire [3:0] x_2 = a_0[5:1];\n"
                             "assign o_1 = x_2;\nendmodule\n")
        assert any("reaches past" in p for p in probs)

    def test_lint_flags_overflowing_literal(self):
        probs = lint_verilog("module m (\n    output wire [3:0] o_1\n);\n"
                             "wire [3:0] x_2 = 2'd9;\n"
                             "assign o_1 = x_2;\nendmodule\n")
        assert any("overflows" in p for p in probs)

    def test_lint_flags_concat_width_mismatch(self):
        probs = lint_verilog("module m (\n    input wire [3:0] a_0,\n"
                             "    output wire [3:0] o_1\n);\n"
                             "wire [4:0] x_2 = {a_0[1:0], a_0[1:0]};\n"
                             "assign o_1 = x_2;\nendmodule\n")
        assert any("concatenation" in p for p in probs)

    def test_lint_flags_oversized_literal_assign(self):
        probs = lint_verilog("module m (\n    output wire [1:0] o_1\n);\n"
                             "wire [1:0] x_2 = 1'd0;\n"
                             "assign o_1 = 8'd3;\nendmodule\n")
        assert any("sized 8 bits" in p for p in probs)

    @pytest.mark.parametrize("build", [build_fig1, build_recurrent])
    def test_emitted_modules_lint_clean(self, build):
        assert lint_verilog(emit_verilog(_schedule(build()))) == []


# ----------------------------------------------------------------------
# DEP001 SAT tier and the opt-in EQ rules
# ----------------------------------------------------------------------

class TestDepSatTier:
    def test_sat_tier_prunes_false_suspects(self, recurrent_graph):
        report = lint_graph(recurrent_graph,
                            options={"dep_sat_nodes": 10_000})
        assert "DEP001" not in {d.code for d in report.diagnostics}

    def test_tiny_conflict_budget_does_not_crash(self, fig1_graph):
        report = lint_graph(fig1_graph, options={"dep_sat_conflicts": 1})
        assert report is not None


class TestEqRules:
    def test_rules_are_opt_in(self, recurrent_graph):
        sched = _schedule(recurrent_graph)
        codes = {d.code for d in
                 lint_schedule(sched, XC7).diagnostics}
        assert not any(c.startswith("EQ") for c in codes)

    def test_clean_schedule_has_no_eq_errors(self, recurrent_graph):
        sched = _schedule(recurrent_graph)
        report = lint_schedule(sched, XC7, options={"equiv": True})
        eq = [d for d in report.diagnostics if d.code.startswith("EQ")]
        assert not eq, [(d.code, d.message) for d in eq]

    def test_starved_budget_warns_unproved(self, recurrent_graph):
        sched = _schedule(recurrent_graph)
        report = lint_schedule(
            sched, XC7,
            options={"equiv": True, "equiv_frames": 1,
                     "equiv_induction_k": 0, "equiv_sat_conflicts": 1})
        codes = {d.code for d in report.diagnostics}
        assert "EQ005" in codes


# ----------------------------------------------------------------------
# Fuzz-found emitter bug regressions (context-width sizing, fill window)
# ----------------------------------------------------------------------

class TestFuzzRegressions:
    # Seeds that historically exposed real emitter bugs: 3 (inlined
    # interior evaluated at context width, and $signed taking its sign
    # from the self-determined width), 1/9 (gap-0 carried edges: fill
    # transients that must be excused only when the steady state proves),
    # 7 (masked-interior shape). Seed 4 (recurrence mis-seeding) is
    # covered by TestWarmGating at a fraction of the cost.
    @pytest.mark.parametrize("seed", [1, 3, 7, 9])
    def test_seed_passes_equiv_oracle(self, seed):
        from repro.fuzz.generate import generate_case
        from repro.fuzz.oracles import FuzzCase, run_oracle

        case = FuzzCase(generate_case(seed))
        result = run_oracle("equiv", case)
        assert result.status in ("pass", "skip"), result.message

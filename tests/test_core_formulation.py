"""Unit tests for the MILP formulation (Eq. 2-15)."""

import pytest

from repro.core import MappingAwareFormulation, SchedulerConfig
from repro.core.mapsched import BaseScheduler, MapScheduler
from repro.cuts import enumerate_cuts
from repro.errors import ModelError
from repro.ir import DFGBuilder
from repro.milp.model import SolveStatus
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


def make_formulation(graph, device=TUTORIAL4, horizon=4, **cfg):
    config = SchedulerConfig(ii=1, tcp=5.0, time_limit=30, **cfg)
    cuts = enumerate_cuts(graph, device.k)
    f = MappingAwareFormulation(graph, cuts, device, config, horizon)
    f.build()
    return f


class TestModelShape:
    def test_variable_groups(self):
        f = make_formulation(build_fig1())
        assert f.stats.num_sched_vars > 0
        assert f.stats.num_cut_vars > 0
        assert f.stats.num_constraints > 0
        assert f.stats.horizon == 4

    def test_map_has_more_cut_vars_than_base(self):
        g = build_fig1()
        full = make_formulation(g)
        base_cuts = enumerate_cuts(g, TUTORIAL4.k, max_cuts=0)
        base = MappingAwareFormulation(
            g, base_cuts, TUTORIAL4, SchedulerConfig(ii=1, tcp=5.0), 4
        )
        base.build()
        assert full.stats.num_cut_vars > base.stats.num_cut_vars
        assert full.stats.num_constraints > base.stats.num_constraints

    def test_bad_horizon(self):
        g = build_fig1()
        cuts = enumerate_cuts(g, 4)
        with pytest.raises(ModelError, match="horizon"):
            MappingAwareFormulation(g, cuts, TUTORIAL4,
                                    SchedulerConfig(ii=1, tcp=5.0), 0)

    def test_budget_is_derated(self):
        f = make_formulation(build_fig1(), device=XC7)
        assert f.budget == pytest.approx(5.0 * 0.875)

    def test_extract_requires_ok_solution(self):
        f = make_formulation(build_fig1())
        from repro.milp.model import Solution

        with pytest.raises(ModelError, match="cannot extract"):
            f.extract(Solution(status=SolveStatus.INFEASIBLE, objective=None),
                      "x")

    def test_solution_respects_model_check(self):
        f = make_formulation(build_fig1())
        sol = f.model.solve("scipy", time_limit=30)
        assert sol.status == SolveStatus.OPTIMAL
        assert f.model.check(sol.values, tol=1e-4) == []

    def test_resource_vars_created_per_class(self):
        b = DFGBuilder("m", width=8)
        addr = b.input("addr", 4)
        l1 = b.load(addr, name="m1")
        l2 = b.load(addr + 1, name="m2")
        b.output(l1 ^ l2, "o")
        g = b.build()
        cuts = enumerate_cuts(g, XC7.k)
        f = MappingAwareFormulation(
            g, cuts, XC7.with_resources(mem_port=1),
            SchedulerConfig(ii=2, tcp=10.0), 4,
        )
        f.build()
        assert "mem_port" in f.resource_vars


class TestOptimalSolutions:
    def test_single_xor_schedules_to_cycle0(self):
        b = DFGBuilder("t", width=2)
        a, c = b.input("a"), b.input("c")
        b.output(a ^ c, "o")
        g = b.build()
        sched = MapScheduler(g, TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        assert sched.latency == 1
        xor = next(n for n in g if n.kind.value == "xor")
        assert sched.cycle[xor.nid] == 0
        assert xor.nid in sched.cover

    def test_base_objective_counts_units(self):
        # two chained xors at width 2: base pays LUT bits for both,
        # map collapses into one cone
        b = DFGBuilder("t", width=2)
        a, c, d = b.input("a"), b.input("c"), b.input("d")
        b.output((a ^ c) ^ d, "o")
        g1 = b.build()
        base = BaseScheduler(g1, TUTORIAL4, SchedulerConfig(ii=1, tcp=5.0))
        s_base = base.schedule()

        b2 = DFGBuilder("t", width=2)
        a, c, d = b2.input("a"), b2.input("c"), b2.input("d")
        b2.output((a ^ c) ^ d, "o")
        s_map = MapScheduler(b2.build(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        assert s_map.objective < s_base.objective
        assert len([n for n in s_map.cover
                    if s_map.graph.node(n).kind.value == "xor"
                    and s_map.cover[n].kind != "trivial"]) == 1

    def test_paper_objective_mode(self):
        g = build_fig1()
        sched = MapScheduler(
            g, TUTORIAL4,
            SchedulerConfig(ii=1, tcp=5.0, paper_objective=True),
        ).schedule()
        assert sched.latency == 1  # same structural optimum

    def test_recurrence_forces_producer_root(self):
        g = build_recurrent()
        sched = MapScheduler(g, XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        rec = next(n for n in g if n.attrs.get("recurrence"))
        producer = rec.operands[1].source
        assert producer in sched.cover

    def test_alpha_zero_ignores_luts(self):
        # with alpha=0 the solver may pick any cover as long as registers
        # are minimal; with beta=0 it must minimize LUTs
        g = build_fig1()
        s_lut = MapScheduler(
            g, TUTORIAL4, SchedulerConfig(ii=1, tcp=5.0, alpha=1.0, beta=0.0)
        ).schedule()
        g2 = build_fig1()
        s_ff = MapScheduler(
            g2, TUTORIAL4, SchedulerConfig(ii=1, tcp=5.0, alpha=0.0, beta=1.0)
        ).schedule()
        from repro.hw import evaluate

        r_lut = evaluate(s_lut, TUTORIAL4)
        r_ff = evaluate(s_ff, TUTORIAL4)
        assert r_lut.luts <= r_ff.luts
        assert r_ff.ffs <= r_lut.ffs

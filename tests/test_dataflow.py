"""Tests for the abstract-interpretation framework (repro.analysis.dataflow).

The centerpiece is the *differential* harness: for every benchmark, ≥1,000
random concrete executions are checked against every abstract fact — a
known bit that a concrete value violates, an interval that fails to cover
an observed value, or a "dead" MUX arm that was concretely taken would
each be a soundness bug in a transfer function, and fails loudly here.
"""

import json
import random

import pytest

from repro.analysis import Linter, lint_graph
from repro.analysis.dataflow import (
    Facts,
    Interval,
    KnownBits,
    analyze,
    cached_analyze,
    reduce_facts,
    transfer,
)
from repro.analysis.dataflow.engine import _initial_fact
from repro.designs.registry import BENCHMARKS
from repro.errors import AnalysisError
from repro.ir.graph import CDFG
from repro.ir.node import Node, Operand
from repro.ir.semantics import eval_node, mask
from repro.ir.transforms import narrow_graph
from repro.ir.types import COMPARISON_KINDS, OpKind
from repro.sim.functional import FunctionalSimulator

from .conftest import build_fig1, build_recurrent


# ----------------------------------------------------------------------
# Domains: lattice algebra
# ----------------------------------------------------------------------

class TestKnownBits:
    def test_const_knows_everything(self):
        kb = KnownBits.const(0b1010, 4)
        assert kb.is_constant and kb.value == 0b1010
        assert kb.zeros == 0b0101
        assert [kb.bit(i) for i in range(4)] == [0, 1, 0, 1]
        assert kb.bit(99) == 0  # beyond the width is proven zero

    def test_join_keeps_agreement_only(self):
        j = KnownBits.const(0b1100, 4).join(KnownBits.const(0b1010, 4))
        assert j.bit(3) == 1  # both have bit 3 set
        assert j.bit(0) == 0  # both have bit 0 clear
        assert j.bit(1) is None and j.bit(2) is None

    def test_invariant_enforced(self):
        with pytest.raises(AnalysisError):
            KnownBits(4, ones=0b0001, unknown=0b0001)
        with pytest.raises(AnalysisError):
            KnownBits(2, ones=0b100, unknown=0)

    def test_dead_high_bits(self):
        assert KnownBits(8, 0, 0b1111).dead_high_bits() == 4
        assert KnownBits.const(0, 8).dead_high_bits() == 8
        assert KnownBits.top(8).dead_high_bits() == 0

    def test_contains_matches_concretization(self):
        kb = KnownBits(3, ones=0b001, unknown=0b010)
        assert {v for v in range(8) if kb.contains(v)} == {0b001, 0b011}


class TestInterval:
    def test_signed_bounds_pages(self):
        assert Interval(4, 1, 6).signed_bounds() == (1, 6)
        assert Interval(4, 9, 15).signed_bounds() == (-7, -1)
        assert Interval(4, 6, 9).signed_bounds() == (-8, 7)  # straddles

    def test_join_and_widen(self):
        a, b = Interval(8, 10, 20), Interval(8, 15, 40)
        assert a.join(b) == Interval(8, 10, 40)
        # hi moved up since previous -> widened to the extreme; lo stable.
        assert Interval(8, 10, 40).widen(a) == Interval(8, 10, 255)
        assert a.widen(a) == a

    def test_resize_truncation_pages(self):
        assert Interval(8, 3, 7).resize(4) == Interval(4, 3, 7)
        # Same 16-value page: exact.
        assert Interval(8, 0x12, 0x15).resize(4) == Interval(4, 2, 5)
        # Crosses a page boundary: top.
        assert Interval(8, 14, 17).resize(4) == Interval.top(4)

    def test_invariant_enforced(self):
        with pytest.raises(AnalysisError):
            Interval(4, 5, 3)
        with pytest.raises(AnalysisError):
            Interval(4, 0, 16)


class TestReducedProduct:
    def test_bits_clip_interval(self):
        kb = KnownBits(4, ones=0b1000, unknown=0b0011)  # value in [8, 11]
        f = reduce_facts(kb, Interval.top(4))
        assert f.range == Interval(4, 8, 11)

    def test_interval_pins_bits(self):
        f = reduce_facts(KnownBits.top(4), Interval(4, 12, 13))
        # 12..13 share prefix 110x.
        assert f.bits.bit(3) == 1 and f.bits.bit(2) == 1
        assert f.bits.bit(1) == 0 and f.bits.bit(0) is None

    def test_empty_product_raises(self):
        with pytest.raises(AnalysisError):
            reduce_facts(KnownBits.const(2, 4), Interval(4, 8, 9))

    def test_constant_from_either_domain(self):
        assert Facts.const(9, 4).constant_value == 9
        assert Facts(KnownBits.top(4), Interval(4, 7, 7)).constant_value == 7


# ----------------------------------------------------------------------
# Transfer functions: exhaustive micro-soundness at small widths
# ----------------------------------------------------------------------

def _facts_of(values, width):
    """The join of const facts for a concrete value set."""
    out = Facts.const(values[0], width)
    for v in values[1:]:
        out = out.join(Facts.const(v, width))
    return out


_BINARY_KINDS = [
    OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ADD, OpKind.SUB,
    OpKind.MUL, OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE,
    OpKind.SLT, OpKind.SGE, OpKind.VSHL, OpKind.VSHR,
    OpKind.DIV, OpKind.MOD,
]


class TestTransferExhaustive:
    """Abstract outputs must cover every concrete combination.

    For each op we abstract two small concrete sets, run the transfer
    function once, and check the result contains eval_node's output for
    the full cross product — over *all* 3-bit value-set pairs drawn from a
    seeded sampler. This is the same over-approximation contract the
    benchmark-level differential harness checks, pushed to exhaustion on
    tiny words where every corner (wrap, sign flip, shift clamp) occurs.
    """

    @pytest.mark.parametrize("kind", _BINARY_KINDS,
                             ids=lambda k: k.value)
    def test_binary_ops_cover_cross_product(self, kind):
        rng = random.Random(hash(kind.value) & 0xFFFF)
        width = 3
        out_width = 1 if kind in COMPARISON_KINDS else width
        for _ in range(120):
            a_set = rng.sample(range(8), rng.randint(1, 3))
            b_set = rng.sample(range(8), rng.randint(1, 3))
            if kind in (OpKind.DIV, OpKind.MOD):
                b_set = [b for b in b_set if b] or [1]
            node = Node(nid=0, kind=kind, width=out_width,
                        operands=[Operand(1), Operand(2)])
            abstract = transfer(node, [_facts_of(a_set, width),
                                       _facts_of(b_set, width)])
            for a in a_set:
                for b in b_set:
                    concrete = eval_node(node, [a, b], [width, width])
                    assert abstract.contains(concrete), (
                        f"{kind.value}({a}, {b}) = {concrete} "
                        f"not in {abstract}"
                    )

    def test_mux_covers_both_arms_and_decides(self):
        node = Node(nid=0, kind=OpKind.MUX, width=3,
                    operands=[Operand(1), Operand(2), Operand(3)])
        sel_top = Facts.top(1)
        out = transfer(node, [sel_top, Facts.const(5, 3), Facts.const(2, 3)])
        assert out.contains(5) and out.contains(2)
        decided = transfer(node, [Facts.const(1, 1), Facts.const(5, 3),
                                  Facts.const(2, 3)])
        assert decided.constant_value == 5

    def test_shift_slice_concat_exact_on_constants(self):
        shl = Node(nid=0, kind=OpKind.SHL, width=6, operands=[Operand(1)],
                   amount=2)
        assert transfer(shl, [Facts.const(5, 4)]).constant_value == 20
        sl = Node(nid=0, kind=OpKind.SLICE, width=2, operands=[Operand(1)],
                  amount=1)
        assert transfer(sl, [Facts.const(0b0110, 4)]).constant_value == 0b11
        cc = Node(nid=0, kind=OpKind.CONCAT, width=6,
                  operands=[Operand(1), Operand(2)])
        got = transfer(cc, [Facts.const(0b10, 2), Facts.const(0b1011, 4)])
        assert got.constant_value == 0b101110

    def test_not_neg_exact(self):
        n = Node(nid=0, kind=OpKind.NOT, width=4, operands=[Operand(1)])
        assert transfer(n, [Facts.const(0b0101, 4)]).constant_value == 0b1010
        g = Node(nid=0, kind=OpKind.NEG, width=4, operands=[Operand(1)])
        assert transfer(g, [Facts.const(3, 4)]).constant_value == 13


# ----------------------------------------------------------------------
# Engine: fixpoint behavior
# ----------------------------------------------------------------------

class TestEngine:
    def test_terminates_and_proves_recurrence_facts(self):
        g = build_recurrent()
        df = analyze(g)
        assert df.sweeps <= 10
        for node in g:
            assert df.fact(node.nid).width == node.width

    def test_proves_constant_through_mux(self):
        g = CDFG("decided")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        zero = g.add_node(OpKind.CONST, 4, value=0)
        band = g.add_node(OpKind.AND, 4, operands=[a.nid, zero.nid])
        one = g.add_node(OpKind.CONST, 1, value=1)
        nz = g.add_node(OpKind.NE, 1, operands=[band.nid, zero.nid])
        # nz is provably 0 -> the mux always takes arm 2.
        m = g.add_node(OpKind.MUX, 4, operands=[nz.nid, a.nid, zero.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[m.nid], name="o")
        _ = one
        df = analyze(g)
        assert df.constant_value(band.nid) == 0
        assert df.comparison_outcome(nz.nid) == 0
        assert df.mux_select(m.nid) == 0
        assert df.constant_value(m.nid) == 0

    def test_widening_caps_sweeps_on_counter(self):
        g = CDFG("counter")
        one = g.add_node(OpKind.CONST, 8, value=1)
        acc = g.add_node(OpKind.ADD, 8,
                         operands=[Operand(one.nid), Operand(one.nid, 1)])
        g.set_operand(acc.nid, 1, Operand(acc.nid, 1))
        g.add_node(OpKind.OUTPUT, 8, operands=[acc.nid], name="o")
        df = analyze(g)
        # The counter wraps through all 256 values: widening must kick in
        # long before 256 sweeps.
        assert df.sweeps < 64
        sim = FunctionalSimulator(g)
        for i in range(300):
            out = sim.step({})
            assert df.fact(acc.nid).contains(out["o"])

    def test_cache_reused_and_invalidated(self):
        g = build_fig1()
        first = cached_analyze(g)
        assert cached_analyze(g) is first
        g.add_node(OpKind.CONST, 4, value=3)
        assert cached_analyze(g) is not first


# ----------------------------------------------------------------------
# The differential harness (ISSUE 2 acceptance: zero violations)
# ----------------------------------------------------------------------

N_SIMS = 1000


def _check_facts_against_run(graph, df, sim, inputs_stream):
    """Assert every abstract fact covers every concrete observation."""
    history = []
    for inputs in inputs_stream:
        sim.step(inputs)
    for i in range(len(inputs_stream)):
        history.append(sim.values_at(i))

    initials = {n.nid: mask(int(n.attrs.get("initial", 0)), n.width)
                for n in graph}
    for i, values in enumerate(history):
        for node in graph:
            value = values[node.nid]
            fact = df.fact(node.nid)
            assert fact.contains(value), (
                f"iter {i}: node {node.nid} ({node.kind.value}) = {value} "
                f"escapes {fact}"
            )
        # Operand-level facts: what each consumer actually saw, including
        # loop-carried reads resolved from history/initials.
        for node in graph:
            for slot, op in enumerate(node.operands):
                if op.distance == 0:
                    seen = values[op.source]
                elif i - op.distance >= 0:
                    seen = history[i - op.distance][op.source]
                else:
                    seen = initials[op.source]
                ofact = df.operand_fact(node.nid, slot)
                assert ofact.contains(seen), (
                    f"iter {i}: operand {slot} of node {node.nid} = {seen} "
                    f"escapes {ofact}"
                )
            if node.kind is OpKind.MUX:
                decided = df.mux_select(node.nid)
                if decided is not None:
                    sel = (values[node.operands[0].source]
                           if node.operands[0].distance == 0 else None)
                    if sel is not None:
                        assert sel & 1 == decided
            if node.kind in COMPARISON_KINDS:
                outcome = df.comparison_outcome(node.nid)
                if outcome is not None:
                    assert values[node.nid] == outcome


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_differential_soundness(name):
    spec = BENCHMARKS[name]
    graph = spec.build()
    df = analyze(graph)
    sim = FunctionalSimulator(graph, spec.make_env(11))
    stream = spec.input_stream(seed=11, n=N_SIMS)
    assert len(stream) >= 1000
    _check_facts_against_run(graph, df, sim, stream)


def test_differential_soundness_tutorial_kernels():
    for builder in (build_fig1, build_recurrent):
        graph = builder()
        df = analyze(graph)
        rng = random.Random(23)
        widths = {n.name: n.width for n in graph.inputs}
        stream = [{k: rng.randrange(1 << w) for k, w in widths.items()}
                  for _ in range(N_SIMS)]
        _check_facts_against_run(graph, df, FunctionalSimulator(graph), stream)


# ----------------------------------------------------------------------
# narrow_graph: equivalence + measured shrink
# ----------------------------------------------------------------------

class TestNarrowGraph:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_functionally_equivalent(self, name):
        spec = BENCHMARKS[name]
        graph = spec.build()
        narrowed, mapping = narrow_graph(graph)
        stream = spec.input_stream(seed=5, n=300)
        ref = FunctionalSimulator(graph, spec.make_env(5))
        new = FunctionalSimulator(narrowed, spec.make_env(5))
        for inputs in stream:
            assert ref.step(inputs) == new.step(inputs)
        # The interface survives: same input/output names and widths.
        assert {(n.name, n.width) for n in graph.inputs} == \
            {(n.name, n.width) for n in narrowed.inputs}
        assert {(n.name, n.width) for n in graph.outputs} == \
            {(n.name, n.width) for n in narrowed.outputs}
        # Every surviving node maps into the new graph.
        for old_id, new_id in mapping.items():
            assert new_id in narrowed

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_never_introduces_lint_errors(self, name):
        narrowed, _ = narrow_graph(BENCHMARKS[name].build())
        assert not lint_graph(narrowed).errors

    def test_narrows_bits_somewhere(self):
        # Dataflow must beat syntax on at least these benchmarks.
        shrunk = {}
        for name in ("CLZ", "DR", "GSM"):
            g = BENCHMARKS[name].build()
            n, _ = narrow_graph(g)
            shrunk[name] = (sum(x.width for x in g),
                            sum(x.width for x in n))
        assert all(after < before for before, after in shrunk.values()), shrunk

    def test_milp_and_cuts_shrink_on_gsm(self):
        """ISSUE 2 acceptance: measured reduction with narrowing on."""
        from repro.core.config import SchedulerConfig
        from repro.core.formulation import MappingAwareFormulation
        from repro.core.mapsched import MapScheduler
        from repro.tech.device import XC7

        sizes = []
        graph = BENCHMARKS["GSM"].build()
        for g in (graph, narrow_graph(graph)[0]):
            sched = MapScheduler(g, XC7, SchedulerConfig())
            cuts = sched.enumerate()
            model = MappingAwareFormulation(
                g, cuts, XC7, sched.config, sched._horizon()).build()
            sizes.append((sum(len(cs.selectable) for cs in cuts.values()),
                          model.num_vars))
        (cuts_before, vars_before), (cuts_after, vars_after) = sizes
        assert cuts_after < cuts_before
        assert vars_after < vars_before

    def test_run_flow_no_narrow_escape_hatch(self):
        from repro.core.config import SchedulerConfig
        from repro.experiments import run_flow
        from repro.tech.device import TUTORIAL4

        cfg = SchedulerConfig(ii=1, tcp=5.0, time_limit=10.0)
        graph = build_fig1()
        on = run_flow(graph, "milp-map", TUTORIAL4, cfg)
        off = run_flow(graph, "milp-map", TUTORIAL4, cfg, narrow=False)
        # The escape hatch schedules the original node count.
        assert len(list(off.schedule.graph)) == len(list(graph))
        assert on.report.luts <= off.report.luts
        # config-level toggle is equivalent to the keyword.
        import dataclasses
        off2 = run_flow(graph, "milp-map", TUTORIAL4,
                        dataclasses.replace(cfg, narrow=False))
        assert len(list(off2.schedule.graph)) == len(list(graph))


# ----------------------------------------------------------------------
# DF rules
# ----------------------------------------------------------------------

class TestDFRules:
    def test_df001_reports_structural_dead_bits(self):
        g = CDFG("deadhigh")
        a = g.add_node(OpKind.INPUT, 8, name="a")
        seven = g.add_node(OpKind.CONST, 8, value=7)
        low = g.add_node(OpKind.AND, 8, operands=[a.nid, seven.nid])
        g.add_node(OpKind.OUTPUT, 8, operands=[low.nid], name="o")
        report = lint_graph(g, select=["DF001"])
        assert [d.node for d in report] == [low.nid]
        assert "top 5 of 8 bits" in report.diagnostics[0].message

    def test_df001_silent_on_definitional_zeros(self):
        g = CDFG("zext")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        z = g.add_node(OpKind.ZEXT, 8, operands=[a.nid])
        g.add_node(OpKind.OUTPUT, 8, operands=[z.nid], name="o")
        assert len(lint_graph(g, select=["DF001"])) == 0

    def test_df002_guaranteed_truncation(self):
        g = CDFG("trunclost")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        high = g.add_node(OpKind.CONST, 8, value=0x80)
        v = g.add_node(OpKind.OR, 8, operands=[a.nid, high.nid])
        t = g.add_node(OpKind.TRUNC, 4, operands=[v.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[t.nid], name="o")
        report = lint_graph(g, select=["DF002"])
        assert [d.node for d in report] == [t.nid]

    def test_df003_dead_mux_arm(self):
        g = CDFG("deadarm")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        zero = g.add_node(OpKind.CONST, 4, value=0)
        band = g.add_node(OpKind.AND, 4, operands=[a.nid, zero.nid])
        nz = g.add_node(OpKind.NE, 1, operands=[band.nid, zero.nid])
        m = g.add_node(OpKind.MUX, 4, operands=[nz.nid, a.nid, zero.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[m.nid], name="o")
        report = lint_graph(g, select=["DF003"])
        assert [d.node for d in report] == [m.nid]
        assert "arm 1" in report.diagnostics[0].message

    def test_df003_defers_syntactic_const_select_to_ir011(self):
        g = CDFG("synsel")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        b = g.add_node(OpKind.INPUT, 4, name="b")
        one = g.add_node(OpKind.CONST, 1, value=1)
        m = g.add_node(OpKind.MUX, 4, operands=[one.nid, a.nid, b.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[m.nid], name="o")
        assert len(lint_graph(g, select=["DF003"])) == 0
        assert len(lint_graph(g, select=["IR011"])) == 1

    def test_df004_beyond_syntactic_folding(self):
        g = CDFG("semconst")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        zero = g.add_node(OpKind.CONST, 4, value=0)
        # One operand is not a constant, so IR012's syntactic walk cannot
        # fold this — but the known-bits domain proves it is 0.
        x = g.add_node(OpKind.AND, 4, operands=[a.nid, zero.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[x.nid], name="o")
        report = lint_graph(g, select=["DF004"])
        assert [d.node for d in report] == [x.nid]
        assert "constant 0" in report.diagnostics[0].message

    def test_df005_decided_comparison(self):
        g = CDFG("alwaystrue")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        sixteen = g.add_node(OpKind.ZEXT, 5, operands=[a.nid])
        c16 = g.add_node(OpKind.CONST, 5, value=16)
        lt = g.add_node(OpKind.LT, 1, operands=[sixteen.nid, c16.nid])
        g.add_node(OpKind.OUTPUT, 1, operands=[lt.nid], name="o")
        report = lint_graph(g, select=["DF005"])
        assert [d.node for d in report] == [lt.nid]
        assert "always true" in report.diagnostics[0].message

    def test_clean_fig1_stays_clean(self):
        assert len(lint_graph(build_fig1(), select=["DF"])) == 0

    def test_rules_quiet_on_malformed_graphs(self):
        g = CDFG("broken")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        g.add_node(OpKind.NOT, 4, operands=[Operand(a.nid, 1)])
        g.node(a.nid)  # keep a referenced
        bad = g.add_node(OpKind.NOT, 4, operands=[a.nid])
        bad.operands[0] = Operand(999, 0)  # dangling source
        report = lint_graph(g)
        assert not report.filter(codes=["DF"])


# ----------------------------------------------------------------------
# CLI satellites: selector validation, baseline, SARIF
# ----------------------------------------------------------------------

class TestLinterSelectorValidation:
    def test_unmatched_patterns_detected(self):
        assert Linter(select=["IR1"]).unmatched_patterns() == ["IR1"]
        assert Linter(select=["IR"], ignore=["ZZZ"]).unmatched_patterns() \
            == ["ZZZ"]
        assert Linter(select=["DF001", "IR"]).unmatched_patterns() == []

    def test_cli_exits_2_on_unknown_selector(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "CLZ", "--select", "IR1"]) == 2
        assert "IR1" in capsys.readouterr().err
        assert main(["lint", "CLZ", "--ignore", "NOPE"]) == 2

    def test_cli_accepts_family_prefixes(self):
        from repro.__main__ import main

        assert main(["lint", "GSM", "--select", "DF",
                     "--fail-on", "error"]) == 0


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path, capsys):
        from repro.__main__ import main

        base = tmp_path / "baseline.json"
        assert main(["lint", "GSM", "--write-baseline", str(base)]) == 0
        data = json.loads(base.read_text())
        assert data["schema"] == "repro-lint-baseline/v1"
        assert data["fingerprints"]  # GSM has DF004 findings
        capsys.readouterr()
        # Without the baseline the warnings gate --fail-on warning...
        assert main(["lint", "GSM", "--fail-on", "warning"]) == 1
        # ...with it they are known and the run is green.
        capsys.readouterr()
        assert main(["lint", "GSM", "--fail-on", "warning",
                     "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "0 warning(s)" in out

    def test_new_findings_still_gate(self, tmp_path):
        from repro.analysis.baseline import (
            fingerprint,
            load_baseline,
            suppress,
            write_baseline,
        )

        report = lint_graph(BENCHMARKS["GSM"].build())
        path = tmp_path / "b.json"
        write_baseline(str(path), [report])
        known = load_baseline(str(path))
        assert all(fingerprint(d) in known for d in report)
        # A finding at a new location is not suppressed.
        import dataclasses
        moved = dataclasses.replace(report.diagnostics[0], node=424242)
        from repro.analysis import DiagnosticReport
        fresh = suppress([DiagnosticReport("gsm", [moved])], known)
        assert len(fresh[0]) == 1

    def test_rejects_malformed_baseline(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else", "fingerprints": []}')
        assert main(["lint", "GSM", "--baseline", str(bad)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestSarif:
    def test_cli_emits_valid_sarif(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "GSM", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        result_ids = {r["ruleId"] for r in run["results"]}
        assert result_ids <= rule_ids
        for result in run["results"]:
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]

    def test_locations_are_logical(self):
        from repro.analysis.sarif import to_sarif

        report = lint_graph(BENCHMARKS["GSM"].build())
        log = to_sarif([report])
        locs = [r["locations"][0]["logicalLocations"][0]
                for r in log["runs"][0]["results"] if "locations" in r]
        assert locs
        assert all(loc["fullyQualifiedName"].startswith("gsm/")
                   for loc in locs)


# ----------------------------------------------------------------------
# Engine internals exercised directly
# ----------------------------------------------------------------------

def test_initial_fact_mirrors_simulator():
    g = CDFG("init")
    n = g.add_node(OpKind.CONST, 4, value=0, attrs={"initial": 0x1F})
    # The simulator masks initial values at the node width; so do we.
    assert _initial_fact(g.node(n.nid)).constant_value == 0xF

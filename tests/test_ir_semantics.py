"""Unit tests for word-level operation semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.ir import CDFG, OpKind, eval_node, mask, to_signed
from repro.ir.node import Node


def make(kind, width, nops, **kw):
    ops = [0] * nops  # dummy operand ids; eval_node never follows them
    from repro.ir.node import Operand
    return Node(nid=0, kind=kind, width=width,
                operands=[Operand(0)] * nops, **kw)


class TestHelpers:
    @given(st.integers(), st.integers(min_value=1, max_value=64))
    def test_mask_range(self, v, w):
        assert 0 <= mask(v, w) < (1 << w)

    @given(st.integers(min_value=0, max_value=255))
    def test_to_signed_roundtrip(self, v):
        s = to_signed(v, 8)
        assert -128 <= s <= 127
        assert mask(s, 8) == v


class TestEval:
    def test_bitwise(self):
        assert eval_node(make(OpKind.AND, 8, 2), [0xF0, 0x3C], [8, 8]) == 0x30
        assert eval_node(make(OpKind.OR, 8, 2), [0xF0, 0x3C], [8, 8]) == 0xFC
        assert eval_node(make(OpKind.XOR, 8, 2), [0xF0, 0x3C], [8, 8]) == 0xCC
        assert eval_node(make(OpKind.NOT, 8, 1), [0xF0], [8]) == 0x0F

    def test_mux_uses_lsb_of_select(self):
        assert eval_node(make(OpKind.MUX, 8, 3), [1, 10, 20], [1, 8, 8]) == 10
        assert eval_node(make(OpKind.MUX, 8, 3), [0, 10, 20], [1, 8, 8]) == 20
        assert eval_node(make(OpKind.MUX, 8, 3), [2, 10, 20], [2, 8, 8]) == 20

    def test_shifts_truncate(self):
        assert eval_node(make(OpKind.SHL, 8, 1, amount=4), [0xFF], [8]) == 0xF0
        assert eval_node(make(OpKind.SHR, 8, 1, amount=4), [0xF0], [8]) == 0x0F

    def test_slice_and_concat(self):
        assert eval_node(make(OpKind.SLICE, 4, 1, amount=4), [0xAB], [8]) == 0xA
        assert eval_node(make(OpKind.CONCAT, 12, 2), [0xB, 0xA], [4, 8]) == (0xA << 4) | 0xB

    def test_arith_wraps(self):
        assert eval_node(make(OpKind.ADD, 8, 2), [0xFF, 2], [8, 8]) == 1
        assert eval_node(make(OpKind.SUB, 8, 2), [0, 1], [8, 8]) == 0xFF
        assert eval_node(make(OpKind.NEG, 8, 1), [1], [8]) == 0xFF

    def test_unsigned_compare(self):
        assert eval_node(make(OpKind.LT, 1, 2), [3, 5], [8, 8]) == 1
        assert eval_node(make(OpKind.GE, 1, 2), [5, 5], [8, 8]) == 1

    def test_signed_compare(self):
        # 0x80 = -128 signed
        assert eval_node(make(OpKind.SLT, 1, 2), [0x80, 0], [8, 8]) == 1
        assert eval_node(make(OpKind.SGE, 1, 2), [0x7F, 0], [8, 8]) == 1

    def test_variable_shifts_clamp(self):
        assert eval_node(make(OpKind.VSHR, 8, 2), [0xFF, 200], [8, 8]) == 0
        assert eval_node(make(OpKind.VSHL, 8, 2), [1, 3], [8, 8]) == 8

    def test_blackbox_arith(self):
        assert eval_node(make(OpKind.MUL, 8, 2), [16, 17], [8, 8]) == mask(272, 8)
        assert eval_node(make(OpKind.DIV, 8, 2), [17, 5], [8, 8]) == 3
        assert eval_node(make(OpKind.MOD, 8, 2), [17, 5], [8, 8]) == 2

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError, match="zero"):
            eval_node(make(OpKind.DIV, 8, 2), [1, 0], [8, 8])

    def test_input_has_no_intrinsic_value(self):
        with pytest.raises(SimulationError):
            eval_node(make(OpKind.INPUT, 8, 0), [], [])

    def test_const_and_output_passthrough(self):
        assert eval_node(make(OpKind.CONST, 8, 0, value=300), [], []) == 44
        assert eval_node(make(OpKind.OUTPUT, 8, 1), [0x1FF], [16]) == 0xFF

    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_add_matches_python(self, a, b):
        assert eval_node(make(OpKind.ADD, 16, 2), [a, b], [16, 16]) \
            == (a + b) & 0xFFFF

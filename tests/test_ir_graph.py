"""Unit tests for the CDFG container."""

import pytest

from repro.errors import IRError, ValidationError
from repro.ir import CDFG, DFGBuilder, OpKind, Operand


def small_graph() -> CDFG:
    g = CDFG("g")
    a = g.add_node(OpKind.INPUT, 8, name="a")
    b = g.add_node(OpKind.INPUT, 8, name="b")
    x = g.add_node(OpKind.XOR, 8, operands=[a.nid, b.nid])
    g.add_node(OpKind.OUTPUT, 8, operands=[x.nid], name="o")
    return g


class TestConstruction:
    def test_ids_are_dense_and_unique(self):
        g = small_graph()
        assert g.node_ids == [0, 1, 2, 3]

    def test_operand_must_exist_for_distance_zero(self):
        g = CDFG()
        with pytest.raises(IRError, match="not in graph"):
            g.add_node(OpKind.NOT, 8, operands=[99])

    def test_forward_reference_allowed_for_loop_carried(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        # operand 99 does not exist yet but distance=1 permits it
        x = g.add_node(OpKind.XOR, 4, operands=[Operand(a.nid), Operand(99, 1)])
        assert x.operands[1].distance == 1

    def test_negative_distance_rejected(self):
        with pytest.raises(IRError, match="negative"):
            Operand(0, -1)

    def test_node_lookup_missing(self):
        g = small_graph()
        with pytest.raises(IRError, match="no node"):
            g.node(42)

    def test_contains_and_len(self):
        g = small_graph()
        assert 0 in g and 42 not in g
        assert len(g) == 4

    def test_set_operand_rewires(self):
        g = small_graph()
        g.set_operand(2, 1, 0)  # xor now reads input a twice
        assert g.node(2).source_ids == [0, 0]

    def test_set_operand_bad_index(self):
        g = small_graph()
        with pytest.raises(IRError, match="no operand"):
            g.set_operand(2, 5, 0)


class TestUsesAndOrder:
    def test_uses_tracks_all_slots(self):
        g = small_graph()
        g.set_operand(2, 1, 0)
        uses = g.uses(0)
        assert {(u.consumer, u.operand_index) for u in uses} == {(2, 0), (2, 1)}

    def test_successor_ids_unique(self):
        g = small_graph()
        g.set_operand(2, 1, 0)
        assert g.successor_ids(0) == [2]

    def test_topological_order_respects_edges(self):
        g = small_graph()
        order = g.topological_order()
        assert order.index(2) > order.index(0)
        assert order.index(3) > order.index(2)

    def test_combinational_cycle_detected(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        x = g.add_node(OpKind.XOR, 4, operands=[Operand(a.nid), Operand(2, 1)])
        y = g.add_node(OpKind.NOT, 4, operands=[x.nid])
        # close the cycle combinationally
        g.set_operand(x.nid, 1, Operand(y.nid, 0))
        with pytest.raises(ValidationError, match="cycle"):
            g.topological_order()

    def test_loop_carried_cycle_is_fine(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        x = g.add_node(OpKind.XOR, 4, operands=[Operand(a.nid), Operand(2, 1)])
        g.add_node(OpKind.NOT, 4, operands=[x.nid])
        assert len(g.topological_order()) == 3


class TestQueries:
    def test_inputs_outputs_constants(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        b.output(i ^ b.const(3), "o")
        g = b.build()
        assert [n.name for n in g.inputs] == ["i"]
        assert [n.name for n in g.outputs] == ["o"]
        assert len(g.constants) == 1

    def test_histogram_and_counts(self):
        g = small_graph()
        h = g.op_histogram()
        assert h["input"] == 2 and h["xor"] == 1
        assert g.num_operations == 1  # xor only (boundary excluded)
        assert g.total_bits() == 8

    def test_copy_is_deep(self):
        g = small_graph()
        clone = g.copy()
        clone.set_operand(2, 1, 0)
        assert g.node(2).source_ids == [0, 1]
        assert clone.node(2).source_ids == [0, 0]

    def test_to_networkx_edges(self):
        g = small_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 3

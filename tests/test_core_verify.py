"""Unit tests for the independent schedule verifier: every violation class
must be caught."""

import pytest

from repro.core import MapScheduler, SchedulerConfig, schedule_problems, verify_schedule
from repro.errors import ScheduleVerificationError
from repro.tech.device import TUTORIAL4

from .conftest import build_fig1, build_recurrent


@pytest.fixture
def good_schedule():
    return MapScheduler(build_fig1(), TUTORIAL4,
                        SchedulerConfig(ii=1, tcp=5.0)).schedule()


class TestVerifier:
    def test_clean_schedule_passes(self, good_schedule):
        assert schedule_problems(good_schedule, TUTORIAL4) == []

    def test_unscheduled_node(self, good_schedule):
        nid = next(iter(good_schedule.cover))
        del good_schedule.cycle[nid]
        probs = schedule_problems(good_schedule, TUTORIAL4)
        assert any("unscheduled" in p for p in probs)

    def test_missing_cover(self, good_schedule):
        # drop the cover of a mappable root
        target = next(
            nid for nid in good_schedule.cover
            if good_schedule.graph.node(nid).is_mappable
        )
        del good_schedule.cover[target]
        probs = schedule_problems(good_schedule, TUTORIAL4)
        assert probs  # coverage or cut-input-root violation

    def test_wrong_cut_root(self, good_schedule):
        nids = list(good_schedule.cover)
        a = next(n for n in nids
                 if good_schedule.graph.node(n).is_mappable)
        b = next(n for n in nids if n != a)
        good_schedule.cover[a] = good_schedule.cover[b]
        probs = schedule_problems(good_schedule, TUTORIAL4)
        assert any("cut of node" in p for p in probs)

    def test_budget_violation(self, good_schedule):
        nid = next(n for n in good_schedule.cover
                   if good_schedule.graph.node(n).is_mappable)
        good_schedule.start[nid] = 99.0
        probs = schedule_problems(good_schedule, TUTORIAL4)
        assert any("exceeds" in p for p in probs)

    def test_dependence_violation(self, good_schedule):
        out = good_schedule.graph.outputs[0]
        producer = out.operands[0].source
        good_schedule.cycle[producer] = good_schedule.cycle[out.nid] + 3
        probs = schedule_problems(good_schedule, TUTORIAL4)
        assert any("dependence" in p or "finishes" in p for p in probs)

    def test_recurrence_distance_respected(self):
        sched = MapScheduler(build_recurrent(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        rec = next(n for n in sched.graph if n.attrs.get("recurrence"))
        producer = rec.operands[1].source
        # push the producer absurdly late
        sched.cycle[producer] += 5
        probs = schedule_problems(sched, TUTORIAL4)
        assert probs

    def test_resource_overuse(self):
        from repro.ir import DFGBuilder
        from repro.tech.device import XC7

        b = DFGBuilder("m", width=8)
        addr = b.input("addr", 4)
        l1 = b.load(addr, name="m1")
        l2 = b.load(addr + 1, name="m2")
        b.output(l1 ^ l2, "o")
        g = b.build()
        dev = XC7.with_resources(mem_port=2)
        sched = MapScheduler(g, dev, SchedulerConfig(ii=1, tcp=10.0)).schedule()
        tight = dev.with_resources(mem_port=1)
        probs = schedule_problems(sched, tight)
        assert any("resource" in p for p in probs)

    def test_verify_raises_with_details(self, good_schedule):
        good_schedule.start[next(iter(good_schedule.cover))] = 99.0
        with pytest.raises(ScheduleVerificationError) as err:
            verify_schedule(good_schedule, TUTORIAL4)
        assert err.value.violations

"""Unit + property tests for CDFG transformation passes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.synthetic import random_dfg
from repro.ir import (
    DFGBuilder,
    OpKind,
    balance_reduction_trees,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    rebuild,
)
from repro.sim.functional import FunctionalSimulator


def graph_outputs(graph, stream):
    return FunctionalSimulator(graph).run(stream)


class TestRebuild:
    def test_ids_become_topological(self, recurrent_graph):
        g2, mapping = rebuild(recurrent_graph)
        assert sorted(mapping.values()) == g2.node_ids
        order = g2.topological_order()
        # rebuilt ids are consistent with some topological order
        assert order == sorted(order)

    def test_drop_used_node_rejected(self, fig1_graph):
        from repro.errors import IRError
        used = fig1_graph.outputs[0].operands[0].source
        keep = set(fig1_graph.node_ids) - {used}
        with pytest.raises(IRError, match="cannot drop"):
            rebuild(fig1_graph, keep=keep)


class TestDeadCode:
    def test_removes_unreachable_ops(self):
        b = DFGBuilder("t", width=8)
        i = b.input("i")
        live = i ^ 1
        _dead = i + 2  # never reaches an output
        b.output(live, "o")
        g = b.graph
        g2, _ = eliminate_dead_code(g)
        assert g2.op_histogram().get("add", 0) == 0
        assert g2.op_histogram()["xor"] == 1

    def test_keeps_unused_inputs(self):
        b = DFGBuilder("t", width=8)
        i = b.input("i")
        b.input("unused")
        b.output(i, "o")
        g2, _ = eliminate_dead_code(b.graph)
        assert len(g2.inputs) == 2


class TestConstantFolding:
    def test_folds_pure_constant_expression(self):
        b = DFGBuilder("t", width=8)
        i = b.input("i")
        c = (b.const(3) + b.const(4)) ^ b.const(0xF0)
        b.output(i & c, "o")
        g2, _ = fold_constants(b.build())
        consts = [n.value for n in g2.constants]
        assert 0xF7 in consts
        assert g2.op_histogram().get("add", 0) == 0

    def test_does_not_fold_across_recurrence(self, recurrent_graph):
        before = recurrent_graph.op_histogram()
        g2, _ = fold_constants(recurrent_graph)
        assert g2.op_histogram()["mux"] == before["mux"]

    def test_semantics_preserved(self, fig1_graph, rng):
        stream = [{"s": rng.randrange(4), "t": rng.randrange(4)}
                  for _ in range(16)]
        g2, _ = fold_constants(fig1_graph)
        assert graph_outputs(fig1_graph, stream) == graph_outputs(g2, stream)


class TestCSE:
    def test_merges_commutative_duplicates(self):
        b = DFGBuilder("t", width=8)
        a, c = b.input("a"), b.input("c")
        x = a ^ c
        y = c ^ a
        b.output(x & y, "o")
        g2, _ = eliminate_common_subexpressions(b.build())
        assert g2.op_histogram()["xor"] == 1

    def test_does_not_merge_different_amounts(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a")
        b.output((a >> 1) ^ (a >> 2), "o")
        g2, _ = eliminate_common_subexpressions(b.build())
        assert g2.op_histogram()["shr"] == 2

    def test_blackboxes_never_merge(self):
        b = DFGBuilder("t", width=8)
        addr = b.input("addr", 4)
        l1 = b.load(addr, name="m")
        l2 = b.load(addr, name="m")
        b.output(l1 ^ l2, "o")
        g2, _ = eliminate_common_subexpressions(b.build())
        assert g2.op_histogram()["load"] == 2

    def test_different_initials_never_merge(self):
        # Structurally identical NOTs, but one's value is also read at
        # distance 1 and resolves its "initial" on the first iteration:
        # merging them would silently replace that initial (seed 47828 of
        # test_property_passes_preserve_semantics).
        from repro.ir.graph import CDFG
        from repro.ir.node import Operand
        from repro.ir.types import OpKind

        g = CDFG("t")
        a = g.add_node(OpKind.INPUT, 8, name="a")
        n1 = g.add_node(OpKind.NOT, 8, operands=[a.nid])
        n2 = g.add_node(OpKind.NOT, 8, operands=[a.nid],
                        attrs={"initial": 175})
        x = g.add_node(OpKind.XOR, 8,
                       operands=[Operand(n1.nid), Operand(n2.nid, 1)])
        g.add_node(OpKind.OUTPUT, 8, operands=[x.nid], name="o")
        g2, _ = eliminate_common_subexpressions(g)
        assert g2.op_histogram()["not"] == 2
        stream = [{"a": v} for v in (3, 200, 77)]
        assert graph_outputs(g, stream) == graph_outputs(g2, stream)


class TestBalancing:
    def test_chain_becomes_log_depth(self):
        b = DFGBuilder("t", width=8)
        ins = [b.input(f"i{k}") for k in range(8)]
        acc = ins[0]
        for v in ins[1:]:
            acc = acc ^ v
        b.output(acc, "o")
        g2, _ = balance_reduction_trees(b.build())

        depth = {}
        for nid in g2.topological_order():
            node = g2.node(nid)
            depth[nid] = 1 + max(
                (depth[op.source] for op in node.operands
                 if op.distance == 0), default=0,
            )
        xor_depths = [depth[n.nid] for n in g2 if n.kind is OpKind.XOR]
        assert max(xor_depths) - min(xor_depths) == 2  # log2(8) - 1

    def test_multi_fanout_link_not_collapsed(self):
        b = DFGBuilder("t", width=8)
        i1, i2, i3 = (b.input(f"i{k}") for k in range(3))
        mid = i1 ^ i2
        top = mid ^ i3
        b.output(top, "o")
        b.output(mid, "mid")  # mid has external fanout
        g2, _ = balance_reduction_trees(b.build())
        assert g2.op_histogram()["xor"] == 2

    def test_semantics_preserved(self, rng):
        b = DFGBuilder("t", width=16)
        ins = [b.input(f"i{k}", 16) for k in range(13)]
        acc = ins[0]
        for v in ins[1:]:
            acc = acc ^ v
        b.output(acc, "o")
        g = b.build()
        g2, _ = balance_reduction_trees(g)
        stream = [{f"i{k}": rng.randrange(1 << 16) for k in range(13)}
                  for _ in range(8)]
        assert graph_outputs(g, stream) == graph_outputs(g2, stream)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_passes_preserve_semantics(seed):
    """DCE + folding + CSE never change observable behaviour."""
    g = random_dfg(seed, ops=15, width=8, inputs=3, recurrences=1)
    rng = random.Random(seed + 1)
    stream = [
        {f"i{k}": rng.randrange(256) for k in range(3)} for _ in range(10)
    ]
    golden = graph_outputs(g, stream)
    for transform in (eliminate_dead_code, fold_constants,
                      eliminate_common_subexpressions,
                      balance_reduction_trees):
        g, _ = transform(g)
        assert graph_outputs(g, stream) == golden, transform.__name__

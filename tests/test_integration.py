"""End-to-end integration and property tests.

The central invariant of the whole system: for any valid kernel, every flow
(hls-tool, milp-base, milp-map) produces a schedule that (a) passes the
independent static verifier, (b) replays cycle-accurately to the functional
reference, and (c) emits lint-clean Verilog — and milp-map is never worse
than milp-base on the MILP objective's own terms.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BaseScheduler, MapScheduler, SchedulerConfig, schedule_problems
from repro.designs import BENCHMARKS, random_dfg
from repro.errors import SchedulingError
from repro.experiments import run_flow
from repro.hw import evaluate
from repro.rtl import emit_verilog, lint_verilog
from repro.sim import replay_equivalent
from repro.tech.device import XC7


FAST = SchedulerConfig(ii=1, tcp=10.0, time_limit=20, max_cuts=6)


def random_stream(seed: int, inputs: int, width: int, n: int):
    rng = random.Random(seed)
    return [
        {f"i{k}": rng.randrange(1 << width) for k in range(inputs)}
        for _ in range(n)
    ]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_all_flows_verified_and_equivalent(seed):
    stream = random_stream(seed, inputs=3, width=8, n=12)
    for method in ("hls-tool", "milp-base", "milp-map", "heur-map"):
        graph = random_dfg(seed, ops=10, width=8, inputs=3, recurrences=1)
        try:
            flow = run_flow(graph, method, XC7, FAST)
        except SchedulingError:
            # additive delays may make II=1 genuinely infeasible for the
            # MILPs while the heuristic bumps the II; that asymmetry is the
            # paper's point, not a bug
            continue
        sched = flow.schedule
        assert schedule_problems(sched, XC7) == [], method
        assert replay_equivalent(sched, XC7, stream), method
        if sched.ii == 1:
            assert lint_verilog(emit_verilog(sched)) == [], method


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_map_objective_never_worse_than_base(seed):
    """MILP-map's feasible set contains MILP-base's (unit cuts are always
    selectable), so at optimality its objective is <= MILP-base's."""
    g1 = random_dfg(seed, ops=8, width=4, inputs=2, recurrences=0)
    g2 = random_dfg(seed, ops=8, width=4, inputs=2, recurrences=0)
    try:
        s_base = BaseScheduler(g1, XC7, FAST).schedule()
        s_map = MapScheduler(g2, XC7, FAST).schedule()
    except SchedulingError:
        return
    if s_base.optimal and s_map.optimal:
        assert s_map.objective <= s_base.objective + 1e-6


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_hls_flow_end_to_end(name):
    """The baseline flow handles all nine designs with verified, replayable
    results (the MILP flows are exercised design-by-design in the
    experiments suite; here we keep CI time modest)."""
    spec = BENCHMARKS[name]
    flow = run_flow(spec.build(), "hls-tool", XC7,
                    SchedulerConfig(ii=1, tcp=10.0), design=name)
    assert schedule_problems(flow.schedule, XC7) == []
    stream = spec.input_stream(seed=3, n=12)
    assert replay_equivalent(flow.schedule, XC7, stream,
                             env_factory=lambda: spec.make_env(1))
    report = evaluate(flow.schedule, XC7, design=name)
    assert report.cp <= 10.0 + 1e-6


@pytest.mark.parametrize("name", ["GFMUL", "MT", "GSM", "RS"])
def test_benchmark_map_flow_end_to_end(name):
    """MILP-map on the fast-solving designs: verified, replayable, and at
    least as register-lean as the commercial proxy."""
    spec = BENCHMARKS[name]
    cfg = SchedulerConfig(ii=1, tcp=10.0, time_limit=60)
    tool = run_flow(spec.build(), "hls-tool", XC7, cfg, design=name)
    mapped = run_flow(spec.build(), "milp-map", XC7, cfg, design=name)
    stream = spec.input_stream(seed=3, n=12)
    assert replay_equivalent(mapped.schedule, XC7, stream,
                             env_factory=lambda: spec.make_env(1))
    assert mapped.report.ffs <= tool.report.ffs
    assert mapped.schedule.latency <= tool.schedule.latency
    assert lint_verilog(emit_verilog(mapped.schedule)) == []


def test_back_annotation_round_trip():
    """The Sec. 4 setup: run the tool, parse its report, back-annotate
    black-box delays, then schedule with the MILP."""
    from repro.hls import CommercialHLSProxy, back_annotate

    spec = BENCHMARKS["MT"]
    g = spec.build()
    result = CommercialHLSProxy(g, XC7, tcp=10.0).run()
    g2 = spec.build()
    count = back_annotate(g2, result.report, blackbox_only=True)
    assert count == 3  # the three state-table ports
    sched = MapScheduler(g2, XC7,
                         SchedulerConfig(ii=1, tcp=10.0, time_limit=30)).schedule()
    assert schedule_problems(sched, XC7) == []


def test_regression_interior_boundary_overlap():
    """Seed 3505 once produced a cut whose cone recomputed a node that also
    entered as a registered boundary; the dropped co-timing let the MILP
    schedule the cone before the duplicated logic's inputs arrived."""
    g = random_dfg(3505, ops=10, width=8, inputs=3, recurrences=1)
    flow = run_flow(g, "milp-map", XC7, FAST)
    stream = random_stream(3505, inputs=3, width=8, n=12)
    assert schedule_problems(flow.schedule, XC7) == []
    assert replay_equivalent(flow.schedule, XC7, stream)

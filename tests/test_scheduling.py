"""Unit tests for the scheduling substrate (SDC, ASAP/ALAP, MII, MRT,
heuristic modulo scheduler)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.ir import DFGBuilder
from repro.scheduling import (
    HeuristicModuloScheduler,
    ModuloReservationTable,
    SDCSystem,
    alap_schedule,
    asap_schedule,
    minimum_ii,
    rec_mii,
    res_mii,
)
from repro.tech.device import TUTORIAL4, XC7, Device


class TestSDC:
    def test_basic_feasible_chain(self):
        sdc = SDCSystem()
        assert sdc.add("a", "b", -1)  # a >= b + 1  (x_a - x_b <= -1 means b-a>=1... )
        assert sdc.add("b", "c", -1)
        vals = sdc.values()
        assert vals["a"] <= vals["b"] - 1 <= vals["c"] - 2

    def test_negative_cycle_rejected_and_rolled_back(self):
        sdc = SDCSystem()
        assert sdc.add("a", "b", 2)
        before = sdc.values()
        assert not sdc.add("b", "a", -3)
        assert sdc.values() == before
        # system still usable afterwards
        assert sdc.add("b", "a", -2)

    def test_tightening_existing_edge(self):
        sdc = SDCSystem()
        assert sdc.add("a", "b", 5)
        assert sdc.add("a", "b", 2)  # tighter
        assert sdc.add("a", "b", 9)  # weaker: no-op
        assert not sdc.add("b", "a", -3)

    def test_require_raises(self):
        sdc = SDCSystem()
        sdc.require("a", "b", 0)
        with pytest.raises(SchedulingError):
            sdc.require("b", "a", -1)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_solution_satisfies_all_constraints(self, seed):
        import random

        rng = random.Random(seed)
        sdc = SDCSystem()
        accepted = []
        for _ in range(25):
            u = rng.randrange(6)
            v = rng.randrange(6)
            if u == v:
                continue
            c = rng.randint(-3, 6)
            if sdc.add(u, v, c):
                accepted.append((u, v, c))
        vals = sdc.values()
        for u, v, c in accepted:
            assert vals[u] - vals[v] <= c + 1e-9


def chain_graph(n=5, width=8):
    b = DFGBuilder("chain", width=width)
    v = b.input("i")
    for _ in range(n):
        v = v ^ 1
    b.output(v, "o")
    return b.build()


class TestAsapAlap:
    def test_asap_packs_by_budget(self):
        g = chain_graph(5)
        # each XOR is 1.4ns on XC7; 5 ops = 7ns fits a 8.75 budget
        times = asap_schedule(g, lambda nid: 1.4 if g.node(nid).kind.value == "xor" else 0.0, 8.75)
        assert times.latency == 1

    def test_asap_splits_when_budget_small(self):
        g = chain_graph(5)
        times = asap_schedule(g, lambda nid: 1.4 if g.node(nid).kind.value == "xor" else 0.0, 3.0)
        assert times.latency == 3  # two xors per 3ns cycle

    def test_alap_no_earlier_than_asap(self):
        g = chain_graph(7)

        def d(nid):
            return 1.4 if g.node(nid).kind.value == "xor" else 0.0

        asap = asap_schedule(g, d, 4.0)
        alap = alap_schedule(g, d, 4.0)
        assert alap.latency == asap.latency
        for nid in g.node_ids:
            assert asap.cycle[nid] <= alap.cycle[nid]

    def test_oversized_delay_raises(self):
        g = chain_graph(1)
        with pytest.raises(SchedulingError, match="delay"):
            asap_schedule(g, lambda nid: 10.0, 5.0)


class TestMII:
    def test_res_mii_counts_ports(self):
        b = DFGBuilder("m", width=8)
        addr = b.input("addr", 4)
        l1 = b.load(addr, name="m1")
        l2 = b.load(addr + 1, name="m2")
        l3 = b.load(addr + 2, name="m3")
        b.output(l1 ^ l2 ^ l3, "o")
        g = b.build()
        assert res_mii(g, XC7) == 1  # unconstrained
        dev = XC7.with_resources(mem_port=2)
        assert res_mii(g, dev) == 2

    def test_rec_mii_from_loop_delay(self, recurrent_graph):
        # loop: acc -> mux -> acc with distance 1
        big = rec_mii(recurrent_graph, lambda nid: 5.0, tcp=8.0)
        assert big >= 2
        small = rec_mii(recurrent_graph, lambda nid: 0.5, tcp=8.0)
        assert small == 1

    def test_minimum_ii_is_max(self, recurrent_graph):
        assert minimum_ii(recurrent_graph, XC7, lambda nid: 0.5, 8.0) == 1


class TestMRT:
    def test_capacity_enforced(self):
        mrt = ModuloReservationTable(2, {"mem": 1})
        mrt.place(1, "mem", 0)
        assert not mrt.fits("mem", 2)  # 2 mod 2 == 0
        assert mrt.fits("mem", 1)
        with pytest.raises(SchedulingError, match="full"):
            mrt.place(2, "mem", 0)

    def test_remove_for_backtracking(self):
        mrt = ModuloReservationTable(1, {"mem": 1})
        mrt.place(1, "mem", 0)
        mrt.remove(1)
        mrt.place(2, "mem", 5)
        assert mrt.usage() == {"mem": 1}

    def test_double_place_rejected(self):
        mrt = ModuloReservationTable(1, {})
        mrt.place(1, "mem", 0)
        with pytest.raises(SchedulingError, match="already placed"):
            mrt.place(1, "mem", 1)

    def test_bad_ii(self):
        with pytest.raises(SchedulingError):
            ModuloReservationTable(0)


class TestHeuristicScheduler:
    def test_achieves_ii1_on_feedforward(self, fig1_graph):
        sched = HeuristicModuloScheduler(fig1_graph, TUTORIAL4, 5.0).schedule(1)
        assert sched.ii == 1
        assert sched.latency >= 1

    def test_bumps_ii_for_slow_recurrence(self, recurrent_graph):
        # the loop xor + mux chain is 11 ns > the 10 ns period -> II 2
        slow = Device(name="slow", lut_delay=5.0, net_delay=0.5,
                      carry_base=4.0, carry_per_bit=0.1,
                      clock_uncertainty=0.0)
        sched = HeuristicModuloScheduler(recurrent_graph, slow, 10.0).schedule(1)
        assert sched.ii >= 2

    def test_resource_constrained_modulo_placement(self):
        b = DFGBuilder("m", width=8)
        addr = b.input("addr", 4)
        loads = [b.load(addr + k, name=f"m{k}") for k in range(4)]
        acc = loads[0]
        for v in loads[1:]:
            acc = acc ^ v
        b.output(acc, "o")
        g = b.build()
        dev = XC7.with_resources(mem_port=2)
        sched = HeuristicModuloScheduler(g, dev, 10.0).schedule(1)
        assert sched.ii == 2  # 4 loads / 2 ports
        # at most 2 loads per modulo slot
        slots = {}
        for node in g:
            if node.is_blackbox:
                s = sched.cycle[node.nid] % sched.ii
                slots[s] = slots.get(s, 0) + 1
        assert all(v <= 2 for v in slots.values())

    def test_recurrence_consumer_delayed_not_ii_bumped(self):
        # a long feedforward chain feeding a short recurrence: the phi
        # should move later instead of blowing up the II
        b = DFGBuilder("t", width=8)
        x = b.input("x")
        v = x
        for _ in range(10):
            v = v ^ 1  # 14 ns of additive logic -> 2 cycles at 8.75
        best = b.recurrence("best", width=8, initial=0)
        upd = b.mux(v.sge(0), v, best)
        upd.feed(best)
        b.output(upd, "o")
        g = b.build()
        sched = HeuristicModuloScheduler(g, XC7, 10.0).schedule(1)
        assert sched.ii == 1
        rec = next(n for n in g if n.attrs.get("recurrence"))
        # the phi moved later in time instead of the II exploding
        assert sched.cycle[rec.nid] * sched.tcp + sched.start[rec.nid] > 0

    def test_schedule_describe_smoke(self, fig1_graph):
        sched = HeuristicModuloScheduler(fig1_graph, TUTORIAL4, 5.0).schedule(1)
        text = sched.describe()
        assert "cycle 0" in text and "hls-tool" in text

"""Tests for the scalable mapping-aware heuristic (the future-work system)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    MapScheduler,
    MappingAwareHeuristicScheduler,
    SchedulerConfig,
    schedule_problems,
)
from repro.designs import BENCHMARKS, random_dfg
from repro.errors import SchedulingError
from repro.hw import evaluate
from repro.sim import replay_equivalent
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent

CFG = SchedulerConfig(ii=1, tcp=10.0, time_limit=30)


class TestHeuristicMapper:
    def test_schedule_verifies(self):
        sched = MappingAwareHeuristicScheduler(build_fig1(), XC7, CFG).schedule()
        assert schedule_problems(sched, XC7) == []
        assert sched.method == "heur-map"

    def test_interiors_cotimed(self):
        sched = MappingAwareHeuristicScheduler(
            build_recurrent(), XC7, CFG).schedule()
        for nid, cut in sched.cover.items():
            for w in cut.interior:
                assert sched.cycle[w] == sched.cycle[nid]
                assert sched.start[w] == sched.start[nid]

    def test_cover_fanout_free(self):
        g = build_recurrent()
        sched = MappingAwareHeuristicScheduler(g, XC7, CFG).schedule()
        for nid, cut in sched.cover.items():
            inside = cut.interior | {nid}
            for w in cut.interior:
                for use in g.uses(w):
                    assert use.consumer in inside

    def test_matches_milp_on_figure1(self):
        cfg = SchedulerConfig(ii=1, tcp=5.0, time_limit=30)
        heur = MappingAwareHeuristicScheduler(
            build_fig1(), TUTORIAL4, cfg).schedule()
        milp = MapScheduler(build_fig1(), TUTORIAL4, cfg).schedule()
        assert heur.latency == milp.latency == 1

    def test_sees_through_lut_packing(self):
        """On a deep xor tree the additive tool needs 2+ stages; the
        heuristic, like MILP-map, fits one."""
        from repro.designs import build_xorr
        from repro.hls import CommercialHLSProxy

        tool = CommercialHLSProxy(build_xorr(), XC7, tcp=10.0).run()
        heur = MappingAwareHeuristicScheduler(
            build_xorr(), XC7, CFG).schedule()
        assert tool.schedule.latency > heur.latency == 1

    @pytest.mark.parametrize("name", ["MT", "GSM", "RS"])
    def test_benchmarks_replay(self, name):
        spec = BENCHMARKS[name]
        sched = MappingAwareHeuristicScheduler(
            spec.build(), XC7, CFG).schedule()
        stream = spec.input_stream(seed=11, n=10)
        assert replay_equivalent(sched, XC7, stream,
                                 env_factory=lambda: spec.make_env(1))

    def test_quality_between_tool_and_milp(self):
        """FF usage: heur-map <= hls-tool (both heuristic; heur sees
        mapping), and >= milp-map (which is exact)."""
        from repro.experiments import run_flow

        name = "MT"
        spec = BENCHMARKS[name]
        tool = run_flow(spec.build(), "hls-tool", XC7, CFG)
        heur = run_flow(spec.build(), "heur-map", XC7, CFG)
        milp = run_flow(spec.build(), "milp-map", XC7, CFG)
        assert milp.report.ffs <= heur.report.ffs <= tool.report.ffs


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_heuristic_always_verified(seed):
    g = random_dfg(seed, ops=12, width=8, inputs=3, recurrences=1)
    try:
        sched = MappingAwareHeuristicScheduler(g, XC7, CFG).schedule()
    except SchedulingError:
        return
    assert schedule_problems(sched, XC7) == []
    report = evaluate(sched, XC7)
    assert report.cp <= CFG.tcp + 1e-6

"""Unit + property tests for bit-level dependence tracking (Sec. 3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitdeps import SupportCalculator, dep_bits, popcount, word_dep_sources
from repro.designs.synthetic import random_dfg
from repro.errors import CutError
from repro.ir import DFGBuilder, OpKind


def build(width=4):
    return DFGBuilder("t", width=width)


class TestDepFunctions:
    def test_bitwise_same_index(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        v = (a ^ c).node
        deps = dep_bits(b.graph, v, 2)
        assert {(d.slot, d.bit) for d in deps} == {(0, 2), (1, 2)}

    def test_not_single_input(self):
        b = build()
        a = b.input("a")
        v = (~a).node
        assert [(d.slot, d.bit) for d in dep_bits(b.graph, v, 1)] == [(0, 1)]

    def test_mux_reads_select_bit(self):
        b = build()
        sel = b.input("sel", 1)
        a, c = b.input("a"), b.input("c")
        v = b.mux(sel, a, c).node
        deps = {(d.slot, d.bit) for d in dep_bits(b.graph, v, 3)}
        assert deps == {(0, 0), (1, 3), (2, 3)}

    def test_shr_reindexes(self):
        b = build()
        a = b.input("a")
        v = (a >> 1).node
        assert [(d.slot, d.bit) for d in dep_bits(b.graph, v, 0)] == [(0, 1)]
        # top bit shifted in from nowhere -> no deps
        assert dep_bits(b.graph, v, 3) == []

    def test_shl_zero_fill(self):
        b = build()
        a = b.input("a")
        v = (a << 2).node
        assert dep_bits(b.graph, v, 1) == []
        assert [(d.slot, d.bit) for d in dep_bits(b.graph, v, 3)] == [(0, 1)]

    def test_add_carry_range(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        v = (a + c).node
        deps = {(d.slot, d.bit) for d in dep_bits(b.graph, v, 2)}
        assert deps == {(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)}

    def test_sign_test_refinement(self):
        b = build()
        a = b.input("a")
        v = a.sge(0).node
        deps = [(d.slot, d.bit) for d in dep_bits(b.graph, v, 0)]
        assert deps == [(0, 3)]  # only the MSB of a

    def test_sign_test_refinement_symmetric(self):
        b = build()
        a = b.input("a")
        zero = b.const(0)
        v = b.op(OpKind.SLT, zero, a, width=1).node
        deps = [(d.slot, d.bit) for d in dep_bits(b.graph, v, 0)]
        assert deps == [(1, 3)]

    def test_general_compare_reads_everything(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        v = a.lt(c).node
        assert len(dep_bits(b.graph, v, 0)) == 8

    def test_concat_and_slice(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        v = b.concat(a, c).node  # {a, c}: low half is c
        assert [(d.slot, d.bit) for d in dep_bits(b.graph, v, 1)] == [(0, 1)]
        assert [(d.slot, d.bit) for d in dep_bits(b.graph, v, 5)] == [(1, 1)]

    def test_blackbox_rejected(self):
        b = build()
        addr = b.input("addr")
        v = b.load(addr).node
        with pytest.raises(CutError, match="black-box"):
            dep_bits(b.graph, v, 0)

    def test_word_dep_sources(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        v = b.mux(a.bit(0), a, c).node
        assert word_dep_sources(b.graph, v) == [0, 1, 2]


class TestSupportCalculator:
    def test_leaf_masks_identity(self):
        b = build()
        a = b.input("a")
        b.output(a, "o")
        calc = SupportCalculator(b.build())
        masks = calc.leaf_masks(a.nid)
        assert [popcount(m) for m in masks] == [1, 1, 1, 1]
        assert calc.decode(masks[2]) == [(a.nid, 0, 2)]

    def test_distance_blocks_are_distinct(self):
        b = build()
        i = b.input("i")
        r = b.recurrence("r")
        v = i ^ r
        v.feed(r)
        b.output(v, "o")
        g = b.build()
        calc = SupportCalculator(g)
        m0 = calc.leaf_masks(v.nid, 0)
        m1 = calc.leaf_masks(v.nid, 1)
        assert all(a & c == 0 for a, c in zip(m0, m1))

    def test_supports_through_cone(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        x = (a >> 1) ^ c
        b.output(x, "o")
        g = b.build()
        calc = SupportCalculator(g)
        supp = calc.supports(x.nid, [a.nid, c.nid])
        # bit 0 of x reads a[1] and c[0]
        assert set(calc.decode(supp[0])) == {(a.nid, 0, 1), (c.nid, 0, 0)}
        # top bit only reads c (a shifted out)
        assert set(calc.decode(supp[3])) == {(c.nid, 0, 3)}

    def test_constants_are_free(self):
        b = build()
        a = b.input("a")
        x = a ^ b.const(5)
        b.output(x, "o")
        g = b.build()
        calc = SupportCalculator(g)
        assert calc.max_support(x.nid, [a.nid]) == 1

    def test_boundary_must_enclose(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        x = a ^ c
        b.output(x, "o")
        g = b.build()
        calc = SupportCalculator(g)
        with pytest.raises(CutError, match="does not enclose"):
            calc.supports(x.nid, [a.nid])  # c not in boundary, is an input

    def test_loop_carried_edge_blocks_cone(self, recurrent_graph):
        g = recurrent_graph
        calc = SupportCalculator(g)
        # find the recurrence node and its producer
        rec = next(n for n in g if n.attrs.get("recurrence"))
        producer = rec.operands[1].source
        with pytest.raises(CutError, match="loop-carried"):
            calc.supports(rec.nid, [g.node(producer).operands[0].source])

    def test_k_feasibility(self):
        b = build()
        a, c = b.input("a"), b.input("c")
        x = a + c
        b.output(x, "o")
        g = b.build()
        calc = SupportCalculator(g)
        assert calc.is_k_feasible(x.nid, [a.nid, c.nid], k=8)
        assert not calc.is_k_feasible(x.nid, [a.nid, c.nid], k=4)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_support_consistent_with_flip_simulation(seed):
    """Bit-support over-approximates true sensitivity: flipping a bit
    outside the support never changes the output bit."""
    import random

    from repro.sim.functional import FunctionalSimulator

    g = random_dfg(seed, ops=10, width=4, inputs=2, recurrences=0,
                   allow_arith=True)
    calc = SupportCalculator(g)
    out = g.outputs[0]
    target = out.operands[0].source
    if g.node(target).kind.value in ("input", "const"):
        return
    boundary = [n.nid for n in g.inputs]
    try:
        supports = calc.supports(target, boundary)
    except CutError:
        return
    rng = random.Random(seed)
    base_inputs = {f"i{k}": rng.randrange(16) for k in range(2)}

    def run(inputs):
        sim = FunctionalSimulator(g)
        sim.step(inputs)
        return sim.values_at(0)[target]

    base_val = run(base_inputs)
    for inp_idx, inp in enumerate(g.inputs):
        for bit in range(inp.width):
            flipped = dict(base_inputs)
            flipped[inp.name] = flipped[inp.name] ^ (1 << bit)
            new_val = run(flipped)
            gbit = 1 << calc.global_index(inp.nid, bit)
            for j in range(g.node(target).width):
                if not supports[j] & gbit:
                    assert ((base_val >> j) & 1) == ((new_val >> j) & 1), (
                        f"bit {j} of node {target} changed when flipping "
                        f"{inp.name}[{bit}] outside its support"
                    )

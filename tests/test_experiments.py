"""Tests for the experiment harnesses (Table 1/2, Figures 1/2, ablations)."""

import pytest

from repro.core import SchedulerConfig
from repro.errors import ExperimentError
from repro.experiments import (
    METHODS,
    build_figure1_kernel,
    build_figure2_kernel,
    format_figure1,
    format_figure2,
    format_k_sweep,
    format_table1,
    format_table2,
    percent,
    render_table,
    run_figure1,
    run_figure2,
    run_flow,
    run_table1,
    run_table2,
    sweep_k,
)
from repro.tech.device import TUTORIAL4, XC7


class TestReporting:
    def test_percent_formatting(self):
        assert percent(50, 100) == "(-50.0%)"
        assert percent(110, 100) == "(+10.0%)"
        assert percent(0, 0) == "(+0.0%)"
        assert percent(5, 0) == "(n/a)"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-+-" in lines[2]
        assert len({len(line) for line in lines[1:]}) <= 2


class TestFlows:
    def test_unknown_method_rejected(self, fig1_graph):
        with pytest.raises(ExperimentError, match="unknown method"):
            run_flow(fig1_graph, "vivado", XC7)

    @pytest.mark.parametrize("method", METHODS)
    def test_each_method_produces_verified_hw(self, method, fast_config):
        flow = run_flow(build_figure1_kernel(), method, TUTORIAL4,
                        SchedulerConfig(ii=1, tcp=5.0, time_limit=30))
        assert flow.report.luts >= 0
        assert flow.report.cp <= 5.0
        assert flow.schedule.cover


class TestFigure1:
    def test_map_beats_tool_on_stages_and_luts(self):
        result = run_figure1()
        tool = result.reports["hls-tool"]
        mapped = result.reports["milp-map"]
        assert result.schedules["milp-map"].latency == 1
        assert result.schedules["hls-tool"].latency > 1
        assert mapped.luts < tool.luts
        assert mapped.ffs == 0

    def test_formatting_mentions_both_flows(self):
        text = format_figure1(run_figure1())
        assert "HLS tool" in text and "mapping-aware" in text
        assert "LUT" in text

    def test_dot_outputs_produced(self):
        result = run_figure1()
        for dot in result.dots.values():
            assert dot.startswith("digraph")


class TestFigure2:
    def test_kernel_matches_paper_structure(self):
        g = build_figure2_kernel()
        names = {n.name for n in g if n.name}
        assert {"A", "B", "C", "D", "E"} <= names

    def test_sign_bit_refinement_found(self):
        result = run_figure2()
        sge = next(n for n in result.kernel if n.kind.value == "sge")
        assert any(c.max_support == 1
                   for c in result.cuts[sge.nid].selectable)

    def test_loop_boundary_entries(self):
        result = run_figure2()
        mux = next(n for n in result.kernel if n.kind.value == "mux")
        assert any(
            any(d >= 1 for _, d in cut.entries)
            for cut in result.cuts[mux.nid].selectable
        )

    def test_formatting(self):
        text = format_figure2(run_figure2())
        assert "sign-test refinement" in text
        assert "selectable cuts" in text


class TestTables:
    def test_table1_on_small_subset(self):
        config = SchedulerConfig(ii=1, tcp=10.0, time_limit=30)
        result = run_table1(designs=["GFMUL"], config=config,
                            replay_iterations=8)
        assert len(result.rows) == 3
        assert all(r.replay_ok for r in result.rows)
        per = result.rows_for("GFMUL")
        assert per["milp-map"].report.ffs <= per["hls-tool"].report.ffs
        text = format_table1(result)
        assert "GFMUL" in text and "MILP-map" in text and "%" in text

    def test_table1_rejects_unknown_design(self):
        with pytest.raises(ExperimentError):
            run_table1(designs=["BOGUS"])

    def test_table2_on_small_subset(self):
        config = SchedulerConfig(ii=1, tcp=10.0, time_limit=30)
        result = run_table2(designs=["GFMUL"], config=config)
        row = result.rows[0]
        assert row.map_constraints > row.base_constraints
        assert row.num_ops > 0
        text = format_table2(result)
        assert "GFMUL" in text and "Mean" in text


class TestAblations:
    def test_k_sweep_counts_grow_with_k(self):
        points = sweep_k(designs=["GFMUL"], ks=[2, 4, 6])
        by_k = {p.k: p.cuts for p in points}
        assert by_k[2] <= by_k[4] <= by_k[6]
        assert "Ablation C" in format_k_sweep(points)

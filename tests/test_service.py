"""End-to-end tests for the scheduling-as-a-service stack
(:mod:`repro.service`): protocol validation, submit→poll→result parity
with serial ``run_flow``, in-flight dedupe, cancellation, per-client
quotas and bounded-queue backpressure, NDJSON event streaming over real
HTTP, deterministic fault injection (worker crash, slow solve, corrupt
cache entry), and the fuzz-sourced load-generator oracle.

Everything is deterministic: jobs are pinned in precise states with
:class:`FaultPlan` events (never sleeps), and the load oracle replays
fuzz seeds byte-for-byte against serial flows.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.config import SchedulerConfig
from repro.designs.registry import BENCHMARKS
from repro.errors import (
    FlowCancelled,
    ProtocolError,
    QuotaExceeded,
    ServiceBusy,
)
from repro.experiments import run_flow
from repro.fuzz.generate import generate_graph, profile_for_seed
from repro.ir.serialize import schedule_to_dict
from repro.service import (
    FaultPlan,
    InProcessClient,
    SchedulingService,
    ServiceClient,
    ServiceServer,
    canonical_result_json,
    job_payload,
    parse_request,
    run_load,
)
from repro.service.loadgen import load_payload

FAST = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8)
FAST_CONFIG = {"ii": 1, "tcp": 10.0, "time_limit": 30.0, "max_cuts": 8}

#: submit→poll→result parity subjects: the three fastest Table 1 designs.
PARITY_DESIGNS = ("GSM", "DR", "CLZ")


def _payload(design: str, method: str = "milp-map",
             client: str = "tests", **extra):
    return job_payload(design=design, method=method, config=FAST_CONFIG,
                       client=client, **extra)


def _serial_canonical(design: str, method: str = "milp-map") -> str:
    flow = run_flow(BENCHMARKS[design].build(), method, config=FAST,
                    design=design)
    return canonical_result_json({
        "schedule": schedule_to_dict(flow.schedule),
        "report": flow.report.to_dict(),
    })


def _wait_state(service, job_id: str, state: str,
                timeout: float = 30.0) -> None:
    """Poll until the job reaches ``state`` (pins fault-gated jobs)."""
    deadline = time.time() + timeout
    while service.get(job_id).state != state:
        assert time.time() < deadline, \
            f"{job_id} never reached {state!r}"
        time.sleep(0.005)


# ----------------------------------------------------------------------
# Protocol validation
# ----------------------------------------------------------------------
def test_parse_request_accepts_minimal_design_payload():
    request = parse_request({"design": "GSM"})
    assert request.design == "GSM"
    assert request.method == "milp-map"
    assert request.client == "anonymous"
    assert request.lint is True
    assert request.time_budget is None


@pytest.mark.parametrize("payload, match", [
    ("not a dict", "JSON object"),
    ({"schema": "repro-service/v99", "design": "GSM"}, "unsupported schema"),
    ({"design": "GSM", "method": "magic"}, "unknown method"),
    ({}, "exactly one of"),
    ({"design": "GSM", "graph": {"nodes": []}}, "exactly one of"),
    ({"design": "NOPE"}, "unknown design"),
    ({"graph": {"bogus": True}}, "invalid graph"),
    ({"design": "GSM", "device": "asic"}, "unknown device"),
    ({"design": "GSM", "config": {"max_cutz": 8}}, "unknown config field"),
    ({"design": "GSM", "config": []}, "config must be"),
    ({"design": "GSM", "lint": "yes"}, "lint must be"),
    ({"design": "GSM", "time_budget": -1}, "time_budget"),
    ({"design": "GSM", "client": ""}, "client"),
])
def test_parse_request_rejects_malformed_payloads(payload, match):
    with pytest.raises(ProtocolError, match=match):
        parse_request(payload)


def test_canonical_result_json_strips_wall_clock():
    canonical = canonical_result_json({
        "schedule": {"ii": 1, "solve_seconds": 1.23},
        "report": {"luts": 4, "solve_seconds": 4.56},
    })
    assert "solve_seconds" not in canonical
    assert json.loads(canonical) == {"schedule": {"ii": 1},
                                     "report": {"luts": 4}}


# ----------------------------------------------------------------------
# Submit -> poll -> result parity with serial run_flow
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def parity_results():
    """Run the parity designs once through a shared two-shard service."""
    with SchedulingService(workers=2) as service:
        client = InProcessClient(service)
        docs = {}
        for design in PARITY_DESIGNS:
            status, doc = client.submit(_payload(design))
            assert status == 202
            docs[design] = doc["id"]
        return {design: client.wait(job_id, timeout=120)
                for design, job_id in docs.items()}


@pytest.mark.parametrize("design", PARITY_DESIGNS)
def test_service_result_matches_serial_run_flow(parity_results, design):
    document = parity_results[design]
    assert document["state"] == "done"
    assert canonical_result_json(document["result"]) \
        == _serial_canonical(design)


def test_job_document_carries_lifecycle_fields(parity_results):
    document = parity_results["GSM"]
    assert document["schema"] == "repro-service/v1"
    assert document["client"] == "tests"
    assert len(document["fingerprint"]) == 64
    assert document["attempts"] == 1
    assert document["created"] <= document["started"] \
        <= document["finished"]
    # Phase events bracket every traced phase, in order.
    result = document["result"]
    assert result["cached"] is False
    assert any(s["name"] == "solve" for s in result["spans"])


# ----------------------------------------------------------------------
# Dedupe: one solve no matter how many clients ask
# ----------------------------------------------------------------------
def test_inflight_dedupe_single_solve():
    gate = threading.Event()
    with SchedulingService(workers=1,
                           faults=FaultPlan(hold_start=gate)) as service:
        client = InProcessClient(service)
        status, first = client.submit(_payload("CLZ", client="alice"))
        assert status == 202 and not first["deduped"]
        # The job is pinned before its flow starts; same-fingerprint
        # submissions from other clients join it instead of queueing.
        for name in ("bob", "carol"):
            status, doc = client.submit(_payload("CLZ", client=name))
            assert status == 200
            assert doc["deduped"] and doc["id"] == first["id"]
        gate.set()
        final = client.wait(first["id"], timeout=60)
    assert final["state"] == "done"
    assert final["submissions"] == 3
    stats = service.stats()
    assert stats["accepted"] == 1 and stats["deduped"] == 2
    # Exactly one solve ever ran: every solve span in the result is
    # fresh, and there is exactly one per MILP (CLZ is unpartitioned).
    solves = [s for s in final["result"]["spans"]
              if s["name"] == "solve" and not s["cached"]]
    assert len(solves) == 1


def test_warm_cache_and_dedupe_compose(tmp_path):
    with SchedulingService(workers=1, cache=str(tmp_path)) as service:
        client = InProcessClient(service)
        _, first = client.submit(_payload("CLZ"))
        cold = client.wait(first["id"], timeout=60)
        assert cold["result"]["cached"] is False
        # A finished job is no longer in-flight: a new submission becomes
        # a new job, served by the flow cache with zero fresh solves.
        status, second = client.submit(_payload("CLZ"))
        assert status == 202 and second["id"] != first["id"]
        warm = client.wait(second["id"], timeout=60)
    assert warm["result"]["cached"] is True
    assert not any(s["name"] == "solve" and not s["cached"]
                   for s in warm["result"]["spans"])
    assert canonical_result_json(warm["result"]) \
        == canonical_result_json(cold["result"])
    assert service.stats()["cache_hits"] == 1


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_cancel_queued_job_is_immediate():
    gate = threading.Event()
    with SchedulingService(workers=1,
                           faults=FaultPlan(hold_start=gate)) as service:
        client = InProcessClient(service)
        _, running = client.submit(_payload("CLZ", client="a"))
        _, queued = client.submit(_payload("GSM", client="b"))
        status, doc = client.cancel(queued["id"])
        assert status == 200 and doc["state"] == "cancelled"
        gate.set()
        assert client.wait(running["id"], timeout=60)["state"] == "done"
    cancelled = service.get(queued["id"])
    assert cancelled.attempts == 0  # never ran


def test_cancel_running_job_mid_solve_frees_slot():
    stall = threading.Event()
    plan = FaultPlan(stall_phases={"solve": stall})
    with SchedulingService(workers=1, quota=1, faults=plan) as service:
        client = InProcessClient(service)
        _, doc = client.submit(_payload("GSM", client="alice"))
        job = service.get(doc["id"])
        # Wait until the flow is pinned inside its solve phase, then
        # cancel and release: the flow finishes the phase and stops at
        # the next checkpoint.
        for event in client.events(doc["id"]):
            if event.get("phase") == "solve" and event["status"] == "start":
                break
        client.cancel(doc["id"])
        stall.set()
        final = client.wait(doc["id"], timeout=60)
        assert final["state"] == "cancelled"
        assert job.done.is_set()
        # The quota slot is free again: the same client (quota=1) can
        # submit a fresh job, and the same fingerprint re-solves as a
        # new job rather than joining the cancelled one.
        status, again = client.submit(_payload("GSM", client="alice"))
        assert status == 202 and again["id"] != doc["id"]
        assert client.wait(again["id"], timeout=60)["state"] == "done"


def test_time_budget_exceeded_fails_job():
    plan = FaultPlan(slow_phase_seconds={"solve": 0.3})
    with SchedulingService(workers=1, faults=plan) as service:
        client = InProcessClient(service)
        _, doc = client.submit(_payload("CLZ", time_budget=0.05))
        final = client.wait(doc["id"], timeout=60)
    assert final["state"] == "failed"
    assert final["error"]["type"] == "TimeBudgetExceeded"


# ----------------------------------------------------------------------
# Backpressure: quotas and the bounded queue
# ----------------------------------------------------------------------
def test_queue_overflow_rejects_without_losing_accepted_jobs():
    gate = threading.Event()
    plan = FaultPlan(hold_start=gate)
    with SchedulingService(workers=1, queue_limit=3, quota=8,
                           faults=plan) as service:
        client = InProcessClient(service)
        status, first = client.submit(_payload("CLZ", method="heur-map"))
        assert status == 202
        # Pin the first job as *running* (it holds at the fault gate, off
        # the queue) so exactly three queued slots remain.
        _wait_state(service, first["id"], "running")
        accepted = [first["id"]]
        for design in ("GSM", "DR", "XORR"):  # fills the queue
            status, doc = client.submit(_payload(design, method="heur-map"))
            assert status == 202
            accepted.append(doc["id"])
        status, rejection = client.submit(_payload("GFMUL",
                                                   method="heur-map"))
        assert status == 429
        assert rejection["error"] == "ServiceBusy"
        gate.set()
        finals = [client.wait(job_id, timeout=60) for job_id in accepted]
    assert [f["state"] for f in finals] == ["done"] * 4
    stats = service.stats()
    assert stats["rejected_queue"] == 1
    assert stats["completed"] == 4 and stats["failed"] == 0


def test_per_client_quota_isolates_clients():
    gate = threading.Event()
    plan = FaultPlan(hold_start=gate)
    with SchedulingService(workers=1, quota=2, queue_limit=8,
                           faults=plan) as service:
        client = InProcessClient(service)
        a1 = client.submit(_payload("CLZ", "heur-map", client="alice"))
        a2 = client.submit(_payload("GSM", "heur-map", client="alice"))
        assert a1[0] == a2[0] == 202
        status, rejection = client.submit(
            _payload("DR", "heur-map", client="alice"))
        assert status == 429 and rejection["error"] == "QuotaExceeded"
        # Another client is unaffected by alice's quota.
        status, bob = client.submit(
            _payload("XORR", "heur-map", client="bob"))
        assert status == 202
        gate.set()
        for doc in (a1[1], a2[1], bob):
            assert client.wait(doc["id"], timeout=60)["state"] == "done"
    assert service.stats()["rejected_quota"] == 1


# ----------------------------------------------------------------------
# Fault injection: crash retry and corrupt-cache recovery
# ----------------------------------------------------------------------
def test_worker_crash_retries_job_to_completion():
    plan = FaultPlan(crash_seqs={0})
    with SchedulingService(workers=1, max_retries=1,
                           faults=plan) as service:
        client = InProcessClient(service)
        _, doc = client.submit(_payload("CLZ", "heur-map"))
        final = client.wait(doc["id"], timeout=60)
    assert final["state"] == "done"
    assert final["attempts"] == 2
    job = service.get(doc["id"])
    assert any(e["event"] == "retry" for e in job.events)
    assert service.stats()["retried"] == 1


def test_worker_crash_beyond_retry_budget_fails():
    plan = FaultPlan(crash_seqs={0})
    with SchedulingService(workers=1, max_retries=0,
                           faults=plan) as service:
        client = InProcessClient(service)
        _, doc = client.submit(_payload("CLZ", "heur-map"))
        final = client.wait(doc["id"], timeout=60)
    assert final["state"] == "failed"
    assert final["error"]["type"] == "WorkerCrashFault"


def test_corrupt_cache_entry_recovers_by_resolving(tmp_path):
    plan = FaultPlan(corrupt_stores=True)
    with SchedulingService(workers=1, cache=str(tmp_path),
                           faults=plan) as service:
        client = InProcessClient(service)
        _, first = client.submit(_payload("CLZ"))
        cold = client.wait(first["id"], timeout=60)
        assert cold["state"] == "done"
        # The stored entry was corrupted after the store; the next
        # same-fingerprint submission degrades to a miss and re-solves,
        # producing the identical artifact.
        _, second = client.submit(_payload("CLZ"))
        again = client.wait(second["id"], timeout=60)
    assert again["state"] == "done"
    assert again["result"]["cached"] is False
    assert canonical_result_json(again["result"]) \
        == canonical_result_json(cold["result"])
    assert service.stats()["cache_hits"] == 0


def test_flow_cancelled_propagates_phase():
    # The service maps FlowCancelled to the cancelled state; the phase
    # rides the terminal event for diagnosis.
    with pytest.raises(FlowCancelled) as info:
        run_flow(BENCHMARKS["CLZ"].build(), "heur-map", config=FAST,
                 cancel=lambda: True)
    assert info.value.phase == "cache-load"


# ----------------------------------------------------------------------
# HTTP layer: real sockets, NDJSON streaming, error mapping
# ----------------------------------------------------------------------
@pytest.fixture()
def http_service():
    service = SchedulingService(workers=2)
    service.start()
    server = ServiceServer(service, port=0).serve_in_thread()
    try:
        yield ServiceClient(port=server.port), service
    finally:
        server.stop()
        service.shutdown()


def test_http_health_and_stats(http_service):
    client, _ = http_service
    status, doc = client.health()
    assert status == 200 and doc == {"ok": True,
                                     "schema": "repro-service/v1"}
    status, stats = client.stats()
    assert status == 200
    assert stats["workers"] == 2 and stats["submitted"] == 0


def test_http_rejects_malformed_requests(http_service):
    client, _ = http_service
    assert client.request("POST", "/jobs", {"design": "NOPE"})[0] == 400
    status, doc = client.request("POST", "/jobs")
    assert status == 400 and "JSON" in doc["message"]
    assert client.job("j-999999")[0] == 404
    assert client.cancel("j-999999")[0] == 404
    assert client.request("GET", "/no/such/route")[0] == 404


def test_http_submit_stream_and_result(http_service):
    client, _ = http_service
    status, doc = client.submit(_payload("GSM"))
    assert status == 202
    events = list(client.events(doc["id"]))
    # NDJSON ordering: seq strictly increasing from 0; lifecycle
    # ordering: queued, then running, then phase pairs, then done.
    assert [e["seq"] for e in events] == list(range(len(events)))
    states = [e["state"] for e in events if e["event"] == "state"]
    assert states == ["queued", "running", "done"]
    phases = [e for e in events if e["event"] == "phase"]
    assert phases and phases[0]["status"] == "start"
    for pair_start in (e for e in phases if e["status"] == "start"):
        assert any(e["phase"] == pair_start["phase"]
                   and e["status"] == "end" for e in phases)
    # Resume: ?from= replays only the tail.
    tail = list(client.events(doc["id"], start=len(events) - 2))
    assert [e["seq"] for e in tail] == [len(events) - 2, len(events) - 1]
    final = client.wait(doc["id"])
    assert final["state"] == "done"
    assert canonical_result_json(final["result"]) \
        == _serial_canonical("GSM")


def test_http_dedupe_returns_200_with_same_id(http_service):
    client, service = http_service
    gate = threading.Event()
    service.faults = FaultPlan(hold_start=gate)
    _, first = client.submit(_payload("DR", client="alice"))
    status, joined = client.submit(_payload("DR", client="bob"))
    assert status == 200 and joined["deduped"]
    assert joined["id"] == first["id"]
    gate.set()
    assert client.wait(first["id"])["state"] == "done"


# ----------------------------------------------------------------------
# Load-generator oracle: 50 fuzz jobs, byte parity with serial flows
# ----------------------------------------------------------------------
def test_load_generator_50_jobs_byte_identical_to_serial(tmp_path):
    seeds = range(50)
    with SchedulingService(workers=2, queue_limit=32, quota=16,
                           cache=str(tmp_path)) as service:
        client = InProcessClient(service)
        report = run_load(client, seeds=seeds, method="heur-map")
    assert len(report.jobs) == 50
    assert report.failed == 0 and report.completed == 50
    for record in report.jobs:
        seed = record["seed"]
        graph = generate_graph(seed, profile_for_seed(seed))
        flow = run_flow(graph, "heur-map",
                        config=SchedulerConfig(max_cuts=8,
                                               time_limit=30.0))
        from repro.ir.serialize import schedule_to_dict

        serial = canonical_result_json({
            "schedule": schedule_to_dict(flow.schedule),
            "report": flow.report.to_dict(),
        })
        assert record["canonical"] == serial, \
            f"seed {seed}: service result diverges from serial run_flow"
    data = report.to_dict()
    assert data["completed"] == 50
    assert data["jobs_per_sec"] > 0


def test_load_payload_is_deterministic():
    assert load_payload(7) == load_payload(7)
    assert load_payload(7)["graph"] != load_payload(8)["graph"]


# ----------------------------------------------------------------------
# Shutdown discipline
# ----------------------------------------------------------------------
def test_shutdown_cancels_active_jobs():
    gate = threading.Event()
    service = SchedulingService(workers=1, faults=FaultPlan(hold_start=gate))
    service.start()
    client = InProcessClient(service)
    _, running = client.submit(_payload("CLZ", client="a"))
    _, queued = client.submit(_payload("GSM", client="b"))
    gate.set()  # release just as shutdown lands
    service.shutdown(cancel_active=True)
    for doc in (running, queued):
        job = service.get(doc["id"])
        assert job.state in ("done", "cancelled")
        assert job.done.is_set()
    with pytest.raises(Exception):
        service.submit(_payload("DR"))

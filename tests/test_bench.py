"""The ``repro bench`` harness: schema, determinism, regression gate."""

import json

import pytest

from repro.experiments.bench import (
    BENCH_SCHEMA,
    MICROBENCHES,
    BenchResult,
    compare_to_baseline,
    run_bench,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def gsm_result():
    return run_bench(designs=["GSM"], quick=True)


def test_schema_round_trip(gsm_result):
    data = json.loads(json.dumps(gsm_result.to_dict()))
    assert data["schema"] == BENCH_SCHEMA
    assert data["quick"] is True
    assert data["records"]
    arms = {(r["name"], r["backend"], r["arm"]) for r in data["records"]}
    assert ("GSM", "scipy", "optimized") in arms
    assert ("GSM", "scipy", "cold") in arms
    for rec in data["records"]:
        assert rec["ok"], rec
        assert "wall_seconds" in rec


def test_canonical_json_strips_timing(gsm_result):
    canon = json.loads(gsm_result.canonical_json())
    assert "elapsed" not in canon
    for rec in canon["records"]:
        assert "wall_seconds" not in rec
        assert "solve_seconds" not in rec
    for key in canon["summary"]:
        assert "speedup" not in key and "seconds" not in key


def test_canonical_json_is_deterministic(gsm_result):
    """Two runs differ only in timing — the canonical form is identical."""
    again = run_bench(designs=["GSM"], quick=True)
    assert again.canonical_json() == gsm_result.canonical_json()


def test_optimized_arm_records_presolve_and_warm_start(gsm_result):
    opt = [r for r in gsm_result.records
           if r["arm"] == "optimized" and r["kind"] == "design"]
    assert opt
    for rec in opt:
        assert "presolve" in rec
        assert rec["presolve"]["vars_after"] <= rec["variables"]
        assert "warm_start_used" in rec


def test_micro_models_build_and_stay_feasible():
    from repro.milp.model import Model

    for name, builder in MICROBENCHES.items():
        model, warm = builder()
        assert isinstance(model, Model)
        assert model.check(warm) == [], f"{name} warm start infeasible"


def _fake_report(wall: float, ok: bool = True) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "records": [{
            "kind": "design", "name": "GSM", "method": "milp-map",
            "backend": "scipy", "arm": "optimized", "ok": ok,
            "wall_seconds": wall,
        }],
    }


def test_compare_to_baseline_flags_slowdowns():
    assert compare_to_baseline(_fake_report(3.5), _fake_report(1.0)) != []
    assert compare_to_baseline(_fake_report(2.9), _fake_report(1.0)) == []
    assert compare_to_baseline(_fake_report(2.4), _fake_report(2.0),
                               max_ratio=1.1) != []


def test_compare_to_baseline_skips_noise_and_mismatches():
    # sub-10ms baselines measure jitter, not the solver
    assert compare_to_baseline(_fake_report(1.0), _fake_report(0.004)) == []
    # over-ratio but under the absolute-growth floor: pool-contention
    # noise on a fast record, not a hot-path regression
    assert compare_to_baseline(_fake_report(0.15), _fake_report(0.04)) == []
    assert compare_to_baseline(_fake_report(0.15), _fake_report(0.04),
                               abs_slack=0.0) != []
    # records missing from the baseline don't gate
    empty = {"schema": BENCH_SCHEMA, "records": []}
    assert compare_to_baseline(_fake_report(9.0), empty) == []
    # failed records don't gate
    assert compare_to_baseline(_fake_report(9.0, ok=False),
                               _fake_report(1.0)) == []


def test_compare_to_baseline_rejects_wrong_schema():
    with pytest.raises(ExperimentError):
        compare_to_baseline(_fake_report(1.0), {"schema": "nope"})


def test_unknown_design_raises():
    with pytest.raises(ExperimentError):
        run_bench(designs=["NOPE"])


def test_summary_speedups_present(gsm_result):
    summary = gsm_result.summary()
    assert "scipy_solve_speedup" in summary
    assert summary["designs_ok"] == ["GSM"]
    assert summary["failed"] == []


def test_cli_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "bench.json"
    code = main(["bench", "GSM", "--quick", "--output", str(out),
                 "--format", "json"])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["schema"] == BENCH_SCHEMA
    # a second run gated against the first must not regress 3x
    code = main(["bench", "GSM", "--quick", "--output", "-",
                 "--baseline", str(out)])
    assert code == 0


def test_result_dataclass_summary_handles_empty():
    from repro.core.config import SchedulerConfig
    from repro.tech.device import XC7

    empty = BenchResult(config=SchedulerConfig(), device=XC7)
    assert empty.summary()["designs_ok"] == []
    assert "scipy_solve_speedup" not in empty.summary()

"""Presolve safety: reductions must never change what the model means.

Three layers of evidence, mirroring docs/performance.md:

* random-model properties — presolve + postsolve agrees with a raw solve
  on status and objective, reports *every* variable (including fixed
  ones), and its expanded assignment satisfies the original constraints;
* structure regressions — the one-hot circularity hazard (a group's
  defining row must not be dropped under its own invariant) and
  group-aware big-M tightening;
* the real formulations — the Table 2 models shrink and still solve to
  the same optimum.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SchedulerConfig
from repro.core.mapsched import MapScheduler
from repro.designs.registry import BENCHMARKS
from repro.milp.model import LinExpr, Model, SolveStatus
from repro.milp.presolve import Postsolve, PresolveStats, presolve


def _random_model(seed: int, n_vars: int, n_cons: int) -> Model:
    rng = random.Random(seed)
    m = Model(f"rand{seed}")
    xs = []
    for i in range(n_vars):
        kind = rng.random()
        if kind < 0.4:
            xs.append(m.binary(f"b{i}"))
        elif kind < 0.8:
            xs.append(m.integer(f"i{i}", 0, rng.randint(1, 5)))
        else:
            xs.append(m.continuous(f"c{i}", 0.0, rng.uniform(1.0, 6.0)))
    for c in range(n_cons):
        expr = LinExpr()
        for x in xs:
            if rng.random() < 0.7:
                expr = expr + rng.randint(-3, 3) * x
        rhs = rng.randint(0, 8)
        if rng.random() < 0.5:
            m.add(expr <= rhs)
        else:
            m.add(expr >= -rhs)
    obj = LinExpr()
    for x in xs:
        obj = obj + rng.randint(-4, 4) * x
    m.minimize(obj)
    return m


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_vars=st.integers(min_value=1, max_value=6),
    n_cons=st.integers(min_value=1, max_value=7),
)
def test_property_presolve_round_trip(seed, n_vars, n_cons):
    raw = _random_model(seed, n_vars, n_cons).solve("scipy")

    model = _random_model(seed, n_vars, n_cons)
    reduced, post = presolve(model)
    assert isinstance(post, Postsolve)
    assert isinstance(post.stats, PresolveStats)
    assert reduced.num_vars <= model.num_vars
    assert reduced.num_constraints <= model.num_constraints

    if post.status is not None:
        # Presolve proved infeasibility — the raw solve must agree.
        assert post.status == SolveStatus.INFEASIBLE
        assert raw.status == SolveStatus.INFEASIBLE
        return
    sol = post.expand(reduced.solve("scipy"))
    assert (raw.status == SolveStatus.INFEASIBLE) == \
        (sol.status == SolveStatus.INFEASIBLE)
    if raw.status == SolveStatus.OPTIMAL \
            and sol.status == SolveStatus.OPTIMAL:
        assert sol.objective == pytest.approx(raw.objective, abs=1e-5)
        # Every original variable is reported, fixed ones included.
        assert set(sol.values) == {v.index for v in model.variables}
        assert model.check(sol.values) == []


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_restrict_maps_into_reduced_space(seed):
    model = _random_model(seed, 5, 5)
    reduced, post = presolve(model)
    if post.status is not None:
        return
    full = {v.index: v.lo for v in model.variables}
    restricted = post.restrict(full)
    assert set(restricted) <= {v.index for v in reduced.variables}


def test_one_hot_defining_row_survives_its_own_invariant():
    """Regression: ``sum(x) == 1`` looked redundant under the invariant
    it defines, got dropped, and the solver then violated assignment."""
    m = Model("one-hot")
    xs = [m.binary(f"s{t}") for t in range(4)]
    m.add(sum(xs) == 1)
    m.minimize(sum((t + 1) * x for t, x in enumerate(xs)))
    reduced, post = presolve(m)
    assert post.status is None
    sol = post.expand(reduced.solve("scipy"))
    assert sol.status == SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(1.0)
    assert sum(sol.values[x.index] for x in xs) == pytest.approx(1.0)


def test_group_aware_bigm_tightening_fires():
    """One-hot structure lets presolve shrink a big-M coefficient that a
    single-row activity bound would consider hopeless."""
    m = Model("bigm")
    xs = [m.binary(f"s{t}") for t in range(4)]
    c = m.binary("c")
    l = m.continuous("L", lo=0.0, hi=8.0)
    m.add(sum(xs) == 1)
    m.add(l - sum(t * x for t, x in enumerate(xs)) + 100.0 * c >= 0.0)
    m.minimize(l + sum(t * x for t, x in enumerate(xs)) + 0.5 * c)
    reduced, post = presolve(m)
    assert post.status is None
    assert post.stats.coeffs_tightened >= 1
    sol = post.expand(reduced.solve("scipy"))
    raw = m.solve("scipy")
    assert sol.objective == pytest.approx(raw.objective, abs=1e-6)


def test_presolve_proves_infeasibility_without_solving():
    m = Model("infeasible")
    x = m.binary("x")
    y = m.binary("y")
    m.add(x + y >= 3)
    m.minimize(x + y)
    reduced, post = presolve(m)
    assert post.status == SolveStatus.INFEASIBLE
    sol = m.solve("scipy", presolve=True)
    assert sol.status == SolveStatus.INFEASIBLE
    assert "presolve" in sol.message


def test_fixed_variables_round_trip_through_expand():
    m = Model("fix")
    x = m.integer("x", 3, 3)          # already fixed by its bounds
    y = m.integer("y", 0, 5)
    m.add(x + y <= 6)
    m.minimize(-1 * y)
    reduced, post = presolve(m)
    sol = post.expand(reduced.solve("scipy"))
    assert sol.values[x.index] == pytest.approx(3.0)
    assert sol.objective == pytest.approx(-3.0)


@pytest.mark.parametrize("design", ["GSM", "DR", "CLZ"])
def test_real_formulation_agrees_and_shrinks(design):
    """The Table 2 MILPs shrink under presolve and keep their optimum."""
    from repro.ir.transforms import narrow_graph

    graph, _ = narrow_graph(BENCHMARKS[design].build())
    config = SchedulerConfig(presolve=False, warm_start=False)
    scheduler = MapScheduler(graph, config=config)
    scheduler.enumerate()
    from repro.core.formulation import MappingAwareFormulation

    formulation = MappingAwareFormulation(
        graph, scheduler.cuts, scheduler.device, config,
        scheduler._horizon())
    model = formulation.build()
    reduced, post = presolve(model)
    assert post.status is None
    stats = post.stats
    assert stats.cons_after < stats.cons_before
    assert stats.one_hot_groups > 0
    raw = model.solve("scipy")
    sol = post.expand(reduced.solve("scipy"))
    assert raw.status == SolveStatus.OPTIMAL
    assert sol.status == SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(raw.objective, abs=1e-5)
    assert model.check(sol.values) == []

"""Unit tests for device, delay and area characterization."""

import pytest

from repro.cuts import enumerate_cuts
from repro.ir import DFGBuilder, OpKind
from repro.tech import AreaModel, DelayModel, Device, TUTORIAL4, XC7


@pytest.fixture
def mixed_graph():
    b = DFGBuilder("mix", width=16)
    a, c = b.input("a"), b.input("c")
    logic = a ^ c
    shifted = logic >> 2
    summed = a + c
    cmp = summed.sge(0)
    selected = b.mux(cmp, shifted, summed)
    loaded = b.load(a.trunc(8), width=16, name="rom")
    b.output(selected ^ loaded, "o")
    return b.build()


class TestDevice:
    def test_usable_period(self):
        assert XC7.usable_period(10.0) == pytest.approx(8.75)
        assert TUTORIAL4.usable_period(5.0) == pytest.approx(5.0)

    def test_with_resources_merges(self):
        dev = XC7.with_resources(mem_port=2)
        dev2 = dev.with_resources(dsp=1)
        assert dev2.blackbox_counts == {"mem_port": 2, "dsp": 1}
        assert dev2.k == XC7.k
        assert dev2.clock_uncertainty == XC7.clock_uncertainty

    def test_lut_level_delay(self):
        assert XC7.lut_level_delay == pytest.approx(1.4)


class TestDelayModel:
    def test_operator_delays_by_class(self, mixed_graph):
        dm = DelayModel(XC7, mixed_graph)
        kinds = {n.kind: n for n in mixed_graph}
        assert dm.operator_delay(kinds[OpKind.XOR]) == pytest.approx(1.4)
        assert dm.operator_delay(kinds[OpKind.SHR]) == 0.0
        assert dm.operator_delay(kinds[OpKind.ADD]) == pytest.approx(
            0.6 + 0.025 * 16)
        assert dm.operator_delay(kinds[OpKind.LOAD]) == pytest.approx(2.1)
        assert dm.operator_delay(kinds[OpKind.INPUT]) == 0.0

    def test_delay_override_wins(self, mixed_graph):
        dm = DelayModel(XC7, mixed_graph)
        load = next(n for n in mixed_graph if n.kind is OpKind.LOAD)
        load.delay_override = 3.7
        assert dm.operator_delay(load) == 3.7

    def test_cut_delay_one_level_for_feasible(self, mixed_graph):
        dm = DelayModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        xor = next(n for n in mixed_graph if n.kind is OpKind.XOR)
        merged = [c for c in cuts[xor.nid].selectable if not c.is_unit]
        for cut in merged:
            assert dm.cut_delay(xor, cut) == pytest.approx(1.4)

    def test_unit_cut_never_slower_than_operator(self, mixed_graph):
        dm = DelayModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        for node in mixed_graph:
            unit = cuts[node.nid].unit
            if unit is None or node.is_boundary:
                continue
            assert dm.cut_delay(node, unit) <= \
                dm.operator_delay(node) + 1e-9

    def test_infeasible_unit_falls_back_to_operator(self, mixed_graph):
        dm = DelayModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        add = next(n for n in mixed_graph if n.kind is OpKind.ADD)
        unit = cuts[add.nid].unit
        assert not unit.feasible(XC7.k)
        assert dm.cut_delay(add, unit) == dm.operator_delay(add)

    def test_free_wiring_for_shift_cones(self, mixed_graph):
        dm = DelayModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        shr = next(n for n in mixed_graph if n.kind is OpKind.SHR)
        assert dm.cut_delay(shr, cuts[shr.nid].unit) == 0.0

    def test_recurrence_phi_is_free(self):
        b = DFGBuilder("t", width=8)
        i = b.input("i")
        r = b.recurrence("r")
        v = i ^ r
        v.feed(r)
        b.output(v, "o")
        g = b.build()
        dm = DelayModel(XC7, g)
        rec = next(n for n in g if n.attrs.get("recurrence"))
        assert dm.operator_delay(rec) == 0.0

    def test_barrel_shifter_levels(self):
        b = DFGBuilder("t", width=32)
        a = b.input("a")
        s = b.input("s", 5)
        v = b.op(OpKind.VSHR, a, s)
        b.output(v, "o")
        g = b.build()
        dm = DelayModel(XC7, g)
        d = dm.operator_delay(v.node)
        assert d >= 2 * XC7.lut_level_delay  # multiple mux levels


class TestAreaModel:
    def test_paper_cost_is_bits(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        xor = next(n for n in mixed_graph if n.kind is OpKind.XOR)
        assert am.paper_lut_cost(xor) == 16

    def test_blackbox_and_boundary_cost_zero(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        load = next(n for n in mixed_graph if n.kind is OpKind.LOAD)
        assert am.cut_lut_cost(load, cuts[load.nid].unit) == 0
        assert am.operator_lut_cost(load) == 0

    def test_shift_wiring_costs_zero(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        shr = next(n for n in mixed_graph if n.kind is OpKind.SHR)
        assert am.cut_lut_cost(shr, cuts[shr.nid].unit) == 0

    def test_carry_chain_costs_width(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        add = next(n for n in mixed_graph if n.kind is OpKind.ADD)
        assert am.operator_lut_cost(add) == 16

    def test_comparator_packs_bits_per_lut(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        cmp = next(n for n in mixed_graph if n.kind is OpKind.SGE)
        assert 1 <= am.operator_lut_cost(cmp) <= 16

    def test_feasible_cone_costs_one_lut_per_active_bit(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        cuts = enumerate_cuts(mixed_graph, XC7.k)
        xor = next(n for n in mixed_graph if n.kind is OpKind.XOR)
        unit = cuts[xor.nid].unit
        assert am.cut_lut_cost(xor, unit) == 16

    def test_register_bits(self, mixed_graph):
        am = AreaModel(XC7, mixed_graph)
        xor = next(n for n in mixed_graph if n.kind is OpKind.XOR)
        assert am.register_bits(xor) == 16

"""Tests for repro.partition: the chain invariant, extraction
fingerprints, boundary handoff semantics, the feedback loop, and the
partition-vs-monolithic differential suite."""

from __future__ import annotations

import pytest

from repro.core.config import SchedulerConfig
from repro.core.verify import verify_schedule
from repro.designs import BENCHMARKS, FULLSIZE, random_dfg
from repro.errors import SchedulingError
from repro.experiments import run_flow
from repro.hw.cost import evaluate
from repro.ir.types import OpKind
from repro.partition import (
    PartitionScheduler,
    extract_subgraph,
    partition_graph,
)
from repro.partition.solve import SubgraphSolveTask, subgraph_seed
from repro.runtime import flow_fingerprint
from repro.tech.device import XC7

from .conftest import build_fig1, build_recurrent

FAST = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8)


def _chain_position(chain):
    pos = {}
    for i, owned in enumerate(chain):
        for nid in owned:
            pos[nid] = i
    return pos


# ----------------------------------------------------------------------
# Partitioner: the chain invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph", [
    BENCHMARKS["GFMUL"].build(),
    BENCHMARKS["CORDIC"].build(),
    build_recurrent(),
    random_dfg(seed=7, ops=40),
], ids=["gfmul", "cordic", "recurrent", "random7"])
def test_partition_chain_invariant(graph):
    config = SchedulerConfig(partition=True, partition_size=10)
    chain = partition_graph(graph, XC7, config)
    pos = _chain_position(chain)

    owned_all = [nid for owned in chain for nid in owned]
    assert len(owned_all) == len(set(owned_all)), "subgraphs overlap"
    eligible = {n.nid for n in graph
                if n.kind not in (OpKind.INPUT, OpKind.CONST)}
    assert set(owned_all) == eligible, "every op/OUTPUT is owned exactly once"

    # Every crossing edge — at any iteration distance — points forward.
    for node in graph:
        if node.nid not in pos:
            continue
        for op in node.operands:
            if op.source in pos:
                assert pos[op.source] <= pos[node.nid], (
                    f"edge {op.source}->{node.nid} (d={op.distance}) "
                    f"crosses backwards")


def test_partition_keeps_recurrences_whole():
    """Even at partition_size=1 a recurrence is never split: its SCC over
    all-distance edges is an atomic cluster."""
    graph = build_recurrent()
    chain = partition_graph(graph, XC7,
                            SchedulerConfig(partition=True, partition_size=1))
    pos = _chain_position(chain)
    carried = [(op.source, node.nid)
               for node in graph for op in node.operands
               if op.distance >= 1 and op.source in pos
               and node.nid in pos]
    assert carried, "build_recurrent must contain a loop-carried edge"
    for src, dst in carried:
        # build_recurrent's feed edge closes a cycle, so both endpoints
        # are mutually dependent and must share a subgraph.
        assert pos[src] == pos[dst], (
            f"recurrence edge {src}->{dst} split across subgraphs")


def test_partition_respects_size_target():
    graph = BENCHMARKS["GFMUL"].build()
    small = partition_graph(graph, XC7,
                            SchedulerConfig(partition=True,
                                            partition_size=12))
    huge = partition_graph(graph, XC7,
                           SchedulerConfig(partition=True,
                                           partition_size=10_000))
    assert len(small) > 1
    assert len(huge) == 1


# ----------------------------------------------------------------------
# Extraction: content fingerprints and seeds
# ----------------------------------------------------------------------
def test_extraction_fingerprint_ignores_chain_position():
    graph = BENCHMARKS["GFMUL"].build()
    chain = partition_graph(graph, XC7,
                            SchedulerConfig(partition=True,
                                            partition_size=12))
    assert len(chain) > 2
    owned = chain[1]
    a = extract_subgraph(graph, owned, index=1)
    b = extract_subgraph(graph, owned, index=5)
    assert a.fingerprint == b.fingerprint, (
        "re-cuts renumber chain positions; untouched subgraphs must keep "
        "their fingerprint (solve memo + RNG seed stability)")
    other = extract_subgraph(graph, chain[0], index=0)
    assert other.fingerprint != a.fingerprint


def test_extraction_is_valid_standalone_graph():
    from repro.ir.validate import validate

    graph = BENCHMARKS["GFMUL"].build()
    chain = partition_graph(graph, XC7,
                            SchedulerConfig(partition=True,
                                            partition_size=12))
    for i, owned in enumerate(chain):
        sub = extract_subgraph(graph, owned, i)
        validate(sub.graph)
        # Every owned local maps back to the source graph.
        for lid in sub.owned_local:
            assert sub.to_global[lid] in owned


def test_subgraph_seed_keyed_by_content_and_pin():
    graph = BENCHMARKS["GFMUL"].build()
    chain = partition_graph(graph, XC7,
                            SchedulerConfig(partition=True,
                                            partition_size=12))
    sub = extract_subgraph(graph, chain[0], 0)

    def task(pin):
        return SubgraphSolveTask(
            design="GFMUL", method="milp-map", index=0,
            fingerprint=sub.fingerprint, graph_data=None,
            device=XC7, config=FAST, pin_ii=pin)

    assert subgraph_seed(task(None)) == subgraph_seed(task(None))
    assert subgraph_seed(task(None)) != subgraph_seed(task(2))


# ----------------------------------------------------------------------
# Scheduler + stitcher
# ----------------------------------------------------------------------
def test_partition_scheduler_rejects_unsupported_method():
    with pytest.raises(SchedulingError, match="milp-map/milp-base"):
        PartitionScheduler(build_fig1(), XC7, FAST, method="hls-tool")


def test_partition_schedule_verifies_and_respects_handoffs():
    graph = BENCHMARKS["GFMUL"].build()
    config = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                             partition=True, partition_size=12,
                             partition_rounds=0)
    scheduler = PartitionScheduler(graph, XC7, config, method="milp-map")
    schedule = scheduler.schedule()
    verify_schedule(schedule, XC7)
    assert scheduler.subgraph_counts[0] > 1

    # Registered handoff: every crossing edge u->v at distance d obeys
    # S_v + II*d >= S_u + 1 (stitch.py's boundary semantics, stronger
    # than the SCH009 dependence rule verify_schedule checks).
    chain = partition_graph(graph, XC7, config)
    pos = _chain_position(chain)
    ii = schedule.ii
    for node in graph:
        if node.nid not in pos:
            continue
        for op in node.operands:
            if op.source in pos and pos[op.source] != pos[node.nid]:
                assert (schedule.cycle[node.nid] + ii * op.distance
                        >= schedule.cycle[op.source] + 1), (
                    f"boundary edge {op.source}->{node.nid} not registered")


def test_partition_feedback_merges_worst_boundary():
    graph = BENCHMARKS["GFMUL"].build()
    config = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                             partition=True, partition_size=12,
                             partition_rounds=2)
    scheduler = PartitionScheduler(graph, XC7, config, method="milp-map")
    schedule = scheduler.schedule()
    verify_schedule(schedule, XC7)
    assert scheduler.rounds_run == 3
    counts = scheduler.subgraph_counts
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] < counts[0], "feedback never merged anything"


# ----------------------------------------------------------------------
# Differential suite: partitioned vs monolithic
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["milp-map", "milp-base"])
def test_partition_flow_matches_monolithic_when_single_subgraph(method):
    graph = build_fig1(4)
    mono = run_flow(build_fig1(4), method, XC7, FAST, lint=False)
    part_cfg = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                               partition=True, partition_size=10_000,
                               partition_rounds=0)
    part = run_flow(graph, method, XC7, part_cfg, lint=False)
    # One subgraph == the monolithic solve on (an isomorphic copy of)
    # the same graph: the acceptance bar is cost within 5%.
    mono_cost = 0.5 * mono.report.luts + 0.5 * mono.report.ffs
    part_cost = 0.5 * part.report.luts + 0.5 * part.report.ffs
    assert part_cost <= mono_cost * 1.05 + 1e-9
    assert part.report.ii == mono.report.ii


def test_partition_flow_forced_cut_verifies_and_stays_close():
    graph = BENCHMARKS["GFMUL"].build()
    mono = run_flow(BENCHMARKS["GFMUL"].build(), "milp-map", XC7, FAST,
                    lint=False)
    part_cfg = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                               partition=True, partition_size=12,
                               partition_rounds=1)
    part = run_flow(graph, "milp-map", XC7, part_cfg, lint=False)
    assert part.report.ii == mono.report.ii
    # A deliberately tiny partition_size pays real boundary registers;
    # the stitched result must stay in the same ballpark, not collapse.
    mono_cost = 0.5 * mono.report.luts + 0.5 * mono.report.ffs
    part_cost = 0.5 * part.report.luts + 0.5 * part.report.ffs
    assert part_cost <= mono_cost * 1.6 + 8
    spans = [s.name for s in part.trace.spans]
    assert "partition-cut" in spans and "stitch" in spans


def test_partition_flow_equiv_proves_stitched_schedule():
    graph = build_fig1(4)
    cfg = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                          partition=True, partition_size=3,
                          partition_rounds=0)
    flow = run_flow(graph, "milp-map", XC7, cfg, lint=False,
                    validate=("cover", "pipeline"))
    assert flow.equiv is not None and flow.equiv.ok, (
        flow.equiv and [(v.stage, v.status) for v in flow.equiv.stages])


def test_partition_params_enter_flow_fingerprint():
    graph = build_fig1()
    base = flow_fingerprint(graph, "milp-map", XC7, FAST)
    on = flow_fingerprint(
        graph, "milp-map", XC7,
        SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                        partition=True))
    sized = flow_fingerprint(
        graph, "milp-map", XC7,
        SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                        partition=True, partition_size=7))
    assert len({base, on, sized}) == 3


def test_partition_config_validation():
    with pytest.raises(Exception):
        SchedulerConfig(partition_size=0)
    with pytest.raises(Exception):
        SchedulerConfig(partition_rounds=-1)


# ----------------------------------------------------------------------
# Full-size registry
# ----------------------------------------------------------------------
def test_fullsize_registry_is_paper_scale_and_disjoint():
    assert len(FULLSIZE) >= 3
    assert not set(FULLSIZE) & set(BENCHMARKS)
    for name, spec in FULLSIZE.items():
        graph = spec.build()
        assert 387 <= len(graph.node_ids) <= 2503, (
            f"{name}: {len(graph.node_ids)} nodes outside the paper range")


def test_fullsize_design_partitions_into_many_subgraphs():
    graph = FULLSIZE["GFMUL64"].build()
    chain = partition_graph(graph, XC7,
                            SchedulerConfig(partition=True,
                                            partition_size=48))
    assert len(chain) >= 4

"""Edge-case tests: error hierarchy, ASAP/ALAP corners, schedule config."""

import pytest

from repro.core import SchedulerConfig
from repro.errors import (
    CutError,
    IRError,
    InfeasibleError,
    ModelError,
    ReproError,
    ScheduleVerificationError,
    SchedulingError,
    SimulationError,
    SolverError,
    ValidationError,
)
from repro.ir import DFGBuilder
from repro.scheduling import alap_schedule, asap_schedule


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        for cls in (IRError, ValidationError, CutError, ModelError,
                    SolverError, InfeasibleError, SchedulingError,
                    SimulationError):
            assert issubclass(cls, ReproError)

    def test_validation_is_ir_error(self):
        assert issubclass(ValidationError, IRError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(InfeasibleError, SolverError)
        assert "infeasible" in str(InfeasibleError())

    def test_verification_error_truncates_preview(self):
        err = ScheduleVerificationError([f"violation {i}" for i in range(9)])
        assert len(err.violations) == 9
        assert "+4 more" in str(err)


class TestSchedulerConfig:
    def test_defaults_match_paper(self):
        cfg = SchedulerConfig()
        assert cfg.ii == 1 and cfg.tcp == 10.0
        assert cfg.alpha == cfg.beta == 0.5

    def test_rejects_bad_values(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(ii=0)
        with pytest.raises(SchedulingError):
            SchedulerConfig(tcp=-1)
        with pytest.raises(SchedulingError):
            SchedulerConfig(alpha=-0.1)

    def test_frozen(self):
        cfg = SchedulerConfig()
        with pytest.raises(Exception):
            cfg.ii = 2  # type: ignore[misc]


class TestChainingCorners:
    def make_diamond(self):
        b = DFGBuilder("d", width=4)
        a = b.input("a")
        left = a ^ 1
        right = a ^ 2
        b.output(left & right, "o")
        return b.build()

    def test_diamond_joins_at_max(self):
        g = self.make_diamond()
        times = asap_schedule(
            g, lambda nid: 1.0 if not g.node(nid).is_boundary else 0.0, 10.0)
        join = next(n for n in g if n.kind.value == "and")
        assert times.start[join.nid] == pytest.approx(1.0)

    def test_exact_budget_fit(self):
        b = DFGBuilder("c", width=4)
        v = b.input("i")
        for _ in range(4):
            v = v ^ 1
        b.output(v, "o")
        g = b.build()
        # 4 x 2.5 ns fills a 10 ns cycle exactly: still one cycle
        times = asap_schedule(
            g, lambda nid: 2.5 if g.node(nid).kind.value == "xor" else 0.0,
            10.0)
        assert times.latency == 1

    def test_alap_with_extra_latency_slack(self):
        g = self.make_diamond()

        def d(nid):
            return 1.0 if not g.node(nid).is_boundary else 0.0

        asap = asap_schedule(g, d, 3.0)
        alap = alap_schedule(g, d, 3.0, latency=asap.latency + 2)
        for nid in g.node_ids:
            assert alap.cycle[nid] >= asap.cycle[nid]

    def test_alap_impossible_latency(self):
        from repro.errors import SchedulingError

        g = self.make_diamond()
        with pytest.raises(SchedulingError):
            alap_schedule(g, lambda nid: 2.0, 3.0, latency=0)

"""Tests for the nine Table 1 benchmark designs and the registry."""

import random

import pytest

from repro.designs import (
    BENCHMARKS,
    DR_TRAINING,
    RS_CODEWORD,
    application_names,
    build_clz,
    build_cordic,
    build_gfmul,
    build_xorr,
    get_benchmark,
    kernel_names,
    make_dr_env,
    make_mt_env,
    random_dfg,
    reference_aes_round,
    reference_clz,
    reference_cordic,
    reference_dr_step,
    reference_gfmul,
    reference_gsm_step,
    reference_mt,
    reference_rs_step,
    reference_xorr,
)
from repro.errors import ExperimentError
from repro.ir.validate import check_problems
from repro.sim import FunctionalSimulator


class TestRegistry:
    def test_all_nine_registered(self):
        assert set(BENCHMARKS) == {
            "CLZ", "XORR", "GFMUL", "CORDIC", "MT", "AES", "RS", "DR", "GSM"
        }

    def test_kernel_application_split(self):
        assert set(kernel_names()) == {"CLZ", "XORR", "GFMUL"}
        assert len(application_names()) == 6

    def test_lookup_case_insensitive(self):
        assert get_benchmark("aes").name == "AES"
        with pytest.raises(ExperimentError, match="unknown"):
            get_benchmark("nope")

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_builds_validate(self, name):
        graph = BENCHMARKS[name].build()
        assert check_problems(graph) == []

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_streams_are_deterministic_and_sufficient(self, name):
        spec = BENCHMARKS[name]
        s1 = spec.input_stream(seed=5, n=4)
        s2 = spec.input_stream(seed=5, n=4)
        assert s1 == s2
        graph = spec.build()
        sim = FunctionalSimulator(graph, spec.make_env(1))
        for row in s1:
            sim.step(row)  # raises if an input is missing


class TestGoldenModels:
    def test_clz(self, rng):
        g = build_clz()
        sim = FunctionalSimulator(g)
        for x in [0, 1, (1 << 63), (1 << 64) - 1] + \
                [rng.randrange(1 << 64) >> rng.randrange(64) for _ in range(30)]:
            assert sim.step({"x": x})["clz"] == reference_clz(x)

    def test_xorr(self, rng):
        g = build_xorr(elements=16, width=32)
        sim = FunctionalSimulator(g)
        vals = [rng.randrange(1 << 32) for _ in range(16)]
        out = sim.step({f"x{i}": v for i, v in enumerate(vals)})["xorr"]
        assert out == reference_xorr(vals, width=32)

    def test_gfmul_agrees_with_table(self, rng):
        g = build_gfmul()
        sim = FunctionalSimulator(g)
        # identities of GF(2^8)
        assert sim.step({"a": 0x57, "b": 0x13})["p"] == 0xFE  # AES known pair
        for _ in range(50):
            a, m = rng.randrange(256), rng.randrange(256)
            assert sim.step({"a": a, "b": m})["p"] == reference_gfmul(a, m)

    def test_gfmul_field_properties(self, rng):
        # commutativity and distributivity via the reference model
        for _ in range(50):
            a, b, c = (rng.randrange(256) for _ in range(3))
            assert reference_gfmul(a, b) == reference_gfmul(b, a)
            assert reference_gfmul(a, b ^ c) == \
                reference_gfmul(a, b) ^ reference_gfmul(a, c)

    def test_cordic_rotates_toward_zero(self):
        # rotation mode drives the residual angle toward 0
        x, y, z = reference_cordic(0x1000, 0, 0x0800, iterations=8)
        from repro.ir.semantics import to_signed
        assert abs(to_signed(z, 16)) < 0x0800

    def test_mt_matches_reference(self):
        g = BENCHMARKS["MT"].build()
        env = make_mt_env(7)
        state = list(env.memories["mt_state"])
        sim = FunctionalSimulator(g, env)
        for k in range(30):
            assert sim.step({"idx": k})["rand"] == reference_mt(k, state)

    def test_aes_known_sbox_values(self):
        from repro.designs import AES_SBOX

        # canonical S-box entries
        assert AES_SBOX[0x00] == 0x63
        assert AES_SBOX[0x01] == 0x7C
        assert AES_SBOX[0x53] == 0xED
        assert AES_SBOX[0xFF] == 0x16

    def test_aes_round(self, rng):
        g = BENCHMARKS["AES"].build()
        sim = FunctionalSimulator(g, BENCHMARKS["AES"].make_env(0))
        for _ in range(20):
            col, key = rng.randrange(1 << 32), rng.randrange(1 << 32)
            assert sim.step({"col": col, "key": key})["col_out"] == \
                reference_aes_round(col, key)

    def test_rs_accumulates(self):
        g = BENCHMARKS["RS"].build()
        sim = FunctionalSimulator(g, BENCHMARKS["RS"].make_env(0))
        state = [0, 0]
        for k in range(25):
            out = sim.step({"idx": k})
            syns, loc, ne = reference_rs_step(state, RS_CODEWORD[k % 64])
            assert [out["syn1"], out["syn2"]] == syns
            assert out["locator"] == loc and out["no_error"] == ne
            state = syns

    def test_dr_tracks_minimum(self, rng):
        g = BENCHMARKS["DR"].build()
        sim = FunctionalSimulator(g, make_dr_env())
        best = ((1 << 32) - 1, 0)
        for k in range(30):
            q = rng.randrange(1 << 32)
            out = sim.step({"query": q, "idx": k % 64})
            best = reference_dr_step(q, k % 64, best, DR_TRAINING)
            assert (out["min_dist"], out["min_idx"]) == best
        # min distance never increases
        assert out["min_dist"] <= 32

    def test_gsm_saturation(self):
        g = BENCHMARKS["GSM"].build()
        sim = FunctionalSimulator(g)
        u = 0
        for k, sri in enumerate([0x1FFFF, 0, 0x3FFFF, 123, 45678]):
            out = sim.step({"sri": sri})
            sri_ref, u_ref = reference_gsm_step(sri, u)
            assert (out["sri_out"], out["u_out"]) == (sri_ref, u_ref)
            u = u_ref


class TestSynthetic:
    def test_reproducible(self):
        g1 = random_dfg(42)
        g2 = random_dfg(42)
        assert g1.op_histogram() == g2.op_histogram()

    def test_all_valid(self):
        for seed in range(20):
            g = random_dfg(seed, ops=12, recurrences=2)
            assert check_problems(g) == []

    def test_simulatable(self, rng):
        g = random_dfg(3, ops=12, inputs=2, recurrences=1)
        sim = FunctionalSimulator(g)
        for _ in range(5):
            sim.step({f"i{k}": rng.randrange(256) for k in range(2)})

    def test_mux_selects_are_one_bit(self):
        # Regression: selects used to be raw pool values, relying on the
        # simulator's implicit `& 1` truncation that the hardware would
        # not perform. The generator must emit an explicit 1-bit select.
        from repro.ir.types import OpKind

        for seed in range(40):
            g = random_dfg(seed, ops=15, recurrences=2)
            for node in g.nodes_of_kind(OpKind.MUX):
                sel = g.node(node.operands[0].source)
                assert sel.width == 1, (
                    f"seed {seed}: MUX {node.nid} select {sel.nid} "
                    f"is {sel.width} bits wide")

    def test_width_one_graphs_build(self):
        # width=1 used to crash on randrange(1, 1) for the shift amount.
        for seed in (0, 7, 19):
            g = random_dfg(seed, ops=12, width=1, inputs=2)
            assert check_problems(g) == []

    def test_pinned_seeds_replay_identically(self):
        # The 1-bit-select fix must not disturb the RNG stream for the
        # historical width>1 seeds other tests pin: these digests were
        # recorded from the pre-fix generator (verified byte-identical).
        import hashlib

        from repro.ir.serialize import dumps

        pinned = {2563: "a44cd3e8b2c2a14b", 3505: "835c8fb6b776e377"}
        for seed, digest in pinned.items():
            text = dumps(random_dfg(seed))
            assert hashlib.sha256(
                text.encode()).hexdigest()[:16] == digest

"""Unit + property tests for the MILP modeling layer and backends."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.milp import Model, SolveStatus
from repro.milp.model import LinExpr


class TestExpressions:
    def test_linear_algebra(self):
        m = Model()
        x, y = m.continuous("x"), m.continuous("y")
        e = 2 * x + 3 * y - 4 + x
        assert e.coeffs[x.index] == 3
        assert e.coeffs[y.index] == 3
        assert e.constant == -4

    def test_rsub(self):
        m = Model()
        x = m.continuous("x")
        e = 10 - x
        assert e.constant == 10 and e.coeffs[x.index] == -1

    def test_negation(self):
        m = Model()
        x = m.continuous("x")
        assert (-x).coeffs[x.index] == -1
        assert (-(x + 1)).constant == -1

    def test_nonlinear_rejected(self):
        m = Model()
        x, y = m.continuous("x"), m.continuous("y")
        with pytest.raises(ModelError, match="linear"):
            (x + 1) * (y + 1)

    def test_value_evaluation(self):
        m = Model()
        x, y = m.continuous("x"), m.continuous("y")
        e = 2 * x - y + 5
        assert e.value({x.index: 3, y.index: 4}) == 7


class TestModel:
    def test_variable_kinds_and_bounds(self):
        m = Model()
        b = m.binary("b")
        i = m.integer("i", 1, 5)
        c = m.continuous("c", -2.0, 2.0)
        assert (b.lo, b.hi) == (0.0, 1.0)
        assert (i.lo, i.hi) == (1, 5)
        assert c.kind == "continuous"
        assert m.num_integer_vars == 2

    def test_empty_domain_rejected(self):
        m = Model()
        with pytest.raises(ModelError, match="empty domain"):
            m.integer("bad", 5, 1)

    def test_add_requires_constraint(self):
        m = Model()
        with pytest.raises(ModelError, match="comparison"):
            m.add(True)  # type: ignore[arg-type]

    def test_check_reports_violations(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1, name="must_be_one")
        assert m.check({x.index: 0.0}) == ["must_be_one"]
        assert m.check({x.index: 1.0}) == []
        assert "integrality:x" in m.check({x.index: 0.5})

    def test_constraint_violation_senses(self):
        m = Model()
        x = m.continuous("x")
        le = (x <= 3)
        ge = (x >= 3)
        eq = (x == 3)
        assert le.violation({x.index: 5}) == 2
        assert ge.violation({x.index: 5}) == 0
        assert eq.violation({x.index: 5}) == 2

    def test_unknown_backend(self):
        m = Model()
        m.binary("x")
        with pytest.raises(ModelError, match="unknown backend"):
            m.solve("cplex")


class TestBackends:
    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_simple_min(self, backend):
        m = Model()
        x = m.integer("x", 0, 10)
        y = m.integer("y", 0, 10)
        m.add(x + y >= 7)
        m.minimize(3 * x + 5 * y)
        sol = m.solve(backend)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.int_value(x) == 7 and sol.int_value(y) == 0

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_maximize(self, backend):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y <= 1)
        m.maximize(2 * x + 3 * y)
        sol = m.solve(backend)
        assert sol.objective == pytest.approx(3.0)

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_infeasible(self, backend):
        m = Model()
        x = m.binary("x")
        m.add(x >= 1)
        m.add(x <= 0)
        m.minimize(1 * x)
        assert m.solve(backend).status == SolveStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_equality_constraints(self, backend):
        m = Model()
        x = m.continuous("x", 0, 100)
        y = m.integer("y", 0, 100)
        m.add(x + y == 7.5)
        m.add(y >= 3)
        m.minimize(1 * x)
        sol = m.solve(backend)
        # y must be integer, so the best x is the fractional residue 0.5
        assert sol[x] == pytest.approx(0.5)
        assert sol.int_value(y) == 7

    def test_empty_model(self):
        m = Model()
        sol = m.solve("scipy")
        assert sol.status == SolveStatus.OPTIMAL and sol.objective == 0.0

    def test_solution_getitem_default(self):
        m = Model()
        x = m.binary("x")
        m.minimize(1 * x)
        sol = m.solve("scipy")
        assert sol[x] in (0.0, 1.0)
        assert sol.ok


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_vars=st.integers(min_value=1, max_value=5),
    n_cons=st.integers(min_value=1, max_value=6),
)
def test_property_backends_agree(seed, n_vars, n_cons):
    """HiGHS and the pure-Python branch-and-bound find the same optimum on
    random bounded integer programs."""
    import random

    rng = random.Random(seed)

    def build():
        m = Model()
        xs = [m.integer(f"x{i}", 0, rng_state["hi"][i]) for i in range(n_vars)]
        for c in range(n_cons):
            expr = LinExpr()
            for i, x in enumerate(xs):
                expr = expr + rng_state["a"][c][i] * x
            if rng_state["sense"][c]:
                m.add(expr <= rng_state["rhs"][c])
            else:
                m.add(expr >= -rng_state["rhs"][c])
        obj = LinExpr()
        for i, x in enumerate(xs):
            obj = obj + rng_state["c"][i] * x
        m.minimize(obj)
        return m

    rng_state = {
        "hi": [rng.randint(1, 4) for _ in range(n_vars)],
        "a": [[rng.randint(-3, 3) for _ in range(n_vars)]
              for _ in range(n_cons)],
        "rhs": [rng.randint(0, 8) for _ in range(n_cons)],
        "sense": [rng.random() < 0.5 for _ in range(n_cons)],
        "c": [rng.randint(-5, 5) for _ in range(n_vars)],
    }
    s1 = build().solve("scipy")
    s2 = build().solve("bnb")
    assert (s1.status == SolveStatus.INFEASIBLE) == \
        (s2.status == SolveStatus.INFEASIBLE)
    if s1.status == SolveStatus.OPTIMAL and s2.status == SolveStatus.OPTIMAL:
        assert s1.objective == pytest.approx(s2.objective, abs=1e-5)

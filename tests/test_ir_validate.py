"""Unit tests for CDFG validation and DOT export."""

import pytest

from repro.errors import ValidationError
from repro.ir import CDFG, DFGBuilder, OpKind, Operand, check_problems, to_dot, validate


class TestValidation:
    def test_valid_graph_has_no_problems(self, fig1_graph):
        assert check_problems(fig1_graph) == []

    def test_missing_operand_source(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        x = g.add_node(OpKind.NOT, 4, operands=[Operand(a.nid)])
        g.add_node(OpKind.OUTPUT, 4, operands=[x.nid], name="o")
        g.set_operand(x.nid, 0, Operand(77, 1))
        assert any("missing node 77" in p for p in check_problems(g))

    def test_const_value_must_fit(self):
        g = CDFG()
        c = g.add_node(OpKind.CONST, 4, value=3)
        c.value = 99  # corrupt after construction
        g.add_node(OpKind.OUTPUT, 4, operands=[c.nid], name="o")
        assert any("does not fit" in p for p in check_problems(g))

    def test_mux_select_width(self):
        g = CDFG()
        sel = g.add_node(OpKind.INPUT, 2, name="sel")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        m = g.add_node(OpKind.MUX, 4, operands=[sel.nid, a.nid, a.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[m.nid], name="o")
        assert any("width 2 != 1" in p for p in check_problems(g))

    def test_output_must_be_sink(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        o = g.add_node(OpKind.OUTPUT, 4, operands=[a.nid], name="o")
        g.add_node(OpKind.NOT, 4, operands=[o.nid])
        problems = check_problems(g, require_outputs=False)
        assert any("has consumers" in p for p in problems)

    def test_slice_out_of_range(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        s = g.add_node(OpKind.SLICE, 3, operands=[a.nid], amount=2)
        g.add_node(OpKind.OUTPUT, 3, operands=[s.nid], name="o")
        assert any("exceeds" in p for p in check_problems(g))

    def test_dead_code_flagged(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        _dead = i ^ 1
        b.output(i, "o")
        assert any("dead operation" in p for p in check_problems(b.graph))

    def test_no_outputs_flagged(self):
        g = CDFG()
        g.add_node(OpKind.INPUT, 4, name="a")
        assert any("no primary outputs" in p for p in check_problems(g))
        assert check_problems(g, require_outputs=False) == []

    def test_validate_raises(self):
        g = CDFG()
        with pytest.raises(ValidationError):
            validate(g)


class TestDot:
    def test_contains_all_nodes_and_edges(self, fig1_graph):
        text = to_dot(fig1_graph)
        for node in fig1_graph:
            assert f"n{node.nid}" in text
        assert text.count("->") == sum(
            len(n.operands) for n in fig1_graph
        )

    def test_clusters_by_cycle(self, fig1_graph):
        cycles = {nid: 0 for nid in fig1_graph.node_ids}
        cycles[fig1_graph.outputs[0].nid] = 1
        text = to_dot(fig1_graph, cycle_of=cycles)
        assert "cluster_c0" in text and "cluster_c1" in text

    def test_back_edges_dashed(self, recurrent_graph):
        text = to_dot(recurrent_graph)
        assert "style=dashed" in text

    def test_highlight_roots(self, fig1_graph):
        text = to_dot(fig1_graph, highlight_roots={0})
        assert "penwidth=3" in text

"""Differential parity tests: vectorized kernels vs pure-Python references.

The numpy inner kernels (packed DEP/support bitmasks, the cut-merge
filter, presolve activity/propagation, BnB branching) must be
*bit-identical* to the reference implementations — ``REPRO_VECTORIZE``
and ``SchedulerConfig.vectorize`` trade speed only, never results
(docs/performance.md). Every test here runs both implementations over
the same inputs and asserts exact equality: support masks, cut sets,
reduced models, solver solutions, and whole fuzz-campaign summaries.
"""

import pytest

from repro.bitdeps import (
    PackedSupportCalculator,
    SupportCalculator,
    popcount,
)
from repro.bitdeps.packed import ints_to_rows, max_popcount, rows_to_ints
from repro.core.config import SchedulerConfig
from repro.core.formulation import MappingAwareFormulation
from repro.core.mapsched import MapScheduler
from repro.cuts.enumerate import CutEnumerator
from repro.designs import BENCHMARKS
from repro.designs.synthetic import random_dfg
from repro.errors import CutError
from repro.ir import DFGBuilder, OpKind
from repro.ir.transforms import narrow_graph
from repro.milp.presolve import presolve
from repro.vectorize import vectorize_enabled

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def both_supports(graph, target, boundary):
    """(reference masks, packed masks) for one cone, or matched errors."""
    ref = SupportCalculator(graph)
    vec = PackedSupportCalculator(graph)
    try:
        ref_masks = ref.supports(target, boundary)
        ref_err = None
    except CutError as exc:
        ref_masks, ref_err = None, str(exc)
    try:
        vec_masks = rows_to_ints(vec.supports_rows(target, boundary, None))
        vec_err = None
    except CutError as exc:
        vec_masks, vec_err = None, str(exc)
    assert ref_err == vec_err
    return ref_masks, vec_masks


def assert_cone_parity(graph, target, boundary):
    ref_masks, vec_masks = both_supports(graph, target, boundary)
    assert ref_masks == vec_masks


def canon_model(m):
    """Byte-exact canonical form of a model (repr keeps -0.0 vs 0.0)."""
    out = [(m.name, m.sense)]
    for v in m.variables:
        out.append((v.index, v.name, v.kind, repr(v.lo), repr(v.hi)))
    for c in m.constraints:
        out.append((c.name, c.sense, repr(c.expr.constant),
                    tuple((j, repr(a)) for j, a in c.expr.coeffs.items())))
    out.append((repr(m.objective.constant),
                tuple((j, repr(a)) for j, a in m.objective.coeffs.items())))
    return out


def canon_post(p):
    return (tuple((j, repr(v)) for j, v in p.fixed.items()),
            tuple(p.index_map.items()), p.status, p.stats.to_dict())


def canon_cuts(cut_sets):
    """Cut sets as a comparable structure (selection order preserved)."""
    return {
        root: [(c.kind, tuple(sorted(c.boundary)), c.masks,
                tuple(sorted(c.interior)), c.entries)
               for c in cs.selectable]
        for root, cs in cut_sets.items()
    }


def scheduling_model(name, config):
    graph, _ = narrow_graph(BENCHMARKS[name].build())
    sched = MapScheduler(graph, config=config)
    sched.enumerate()
    formulation = MappingAwareFormulation(graph, sched.cuts, sched.device,
                                          config, sched._horizon())
    return formulation.build()


# ----------------------------------------------------------------------
# Environment toggle
# ----------------------------------------------------------------------
class TestVectorizeToggle:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        assert vectorize_enabled(None) is True

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert vectorize_enabled(None) is False

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert vectorize_enabled(True) is True
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        assert vectorize_enabled(False) is False

    def test_excluded_from_fingerprint(self):
        a = SchedulerConfig(vectorize=True).fingerprint_fields()
        b = SchedulerConfig(vectorize=False).fingerprint_fields()
        assert a == b
        assert "vectorize" not in a


# ----------------------------------------------------------------------
# Packed bitmask DEP/support kernels
# ----------------------------------------------------------------------
class TestPackedSupportParity:
    """Exhaustive small-width sweeps, one cone shape per DEP op class."""

    WIDTHS = (1, 2, 3, 4, 7)

    def _sweep(self, make):
        """Build a one-op cone per width and compare all support masks."""
        for width in self.WIDTHS:
            b = DFGBuilder("t", width=width)
            value, boundary = make(b, width)
            b.output(value, "o")
            graph = b.build()
            assert_cone_parity(graph, value.nid,
                               [v.nid for v in boundary])

    def test_bitwise(self):
        for op in (lambda a, c: a & c, lambda a, c: a | c,
                   lambda a, c: a ^ c):
            self._sweep(lambda b, w, op=op: self._two_input(b, op))

    @staticmethod
    def _two_input(b, op):
        a, c = b.input("a"), b.input("c")
        return op(a, c), [a, c]

    def test_not(self):
        def make(b, w):
            a = b.input("a")
            return ~a, [a]
        self._sweep(make)

    def test_mux(self):
        def make(b, w):
            sel = b.input("sel", 1)
            a, c = b.input("a"), b.input("c")
            return b.mux(sel, a, c), [sel, a, c]
        self._sweep(make)

    def test_shifts(self):
        for amount in (0, 1, 3):
            def make(b, w, amount=amount):
                a = b.input("a")
                return a << amount, [a]
            self._sweep(make)

            def make(b, w, amount=amount):
                a = b.input("a")
                return a >> amount, [a]
            self._sweep(make)

    def test_variable_shifts(self):
        def make(b, w):
            a, s = b.input("a"), b.input("s")
            return b.op(OpKind.VSHL, a, s, width=w), [a, s]
        self._sweep(make)

        def make(b, w):
            a, s = b.input("a"), b.input("s")
            return b.op(OpKind.VSHR, a, s, width=w), [a, s]
        self._sweep(make)

    def test_resize_and_slice(self):
        def make(b, w):
            a = b.input("a")
            return a.zext(w + 2), [a]
        self._sweep(make)

        def make(b, w):
            a = b.input("a", w + 2)
            return a.trunc(w), [a]
        self._sweep(make)

        def make(b, w):
            a = b.input("a", w + 1)
            return a.slice(1, w), [a]
        self._sweep(make)

    def test_concat(self):
        def make(b, w):
            a, c = b.input("a"), b.input("c")
            return b.concat(a, c), [a, c]
        self._sweep(make)

    def test_arith(self):
        for op in (lambda a, c: a + c, lambda a, c: a - c,
                   lambda a, c: a * c):
            self._sweep(lambda b, w, op=op: self._two_input(b, op))

        def make(b, w):
            a = b.input("a")
            return -a, [a]
        self._sweep(make)

    def test_compares(self):
        for op in ("eq", "ne", "lt", "ge", "slt", "sge"):
            def make(b, w, op=op):
                a, c = b.input("a"), b.input("c")
                return getattr(a, op)(c), [a, c]
            self._sweep(make)

    def test_sign_test_refinement(self):
        # x >= 0 (signed) reads only the MSB — the refined DEP rule.
        def make(b, w):
            a = b.input("a")
            return a.sge(0), [a]
        self._sweep(make)

    def test_interior_constants(self):
        def make(b, w):
            a = b.input("a")
            return a ^ b.const(1), [a]
        self._sweep(make)

    def test_deep_cone(self):
        b = DFGBuilder("t", width=4)
        a, c, d = b.input("a"), b.input("c"), b.input("d")
        x = (a + c) ^ (c >> 1)
        y = b.mux(d.bit(0), x, a - d)
        b.output(y, "o")
        graph = b.build()
        assert_cone_parity(graph, y.nid, [a.nid, c.nid, d.nid])
        # intermediate boundary: stop the cone at x
        assert_cone_parity(graph, y.nid, [x.nid, a.nid, d.nid])

    def test_error_parity_loop_carried(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        r = b.recurrence("r")
        v = i ^ r
        v.feed(r)
        b.output(v, "o")
        graph = b.build()
        ref_masks, vec_masks = both_supports(graph, v.nid, [i.nid])
        assert ref_masks is None and vec_masks is None

    def test_random_graphs(self):
        for seed in range(25):
            graph = random_dfg(seed, ops=12, width=5, inputs=3,
                               recurrences=0, allow_arith=True)
            target = graph.outputs[0].operands[0].source
            node = graph.node(target)
            if node.kind in (OpKind.INPUT, OpKind.CONST):
                continue
            boundary = [n.nid for n in graph.inputs]
            ref_masks, vec_masks = both_supports(graph, target, boundary)
            assert ref_masks == vec_masks

    def test_round_trip_and_popcounts(self):
        masks = [0, 1, (1 << 64) - 1, 1 << 200, (1 << 130) | 7]
        rows = ints_to_rows(masks, words=4)
        assert rows_to_ints(rows) == masks
        assert max_popcount(rows) == max(popcount(m) for m in masks)


# ----------------------------------------------------------------------
# Cut enumeration
# ----------------------------------------------------------------------
class TestCutEnumerationParity:
    @pytest.mark.parametrize("name", ["GSM", "DR", "CLZ", "GFMUL", "MT"])
    def test_cut_sets_identical(self, name):
        graph, _ = narrow_graph(BENCHMARKS[name].build())
        runs = {}
        for flag in (False, True):
            enumerator = CutEnumerator(graph, 6, max_cuts=12,
                                       vectorize=flag)
            cuts = enumerator.run()
            runs[flag] = (canon_cuts(cuts),
                          enumerator.stats.candidates_generated,
                          enumerator.stats.total_selectable)
        assert runs[False] == runs[True]


# ----------------------------------------------------------------------
# Presolve
# ----------------------------------------------------------------------
class TestPresolveParity:
    @pytest.mark.parametrize("name", ["DR", "CLZ", "GFMUL"])
    def test_reduced_model_identical(self, name):
        """Real scheduling formulations reduce byte-identically."""
        config = SchedulerConfig(presolve=False, warm_start=False)
        model = scheduling_model(name, config)
        ref_model, ref_post = presolve(model, vectorize=False)
        vec_model, vec_post = presolve(model, vectorize=True)
        assert canon_model(ref_model) == canon_model(vec_model)
        assert canon_post(ref_post) == canon_post(vec_post)


# ----------------------------------------------------------------------
# Branch and bound
# ----------------------------------------------------------------------
class TestBnbParity:
    def test_same_solution_on_scheduling_model(self):
        config = SchedulerConfig(presolve=False, warm_start=False,
                                 backend="bnb", use_mapping=False)
        model = scheduling_model("DR", config)
        sols = {}
        for flag in (False, True):
            sol = model.solve(backend="bnb", time_limit=60.0,
                              vectorize=flag)
            sols[flag] = (sol.status, repr(sol.objective),
                          tuple((j, repr(v))
                                for j, v in sorted(sol.values.items())),
                          dict(sol.stats))
        ref, vec = sols[False], sols[True]
        # stats include wall-clock-free node counts; identical branching
        # decisions => identical trees => identical everything.
        assert ref == vec


# ----------------------------------------------------------------------
# End-to-end: full flows and fuzz campaigns
# ----------------------------------------------------------------------
class TestEndToEndParity:
    def test_schedule_identical_both_kernels(self):
        graph, _ = narrow_graph(BENCHMARKS["DR"].build())
        scheds = {}
        for flag in (False, True):
            config = SchedulerConfig(vectorize=flag)
            schedule = MapScheduler(graph, config=config).schedule()
            scheds[flag] = (schedule.ii, repr(schedule.objective),
                            sorted(schedule.cycle.items()),
                            sorted(schedule.start.items()),
                            sorted((r, tuple(sorted(c.boundary)))
                                   for r, c in schedule.cover.items()))
        assert scheds[False] == scheds[True]

    def test_fuzz_campaign_byte_identical(self):
        from repro.fuzz.runner import run_campaign

        summaries = {}
        for flag in (False, True):
            config = SchedulerConfig(ii=1, tcp=10.0, time_limit=20.0,
                                     max_cuts=8, vectorize=flag)
            summary = run_campaign(seeds=4, oracles=("narrow", "bitblast"),
                                   config=config, jobs=1,
                                   shrink_divergences=False)
            summaries[flag] = summary.canonical_json()
        assert summaries[False] == summaries[True]

"""Tests for bit-level decomposition and the Sec. 3.1 tractability claim."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitdeps import bit_blast
from repro.cuts import CutEnumerator
from repro.designs import build_gfmul, random_dfg
from repro.ir import DFGBuilder, OpKind
from repro.sim import FunctionalSimulator

from .conftest import build_fig1, build_recurrent


class TestBitBlast:
    def test_all_nodes_single_bit_except_io_and_blackbox(self):
        blast = bit_blast(build_fig1())
        for node in blast.graph:
            if node.kind in (OpKind.INPUT, OpKind.OUTPUT, OpKind.CONCAT):
                continue
            if node.is_blackbox:
                continue
            assert node.width == 1, node

    def test_equivalent_on_fig1(self, rng):
        g = build_fig1()
        blast = bit_blast(build_fig1())
        stream = [{"s": rng.randrange(4), "t": rng.randrange(4)}
                  for _ in range(16)]
        assert FunctionalSimulator(g).run(stream) == \
            FunctionalSimulator(blast.graph).run(stream)

    def test_equivalent_with_recurrence(self, rng):
        g = build_recurrent()
        blast = bit_blast(build_recurrent())
        stream = [{"s": rng.randrange(256), "t": rng.randrange(256)}
                  for _ in range(12)]
        assert FunctionalSimulator(g).run(stream) == \
            FunctionalSimulator(blast.graph).run(stream)

    def test_adder_becomes_full_adders(self):
        b = DFGBuilder("t", width=4)
        x, y = b.input("x"), b.input("y")
        b.output(x + y, "o")
        blast = bit_blast(b.build())
        hist = blast.graph.op_histogram()
        assert hist["xor"] >= 4 and hist["and"] >= 3  # ripple structure

    def test_blackbox_stays_opaque(self):
        b = DFGBuilder("t", width=8)
        addr = b.input("addr", 4)
        v = b.load(addr, name="rom")
        b.output(v ^ 1, "o")
        blast = bit_blast(b.build())
        loads = [n for n in blast.graph if n.kind is OpKind.LOAD]
        assert len(loads) == 1 and loads[0].width == 8

    def test_bit_ids_mapping(self):
        g = build_fig1()
        blast = bit_blast(g)
        out = g.outputs[0]
        ids = blast.bit_ids[out.nid]
        assert len(ids) == out.width

    def test_cut_blowup_on_gfmul(self):
        """The Sec. 3.1 claim: bit-level enumeration yields far more cuts."""
        g = build_gfmul()
        blast = bit_blast(build_gfmul())
        word = CutEnumerator(g, 6, max_cuts=8)
        word.run()
        bits = CutEnumerator(blast.graph, 6, max_cuts=8)
        bits.run()
        assert bits.stats.total_selectable > 3 * word.stats.total_selectable

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_blast_preserves_semantics(self, seed):
        g = random_dfg(seed, ops=10, width=5, inputs=2, recurrences=1)
        blast = bit_blast(g)
        rng = random.Random(seed)
        stream = [{f"i{k}": rng.randrange(32) for k in range(2)}
                  for _ in range(8)]
        assert FunctionalSimulator(g).run(stream) == \
            FunctionalSimulator(blast.graph).run(stream)

"""Unit tests for the DFGBuilder DSL."""

import pytest

from repro.errors import IRError
from repro.ir import DFGBuilder, OpKind


class TestBasics:
    def test_operator_overloads_build_expected_kinds(self):
        b = DFGBuilder("t", width=8)
        a, c = b.input("a"), b.input("c")
        nodes = {
            OpKind.AND: a & c,
            OpKind.OR: a | c,
            OpKind.XOR: a ^ c,
            OpKind.NOT: ~a,
            OpKind.ADD: a + c,
            OpKind.SUB: a - c,
            OpKind.NEG: -a,
        }
        for kind, value in nodes.items():
            assert value.node.kind is kind

    def test_comparisons_are_one_bit(self):
        b = DFGBuilder("t", width=8)
        a, c = b.input("a"), b.input("c")
        for v in (a.eq(c), a.ne(c), a.lt(c), a.ge(c), a.slt(c), a.sge(c)):
            assert v.width == 1

    def test_shift_amount_stored_on_node(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a")
        v = a << 3
        assert v.node.kind is OpKind.SHL and v.node.amount == 3

    def test_negative_shift_rejected(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a")
        with pytest.raises(IRError, match="negative"):
            b.shift(a, -1, left=True)

    def test_const_deduplication(self):
        b = DFGBuilder("t", width=8)
        c1 = b.const(5)
        c2 = b.const(5)
        c3 = b.const(5, width=4)
        assert c1.nid == c2.nid
        assert c3.nid != c1.nid

    def test_const_masks_value_to_width(self):
        b = DFGBuilder("t", width=4)
        c = b.const(0x1FF)
        assert c.node.value == 0xF

    def test_int_literals_coerced(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a")
        v = a ^ 0x0F
        src = b.graph.node(v.node.operands[1].source)
        assert src.kind is OpKind.CONST and src.value == 0x0F

    def test_slice_bit_concat(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a")
        s = a.slice(2, 3)
        assert s.width == 3 and s.node.amount == 2
        bit = a.bit(7)
        assert bit.width == 1
        cat = b.concat(a, s)
        assert cat.width == 11

    def test_mux_operand_order(self):
        b = DFGBuilder("t", width=8)
        sel = b.input("sel", 1)
        a, c = b.input("a"), b.input("c")
        m = b.mux(sel, a, c)
        assert m.node.source_ids == [sel.nid, a.nid, c.nid]

    def test_blackbox_load(self):
        b = DFGBuilder("t", width=8)
        addr = b.input("addr", 4)
        v = b.load(addr, width=16, name="rom")
        assert v.node.kind is OpKind.LOAD
        assert v.node.rclass == "mem_port"
        assert v.width == 16


class TestRecurrences:
    def test_unclosed_recurrence_fails_build(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        r = b.recurrence("r")
        b.output(i ^ r, "o")
        with pytest.raises(IRError, match="unclosed"):
            b.build()

    def test_close_twice_fails(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        r = b.recurrence("r")
        v = i ^ r
        v.feed(r)
        with pytest.raises(IRError, match="not an open recurrence"):
            v.feed(r)

    def test_initial_propagates_to_producer(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        r = b.recurrence("r", initial=7)
        v = i ^ r
        v.feed(r)
        b.output(v, "o")
        g = b.build()
        assert v.node.attrs["initial"] == 7
        assert g.node(r.nid).attrs["recurrence"] is True

    def test_conflicting_initials_rejected(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        r1 = b.recurrence("r1", initial=1)
        r2 = b.recurrence("r2", initial=2)
        v = i ^ r1 ^ r2
        v.feed(r1)
        with pytest.raises(IRError, match="conflicting"):
            v.feed(r2)

    def test_distance_must_be_positive(self):
        b = DFGBuilder("t", width=4)
        r = b.recurrence("r")
        v = b.input("i") ^ r
        with pytest.raises(IRError, match=">= 1"):
            v.feed(r, distance=0)


class TestWidths:
    def test_binary_result_takes_max_operand_width(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a", 8)
        c = b.input("c", 16)
        assert (a ^ c).width == 16

    def test_explicit_width_override(self):
        b = DFGBuilder("t", width=8)
        a = b.input("a")
        v = b.op(OpKind.ADD, a, a, width=9)
        assert v.width == 9

"""Replay the pinned crash corpus (`tests/corpus/*.json`).

Every entry is a shrunk repro of a divergence the fuzzer once found (or a
hand-pinned regression). Normal entries must stay clean forever; ``xfail``
entries document a known-open divergence and must *still* trip — a
silently passing xfail is stale and should be promoted to a normal entry.

This file is the fast PR-CI fuzzing gate (the full campaign runs
nightly); keep the whole corpus replay under 30 seconds.
"""

import os

import pytest

from repro.core import SchedulerConfig
from repro.fuzz import load_corpus, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
FAST = SchedulerConfig(ii=1, tcp=10.0, time_limit=20.0, max_cuts=8)

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, "the pinned corpus should never disappear"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e["_file"] for e in ENTRIES])
def test_corpus_entry_replays(entry):
    result = replay_entry(entry, config=FAST)
    if entry.get("xfail"):
        assert result.status == "diverge", (
            f"{entry['_file']} is marked xfail ({entry.get('reason', '')}) "
            f"but no longer diverges — promote it to a normal entry")
    else:
        assert result.status != "diverge", (
            f"{entry['_file']} regressed: {result.message}")

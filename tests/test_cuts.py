"""Unit + property tests for word-level cut enumeration (Algorithm 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitdeps import SupportCalculator
from repro.cuts import Cut, CutEnumerator, enumerate_cuts
from repro.designs.synthetic import random_dfg
from repro.errors import CutError
from repro.ir import DFGBuilder, OpKind


class TestCutObject:
    def test_entries_default_to_distance_zero(self):
        cut = Cut(root=3, boundary=frozenset({1, 2}), masks=(0b1, 0b10))
        assert cut.entries == ((1, 0), (2, 0))
        assert cut.entry_distance == {1: 0, 2: 0}

    def test_entry_distance_takes_minimum(self):
        cut = Cut(root=3, boundary=frozenset({1}), masks=(0,),
                  entries=((1, 0), (1, 2)))
        assert cut.entry_distance == {1: 0}

    def test_feasibility_uses_max_support(self):
        cut = Cut(root=3, boundary=frozenset({1}), masks=(0b111, 0b1))
        assert cut.max_support == 3
        assert cut.feasible(3) and not cut.feasible(2)

    def test_covers(self):
        cut = Cut(root=3, boundary=frozenset({1}), masks=(0,),
                  interior=frozenset({2}))
        assert cut.covers(3) and cut.covers(2) and not cut.covers(1)


class TestEnumeration:
    def test_k_must_be_sane(self, fig1_graph):
        with pytest.raises(CutError, match="K must be"):
            CutEnumerator(fig1_graph, k=1)

    def test_every_mappable_node_has_unit_cut(self, fig1_graph):
        cuts = enumerate_cuts(fig1_graph, k=4)
        for node in fig1_graph:
            if node.is_boundary and node.kind is not OpKind.OUTPUT:
                continue
            assert cuts[node.nid].unit is not None, node

    def test_unit_cut_boundary_is_direct_inputs(self, fig1_graph):
        cuts = enumerate_cuts(fig1_graph, k=4)
        for node in fig1_graph:
            if not node.is_mappable or node.kind is OpKind.OUTPUT:
                continue
            unit = cuts[node.nid].unit
            direct = {
                op.source for op in node.operands
                if fig1_graph.node(op.source).kind is not OpKind.CONST
            }
            assert unit.boundary <= direct

    def test_merged_cuts_are_k_feasible(self, fig1_graph):
        cuts = enumerate_cuts(fig1_graph, k=4)
        for cs in cuts.values():
            for cut in cs.merged:
                assert cut.feasible(4)

    def test_max_cuts_zero_disables_growth(self, fig1_graph):
        cuts = enumerate_cuts(fig1_graph, k=4, max_cuts=0)
        for cs in cuts.values():
            assert cs.merged == []

    def test_wide_adder_unit_is_infeasible_but_kept(self):
        b = DFGBuilder("t", width=16)
        a, c = b.input("a"), b.input("c")
        b.output(a + c, "o")
        cuts = enumerate_cuts(b.build(), k=6)
        add = next(n for n in b.graph if n.kind is OpKind.ADD)
        cs = cuts[add.nid]
        assert cs.unit is not None and not cs.unit.feasible(6)
        # nothing can absorb a 32-bit-support carry chain
        consumers = [n for n in b.graph if n.kind is OpKind.OUTPUT]
        assert cuts[consumers[0].nid].unit.boundary == {add.nid}

    def test_loop_carried_boundary_distance(self, recurrent_graph):
        cuts = enumerate_cuts(recurrent_graph, k=6)
        rec = next(n for n in recurrent_graph if n.attrs.get("recurrence"))
        unit = cuts[rec.nid].unit
        producer = rec.operands[1].source
        assert (producer, 1) in unit.entries

    def test_cone_never_crosses_register(self, recurrent_graph):
        cuts = enumerate_cuts(recurrent_graph, k=6)
        rec = next(n for n in recurrent_graph if n.attrs.get("recurrence"))
        producer = rec.operands[1].source
        for cs in cuts.values():
            for cut in cs.selectable:
                if producer in cut.interior:
                    # producer may be absorbed via distance-0 paths, but any
                    # cut containing the recurrence interiorly must still
                    # enter through a registered boundary
                    assert any(d >= 1 for _, d in cut.entries)

    def test_dominated_cuts_are_pruned(self):
        b = DFGBuilder("t", width=2)
        a, c = b.input("a"), b.input("c")
        x = a ^ c
        y = x ^ a
        b.output(y, "o")
        cuts = enumerate_cuts(b.build(), k=6)
        boundaries = [cut.boundary for cut in cuts[y.nid].selectable]
        for i, bi in enumerate(boundaries):
            for j, bj in enumerate(boundaries):
                if i != j:
                    assert not (bi < bj), "dominated cut survived pruning"

    def test_stats_populated(self, fig1_graph):
        en = CutEnumerator(fig1_graph, k=4)
        en.run()
        assert en.stats.nodes_processed > 0
        assert en.stats.candidates_generated > 0
        assert en.stats.total_selectable > 0

    def test_sign_test_gets_small_cut(self, fig1_graph):
        cuts = enumerate_cuts(fig1_graph, k=4)
        sge = next(n for n in fig1_graph if n.kind is OpKind.SGE)
        assert any(c.max_support == 1 for c in cuts[sge.nid].selectable)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_cut_masks_match_recomputed_supports(seed):
    """Every merged cut's stored masks equal a from-scratch support
    computation over its boundary (catches merge-composition bugs)."""
    g = random_dfg(seed, ops=12, width=4, inputs=3, recurrences=0)
    calc = SupportCalculator(g)
    cuts = enumerate_cuts(g, k=4, max_cuts=6)
    checked = 0
    for nid, cs in cuts.items():
        node = g.node(nid)
        if not node.is_mappable or node.kind is OpKind.OUTPUT:
            continue
        for cut in cs.merged:
            if cut.interior & cut.boundary:
                # the cone *recomputes* a boundary node (duplication); its
                # stored masks describe that implementation, while a
                # from-scratch support stops at the boundary — both valid,
                # not comparable
                continue
            try:
                fresh = calc.supports(nid, cut.boundary)
            except CutError:
                continue  # boundary contains registered entries
            assert tuple(fresh) == cut.masks, (nid, cut)
            checked += 1
    assert checked >= 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_interiors_are_ancestors(seed):
    """A cut's interior contains only combinational ancestors of its root."""
    g = random_dfg(seed, ops=12, width=4, inputs=3, recurrences=1)
    cuts = enumerate_cuts(g, k=4, max_cuts=6)

    def ancestors(nid):
        seen = set()
        stack = [nid]
        while stack:
            cur = stack.pop()
            for op in g.node(cur).operands:
                if op.source not in seen:
                    seen.add(op.source)
                    stack.append(op.source)
        return seen

    for nid, cs in cuts.items():
        anc = None
        for cut in cs.selectable:
            if cut.interior:
                anc = ancestors(nid) if anc is None else anc
                assert cut.interior <= anc

"""Unit tests for the baseline per-stage technology mapper and retiming."""

import pytest

from repro.core import schedule_problems
from repro.errors import MappingError
from repro.mapping import StageMapper, map_schedule, recompute_starts
from repro.scheduling import HeuristicModuloScheduler
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


def heuristic(graph, device=XC7, tcp=10.0):
    return HeuristicModuloScheduler(graph, device, tcp).schedule(1)


class TestStageMapper:
    def test_cover_is_complete_and_valid(self):
        sched = map_schedule(heuristic(build_fig1()), XC7)
        assert schedule_problems(sched, XC7) == []

    def test_interiors_stay_in_stage(self):
        g = build_recurrent()
        sched = map_schedule(heuristic(g), XC7)
        for nid, cut in sched.cover.items():
            for w in cut.interior:
                assert sched.cycle[w] == sched.cycle[nid]

    def test_fanout_free_interiors(self):
        g = build_fig1()
        sched = map_schedule(heuristic(g), XC7)
        for nid, cut in sched.cover.items():
            inside = cut.interior | {nid}
            for w in cut.interior:
                for use in g.uses(w):
                    assert use.consumer in inside

    def test_no_duplicated_roots(self):
        g = build_fig1()
        sched = map_schedule(heuristic(g), XC7)
        interior_all = set()
        for cut in sched.cover.values():
            interior_all.update(cut.interior)
        assert not (interior_all & set(sched.cover))

    def test_mapping_reduces_or_keeps_luts(self):
        from repro.hw import evaluate
        g1 = build_fig1()
        mapped = map_schedule(heuristic(g1), XC7)
        luts_mapped = evaluate(mapped, XC7).luts
        # unit-only cover of the same schedule
        g2 = build_fig1()
        sched2 = heuristic(g2)
        unit_only = StageMapper(sched2, XC7, max_cuts=0).run()
        luts_unit = evaluate(unit_only, XC7).luts
        assert luts_mapped <= luts_unit

    def test_rejects_covered_schedule(self):
        sched = map_schedule(heuristic(build_fig1()), XC7)
        with pytest.raises(MappingError, match="already has a cover"):
            StageMapper(sched, XC7)

    def test_registered_values_are_roots(self):
        g = build_recurrent()
        sched = map_schedule(heuristic(g), XC7)
        rec = next(n for n in g if n.attrs.get("recurrence"))
        producer = rec.operands[1].source
        assert producer in sched.cover


class TestRetime:
    def test_requires_cover(self):
        sched = heuristic(build_fig1())
        with pytest.raises(MappingError, match="covered"):
            recompute_starts(sched, XC7)

    def test_roots_start_after_entries_finish(self):
        from repro.tech.delay import DelayModel

        g = build_fig1()
        sched = map_schedule(heuristic(g), XC7)
        dm = DelayModel(XC7, g)
        for nid, cut in sched.cover.items():
            for u, dist in cut.entries:
                if g.node(u).kind.value == "const":
                    continue
                if sched.cycle.get(u, 0) != sched.cycle[nid] + dist:
                    continue
                u_cut = sched.cover.get(u)
                d = dm.cut_delay(g.node(u), u_cut) if u_cut else 0.0
                assert sched.start[u] + d <= sched.start[nid] + 1e-6

    def test_interiors_inherit_root_start(self):
        g = build_fig1()
        sched = map_schedule(heuristic(g), XC7)
        for nid, cut in sched.cover.items():
            for w in cut.interior:
                assert sched.start[w] == sched.start[nid]


class TestTimingSafety:
    def test_mapped_stage_never_slower_than_additive(self):
        """The additive-path guard: for every selected merged cone, one LUT
        level is at most the additive chain it replaces."""
        from repro.tech.delay import DelayModel

        for build in (build_fig1, build_recurrent):
            g = build()
            sched = map_schedule(heuristic(g), XC7)
            dm = DelayModel(XC7, g)
            for nid, cut in sched.cover.items():
                node = g.node(nid)
                if not node.is_mappable or cut.is_unit:
                    continue
                mapper = StageMapper.__new__(StageMapper)
                mapper.graph = g
                mapper._delay_model = dm
                additive = StageMapper._additive_path(mapper, nid, cut)
                assert dm.cut_delay(node, cut) <= additive + 1e-9

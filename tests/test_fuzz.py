"""Tests for the differential fuzzing harness (`repro.fuzz`)."""

import dataclasses
import json
import random

import pytest

from repro.core import MapScheduler, SchedulerConfig
from repro.core.verify import schedule_problems
from repro.errors import ReproError
from repro.fuzz import (
    MUTATORS,
    PROFILES,
    Divergence,
    FuzzCase,
    FuzzCaseData,
    generate_case,
    generate_graph,
    load_corpus,
    make_entry,
    mutate,
    replay_entry,
    run_campaign,
    run_oracle,
    save_entry,
    shrink,
)
from repro.fuzz.shrink import drop_node
from repro.ir.types import OpKind
from repro.ir.validate import check_problems
from repro.tech.device import XC7

FAST = SchedulerConfig(ii=1, tcp=10.0, time_limit=20.0, max_cuts=8)


class TestGenerator:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_profiles_generate_valid_graphs(self, profile):
        for seed in range(8):
            g = generate_graph(seed, PROFILES[profile])
            assert check_problems(g) == [], f"{profile} seed {seed}"

    def test_deterministic(self):
        from repro.ir.serialize import dumps

        a, b = generate_case(11), generate_case(11)
        assert dumps(a.graph) == dumps(b.graph)
        assert a.stimulus == b.stimulus

    def test_mux_selects_are_one_bit(self):
        for seed in range(12):
            g = generate_case(seed).graph
            for node in g.nodes_of_kind(OpKind.MUX):
                assert g.node(node.operands[0].source).width == 1

    def test_stimulus_covers_all_inputs(self):
        case = generate_case(4)
        names = {n.name for n in case.graph.inputs}
        for row in case.stimulus:
            assert names <= set(row)

    def test_memory_profile_emits_loads(self):
        found = False
        for seed in range(5, 60, 6):  # seeds routed to the memory profile
            g = generate_case(seed, "memory").graph
            if g.nodes_of_kind(OpKind.LOAD):
                found = True
                break
        assert found


class TestMutators:
    @pytest.mark.parametrize("name", sorted(MUTATORS))
    def test_mutants_stay_valid(self, name):
        rng = random.Random(99)
        produced = 0
        for seed in range(12):
            g = generate_case(seed).graph
            mutant = MUTATORS[name](g, rng)
            if mutant is not None:
                produced += 1
                assert check_problems(mutant) == [], f"{name} seed {seed}"
        assert produced > 0, f"{name} never produced a mutant"

    def test_mutate_composite_always_valid(self):
        for seed in range(10):
            g = generate_case(seed).graph
            mutant = mutate(g, seed, rounds=3)
            assert check_problems(mutant) == []

    def test_mutators_do_not_touch_input(self):
        from repro.ir.serialize import dumps

        g = generate_case(2).graph
        before = dumps(g)
        mutate(g, 7, rounds=3)
        assert dumps(g) == before


class TestOracles:
    def test_cheap_oracles_pass_on_clean_seeds(self):
        for seed in (0, 3):
            case = FuzzCase(generate_case(seed), config=FAST)
            for name in ("narrow", "bitblast", "cache"):
                result = run_oracle(name, case)
                assert result.status == "pass", (seed, name, result.message)

    def test_full_oracle_set_on_one_seed(self):
        case = FuzzCase(generate_case(3), config=FAST)  # bit-edge: small
        for name in ("sim-replay", "schedule", "rtl", "backend"):
            result = run_oracle(name, case)
            assert result.status in ("pass", "skip"), (name, result.message)

    def test_sim_replay_catches_broken_semantics(self):
        # A graph whose schedule is fine but whose replay we sabotage via
        # a corrupted stimulus comparison is hard to fake; instead check
        # the Divergence plumbing round-trips.
        d = Divergence(oracle="sim-replay", kind="mismatch", message="m",
                       details={"iteration": 0})
        assert Divergence.from_dict(d.to_dict()) == d

    def test_unknown_oracle_raises(self):
        case = FuzzCase(generate_case(0), config=FAST)
        with pytest.raises(KeyError):
            run_oracle("nope", case)


def _corrupt_cut_failing(graph, stim):
    """Oracle for the injected fault: schedule, corrupt one cut's masks,
    and expect the independent verifier to flag it (SCH003)."""
    try:
        sched = MapScheduler(graph, XC7, FAST).schedule()
    except ReproError:
        return False
    roots = [r for r in sorted(sched.cover)
             if sched.graph.node(r).is_mappable]
    if not roots:
        return False
    bad = dataclasses.replace(
        sched.cover[roots[0]], kind="merged",
        masks=tuple((1 << 40) - 1 for _ in sched.cover[roots[0]].masks))
    sched.cover[roots[0]] = bad
    return bool(schedule_problems(sched, XC7))


class TestShrinker:
    def test_injected_cut_fault_shrinks_to_eight_nodes(self):
        case = generate_case(3)  # bit-edge: small widths, fast solves
        assert _corrupt_cut_failing(case.graph, case.stimulus)
        result = shrink(case.graph, case.stimulus, _corrupt_cut_failing,
                        max_checks=120)
        assert len(result.graph) <= 8, (
            f"shrunk to {len(result.graph)} nodes")
        assert _corrupt_cut_failing(result.graph, result.stimulus)
        assert check_problems(result.graph) == []

    def test_drop_node_preserves_validity(self):
        g = generate_case(1).graph
        dropped = 0
        for node in list(g):
            candidate = drop_node(g, node.nid)
            if candidate is not None:
                dropped += 1
                assert check_problems(candidate) == []
                # replacing a node with a fresh constant keeps the size
                # even; it must never grow
                assert len(candidate) <= len(g)
        assert dropped > 0

    def test_drop_node_refuses_interface_nodes(self):
        g = generate_case(1).graph
        assert drop_node(g, g.inputs[0].nid) is None
        assert drop_node(g, g.outputs[0].nid) is None

    def test_stimulus_shrinks(self):
        case = generate_case(0)
        result = shrink(case.graph, case.stimulus,
                        lambda g, s: len(s) >= 1, max_checks=40)
        assert len(result.stimulus) == 1


class TestRunner:
    def test_summary_deterministic_across_jobs(self):
        # Satellite: --jobs 1 and --jobs 2 must be byte-identical.
        kwargs = dict(seeds=6, oracles=("narrow", "bitblast"),
                      config=FAST)
        s1 = run_campaign(jobs=1, **kwargs)
        s2 = run_campaign(jobs=2, **kwargs)
        assert s1.canonical_json() == s2.canonical_json()
        assert s1.counts()["diverge"] == 0

    def test_summary_schema_and_counts(self):
        summary = run_campaign(seeds=3, oracles=("narrow",), config=FAST)
        data = summary.to_dict()
        assert data["schema"] == "repro-fuzz/v1"
        assert data["seeds_run"] == 3
        assert data["counts"]["pass"] == 3
        # canonical form strips wall-clock fields
        canonical = json.loads(summary.canonical_json())
        assert "elapsed" not in canonical
        for r in canonical["results"]:
            for record in r["oracles"].values():
                assert "seconds" not in record

    def test_time_budget_stops_early(self):
        summary = run_campaign(seeds=40, oracles=("narrow",),
                               config=FAST, time_budget=0.0)
        assert summary.stopped_early
        assert len(summary.results) < 40

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz profile"):
            run_campaign(seeds=1, profiles=("nope",))

    def test_mutated_seeds_marked(self):
        summary = run_campaign(seeds=4, oracles=("narrow",), config=FAST,
                               mutate_rounds=2)
        profiles = [r["profile"] for r in summary.results]
        assert any(p.endswith("+mut") for p in profiles)


class TestCorpus:
    def test_entry_roundtrip_and_replay(self, tmp_path):
        case = generate_case(0)
        entry = make_entry(oracle="narrow", seed=case.seed,
                           profile=case.profile, graph=case.graph,
                           stimulus=case.stimulus,
                           description="clean seed pinned for the test")
        path = save_entry(str(tmp_path), entry)
        entries = load_corpus(str(tmp_path))
        assert [e["_file"] for e in entries] == [path.rsplit("/", 1)[-1]]
        result = replay_entry(entries[0], config=FAST)
        assert result.status == "pass"

    def test_bad_schema_rejected(self, tmp_path):
        (tmp_path / "x.json").write_text('{"schema": "nope/v9"}')
        with pytest.raises(ValueError, match="unsupported corpus schema"):
            load_corpus(str(tmp_path))

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "absent")) == []


class TestCLI:
    def test_fuzz_cli_smoke(self, capsys):
        from repro.__main__ import main

        code = main(["fuzz", "--seeds", "2", "--oracles", "narrow,bitblast",
                     "--time-limit", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 seeds" in out

    def test_fuzz_cli_json_output(self, capsys, tmp_path):
        from repro.__main__ import main

        out_file = tmp_path / "summary.json"
        code = main(["fuzz", "--seeds", "1", "--oracles", "narrow",
                     "--format", "json", "--output", str(out_file),
                     "--time-limit", "20"])
        assert code == 0
        data = json.loads(out_file.read_text())
        assert data["schema"] == "repro-fuzz/v1"
        assert json.loads(capsys.readouterr().out)["schema"] == "repro-fuzz/v1"

    def test_fuzz_cli_rejects_unknown_oracle(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--oracles", "bogus"]) == 2
        assert "unknown oracle" in capsys.readouterr().err


class TestCaseEnvironment:
    def test_env_factory_is_deterministic(self):
        data = generate_case(5, "memory")
        e1, e2 = data.env_factory(), data.env_factory()
        assert e1.memories == e2.memories
        assert e1.memories  # memory profile binds at least one array

    def test_fuzz_case_reuses_flows(self):
        case = FuzzCase(generate_case(3), config=FAST)
        a = case.flow("milp-map")
        b = case.flow("milp-map")
        assert a is b

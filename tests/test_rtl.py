"""Unit tests for Verilog emission and the structural linter."""

import pytest

from repro.core import MapScheduler, SchedulerConfig
from repro.errors import RTLError
from repro.hls import CommercialHLSProxy
from repro.rtl import emit_verilog, lint_verilog
from repro.scheduling.schedule import Schedule
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


class TestEmission:
    def test_ports_present(self):
        sched = MapScheduler(build_fig1(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        text = emit_verilog(sched)
        assert "module fig1" in text
        assert "input wire clk" in text
        assert "output wire out_valid" in text
        assert "input wire [1:0] s_0" in text

    def test_feedback_register_emitted(self):
        sched = MapScheduler(build_recurrent(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        text = emit_verilog(sched)
        assert "_r1" in text  # at least one staged register
        assert "always @(posedge clk)" in text

    def test_initial_value_in_register(self):
        sched = MapScheduler(build_recurrent(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        text = emit_verilog(sched)
        assert "8'd3" in text  # the recurrence's declared initial

    def test_memory_blackbox(self):
        from repro.designs import build_mt

        sched = MapScheduler(build_mt(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        text = emit_verilog(sched)
        assert "black-box load" in text
        assert lint_verilog(text) == []

    def test_requires_cover(self, fig1_graph):
        bare = Schedule(graph=fig1_graph, ii=1, tcp=5.0,
                        cycle={n.nid: 0 for n in fig1_graph})
        with pytest.raises(RTLError, match="cover"):
            emit_verilog(bare)

    def test_ii_must_be_one(self, fig1_graph):
        bare = Schedule(graph=fig1_graph, ii=2, tcp=5.0,
                        cycle={n.nid: 0 for n in fig1_graph},
                        cover={0: None})
        with pytest.raises(RTLError, match="II=1"):
            emit_verilog(bare)

    @pytest.mark.parametrize("flow", ["map", "hls"])
    def test_lint_clean_for_both_flows(self, flow):
        g = build_recurrent()
        if flow == "map":
            sched = MapScheduler(g, XC7,
                                 SchedulerConfig(ii=1, tcp=10.0)).schedule()
        else:
            sched = CommercialHLSProxy(g, XC7, tcp=10.0).run().schedule
        assert lint_verilog(emit_verilog(sched)) == []


class TestLinter:
    def test_detects_unbalanced_parens(self):
        assert "unbalanced parentheses" in " ".join(
            lint_verilog("module m (; endmodule")
        )

    def test_detects_missing_module(self):
        assert lint_verilog("wire x = 1;")

    def test_detects_undeclared_identifier(self):
        text = """module m (
input wire clk
);
wire [3:0] a = ghost + 1;
endmodule"""
        assert any("ghost" in p for p in lint_verilog(text))

    def test_detects_degenerate_range(self):
        text = """module m (
input wire clk
);
wire [-1:0] a = 1;
endmodule"""
        assert any("degenerate" in p for p in lint_verilog(text))

    def test_clean_module_passes(self):
        text = """module m (
input wire clk,
input wire [3:0] a
);
wire [3:0] b = a ^ 4'd3;
assign c = b;
wire [3:0] c;
endmodule"""
        assert lint_verilog(text) == []

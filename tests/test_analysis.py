"""Unit tests for the static-analysis engine (repro.analysis).

Every diagnostic code gets at least one trigger test and the corresponding
clean case; the backward-compatible wrappers are checked to return the seed
behavior (empty problem lists) on all nine benchmarks.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis import (
    Diagnostic,
    DiagnosticReport,
    Linter,
    SCHEMA_VERSION,
    Severity,
    all_rules,
    lint_graph,
    lint_model,
    lint_schedule,
    rule_for,
)
from repro.core import MapScheduler, SchedulerConfig, schedule_problems
from repro.designs.registry import BENCHMARKS
from repro.errors import AnalysisError
from repro.ir import CDFG, DFGBuilder, OpKind, Operand, check_problems
from repro.milp.model import LinExpr, Model
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


def codes_of(report: DiagnosticReport) -> set[str]:
    return report.codes()


@pytest.fixture
def mapped_schedule():
    return MapScheduler(build_fig1(), TUTORIAL4,
                        SchedulerConfig(ii=1, tcp=5.0)).schedule()


# ----------------------------------------------------------------------
# IR rules
# ----------------------------------------------------------------------

class TestIRRules:
    def test_clean_graph_has_no_findings(self, fig1_graph):
        report = lint_graph(fig1_graph)
        assert len(report) == 0
        assert report.worst is None

    def test_ir001_missing_operand_source(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        x = g.add_node(OpKind.NOT, 4, operands=[Operand(a.nid)])
        g.add_node(OpKind.OUTPUT, 4, operands=[x.nid], name="o")
        g.set_operand(x.nid, 0, Operand(77, 1))
        report = lint_graph(g)
        assert "IR001" in codes_of(report)

    def test_ir001_gates_other_structural_rules(self):
        # A graph with a dangling operand AND an overflowing const: only the
        # well-formedness establisher may report; gated rules are skipped.
        g = CDFG()
        c = g.add_node(OpKind.CONST, 4, value=3)
        c.value = 99
        x = g.add_node(OpKind.NOT, 4, operands=[Operand(c.nid)])
        g.add_node(OpKind.OUTPUT, 4, operands=[x.nid], name="o")
        g.set_operand(x.nid, 0, Operand(77, 1))
        report = lint_graph(g)
        assert "IR001" in codes_of(report)
        assert "IR002" not in codes_of(report)

    def test_ir002_const_overflow(self):
        g = CDFG()
        c = g.add_node(OpKind.CONST, 4, value=3)
        c.value = 99
        g.add_node(OpKind.OUTPUT, 4, operands=[c.nid], name="o")
        assert "IR002" in codes_of(lint_graph(g))

    def test_ir003_mux_select_width(self):
        g = CDFG()
        sel = g.add_node(OpKind.INPUT, 2, name="sel")
        a = g.add_node(OpKind.INPUT, 4, name="a")
        m = g.add_node(OpKind.MUX, 4, operands=[sel.nid, a.nid, a.nid])
        g.add_node(OpKind.OUTPUT, 4, operands=[m.nid], name="o")
        assert "IR003" in codes_of(lint_graph(g))

    def test_ir004_output_not_sink(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        o = g.add_node(OpKind.OUTPUT, 4, operands=[a.nid], name="o")
        g.add_node(OpKind.NOT, 4, operands=[o.nid])
        assert "IR004" in codes_of(lint_graph(g))

    def test_ir005_slice_out_of_range(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        s = g.add_node(OpKind.SLICE, 3, operands=[a.nid], amount=2)
        g.add_node(OpKind.OUTPUT, 3, operands=[s.nid], name="o")
        assert "IR005" in codes_of(lint_graph(g))

    def test_ir006_combinational_cycle(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        x = g.add_node(OpKind.NOT, 4, operands=[Operand(a.nid)])
        y = g.add_node(OpKind.NOT, 4, operands=[Operand(x.nid)])
        g.add_node(OpKind.OUTPUT, 4, operands=[y.nid], name="o")
        g.set_operand(x.nid, 0, Operand(y.nid, 0))  # x <- y <- x, distance 0
        report = lint_graph(g)
        assert "IR006" in codes_of(report)
        diag = report.by_code("IR006")[0]
        # The reported set is the cycle plus anything locked behind it.
        assert {x.nid, y.nid} <= set(diag.nodes)

    def test_ir006_loop_carried_edge_is_not_a_cycle(self, recurrent_graph):
        assert "IR006" not in codes_of(lint_graph(recurrent_graph))

    def test_ir007_no_primary_outputs(self):
        g = CDFG()
        g.add_node(OpKind.INPUT, 4, name="a")
        assert "IR007" in codes_of(lint_graph(g))

    def test_ir008_dead_operation(self):
        b = DFGBuilder("t", width=4)
        i = b.input("i")
        _dead = i ^ 1
        b.output(i, "o")
        assert "IR008" in codes_of(lint_graph(b.graph))

    def test_ir010_width_mismatch(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        bn = g.add_node(OpKind.INPUT, 4, name="b")
        s = g.add_node(OpKind.ADD, 12, operands=[a.nid, bn.nid])
        g.add_node(OpKind.OUTPUT, 12, operands=[s.nid], name="o")
        report = lint_graph(g)
        assert "IR010" in codes_of(report)
        assert report.by_code("IR010")[0].severity is Severity.WARNING

    def test_ir010_carry_bit_is_fine(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        bn = g.add_node(OpKind.INPUT, 4, name="b")
        s = g.add_node(OpKind.ADD, 5, operands=[a.nid, bn.nid])
        g.add_node(OpKind.OUTPUT, 5, operands=[s.nid], name="o")
        assert "IR010" not in codes_of(lint_graph(g))

    def test_ir011_constant_select(self):
        b = DFGBuilder("t", width=4)
        a = b.input("a")
        c = b.input("c")
        m = b.mux(b.const(1, 1), a, c)
        b.output(m, "o")
        report = lint_graph(b.graph)
        assert "IR011" in codes_of(report)
        assert "arm 2" in report.by_code("IR011")[0].message

    def test_ir011_identical_arms(self):
        b = DFGBuilder("t", width=4)
        a = b.input("a")
        sel = b.input("s", 1)
        m = b.mux(sel, a, a)
        b.output(m, "o")
        report = lint_graph(b.graph)
        assert any("identical arms" in d.message
                   for d in report.by_code("IR011"))

    def test_ir012_constant_foldable(self):
        b = DFGBuilder("t", width=4)
        a = b.input("a")
        k = b.const(3) ^ b.const(5)  # compile-time constant
        b.output(a & k, "o")
        report = lint_graph(b.graph)
        assert "IR012" in codes_of(report)

    def test_ir012_reports_frontier_only(self):
        b = DFGBuilder("t", width=4)
        a = b.input("a")
        k1 = b.const(3) ^ b.const(5)
        k2 = k1 & b.const(6)  # frontier: only k2 feeds non-const logic
        b.output(a & k2, "o")
        report = lint_graph(b.graph)
        assert [d.node for d in report.by_code("IR012")] == [k2.nid]

    def test_ir013_unused_input(self):
        b = DFGBuilder("t", width=4)
        a = b.input("a")
        _unused = b.input("spare")
        b.output(a, "o")
        report = lint_graph(b.graph)
        assert "IR013" in codes_of(report)
        assert report.by_code("IR013")[0].severity is Severity.INFO


# ----------------------------------------------------------------------
# DEP soundness
# ----------------------------------------------------------------------

class TestDepSoundness:
    def test_dep001_clean_on_real_dep(self, fig1_graph, recurrent_graph):
        for g in (fig1_graph, recurrent_graph):
            assert "DEP001" not in codes_of(lint_graph(g))

    def test_dep001_fires_on_underapproximate_dep(self, monkeypatch):
        import repro.analysis.dep_rules as dep_rules

        b = DFGBuilder("t", width=4)
        x = b.input("x")
        y = b.input("y")
        b.output(x ^ y, "o")
        monkeypatch.setattr(dep_rules, "dep_bits",
                            lambda graph, node, j: [])
        report = lint_graph(b.graph)
        assert "DEP001" in codes_of(report)
        diag = report.by_code("DEP001")[0]
        assert diag.severity is Severity.ERROR
        assert "omits operand" in diag.message

    def test_dep001_respects_sign_test_refinement(self):
        # DEP keeps only the MSB of `x >= 0`; the blasted borrow chain
        # touches every bit structurally — must NOT be reported.
        b = DFGBuilder("t", width=6)
        x = b.input("x")
        b.output(x.sge(0), "o")
        assert "DEP001" not in codes_of(lint_graph(b.graph))

    def test_dep001_budget_zero_disables(self, monkeypatch):
        import repro.analysis.dep_rules as dep_rules

        b = DFGBuilder("t", width=4)
        x = b.input("x")
        y = b.input("y")
        b.output(x ^ y, "o")
        monkeypatch.setattr(dep_rules, "dep_bits",
                            lambda graph, node, j: [])
        report = lint_graph(b.graph, options={"dep_nodes": 0})
        assert "DEP001" not in codes_of(report)


# ----------------------------------------------------------------------
# Schedule rules
# ----------------------------------------------------------------------

class TestScheduleRules:
    def test_clean_schedule_has_no_errors(self, mapped_schedule):
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert not report.errors

    def test_sch001_unscheduled(self, mapped_schedule):
        nid = next(iter(mapped_schedule.cycle))
        del mapped_schedule.cycle[nid]
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert "SCH001" in codes_of(report)
        # SCH001 breaks the scheduled gate: no timing rule may crash/report.
        assert codes_of(report) == {"SCH001"}

    def test_sch002_root_mismatch(self, mapped_schedule):
        roots = [nid for nid, cut in mapped_schedule.cover.items()]
        a, b = roots[0], roots[1]
        mapped_schedule.cover[a] = mapped_schedule.cover[b]
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert "SCH002" in codes_of(report)

    def test_sch003_infeasible_cut(self, mapped_schedule):
        tight = dataclasses.replace(TUTORIAL4, k=1)
        report = lint_schedule(mapped_schedule, tight)
        assert "SCH003" in codes_of(report)

    def test_sch004_cut_input_not_root(self, mapped_schedule):
        # Drop a *mappable* root that feeds another cone's boundary (INPUT
        # boundary values are exempt from the roots-only rule).
        graph = mapped_schedule.graph
        boundary_feeders = set()
        for nid, cut in mapped_schedule.cover.items():
            for u in cut.boundary:
                if u in mapped_schedule.cover and graph.node(u).is_mappable:
                    boundary_feeders.add(u)
        victim = sorted(boundary_feeders)[0]
        del mapped_schedule.cover[victim]
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert {"SCH004", "SCH005"} <= codes_of(report)

    def test_sch007_cycle_budget(self, mapped_schedule):
        nid = next(iter(mapped_schedule.cover))
        mapped_schedule.start[nid] = mapped_schedule.tcp + 1.0
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert "SCH007" in codes_of(report)

    def test_sch008_chaining_violation(self, mapped_schedule):
        # Push a boundary producer's start late without moving its consumer.
        for nid, cut in mapped_schedule.cover.items():
            feeders = [u for u in cut.boundary if u in mapped_schedule.cover]
            if feeders:
                mapped_schedule.start[feeders[0]] = mapped_schedule.tcp - 0.01
                break
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert {"SCH007", "SCH008"} & codes_of(report)

    def test_sch009_dependence_violation(self, mapped_schedule):
        out = mapped_schedule.graph.outputs[0]
        src = out.operands[0].source
        mapped_schedule.cycle[src] = mapped_schedule.cycle[out.nid] + 5
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert "SCH009" in codes_of(report)

    def test_sch010_resource_oversubscribed(self):
        b = DFGBuilder("mem", width=8)
        addr = b.input("addr")
        v1 = b.load(addr, name="l1")
        v2 = b.load(addr + 1, name="l2")
        b.output(v1 ^ v2, "o")
        graph = b.build()
        sched = MapScheduler(graph, XC7,
                             SchedulerConfig(ii=1, tcp=20.0)).schedule()
        # At II=1 every op shares modulo slot 0, so linting against a
        # single-port device must flag the two loads.
        capped = dataclasses.replace(XC7, blackbox_counts={"mem_port": 1})
        report = lint_schedule(sched, capped)
        assert "SCH010" in codes_of(report)

    def test_sch011_duplicated_logic(self, mapped_schedule):
        # Graft one root's node into another cone's interior.
        roots = list(mapped_schedule.cover)
        a, b = roots[0], roots[1]
        cut = mapped_schedule.cover[a]
        mapped_schedule.cover[a] = dataclasses.replace(
            cut, interior=frozenset(set(cut.interior) | {b}))
        report = lint_schedule(mapped_schedule, TUTORIAL4)
        assert "SCH011" in codes_of(report)
        assert report.by_code("SCH011")[0].severity is Severity.INFO

    def test_sch012_recurrence_slack(self):
        graph = build_recurrent()
        sched = MapScheduler(graph, TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        # Shrink the period until the loop-carried budget is within one LUT
        # level of the (zero) implementation delays we leave in place.
        sched.tcp = TUTORIAL4.lut_level_delay * 0.5
        for nid in list(sched.cover):
            del sched.cover[nid]
        report = lint_schedule(sched, TUTORIAL4)
        assert "SCH012" in codes_of(report)
        assert report.by_code("SCH012")[0].severity is Severity.WARNING

    def test_sch012_quiet_on_relaxed_clock(self, recurrent_graph):
        sched = MapScheduler(recurrent_graph, TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        report = lint_schedule(sched, TUTORIAL4)
        assert "SCH012" not in codes_of(report)


# ----------------------------------------------------------------------
# MILP rules
# ----------------------------------------------------------------------

class TestMilpRules:
    def test_clean_model(self):
        m = Model("clean")
        x = m.binary("x")
        y = m.integer("y", lo=0, hi=10)
        m.add(x + 2 * y <= 7, name="cap")
        m.minimize(x + y)
        assert len(lint_model(m)) == 0

    def test_milp001_trivially_infeasible(self):
        m = Model("bad")
        x = m.binary("x")
        m.add(x <= 1)
        m.add(LinExpr({}, 5.0) <= 0, name="nonsense")
        m.minimize(x)
        report = lint_model(m)
        assert "MILP001" in codes_of(report)
        assert report.by_code("MILP001")[0].constraint == "nonsense"

    def test_milp002_unused_variable(self):
        m = Model("dead-var")
        x = m.binary("x")
        _dead = m.binary("never")
        m.add(x <= 1)
        m.minimize(x)
        report = lint_model(m)
        assert "MILP002" in codes_of(report)

    def test_milp003_unbounded_objective(self):
        m = Model("unbounded")
        x = m.continuous("x", lo=0.0)  # hi defaults to +inf
        m.maximize(x)  # no constraint touches x
        report = lint_model(m)
        assert "MILP003" in codes_of(report)

    def test_milp003_bounded_is_clean(self):
        m = Model("bounded")
        x = m.continuous("x", lo=0.0, hi=5.0)
        m.maximize(x)
        assert "MILP003" not in codes_of(lint_model(m))

    def test_milp004_non_finite(self):
        m = Model("nan")
        x = m.binary("x")
        m.add(x * float("inf") <= 1, name="broken")
        m.minimize(x)
        report = lint_model(m)
        assert "MILP004" in codes_of(report)

    def test_milp005_duplicate(self):
        m = Model("dup")
        x = m.binary("x")
        m.add(x <= 1, name="one")
        m.add(x <= 1, name="two")
        m.minimize(x)
        report = lint_model(m)
        assert "MILP005" in codes_of(report)
        assert "duplicates one" in report.by_code("MILP005")[0].message

    def test_model_lint_method(self):
        m = Model("method")
        x = m.binary("x")
        m.add(x <= 1)
        m.minimize(x)
        assert isinstance(m.lint(), DiagnosticReport)


# ----------------------------------------------------------------------
# Linter configuration, report API, JSON schema
# ----------------------------------------------------------------------

def _graph_with_warning_and_info():
    b = DFGBuilder("t", width=4)
    a = b.input("a")
    _unused = b.input("spare")          # IR013 info
    k = b.const(3) ^ b.const(5)         # IR012 warning
    b.output(a & k, "o")
    return b.graph


class TestLinterConfig:
    def test_select_prefix(self):
        report = lint_graph(_graph_with_warning_and_info(), select=["IR013"])
        assert codes_of(report) == {"IR013"}

    def test_ignore(self):
        report = lint_graph(_graph_with_warning_and_info(), ignore=["IR012"])
        assert "IR012" not in codes_of(report)
        assert "IR013" in codes_of(report)

    def test_severity_override(self):
        report = lint_graph(_graph_with_warning_and_info(),
                            severity_overrides={"IR012": "error"})
        assert report.by_code("IR012")[0].severity is Severity.ERROR
        assert report.fails("error")

    def test_fails_threshold(self):
        report = lint_graph(_graph_with_warning_and_info())
        assert not report.fails("error")
        assert report.fails("warning")

    def test_raise_if(self):
        report = lint_graph(_graph_with_warning_and_info())
        with pytest.raises(AnalysisError) as exc:
            report.raise_if("warning")
        assert exc.value.report is report

    def test_rule_metadata(self):
        rule = rule_for("IR006")
        assert rule.name == "combinational-cycle"
        assert rule.target == "cdfg"
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_json_schema_stability(self):
        report = lint_graph(_graph_with_warning_and_info())
        payload = json.loads(report.to_json())
        assert payload["schema"] == SCHEMA_VERSION
        assert set(payload) == {"schema", "subject", "summary", "diagnostics"}
        assert set(payload["summary"]) == {"error", "warning", "info"}
        for diag in payload["diagnostics"]:
            assert {"code", "severity", "rule", "message"} <= set(diag)
            assert set(diag) <= {"code", "severity", "rule", "message",
                                 "node", "nodes", "edge", "constraint",
                                 "hint", "subject"}

    def test_sorted_most_severe_first(self):
        report = DiagnosticReport("t", [
            Diagnostic("IR013", Severity.INFO, "info finding"),
            Diagnostic("IR001", Severity.ERROR, "error finding"),
            Diagnostic("IR012", Severity.WARNING, "warning finding"),
        ])
        assert [d.severity for d in report.sorted()] == \
            [Severity.ERROR, Severity.WARNING, Severity.INFO]

    def test_render_text_mentions_code_and_summary(self):
        report = lint_graph(_graph_with_warning_and_info())
        text = report.render_text()
        assert "IR012" in text and "warning(s)" in text


# ----------------------------------------------------------------------
# Backward-compatible wrappers (seed behavior preserved)
# ----------------------------------------------------------------------

class TestWrapperCompatibility:
    def test_check_problems_clean_on_all_benchmarks(self):
        for name, spec in BENCHMARKS.items():
            assert check_problems(spec.build()) == [], name

    def test_schedule_problems_clean_on_mapped_schedules(self):
        for build in (build_fig1, build_recurrent):
            sched = MapScheduler(build(), TUTORIAL4,
                                 SchedulerConfig(ii=1, tcp=5.0)).schedule()
            assert schedule_problems(sched, TUTORIAL4) == []

    def test_check_problems_matches_rule_messages(self):
        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        s = g.add_node(OpKind.SLICE, 3, operands=[a.nid], amount=2)
        g.add_node(OpKind.OUTPUT, 3, operands=[s.nid], name="o")
        problems = check_problems(g)
        report = lint_graph(g, select=["IR005"])
        assert problems == [d.message for d in report]

    def test_benchmarks_lint_error_free(self):
        for name, spec in BENCHMARKS.items():
            report = lint_graph(spec.build())
            assert not report.errors, (name, report.render_text())


# ----------------------------------------------------------------------
# CLI: python -m repro lint
# ----------------------------------------------------------------------

class TestLintCli:
    def test_lint_single_benchmark_text(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "clz"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_json_schema(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "CLZ", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["failed"] is False
        assert payload["reports"][0]["subject"] == "clz"

    def test_lint_file_target(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.ir.serialize import save_graph

        b = DFGBuilder("t", width=4)
        a = b.input("a")
        _unused = b.input("spare")
        b.output(a, "o")
        path = tmp_path / "design.json"
        save_graph(b.graph, str(path))
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        assert "IR013" in out

    def test_lint_fail_on_warning(self, tmp_path):
        from repro.__main__ import main
        from repro.ir.serialize import save_graph

        path = tmp_path / "warny.json"
        save_graph(_graph_with_warning_and_info(), str(path))
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1
        assert main(["lint", str(path), "--fail-on", "warning",
                     "--ignore", "IR012", "--ignore", "IR013",
                     "--ignore", "DF"]) == 0

    def test_lint_select(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "CLZ", "--select", "IR006",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"][0]["diagnostics"] == []

    def test_lint_unknown_target(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "no-such-design"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_lint_unloadable_file(self, capsys, tmp_path):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        assert main(["lint", str(bad)]) == 2
        assert "failed to load" in capsys.readouterr().err

    def test_lint_defaults_to_all_benchmarks(self, capsys):
        from repro.__main__ import main

        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert out.count("error(s)") == len(BENCHMARKS)


# ----------------------------------------------------------------------
# Flow integration: run_flow pre-flight lint
# ----------------------------------------------------------------------

class TestFlowIntegration:
    def test_run_flow_rejects_error_graphs(self):
        from repro.experiments import run_flow

        g = CDFG()
        a = g.add_node(OpKind.INPUT, 4, name="a")
        x = g.add_node(OpKind.NOT, 4, operands=[Operand(a.nid)])
        g.add_node(OpKind.OUTPUT, 4, operands=[x.nid], name="o")
        g.set_operand(x.nid, 0, Operand(77, 1))
        with pytest.raises(AnalysisError) as exc:
            run_flow(g, "milp-map", TUTORIAL4,
                     SchedulerConfig(ii=1, tcp=5.0))
        assert "IR001" in {d.code for d in exc.value.report}

    def test_verification_error_carries_report(self, mapped_schedule):
        from repro.core import verify_schedule
        from repro.errors import ScheduleVerificationError

        nid = next(iter(mapped_schedule.cover))
        mapped_schedule.start[nid] = mapped_schedule.tcp + 1.0
        with pytest.raises(ScheduleVerificationError) as exc:
            verify_schedule(mapped_schedule, TUTORIAL4)
        assert exc.value.report is not None
        assert "SCH007" in exc.value.report.codes()

"""II sweep + warm-start behavior of the MILP schedulers.

The load-bearing property: warm starts are a *performance* lever, never a
*quality* lever — a warm-started sweep must land on exactly the same
(II, objective) as a cold one. docs/performance.md states this as the
safety contract; these tests are the evidence.
"""

from dataclasses import replace

import pytest

from repro.core.config import SchedulerConfig
from repro.core.mapsched import BaseScheduler, MapScheduler
from repro.designs.registry import BENCHMARKS
from repro.errors import InfeasibleError
from repro.ir import DFGBuilder
from repro.ir.graph import OpKind
from repro.ir.transforms import narrow_graph
from repro.tech.device import XC7


def _sweep(cls, graph, device, config):
    scheduler = cls(graph, device, config)
    schedule = scheduler.sweep()
    return scheduler, schedule


@pytest.mark.parametrize("design", sorted(BENCHMARKS))
def test_warm_and_cold_base_sweeps_agree(design):
    """All nine benchmarks, MILP-base: warm start changes nothing."""
    graph, _ = narrow_graph(BENCHMARKS[design].build())
    cold_cfg = SchedulerConfig(use_mapping=False, presolve=False,
                               warm_start=False)
    warm_cfg = replace(cold_cfg, presolve=True, warm_start=True)
    _, cold = _sweep(BaseScheduler, graph, XC7, cold_cfg)
    _, warm = _sweep(BaseScheduler, graph, XC7, warm_cfg)
    assert warm.ii == cold.ii
    assert warm.objective == pytest.approx(cold.objective, abs=1e-4)


@pytest.mark.parametrize("design", ["GSM", "DR"])
def test_warm_and_cold_map_sweeps_agree(design):
    """Mapping-aware subset: same property on the full formulation."""
    graph, _ = narrow_graph(BENCHMARKS[design].build())
    cold_cfg = SchedulerConfig(presolve=False, warm_start=False)
    warm_cfg = replace(cold_cfg, presolve=True, warm_start=True)
    _, cold = _sweep(MapScheduler, graph, XC7, cold_cfg)
    _, warm = _sweep(MapScheduler, graph, XC7, warm_cfg)
    assert warm.ii == cold.ii
    assert warm.objective == pytest.approx(cold.objective, abs=1e-4)


def _port_limited_graph():
    b = DFGBuilder("ports", width=8)
    addr = b.input("addr", 4)
    loads = [b.load(addr + i, name=f"m{i}") for i in range(3)]
    acc = loads[0] ^ loads[1]
    b.output(acc ^ loads[2], "o")
    return b.build()


def test_sweep_walks_past_infeasible_ii():
    """Three loads on a 2-port memory can't start an iteration every
    cycle; the sweep must discover II=2 on its own."""
    graph = _port_limited_graph()
    device = XC7.with_resources(mem_port=2)
    scheduler = MapScheduler(graph, device, SchedulerConfig(ii=1))
    schedule = scheduler.sweep()
    assert schedule.ii == 2
    assert scheduler.config.ii == 2
    # Both probes are visible in the trace, tagged with their II.
    probed = {s.meta.get("ii") for s in scheduler.tracer.spans
              if s.name in ("milp-build", "presolve", "solve")}
    assert {1, 2} <= probed


def test_sweep_respects_ii_max_cap():
    graph = _port_limited_graph()
    device = XC7.with_resources(mem_port=2)
    scheduler = MapScheduler(graph, device, SchedulerConfig(ii=1))
    with pytest.raises(InfeasibleError):
        scheduler.sweep(ii_max=1)
    # config restored after a failed sweep
    assert scheduler.config.ii == 1


def test_warm_start_span_reports_reason_or_use():
    graph, _ = narrow_graph(BENCHMARKS["GSM"].build())
    scheduler = MapScheduler(graph, XC7, SchedulerConfig())
    scheduler.schedule()
    span = scheduler.tracer.last("warm-start")
    assert span is not None
    assert "used" in span.meta
    if span.meta["used"]:
        assert "objective" in span.meta
    else:
        assert "reason" in span.meta


def test_blackbox_kind_exists_for_port_graph():
    """Guard: the fixture really uses resource-classed black boxes."""
    graph = _port_limited_graph()
    loads = graph.nodes_of_kind(OpKind.LOAD)
    assert loads and all(n.rclass == "mem_port" for n in loads)

"""Unit tests for the functional and cycle-accurate simulators."""

import pytest

from repro.core import MapScheduler, SchedulerConfig
from repro.errors import SimulationError
from repro.hls import CommercialHLSProxy
from repro.ir import DFGBuilder
from repro.sim import (
    FunctionalSimulator,
    PipelineSimulator,
    SimEnvironment,
    replay_equivalent,
)
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


class TestFunctional:
    def test_missing_input_raises(self, fig1_graph):
        sim = FunctionalSimulator(fig1_graph)
        with pytest.raises(SimulationError, match="missing input"):
            sim.step({"s": 1})

    def test_recurrence_uses_initial_then_history(self):
        b = DFGBuilder("t", width=8)
        i = b.input("i")
        acc = b.recurrence("acc", width=8, initial=10)
        nxt = acc + i
        nxt.feed(acc)
        b.output(nxt, "o")
        g = b.build()
        sim = FunctionalSimulator(g)
        assert sim.step({"i": 1})["o"] == 11
        assert sim.step({"i": 2})["o"] == 13
        sim.reset()
        assert sim.step({"i": 5})["o"] == 15

    def test_memory_binding_by_name(self):
        b = DFGBuilder("t", width=8)
        addr = b.input("addr", 4)
        v = b.load(addr, name="rom")
        b.output(v, "o")
        g = b.build()
        env = SimEnvironment(memories={"rom": [7, 8, 9]})
        sim = FunctionalSimulator(g, env)
        assert sim.step({"addr": 1})["o"] == 8
        assert sim.step({"addr": 4})["o"] == 8  # wraps modulo length

    def test_missing_memory_raises(self):
        b = DFGBuilder("t", width=8)
        addr = b.input("addr", 4)
        b.output(b.load(addr, name="rom"), "o")
        sim = FunctionalSimulator(b.build())
        with pytest.raises(SimulationError, match="no memory"):
            sim.step({"addr": 0})

    def test_store_visible_to_later_load(self):
        b = DFGBuilder("t", width=8)
        addr = b.input("addr", 4)
        data = b.input("data", 8)
        from repro.ir import OpKind
        st = b.blackbox(OpKind.STORE, addr, data, width=8, name="ram")
        b.output(st, "o")
        g = b.build()
        env = SimEnvironment(memories={"ram": [0] * 4})
        sim = FunctionalSimulator(g, env)
        sim.step({"addr": 2, "data": 42})
        assert env.memories["ram"][2] == 42

    def test_values_at_exposes_internals(self, fig1_graph):
        sim = FunctionalSimulator(fig1_graph)
        sim.step({"s": 3, "t": 1})
        values = sim.values_at(0)
        assert len(values) == len(fig1_graph)


class TestPipelineReplay:
    def test_mapped_schedule_replays(self):
        sched = MapScheduler(build_recurrent(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        stream = [{"s": k * 7 % 256, "t": k * 13 % 256} for k in range(30)]
        assert replay_equivalent(sched, XC7, stream)

    def test_hls_schedule_replays(self):
        result = CommercialHLSProxy(build_recurrent(), XC7, tcp=10.0).run()
        stream = [{"s": k * 5 % 256, "t": k * 3 % 256} for k in range(30)]
        assert replay_equivalent(result.schedule, XC7, stream)

    def test_corrupted_schedule_detected(self):
        sched = MapScheduler(build_fig1(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        # move a producer later than its consumer: replay must notice
        out = sched.graph.outputs[0]
        producer = out.operands[0].source
        sched.cycle[producer] = sched.cycle[out.nid] + 2
        sim = PipelineSimulator(sched, TUTORIAL4)
        with pytest.raises(SimulationError, match="later cycle|before it"):
            sim.run([{"s": 1, "t": 2}])

    def test_combinational_race_detected(self):
        sched = MapScheduler(build_fig1(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        # force a root to start before its cut inputs finish
        mappable_roots = [
            n for n in sched.cover
            if sched.graph.node(n).is_mappable and sched.cover[n].interior
        ]
        if not mappable_roots:
            pytest.skip("no merged cone in this cover")
        root = mappable_roots[0]
        # push every entry of this root unreasonably late in the same cycle
        for u, d in sched.cover[root].entries:
            if u in sched.start and d == 0:
                sched.start[u] = sched.start[root] + 3.0
        sim = PipelineSimulator(sched, TUTORIAL4)
        with pytest.raises(SimulationError):
            sim.run([{"s": 1, "t": 2}])

    def test_replay_with_memories_fresh_envs(self):
        from repro.designs import build_dr, make_dr_env

        sched = MapScheduler(build_dr(), XC7,
                             SchedulerConfig(ii=1, tcp=10.0)).schedule()
        stream = [{"query": k * 97 % (1 << 32), "idx": k % 64}
                  for k in range(20)]
        assert replay_equivalent(sched, XC7, stream,
                                 env_factory=lambda: make_dr_env())


class TestExhaustiveSmallWidth:
    """Pipeline replay vs. functional simulation over *all* inputs of
    every two-input opcode at widths 1-3 (satellite of the fuzzing PR:
    benchmarks only cover these opcodes incidentally)."""

    OPS = {
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "eq": lambda a, b: a.eq(b),
        "ne": lambda a, b: a.ne(b),
        "lt": lambda a, b: a.lt(b),
        "ge": lambda a, b: a.ge(b),
        "slt": lambda a, b: a.slt(b),
        "sge": lambda a, b: a.sge(b),
    }

    @pytest.mark.parametrize("opname", sorted(OPS))
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_replay_matches_functional_exhaustively(self, opname, width):
        b = DFGBuilder(f"exh_{opname}_{width}", width=width)
        x, y = b.input("x", width), b.input("y", width)
        b.output(self.OPS[opname](x, y), "o")
        graph = b.build()
        sched = MapScheduler(graph, XC7,
                             SchedulerConfig(ii=1, tcp=10.0,
                                             max_cuts=8)).schedule()
        stream = [{"x": a, "y": c}
                  for a in range(1 << width) for c in range(1 << width)]
        assert replay_equivalent(sched, XC7, stream), (opname, width)

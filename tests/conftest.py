"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import SchedulerConfig
from repro.ir.builder import DFGBuilder
from repro.tech.device import TUTORIAL4, XC7, Device


@pytest.fixture
def xc7() -> Device:
    return XC7


@pytest.fixture
def tutorial() -> Device:
    return TUTORIAL4


@pytest.fixture
def fast_config() -> SchedulerConfig:
    """A config that keeps MILPs tiny and solves fast in tests."""
    return SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8)


def build_fig1(width: int = 2):
    """The feed-forward Figure 1 kernel (shared by many tests)."""
    b = DFGBuilder("fig1", width=width)
    s = b.input("s", width)
    t = b.input("t", width)
    a = s >> 1
    x = t ^ a
    c = x.sge(0)
    e = b.mux(c, t ^ s, t)
    b.output(e, "out")
    return b.build()


def build_recurrent(width: int = 8):
    """A kernel with a distance-1 recurrence (shared by many tests)."""
    b = DFGBuilder("recur", width=width)
    s = b.input("s", width)
    t = b.input("t", width)
    acc = b.recurrence("acc", width=width, initial=3)
    c = (t ^ (s >> 1)).sge(0)
    nxt = b.mux(c, acc ^ t, acc + 1)
    nxt.feed(acc)
    b.output(nxt, "out")
    return b.build()


@pytest.fixture
def fig1_graph():
    return build_fig1()


@pytest.fixture
def recurrent_graph():
    return build_recurrent()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)

"""Unit tests for the kernel-language frontend."""

import pytest

from repro.errors import FrontendError
from repro.ir import compile_kernel
from repro.sim.functional import FunctionalSimulator


class TestParsing:
    def test_inputs_and_outputs(self):
        g = compile_kernel("input a : 8\noutput a : o")
        assert [n.width for n in g.inputs] == [8]
        assert [n.name for n in g.outputs] == ["o"]

    def test_comments_and_blank_lines(self):
        g = compile_kernel("""
# a comment
input a : 8

output a  # trailing comment
""")
        assert len(g.inputs) == 1

    def test_precedence_sum_tighter_than_xor(self):
        g = compile_kernel("""
input a : 8
input b : 8
output a ^ b + 1 : o
""")
        out_src = g.node(g.outputs[0].operands[0].source)
        assert out_src.kind.value == "xor"

    def test_parentheses(self):
        g = compile_kernel("""
input a : 8
output (a ^ 1) + 1 : o
""")
        out_src = g.node(g.outputs[0].operands[0].source)
        assert out_src.kind.value == "add"

    def test_slices_and_bits(self):
        g = compile_kernel("""
input a : 8
t = a[7:4]
output t ^ a[0] : o
""")
        assert any(n.kind.value == "slice" for n in g)

    def test_calls(self):
        g = compile_kernel("""
input a : 8
input sel : 1
m = mux(sel, a, zext(trunc(a, 4), 8))
output m : o
""")
        kinds = {n.kind.value for n in g}
        assert {"mux", "trunc", "zext"} <= kinds

    def test_load_call(self):
        g = compile_kernel("""
input addr : 8
output load(addr, 16) : data
""")
        assert any(n.kind.value == "load" for n in g)


class TestRegisters:
    def test_register_recurrence(self):
        src = """
input x : 8
reg acc : 8 init 5
nxt = acc ^ x
acc <= nxt
output nxt : o
"""
        g = compile_kernel(src)
        sim = FunctionalSimulator(g)
        assert sim.step({"x": 1})["o"] == 4   # 5 ^ 1
        assert sim.step({"x": 2})["o"] == 6   # 4 ^ 2

    def test_plain_assign_to_reg_rejected(self):
        with pytest.raises(FrontendError, match="<="):
            compile_kernel("""
reg r : 8 init 0
r = 5
output r
""")

    def test_update_non_reg_rejected(self):
        with pytest.raises(FrontendError, match="not a reg"):
            compile_kernel("""
input a : 8
a <= a
output a
""")


class TestErrors:
    def test_undefined_name(self):
        with pytest.raises(FrontendError, match="undefined"):
            compile_kernel("output nothing")

    def test_bad_statement(self):
        with pytest.raises(FrontendError, match="cannot tokenize"):
            compile_kernel("input a : 8\n???")

    def test_unparseable_statement(self):
        with pytest.raises(FrontendError, match="cannot parse"):
            compile_kernel("input a : 8\na a a")

    def test_bad_input_decl(self):
        with pytest.raises(FrontendError, match="input NAME"):
            compile_kernel("input a")

    def test_variable_shift_amount_rejected(self):
        with pytest.raises(FrontendError, match="integer literals"):
            compile_kernel("""
input a : 8
input s : 3
output a >> s
""")

    def test_trailing_tokens(self):
        with pytest.raises(FrontendError, match="trailing"):
            compile_kernel("""
input a : 8
t = a ^ 1 a
output t
""")

    def test_constant_only_binop_rejected(self):
        with pytest.raises(FrontendError, match="at least one operand"):
            compile_kernel("""
input a : 8
t = 1 ^ 2
output a
""")


class TestSemantics:
    def test_matches_handwritten_reference(self):
        src = """
input a : 8
input b : 8
t = (a ^ b) >> 1
c = t >= 0x40
out1 = mux(c, a + b, a - b)
output out1 : r
"""
        g = compile_kernel(src)
        sim = FunctionalSimulator(g)

        def ref(a, b):
            t = ((a ^ b) & 0xFF) >> 1
            return (a + b) & 0xFF if t >= 0x40 else (a - b) & 0xFF

        import random
        rng = random.Random(9)
        for _ in range(50):
            a, b = rng.randrange(256), rng.randrange(256)
            assert sim.step({"a": a, "b": b})["r"] == ref(a, b)

    def test_int_on_left_of_binop_keeps_order(self):
        g = compile_kernel("""
input a : 8
output 255 - a : o
""")
        sim = FunctionalSimulator(g)
        assert sim.step({"a": 5})["o"] == 250

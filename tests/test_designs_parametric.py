"""Parametric checks on benchmark generators (widths, sizes, variants)."""

import random

import pytest

from repro.designs import (
    build_clz,
    build_cordic,
    build_gfmul,
    build_rs,
    build_xorr,
    reference_clz,
    reference_cordic,
    reference_gfmul,
    reference_xorr,
)
from repro.ir.validate import check_problems
from repro.sim import FunctionalSimulator


class TestCLZWidths:
    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_matches_reference(self, width, rng):
        g = build_clz(width)
        assert check_problems(g) == []
        sim = FunctionalSimulator(g)
        for x in (0, 1, (1 << width) - 1, 1 << (width - 1)):
            assert sim.step({"x": x})["clz"] == reference_clz(x, width)
        for _ in range(20):
            x = rng.randrange(1 << width)
            assert sim.step({"x": x})["clz"] == reference_clz(x, width)


class TestXORRVariants:
    @pytest.mark.parametrize("elements,balanced", [(4, True), (7, True),
                                                   (16, False), (33, True)])
    def test_matches_reference(self, elements, balanced, rng):
        g = build_xorr(elements=elements, width=8, balanced=balanced)
        assert check_problems(g) == []
        sim = FunctionalSimulator(g)
        vals = [rng.randrange(256) for _ in range(elements)]
        out = sim.step({f"x{i}": v for i, v in enumerate(vals)})["xorr"]
        assert out == reference_xorr(vals, width=8)

    def test_balanced_has_log_depth(self):
        gb = build_xorr(elements=32, width=8, balanced=True)
        gc = build_xorr(elements=32, width=8, balanced=False)

        def depth(g):
            d = {}
            for nid in g.topological_order():
                node = g.node(nid)
                d[nid] = 1 + max((d[o.source] for o in node.operands
                                  if o.distance == 0), default=0)
            return max(d.values())

        assert depth(gb) < depth(gc)

    def test_too_few_elements_rejected(self):
        with pytest.raises(ValueError):
            build_xorr(elements=1)


class TestGFMULVariants:
    @pytest.mark.parametrize("poly", [0x1B, 0x1D])
    def test_polynomial_variants(self, poly, rng):
        g = build_gfmul(poly=poly)
        sim = FunctionalSimulator(g)
        for _ in range(40):
            a, m = rng.randrange(256), rng.randrange(256)
            assert sim.step({"a": a, "b": m})["p"] == \
                reference_gfmul(a, m, poly=poly)

    def test_partial_steps(self, rng):
        # 4 unrolled steps only use the low multiplier nibble
        g = build_gfmul(steps=4)
        sim = FunctionalSimulator(g)
        for _ in range(30):
            a, m = rng.randrange(256), rng.randrange(16)
            assert sim.step({"a": a, "b": m})["p"] == reference_gfmul(a, m)


class TestCORDICIterations:
    @pytest.mark.parametrize("iterations", [1, 3, 8])
    def test_matches_reference(self, iterations, rng):
        g = build_cordic(iterations=iterations)
        sim = FunctionalSimulator(g)
        for _ in range(20):
            x, y, z = (rng.randrange(1 << 16) for _ in range(3))
            out = sim.step({"x": x, "y": y, "z": z})
            ref = reference_cordic(x, y, z, iterations=iterations)
            assert (out["x_out"], out["y_out"], out["z_out"]) == ref


class TestRSVariants:
    @pytest.mark.parametrize("syndromes", [1, 2, 4])
    def test_builds_and_validates(self, syndromes):
        g = build_rs(syndromes=syndromes)
        assert check_problems(g) == []
        out_names = {n.name for n in g.outputs}
        assert {f"syn{j}" for j in range(1, syndromes + 1)} <= out_names

"""Edge-path tests for the branch-and-bound backend and the LP writer."""

import pytest

from repro.milp import Model, SolveStatus, write_lp
from repro.milp.bnb import solve_branch_and_bound


class TestBnBEdges:
    def test_node_limit_returns_incumbent_or_error(self):
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(12)]
        expr = xs[0] * 0
        for i, x in enumerate(xs):
            expr = expr + (i % 3 + 1) * x
        m.add(expr <= 10)
        obj = xs[0] * 0
        for i, x in enumerate(xs):
            obj = obj + (7 - i) * x
        m.maximize(obj)
        sol = solve_branch_and_bound(m, max_nodes=2)
        # with a tiny node budget we either get a feasible incumbent or an
        # explicit no-incumbent status; never a silently wrong OPTIMAL claim
        if sol.status == SolveStatus.OPTIMAL:
            full = m.solve("scipy")
            assert sol.objective == pytest.approx(full.objective)
        else:
            assert sol.status in (SolveStatus.FEASIBLE,
                                  SolveStatus.NO_INCUMBENT)

    def test_continuous_only_model(self):
        m = Model()
        x = m.continuous("x", 0, 4)
        y = m.continuous("y", 0, 4)
        m.add(x + y >= 3)
        m.minimize(x + 2 * y)
        sol = solve_branch_and_bound(m)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)

    def test_unbounded_detected(self):
        m = Model()
        x = m.continuous("x", 0, float("inf"))
        m.add(x >= 1)
        m.maximize(1 * x)
        assert m.solve("bnb").status == SolveStatus.UNBOUNDED

    def test_time_limit_zero_still_safe(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 0)
        m.minimize(1 * x)
        sol = solve_branch_and_bound(m, time_limit=0.0)
        assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                              SolveStatus.NO_INCUMBENT)

    def _knapsack(self):
        """Small max-knapsack with a known optimum of 13 at x1=x2=x3=1."""
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(4)]
        m.add(3 * xs[0] + 5 * xs[1] + 4 * xs[2] + 6 * xs[3] <= 12, "cap")
        m.maximize(4 * xs[0] + 5 * xs[1] + 4 * xs[2] + 6 * xs[3])
        return m, xs

    def test_exhausted_prunable_frontier_is_optimal(self):
        # Regression for the status bug: a limit-terminated search whose
        # surviving heap entries are all prunable has in fact proven
        # optimality. With the known optimum as a warm start and an
        # integral objective, the root bound is prunable immediately, so
        # even max_nodes=0 must report OPTIMAL (the old logic said
        # FEASIBLE whenever the limit fired).
        m, xs = self._knapsack()
        warm = {xs[0].index: 1.0, xs[1].index: 1.0, xs[2].index: 1.0,
                xs[3].index: 0.0}
        sol = solve_branch_and_bound(m, max_nodes=0, warm_start=warm)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(13.0)
        assert sol.stats["warm_start"] is True

    def test_infeasible_warm_start_ignored(self):
        m, xs = self._knapsack()
        warm = {x.index: 1.0 for x in xs}  # violates the capacity row
        sol = solve_branch_and_bound(m, warm_start=warm)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(13.0)
        assert sol.stats["warm_start"] is False

    def test_limit_without_incumbent_is_no_incumbent(self):
        m, _ = self._knapsack()
        sol = solve_branch_and_bound(m, max_nodes=0)
        # No warm start, a fractional root, and a zero node budget: the
        # dive heuristic may still find an incumbent (FEASIBLE/OPTIMAL),
        # but a missing incumbent must be NO_INCUMBENT, never ERROR.
        assert sol.status != SolveStatus.ERROR
        if sol.objective is None:
            assert sol.status == SolveStatus.NO_INCUMBENT

    def test_matches_scipy_on_mixed_model(self):
        m = Model()
        x = m.integer("x", 0, 7)
        y = m.binary("y")
        z = m.continuous("z", 0.0, 2.5)
        m.add(x + 3 * y + z <= 8, "cap")
        m.add(x - z >= 1, "link")
        m.maximize(2 * x + 5 * y + z)
        ours = solve_branch_and_bound(m)
        ref = m.solve("scipy")
        assert ours.status == SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective)
        assert "nodes=" in ours.message and "lps=" in ours.message

    def test_branch_hints_are_safe(self):
        # Hints only steer the dive heuristic; a misleading hint must
        # never change the final answer.
        m, xs = self._knapsack()
        hints = {x.index: 0.0 for x in xs}
        sol = solve_branch_and_bound(m, branch_hints=hints)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(13.0)


class TestLPWriterEdges:
    def test_infinite_bounds_rendered(self):
        m = Model()
        m.continuous("free", 0.0, float("inf"))
        m.minimize(m.variables[0] * 1.0)
        assert "+inf" in write_lp(m)

    def test_names_sanitized(self):
        m = Model()
        v = m.binary("c[3,7]")
        m.add(v <= 1)
        m.minimize(1 * v)
        text = write_lp(m)
        assert "c[3,7]" not in text  # brackets are not legal LP identifiers
        assert "c_3_7_" in text

    def test_unit_coefficients_compact(self):
        m = Model()
        x = m.continuous("x", 0, 1)
        y = m.continuous("y", 0, 1)
        m.add(x - y <= 0, name="ord")
        m.minimize(x + y)
        text = write_lp(m)
        assert "ord: x - y <= 0" in text

    def test_empty_objective(self):
        m = Model()
        m.binary("x")
        text = write_lp(m)
        assert "Minimize" in text and "End" in text

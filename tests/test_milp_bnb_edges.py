"""Edge-path tests for the branch-and-bound backend and the LP writer."""

import pytest

from repro.milp import Model, SolveStatus, write_lp
from repro.milp.bnb import solve_branch_and_bound


class TestBnBEdges:
    def test_node_limit_returns_incumbent_or_error(self):
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(12)]
        expr = xs[0] * 0
        for i, x in enumerate(xs):
            expr = expr + (i % 3 + 1) * x
        m.add(expr <= 10)
        obj = xs[0] * 0
        for i, x in enumerate(xs):
            obj = obj + (7 - i) * x
        m.maximize(obj)
        sol = solve_branch_and_bound(m, max_nodes=2)
        # with a tiny node budget we either get a feasible incumbent or an
        # explicit error status; never a silently wrong OPTIMAL claim
        if sol.status == SolveStatus.OPTIMAL:
            full = m.solve("scipy")
            assert sol.objective == pytest.approx(full.objective)
        else:
            assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.ERROR)

    def test_continuous_only_model(self):
        m = Model()
        x = m.continuous("x", 0, 4)
        y = m.continuous("y", 0, 4)
        m.add(x + y >= 3)
        m.minimize(x + 2 * y)
        sol = solve_branch_and_bound(m)
        assert sol.status == SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)

    def test_unbounded_detected(self):
        m = Model()
        x = m.continuous("x", 0, float("inf"))
        m.add(x >= 1)
        m.maximize(1 * x)
        assert m.solve("bnb").status == SolveStatus.UNBOUNDED

    def test_time_limit_zero_still_safe(self):
        m = Model()
        x = m.binary("x")
        m.add(x >= 0)
        m.minimize(1 * x)
        sol = solve_branch_and_bound(m, time_limit=0.0)
        assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                              SolveStatus.ERROR)


class TestLPWriterEdges:
    def test_infinite_bounds_rendered(self):
        m = Model()
        m.continuous("free", 0.0, float("inf"))
        m.minimize(m.variables[0] * 1.0)
        assert "+inf" in write_lp(m)

    def test_names_sanitized(self):
        m = Model()
        v = m.binary("c[3,7]")
        m.add(v <= 1)
        m.minimize(1 * v)
        text = write_lp(m)
        assert "c[3,7]" not in text  # brackets are not legal LP identifiers
        assert "c_3_7_" in text

    def test_unit_coefficients_compact(self):
        m = Model()
        x = m.continuous("x", 0, 1)
        y = m.continuous("y", 0, 1)
        m.add(x - y <= 0, name="ord")
        m.minimize(x + y)
        text = write_lp(m)
        assert "ord: x - y <= 0" in text

    def test_empty_objective(self):
        m = Model()
        m.binary("x")
        text = write_lp(m)
        assert "Minimize" in text and "End" in text

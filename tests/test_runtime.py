"""Tests for repro.runtime (fingerprint / cache / parallel / trace) and
the bugfix sweep riding on the same PR: parallel-vs-serial parity,
warm-cache zero-solve proofs, solver status plumbing, flow fallback
breadth, and partial-table formatting."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.config import SchedulerConfig
from repro.core.mapsched import MapScheduler
from repro.designs import BENCHMARKS, random_dfg
from repro.errors import (
    AnalysisError,
    ScheduleVerificationError,
    SolverError,
)
from repro.experiments import (
    Table1Result,
    Table1Row,
    format_table1,
    format_table2,
    run_flow,
    run_table1,
    run_table2,
)
from repro.experiments import flows as flows_mod
from repro.hw.cost import HardwareReport
from repro.ir.serialize import schedule_from_dict, schedule_to_dict
from repro.milp import scipy_backend
from repro.milp.model import Model, SolveStatus
from repro.rtl import emit_verilog, lint_verilog
from repro.runtime import (
    CACHE_FILE_SCHEMA,
    FlowCache,
    Tracer,
    flow_fingerprint,
    resolve_jobs,
    run_parallel,
    task_seed,
)
from repro.runtime import fingerprint as fingerprint_mod
from repro.sim import replay_equivalent
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1

FAST = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_span_records_and_survives_failure():
    tracer = Tracer()
    with tracer.span("lint", k=6):
        pass
    with pytest.raises(ValueError):
        with tracer.span("solve", backend="scipy"):
            raise ValueError("boom")
    assert [s.name for s in tracer.spans] == ["lint", "solve"]
    assert tracer.spans[0].meta == {"k": 6}
    assert tracer.spans[1].seconds >= 0.0  # failed attempts stay visible


def test_tracer_context_meta_inherited():
    tracer = Tracer()
    with tracer.context(graph="narrowed"):
        with tracer.span("solve"):
            pass
    with tracer.span("verify"):
        pass
    assert tracer.spans[0].meta["graph"] == "narrowed"
    assert "graph" not in tracer.spans[1].meta


def test_tracer_absorb_and_fresh_only_counts():
    original = Tracer()
    with original.span("solve"):
        pass
    live = Tracer()
    with live.span("cache-load"):
        pass
    live.absorb(original.spans, cached=True)
    assert live.count("solve") == 1
    assert live.count("solve", fresh_only=True) == 0
    assert live.count("cache-load", fresh_only=True) == 1


def test_tracer_dict_roundtrip_marks_cached():
    tracer = Tracer()
    with tracer.span("milp-build", constraints=17):
        pass
    rebuilt = Tracer.from_dict(tracer.to_dict(), cached=True)
    assert rebuilt.count("milp-build") == 1
    assert rebuilt.spans[0].cached
    assert rebuilt.spans[0].meta["constraints"] == 17
    assert "milp-build" in tracer.render_text()


def test_tracer_listener_fires_on_start_and_end():
    events: list[tuple[str, str, bool]] = []
    tracer = Tracer(listener=lambda ev, s: events.append(
        (ev, s.name, s.seconds > 0.0)))
    with tracer.span("lint"):
        pass
    # Start fires before the body (duration still zero), end after.
    assert events == [("start", "lint", False), ("end", "lint", True)]
    # Absorbed (cached) spans describe work done elsewhere: no events.
    other = Tracer()
    with other.span("solve"):
        pass
    tracer.absorb(other.spans, cached=True)
    assert len(events) == 2


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_stable_across_rebuilds():
    fp1 = flow_fingerprint(build_fig1(), "milp-map", XC7, FAST)
    fp2 = flow_fingerprint(build_fig1(), "milp-map", XC7, FAST)
    assert fp1 == fp2
    assert len(fp1) == 64


def test_fingerprint_invalidates_on_every_input():
    base = flow_fingerprint(build_fig1(), "milp-map", XC7, FAST)
    assert flow_fingerprint(build_fig1(3), "milp-map", XC7, FAST) != base
    assert flow_fingerprint(build_fig1(), "milp-base", XC7, FAST) != base
    assert flow_fingerprint(build_fig1(), "milp-map", TUTORIAL4, FAST) != base
    tweaked = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                              alpha=0.9, beta=0.1)
    assert flow_fingerprint(build_fig1(), "milp-map", XC7, tweaked) != base


def test_fingerprint_invalidates_on_schema_bump(monkeypatch):
    base = flow_fingerprint(build_fig1(), "milp-map", XC7, FAST)
    monkeypatch.setattr(fingerprint_mod, "CACHE_SCHEMA_VERSION", 999)
    assert flow_fingerprint(build_fig1(), "milp-map", XC7, FAST) != base


# ----------------------------------------------------------------------
# Schedule serialization + FlowCache
# ----------------------------------------------------------------------
def test_schedule_json_roundtrip():
    flow = run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False)
    sched = flow.schedule
    data = json.loads(json.dumps(schedule_to_dict(sched)))
    back = schedule_from_dict(data)
    assert back.cycle == sched.cycle
    assert back.start == sched.start
    assert back.ii == sched.ii and back.tcp == sched.tcp
    assert back.method == sched.method
    assert back.optimal == sched.optimal
    assert set(back.cover) == set(sched.cover)
    for root, cut in sched.cover.items():
        assert back.cover[root].boundary == cut.boundary
        assert back.cover[root].entries == cut.entries


def test_flow_cache_roundtrip_and_zero_fresh_solves(tmp_path):
    cache = FlowCache(str(tmp_path))
    cold = run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False,
                    cache=cache)
    assert not cold.cached
    assert cache.stores == 1 and len(cache) == 1
    warm = run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False,
                    cache=cache)
    assert warm.cached
    assert cache.hits == 1
    assert warm.fingerprint == cold.fingerprint
    # The warm trace replays the original spans (marked cached) plus a
    # fresh cache-load; no solver work happened.
    assert warm.trace.count("solve") >= 1
    assert warm.trace.count("solve", fresh_only=True) == 0
    assert warm.trace.count("cache-load", fresh_only=True) == 1
    assert warm.report.to_dict() == cold.report.to_dict()
    assert warm.schedule.cycle == cold.schedule.cycle


def test_flow_cache_corrupt_and_stale_entries_miss(tmp_path):
    cache = FlowCache(str(tmp_path))
    fp = flow_fingerprint(build_fig1(), "milp-map", XC7, FAST)
    path = cache.path_for(fp)
    import os

    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    assert cache.load(fp) is None
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "repro-flow-cache/v0", "fingerprint": fp,
                   "result": {}}, handle)
    assert cache.load(fp) is None
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": CACHE_FILE_SCHEMA, "fingerprint": fp,
                   "result": {"schedule": {}}}, handle)
    assert cache.load(fp) is None
    assert cache.misses == 3 and cache.hits == 0


def test_flow_cache_invalidation_on_config_change(tmp_path):
    cache = FlowCache(str(tmp_path))
    run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False, cache=cache)
    tweaked = SchedulerConfig(ii=1, tcp=10.0, time_limit=30.0, max_cuts=8,
                              alpha=0.9, beta=0.1)
    again = run_flow(build_fig1(), "milp-map", XC7, tweaked, lint=False,
                     cache=cache)
    assert not again.cached  # different fingerprint, fresh solve
    assert cache.stores == 2 and len(cache) == 2


# ----------------------------------------------------------------------
# run_parallel / task_seed
# ----------------------------------------------------------------------
def _square(n: int) -> int:
    return n * n


def _fail_on_three(n: int) -> int:
    if n == 3:
        raise ValueError("task three is broken")
    return n


def test_run_parallel_preserves_task_order():
    tasks = list(range(10))
    assert run_parallel(tasks, _square, jobs=1) == [n * n for n in tasks]
    assert run_parallel(tasks, _square, jobs=4) == [n * n for n in tasks]


def test_run_parallel_propagates_worker_exception():
    with pytest.raises(ValueError, match="task three"):
        run_parallel([1, 2, 3, 4], _fail_on_three, jobs=1)
    with pytest.raises(ValueError, match="task three"):
        run_parallel([1, 2, 3, 4], _fail_on_three, jobs=2)


def _mark_then_run(task):
    index, marker_dir, fail, sleep_s = task
    import pathlib

    pathlib.Path(marker_dir, f"ran-{index}").touch()
    if fail:
        raise ValueError(f"task {index} is broken")
    time.sleep(sleep_s)
    return index


def test_run_parallel_cancels_queued_tasks_on_failure(tmp_path):
    """A failing task must not wait on unrelated queued work: the pool
    shuts down with cancel_futures on first failure, so queued tasks
    never start and the exception surfaces promptly."""
    tasks = [(0, str(tmp_path), True, 0.0)] + [
        (i, str(tmp_path), False, 1.5) for i in range(1, 13)]
    t0 = time.perf_counter()
    with pytest.raises(ValueError, match="task 0"):
        run_parallel(tasks, _mark_then_run, jobs=2)
    elapsed = time.perf_counter() - t0
    ran = {p.name for p in tmp_path.iterdir()}
    assert "ran-0" in ran
    # The queue held 12 slow tasks when task 0 failed. Tasks already
    # handed to the pool's internal call queue (max_workers + 1 items)
    # cannot be cancelled, so besides the failing task up to two
    # in-flight slots plus that prefetch buffer may still run — but the
    # rest of the queue must never start.
    assert len(ran) <= 7, f"queued tasks ran after failure: {sorted(ran)}"
    # Draining all 12 queued sleeps across 2 workers would cost >= 9s.
    assert elapsed < 7.0, f"failure waited on queued tasks ({elapsed:.1f}s)"


def _sleep_then_return(task):
    time.sleep(task[1])
    return task[0]


def test_run_parallel_pool_progress_fires_on_completion():
    """The pool path reports progress as tasks *finish* (completion
    order), while results stay in task order."""
    tasks = [("slow", 1.0), ("fast", 0.0)]
    seen: list[str] = []
    out = run_parallel(tasks, _sleep_then_return, jobs=2,
                       progress=lambda t: seen.append(t[0]))
    assert out == ["slow", "fast"]
    assert seen == ["fast", "slow"]


def test_run_parallel_serial_progress_fires_before_each_task():
    events: list[tuple[str, int]] = []

    def worker(n: int) -> int:
        events.append(("run", n))
        return n

    out = run_parallel([1, 2], worker, jobs=1,
                       progress=lambda n: events.append(("progress", n)))
    assert out == [1, 2]
    assert events == [("progress", 1), ("run", 1),
                      ("progress", 2), ("run", 2)]


def test_resolve_jobs_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(1) == 1  # explicit beats env
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert resolve_jobs(None) == 1


def test_task_seed_deterministic_and_distinct():
    assert task_seed("GFMUL", "milp-map") == task_seed("GFMUL", "milp-map")
    assert task_seed("GFMUL", "milp-map") != task_seed("GFMUL", "milp-base")
    assert 0 <= task_seed("x") < 2 ** 32


# ----------------------------------------------------------------------
# Table 1 / Table 2 parity + warm cache (the acceptance criteria)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def table1_runs(tmp_path_factory):
    """One cold serial, one cold jobs=2, one warm rerun of Table 1 (GFMUL)."""
    dir_serial = str(tmp_path_factory.mktemp("cache-serial"))
    dir_parallel = str(tmp_path_factory.mktemp("cache-parallel"))
    kwargs = dict(designs=["GFMUL"], config=FAST, check_replay=False)
    serial = run_table1(jobs=1, cache_dir=dir_serial, **kwargs)
    parallel = run_table1(jobs=2, cache_dir=dir_parallel, **kwargs)
    warm = run_table1(jobs=1, cache_dir=dir_serial, **kwargs)
    return {"serial": serial, "parallel": parallel, "warm": warm,
            "dir_serial": dir_serial}


def test_table1_parallel_byte_identical(table1_runs):
    assert format_table1(table1_runs["parallel"]) == \
        format_table1(table1_runs["serial"])


def test_table1_warm_cache_hits_everything_zero_solves(table1_runs):
    warm = table1_runs["warm"]
    assert all(row.cached for row in warm.rows)
    for row in warm.rows:
        assert row.trace.count("solve", fresh_only=True) == 0
        assert row.trace.count("milp-build", fresh_only=True) == 0
        assert row.trace.count("cache-load", fresh_only=True) == 1
    # MILP rows must still carry the original (cached) solve spans.
    by_method = {row.method: row for row in warm.rows}
    assert by_method["milp-map"].trace.count("solve") >= 1
    assert format_table1(warm) == format_table1(table1_runs["serial"])


def test_table2_shares_cache_and_is_reproducible(table1_runs):
    kwargs = dict(designs=["GFMUL"], config=FAST,
                  cache_dir=table1_runs["dir_serial"])
    first = run_table2(jobs=1, **kwargs)
    second = run_table2(jobs=2, **kwargs)
    # Both MILP flows were already computed by the Table 1 run above, so
    # Table 2 rides the same cache: identical (stored) solve seconds make
    # the rendered tables byte-identical, parallel or not.
    row = first.rows[0]
    assert row.base_trace.count("solve", fresh_only=True) == 0
    assert row.map_trace.count("solve", fresh_only=True) == 0
    assert row.base_seconds > 0.0
    assert format_table2(first) == format_table2(second)


# ----------------------------------------------------------------------
# format_table1 partial-result regression (satellite c)
# ----------------------------------------------------------------------
def _report(method: str) -> HardwareReport:
    return HardwareReport(design="GFMUL", method=method, cp=7.5, luts=100,
                          ffs=10, latency=2, ii=1)


def test_format_table1_without_hls_row_blank_percentages():
    rows = [
        Table1Row(design="GFMUL", domain="Kernel", description="",
                  method=method, report=_report(method))
        for method in ("milp-base", "milp-map")
    ]
    result = Table1Result(config=FAST, device=XC7, rows=rows)
    text = format_table1(result)  # must not raise AttributeError
    assert "MILP-base" in text and "MILP-map" in text
    assert "%)" not in text  # percentage cells are blank, not computed
    assert "GFMUL" in text


# ----------------------------------------------------------------------
# Solver status plumbing (satellite b)
# ----------------------------------------------------------------------
class _StubResult:
    def __init__(self, status, x, message="stub"):
        self.status = status
        self.x = x
        self.message = message
        self.mip_gap = None


def test_scipy_status1_without_incumbent_is_no_incumbent(monkeypatch):
    model = Model("stub")
    x = model.integer("x", lo=0, hi=10)
    model.add(x >= 1)
    model.minimize(x)
    monkeypatch.setattr(scipy_backend.optimize, "milp",
                        lambda **kw: _StubResult(1, None, "time limit hit"))
    solution = scipy_backend.solve_scipy(model)
    assert solution.status == SolveStatus.NO_INCUMBENT
    assert not solution.ok
    assert solution.objective is None


def test_scipy_round_snap_violation_becomes_error(monkeypatch):
    model = Model("snap")
    x = model.integer("x", lo=0, hi=1)
    model.add(x >= 0.4)
    model.add(x <= 0.6)
    model.minimize(x)
    import numpy as np

    monkeypatch.setattr(scipy_backend.optimize, "milp",
                        lambda **kw: _StubResult(0, np.array([0.4])))
    solution = scipy_backend.solve_scipy(model)
    assert solution.status == SolveStatus.ERROR
    assert "rounded solution violates" in solution.message
    assert solution.values == {} and solution.objective is None


def test_mapscheduler_no_incumbent_raises_time_cap_message(monkeypatch):
    from dataclasses import replace

    from repro.milp.model import Solution

    monkeypatch.setattr(
        Model, "solve",
        lambda self, **kw: Solution(status=SolveStatus.NO_INCUMBENT,
                                    objective=None))
    # Without a warm start there is no fallback incumbent to fall back on.
    scheduler = MapScheduler(build_fig1(), XC7,
                             replace(FAST, warm_start=False))
    with pytest.raises(SolverError, match="time cap too tight"):
        scheduler.schedule()


def test_mapscheduler_no_incumbent_falls_back_to_warm_start(monkeypatch):
    from repro.milp.model import Solution

    monkeypatch.setattr(
        Model, "solve",
        lambda self, **kw: Solution(status=SolveStatus.NO_INCUMBENT,
                                    objective=None))
    # With warm starts on, the heuristic schedule stands in for the
    # missing solver incumbent instead of aborting the run.
    scheduler = MapScheduler(build_fig1(), XC7, FAST)
    schedule = scheduler.schedule()
    assert schedule.ii == FAST.ii
    fallback = scheduler.tracer.find("warm-start")
    assert fallback and fallback[-1].meta["used"] is True


# ----------------------------------------------------------------------
# Narrowed-graph fallback breadth (satellite a)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exc", [
    ScheduleVerificationError(["stage 0 too deep"]),
    AnalysisError("narrowed graph flagged"),
    SolverError("lost the incumbent lottery"),
])
def test_flow_falls_back_to_original_graph(monkeypatch, exc):
    real_dispatch = flows_mod._dispatch
    calls = []

    def flaky_dispatch(graph, method, device, config, design, tracer,
                       jobs=1, cancel=None):
        calls.append(graph.name)
        if len(calls) == 1:
            raise exc
        return real_dispatch(graph, method, device, config, design, tracer,
                             jobs, cancel)

    monkeypatch.setattr(flows_mod, "_dispatch", flaky_dispatch)
    flow = run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False,
                    narrow=True)
    assert len(calls) == 2  # narrowed attempt, then the original graph
    assert flow.source_graph == "original"
    fallback = flow.trace.last("narrow-fallback")
    assert fallback is not None
    assert fallback.meta["error"] == type(exc).__name__


def test_flow_records_narrowed_source_graph():
    flow = run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False,
                    narrow=True)
    assert flow.source_graph == "narrowed"
    assert all(s.meta.get("graph") == "narrowed"
               for s in flow.trace.find("solve"))


# ----------------------------------------------------------------------
# Cooperative flow cancellation (rides the repro.service PR)
# ----------------------------------------------------------------------
def test_run_flow_cancel_before_start_raises_at_first_checkpoint():
    from repro.errors import FlowCancelled

    with pytest.raises(FlowCancelled) as info:
        run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False,
                 cancel=lambda: True)
    assert info.value.phase == "cache-load"


def test_run_flow_cancel_mid_flow_stops_at_next_phase():
    from repro.errors import FlowCancelled

    cancelled = {"flag": False}

    def on_phase(event: str, span) -> None:
        # Trip the cancel flag while the solve phase is running; the
        # flow must finish that phase and stop at the next checkpoint.
        if event == "start" and span.name == "solve":
            cancelled["flag"] = True

    with pytest.raises(FlowCancelled) as info:
        run_flow(build_fig1(), "milp-map", XC7, FAST, lint=False,
                 narrow=False, cancel=lambda: cancelled["flag"],
                 on_phase=on_phase)
    assert info.value.phase == "verify"


def test_run_flow_cancel_during_partition_leaves_no_pool_workers():
    """Cancelling during a partitioned solve must never orphan the
    per-subgraph process pool: the running phase completes (joining its
    pool) before FlowCancelled surfaces at the next checkpoint."""
    import multiprocessing
    from dataclasses import replace as dc_replace

    from repro.errors import FlowCancelled

    cancelled = {"flag": False}

    def on_phase(event: str, span) -> None:
        if event == "start" and span.name == "partition-cut":
            cancelled["flag"] = True

    config = dc_replace(FAST, partition=True, partition_size=12,
                        partition_rounds=1)
    with pytest.raises(FlowCancelled) as info:
        run_flow(BENCHMARKS["GFMUL"].build(), "milp-map", XC7, config,
                 lint=False, narrow=False, jobs=2,
                 cancel=lambda: cancelled["flag"], on_phase=on_phase)
    # The partition scheduler ran to completion (pools joined), then the
    # verify checkpoint observed the flag. FlowCancelled is not a
    # SchedulingError, so no narrow-fallback retry can swallow it.
    assert info.value.phase == "verify"
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# FlowCache atomicity under concurrent same-fingerprint writers
# ----------------------------------------------------------------------
def _hammer_store(task):
    """Store one fingerprint repeatedly with a recognizable design tag."""
    cache_dir, tag, rounds = task
    from repro.runtime import FlowCache

    cache = FlowCache(cache_dir)
    flow = run_flow(build_fig1(), "heur-map", XC7, FAST, lint=False)
    fp = flow_fingerprint(build_fig1(), "heur-map", XC7, FAST)
    for _ in range(rounds):
        cache.store(fp, flow, design=tag * 2000, method="heur-map")
    return tag


def test_flow_cache_concurrent_stores_never_tear(tmp_path):
    """Two processes writing the same cache entry must never expose a
    torn file: stores go through mkstemp + os.replace, so every read
    sees exactly one writer's complete JSON (last writer wins)."""
    import multiprocessing

    cache_dir = str(tmp_path)
    fp = flow_fingerprint(build_fig1(), "heur-map", XC7, FAST)
    path = FlowCache(cache_dir).path_for(fp)

    ctx = multiprocessing.get_context()
    procs = [ctx.Process(target=_hammer_store,
                         args=((cache_dir, tag, 40),))
             for tag in ("A", "B")]
    for p in procs:
        p.start()
    reads = 0
    try:
        import os

        while any(p.is_alive() for p in procs):
            if os.path.exists(path):
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)  # a torn write would raise
                assert data["fingerprint"] == fp
                assert data["design"][0] in ("A", "B")
                assert data["design"] == data["design"][0] * 2000
                reads += 1
    finally:
        for p in procs:
            p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)
    assert reads > 0, "reader never observed the cache file"
    # And the surviving entry is a loadable flow result.
    survivor = FlowCache(cache_dir).load(fp)
    assert survivor is not None


# ----------------------------------------------------------------------
# Regression: narrowing can make a cone constant (seed 2563)
# ----------------------------------------------------------------------
def test_constant_cone_after_narrowing_replays_and_emits():
    """Seed 2563: narrowing shrinks a SHR operand below the shift amount,
    so the cone's output is a constant and its selected cut has an empty
    boundary. Replay must not demand wire timing for operands the cut
    proved independent of, and the RTL emitter must substitute a constant
    instead of recursing out of the cone."""
    import random as _random

    rng = _random.Random(2563)
    stream = [{f"i{k}": rng.randrange(1 << 8) for k in range(3)}
              for _ in range(12)]
    graph = random_dfg(2563, ops=10, width=8, inputs=3, recurrences=1)
    flow = run_flow(graph, "milp-map", XC7,
                    SchedulerConfig(ii=1, tcp=10.0, time_limit=20,
                                    max_cuts=6),
                    narrow=True)
    assert replay_equivalent(flow.schedule, XC7, stream)
    if flow.schedule.ii == 1:
        assert lint_verilog(emit_verilog(flow.schedule)) == []


# ----------------------------------------------------------------------
# CLI wiring sanity: benchmark registry stays addressable by task workers
# ----------------------------------------------------------------------
def test_benchmark_names_roundtrip_through_tasks():
    for name in BENCHMARKS:
        assert name == name.upper()


# ----------------------------------------------------------------------
# Serialization round-trips, property-tested over *fuzzed* schedules
# (not just benchmark ones): any schedule the flows can produce must
# survive dict -> JSON -> dict byte-exactly.
# ----------------------------------------------------------------------
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.fuzz import generate_case  # noqa: E402
from repro.ir.serialize import cut_from_dict, cut_to_dict  # noqa: E402


def _fuzzed_flow(seed: int):
    case = generate_case(seed)
    return run_flow(case.graph, "heur-map", XC7, FAST, lint=False)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=60))
def test_fuzzed_schedule_roundtrips_exactly(seed):
    sched = _fuzzed_flow(seed).schedule
    wire = json.loads(json.dumps(schedule_to_dict(sched)))
    assert schedule_to_dict(schedule_from_dict(wire)) \
        == schedule_to_dict(sched)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=60))
def test_fuzzed_cuts_roundtrip_exactly(seed):
    sched = _fuzzed_flow(seed).schedule
    assert sched.cover, "heur-map schedules must carry a cover"
    for cut in sched.cover.values():
        wire = json.loads(json.dumps(cut_to_dict(cut)))
        assert cut_from_dict(wire) == cut


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=60))
def test_fuzzed_hardware_report_roundtrips(seed):
    report = _fuzzed_flow(seed).report
    wire = json.loads(json.dumps(report.to_dict()))
    assert HardwareReport.from_dict(wire) == report

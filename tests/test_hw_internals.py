"""Focused tests for hardware cost-model internals and the Schedule object."""

import pytest

from repro.core import MapScheduler, SchedulerConfig
from repro.errors import SchedulingError
from repro.hw import evaluate
from repro.hw.cost import _consumption_cycles, _critical_path, _liveness_ffs
from repro.scheduling.schedule import Schedule
from repro.tech.area import AreaModel
from repro.tech.delay import DelayModel
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


@pytest.fixture
def mapped():
    return MapScheduler(build_recurrent(), XC7,
                        SchedulerConfig(ii=1, tcp=10.0)).schedule()


class TestScheduleObject:
    def test_latency_and_stages(self, mapped):
        assert mapped.latency >= 1
        assert mapped.num_stages == mapped.latency - 1

    def test_cycle_of_unknown_raises(self, mapped):
        with pytest.raises(SchedulingError, match="not scheduled"):
            mapped.cycle_of(9999)

    def test_nodes_in_cycle_sorted_by_start(self, mapped):
        members = mapped.nodes_in_cycle(0)
        starts = [mapped.start.get(n, 0.0) for n in members]
        assert starts == sorted(starts)

    def test_finish_time(self, mapped):
        nid = next(iter(mapped.cover))
        assert mapped.finish_time(nid, 2.0) == pytest.approx(
            mapped.cycle[nid] * mapped.tcp + mapped.start.get(nid, 0.0) + 2.0
        )

    def test_describe_lists_roots(self, mapped):
        text = mapped.describe()
        assert "*" in text and "II=1" in text


class TestLiveness:
    def test_consumption_includes_loop_carried_shift(self, mapped):
        reads = _consumption_cycles(mapped)
        graph = mapped.graph
        rec = next(n for n in graph if n.attrs.get("recurrence"))
        producer = rec.operands[1].source
        # the producer's value is read one II later by the recurrence
        assert any(c >= mapped.cycle[producer] + 1
                   for c in reads.get(producer, []))

    def test_ffs_sum_matches_by_cycle(self, mapped):
        area = AreaModel(XC7, mapped.graph)
        total, by_cycle = _liveness_ffs(mapped, area)
        assert total == sum(by_cycle.values())

    def test_single_cycle_value_is_free(self):
        sched = MapScheduler(build_fig1(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        area = AreaModel(TUTORIAL4, sched.graph)
        total, _ = _liveness_ffs(sched, area)
        assert total == 0  # 1-stage pipeline, no loop-carried values


class TestCriticalPath:
    def test_chain_bounded_by_budget(self, mapped):
        delay = DelayModel(XC7, mapped.graph)
        chain = _critical_path(mapped, delay)
        assert 0.0 < chain <= mapped.tcp + 1e-9

    def test_cp_monotone_in_congestion(self, mapped):
        r = evaluate(mapped, XC7)
        chain = _critical_path(mapped, DelayModel(XC7, mapped.graph))
        assert r.cp >= chain  # congestion + setup only add

    def test_live_bits_by_cycle_reported(self, mapped):
        r = evaluate(mapped, XC7)
        assert sum(r.live_bits_by_cycle.values()) == r.ffs


class TestCLI:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CLZ" in out and "GSM" in out

    def test_figure2_command(self, capsys):
        from repro.__main__ import main

        assert main(["figure2"]) == 0
        assert "sign-test refinement" in capsys.readouterr().out

    def test_table2_subset(self, capsys):
        from repro.__main__ import main

        assert main(["table2", "GSM", "--time-limit", "20"]) == 0
        assert "GSM" in capsys.readouterr().out

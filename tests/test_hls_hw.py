"""Unit tests for the commercial-tool proxy and the hardware cost model."""

import pytest

from repro.core import schedule_problems
from repro.errors import SchedulingError
from repro.hls import CommercialHLSProxy, back_annotate, make_report
from repro.hw import evaluate
from repro.ir import DFGBuilder
from repro.scheduling.schedule import Schedule
from repro.tech.device import TUTORIAL4, XC7

from .conftest import build_fig1, build_recurrent


class TestHLSProxy:
    def test_end_to_end_valid(self):
        result = CommercialHLSProxy(build_fig1(), XC7, tcp=10.0).run()
        assert schedule_problems(result.schedule, XC7) == []
        assert result.schedule.method == "hls-tool"

    def test_report_contains_delays_and_cycles(self):
        result = CommercialHLSProxy(build_fig1(), XC7, tcp=10.0).run()
        report = result.report
        assert report.op_delay
        text = report.render(result.schedule.graph)
        assert "Schedule report" in text and "delay" in text

    def test_back_annotate_blackbox_only(self):
        b = DFGBuilder("m", width=8)
        addr = b.input("addr", 4)
        load = b.load(addr, name="m")
        b.output(load ^ 1, "o")
        g = b.build()
        result = CommercialHLSProxy(g, XC7, tcp=10.0).run()
        g2 = g.copy()
        count = back_annotate(g2, result.report, blackbox_only=True)
        assert count == 1
        annotated = next(n for n in g2 if n.is_blackbox)
        assert annotated.delay_override is not None

    def test_back_annotate_all_ops(self):
        result = CommercialHLSProxy(build_fig1(), XC7, tcp=10.0).run()
        g2 = result.schedule.graph.copy()
        count = back_annotate(g2, result.report, blackbox_only=False)
        assert count == g2.num_operations


class TestHardwareCost:
    def test_requires_cover(self, fig1_graph):
        bare = Schedule(graph=fig1_graph, ii=1, tcp=5.0,
                        cycle={n.nid: 0 for n in fig1_graph})
        with pytest.raises(SchedulingError, match="cover"):
            evaluate(bare, XC7)

    def test_ff_counts_cycle_crossings(self):
        result = CommercialHLSProxy(build_recurrent(), XC7, tcp=10.0).run()
        report = evaluate(result.schedule, XC7)
        sched = result.schedule
        if sched.latency == 1:
            # loop-carried value still needs its register? No: at II=1 and
            # a 1-cycle pipe the feedback register is counted via the
            # distance-1 consumption (born c, read c+1)
            assert report.ffs >= 8
        assert report.luts > 0

    def test_cp_below_target_for_verified_schedules(self):
        result = CommercialHLSProxy(build_fig1(), XC7, tcp=10.0).run()
        report = evaluate(result.schedule, XC7)
        assert report.cp <= 10.0 + 1e-6

    def test_zero_stage_pipeline_has_no_ffs(self):
        from repro.core import MapScheduler, SchedulerConfig

        sched = MapScheduler(build_fig1(), TUTORIAL4,
                             SchedulerConfig(ii=1, tcp=5.0)).schedule()
        report = evaluate(sched, TUTORIAL4)
        assert sched.latency == 1
        assert report.ffs == 0

    def test_resource_usage_reported(self):
        b = DFGBuilder("m", width=8)
        addr = b.input("addr", 4)
        l1 = b.load(addr, name="m1")
        l2 = b.load(addr + 1, name="m2")
        b.output(l1 ^ l2, "o")
        result = CommercialHLSProxy(b.build(), XC7, tcp=10.0).run()
        report = evaluate(result.schedule, XC7)
        assert report.resource_usage.get("mem_port") == 2

    def test_row_shape(self):
        result = CommercialHLSProxy(build_fig1(), XC7, tcp=10.0).run()
        report = evaluate(result.schedule, XC7)
        method, cp, luts, ffs = report.row()
        assert method == "hls-tool"
        assert isinstance(cp, float) and isinstance(luts, int)

#!/usr/bin/env python3
"""Interoperability tour: save/load designs, export the MILP, emit a
self-checking testbench.

Shows the artifacts a team would actually exchange:

* the kernel as versioned JSON (design reviews, reproducers);
* the exact MILP as a CPLEX ``.lp`` file (hand the paper's formulation to
  CPLEX/Gurobi/SCIP unchanged);
* the scheduled pipeline as Verilog plus a self-checking testbench whose
  expectations come from the cycle-accurate simulator.
"""

import tempfile
from pathlib import Path

from repro.core import MapScheduler, SchedulerConfig
from repro.ir import compile_kernel, load_graph, save_graph
from repro.milp import write_lp
from repro.rtl import emit_testbench, emit_verilog, lint_verilog
from repro.tech import XC7

KERNEL = """
input a : 8
input b : 8
reg acc : 8 init 17
t = (a ^ b) >> 1
u = mux(t >= 0x40, acc + t, acc ^ b)
acc <= u
output u : digest
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_export_"))
    graph = compile_kernel(KERNEL, name="digest8", default_width=8)

    # 1. design exchange
    design_path = workdir / "digest8.json"
    save_graph(graph, str(design_path))
    reloaded = load_graph(str(design_path))
    print(f"saved + reloaded design: {design_path} "
          f"({reloaded.num_operations} ops)")

    # 2. the exact MILP, solver-agnostic
    scheduler = MapScheduler(reloaded, XC7,
                             SchedulerConfig(ii=1, tcp=10.0, time_limit=60))
    schedule = scheduler.schedule()
    lp_path = workdir / "digest8.lp"
    lp_path.write_text(write_lp(scheduler.formulation.model))
    print(f"wrote MILP ({scheduler.formulation.model.num_constraints} "
          f"constraints) to {lp_path}")

    # 3. RTL + self-checking testbench
    stream = [{"a": (37 * k) & 0xFF, "b": (91 * k + 5) & 0xFF}
              for k in range(12)]
    rtl = emit_verilog(schedule)
    tb = emit_testbench(schedule, XC7, stream)
    (workdir / "digest8.v").write_text(rtl)
    (workdir / "digest8_tb.v").write_text(tb)
    print(f"wrote RTL + testbench to {workdir} "
          f"(lint: {'clean' if not lint_verilog(rtl) else 'PROBLEMS'})")
    print("run externally with: iverilog -o sim digest8.v digest8_tb.v "
          "&& vvp sim")
    print()
    print(schedule.describe())


if __name__ == "__main__":
    main()

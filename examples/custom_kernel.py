#!/usr/bin/env python3
"""Bring your own kernel: the text frontend -> MILP -> Verilog flow.

Shows the full user journey for a kernel written in the library's small
kernel language (the LLVM-frontend stand-in): compile, optimize, schedule
with resource constraints on memory ports, inspect the report, and emit
RTL.
"""

from repro.core import MapScheduler, SchedulerConfig
from repro.hw import evaluate
from repro.ir import (
    compile_kernel,
    eliminate_common_subexpressions,
    fold_constants,
)
from repro.rtl import emit_verilog
from repro.sim import FunctionalSimulator, SimEnvironment
from repro.tech import XC7

KERNEL = """
# A tiny histogram-ish scorer: read a weight, mix it with the sample,
# keep a running best score.
input sample : 16
input index : 8
reg best : 16 init 0

weight = load(index, 16)
mixed = (sample ^ weight) + (sample >> 2)
better = mixed >= best
best <= mux(better, mixed, best)
output best : score
"""


def main() -> None:
    graph = compile_kernel(KERNEL, name="scorer", default_width=16)
    graph, _ = fold_constants(graph)
    graph, _ = eliminate_common_subexpressions(graph)
    print(f"compiled: {graph.num_operations} operations, "
          f"{len(graph.inputs)} inputs")

    # one memory port available: Eq. 14 resource constraints in action
    device = XC7.with_resources(mem_port=1)
    config = SchedulerConfig(ii=1, tcp=10.0, time_limit=60)
    scheduler = MapScheduler(graph, device, config)
    schedule = scheduler.schedule()
    print(schedule.describe())
    report = evaluate(schedule, device)
    print(f"-> {report.luts} LUTs, {report.ffs} FFs, CP {report.cp:.2f} ns, "
          f"memory ports used: {report.resource_usage}")

    env = SimEnvironment(memories={"load_4": None})
    # bind the weight memory by the load node's identifier
    load_node = next(n for n in graph if n.kind.value == "load")
    env.memories.clear()
    env.memories[load_node.name or load_node.rclass] = \
        [(7 * i + 3) & 0xFFFF for i in range(64)]
    sim = FunctionalSimulator(graph, env)
    for k in range(6):
        out = sim.step({"sample": 1000 * k, "index": k})
        print(f"iter {k}: score = {out['score']}")

    print("\n== Verilog ==")
    print(emit_verilog(schedule, "scorer"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration with the Eq. 15 knobs and the XORR depth study.

Two sweeps from the ablation suite:

* **alpha/beta** — trading LUTs against pipeline registers on GFMUL;
* **XORR depth** — how register savings from mapping-aware pipelining grow
  with reduction-tree depth (the Sec. 4.1 discussion, quantified).
"""

from repro.core import SchedulerConfig
from repro.experiments import (
    format_alpha_beta,
    format_xorr_depth,
    sweep_alpha_beta,
    sweep_xorr_depth,
)


def main() -> None:
    config = SchedulerConfig(ii=1, tcp=10.0, time_limit=60)

    print("sweeping Eq. 15 weights on GFMUL (this runs five MILPs)...")
    points = sweep_alpha_beta(design="GFMUL",
                              weights=[0.0, 0.25, 0.5, 0.75, 1.0],
                              base_config=config)
    print(format_alpha_beta(points, "GFMUL"))
    print()

    print("sweeping XORR reduction-tree depth (tool vs MILP-map)...")
    depth_points = sweep_xorr_depth(element_counts=[16, 64, 128, 256],
                                    config=config)
    print(format_xorr_depth(depth_points))
    saved = [(p.elements, p.tool_ffs - p.map_ffs) for p in depth_points]
    print("\nFF bits saved by mapping-awareness:",
          ", ".join(f"{n} elems: {s}" for n, s in saved))


if __name__ == "__main__":
    main()

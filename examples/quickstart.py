#!/usr/bin/env python3
"""Quickstart: build a kernel, schedule it three ways, inspect the QoR.

This walks the library's core loop in ~40 lines:

1. describe a small pipelined kernel with the builder DSL;
2. run the commercial-tool proxy (additive delays + per-stage mapping);
3. run the paper's mapping-aware MILP (MILP-map);
4. compare LUT / FF / pipeline depth, verify both schedules independently,
   and replay them cycle-accurately against the functional model.
"""

from repro.core import MapScheduler, SchedulerConfig, verify_schedule
from repro.experiments import run_flow
from repro.hw import evaluate
from repro.ir import DFGBuilder
from repro.sim import replay_equivalent
from repro.tech import XC7


def build_kernel():
    """A toy checksum: several shift/xor mixing rounds, a sign test, and a
    running state. Deep enough that the additive delay model needs two
    pipeline stages while the mapped logic fits in one."""
    b = DFGBuilder("checksum", width=16)
    data = b.input("data", 16)
    state = b.recurrence("state", width=16, initial=0xBEEF)
    mixed = data
    for round_shift in (3, 7, 11, 5, 2):
        mixed = (mixed ^ (mixed >> round_shift)) | (mixed << 1)
    mixed = mixed ^ (state >> 3)
    negative = mixed.sge(0)
    nxt = b.mux(negative, state ^ mixed, state + 1)
    nxt.feed(state)
    b.output(nxt, "digest")
    return b.build()


def main() -> None:
    config = SchedulerConfig(ii=1, tcp=10.0, alpha=0.5, beta=0.5,
                             time_limit=60)
    stream = [{"data": (0x1234 * (k + 1)) & 0xFFFF} for k in range(24)]

    print("== commercial-tool proxy (additive delays) ==")
    tool = run_flow(build_kernel(), "hls-tool", XC7, config)
    print(tool.schedule.describe())
    print(f"-> {tool.report.luts} LUTs, {tool.report.ffs} FFs, "
          f"CP {tool.report.cp:.2f} ns\n")

    print("== mapping-aware MILP (the paper's method) ==")
    scheduler = MapScheduler(build_kernel(), XC7, config)
    schedule = scheduler.schedule()
    verify_schedule(schedule, XC7)  # independent static check
    report = evaluate(schedule, XC7)
    print(schedule.describe())
    print(f"-> {report.luts} LUTs, {report.ffs} FFs, "
          f"CP {report.cp:.2f} ns")
    print(f"-> MILP: {scheduler.formulation.stats.num_constraints} "
          f"constraints, solved in {schedule.solve_seconds:.2f}s\n")

    ok_tool = replay_equivalent(tool.schedule, XC7, stream)
    ok_map = replay_equivalent(schedule, XC7, stream)
    print(f"cycle-accurate replay matches functional model: "
          f"tool={ok_tool}, map={ok_map}")
    print(f"pipeline depth: {tool.schedule.latency} -> {schedule.latency} "
          f"cycles; FFs: {tool.report.ffs} -> {report.ffs}")


if __name__ == "__main__":
    main()

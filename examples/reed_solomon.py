#!/usr/bin/env python3
"""The paper's running example: Figures 1 and 2 end to end.

Reproduces the Reed–Solomon walkthrough on the K=4 teaching device: the
schedule comparison of Figure 1 (additive-delay flow vs mapping-aware MILP)
and the word-level cut enumeration of Figure 2 (sign-test refinement and
the loop-carried D/E cycle), then emits the mapping-aware pipeline as
Verilog.
"""

from repro.experiments import (
    format_figure1,
    format_figure2,
    run_figure1,
    run_figure2,
)
from repro.rtl import emit_verilog, lint_verilog


def main() -> None:
    fig1 = run_figure1()
    print(format_figure1(fig1))
    print()
    fig2 = run_figure2()
    print(format_figure2(fig2))

    print("\n== Verilog for the mapping-aware schedule ==")
    verilog = emit_verilog(fig1.schedules["milp-map"], "rs_encoder_map")
    print(verilog)
    problems = lint_verilog(verilog)
    print(f"\nlint: {'clean' if not problems else problems}")

    print("\n== DOT of the mapping-aware schedule (paste into graphviz) ==")
    print(fig1.dots["milp-map"])


if __name__ == "__main__":
    main()

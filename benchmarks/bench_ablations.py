"""Regenerates the three ablation studies (DESIGN.md experiment index).

Run with ``pytest benchmarks/bench_ablations.py --benchmark-only -s``.
"""

from __future__ import annotations

from repro.core import SchedulerConfig
from repro.experiments import (
    format_alpha_beta,
    format_k_sweep,
    format_xorr_depth,
    sweep_alpha_beta,
    sweep_k,
    sweep_xorr_depth,
)

from benchmarks.conftest import run_once


def test_ablation_xorr_depth(benchmark, results_sink):
    """Sec. 4.1: FF savings grow with reduction-tree depth."""
    points = run_once(
        benchmark,
        lambda: sweep_xorr_depth(element_counts=[16, 64, 128, 256]),
    )
    # once the additive schedule needs >1 stage, mapping starts saving FFs
    deep = [p for p in points if p.tool_stages > 1]
    assert deep, "sweep never exceeded one stage; enlarge element counts"
    assert all(p.map_ffs <= p.tool_ffs for p in points)
    assert any(p.map_ffs < p.tool_ffs for p in deep)
    results_sink.append(format_xorr_depth(points))


def test_ablation_alpha_beta(benchmark, results_sink):
    """Eq. 15: weight sweep traces the LUT/FF frontier."""
    points = run_once(
        benchmark,
        lambda: sweep_alpha_beta(
            design="GFMUL", weights=[0.0, 0.5, 1.0],
            base_config=SchedulerConfig(ii=1, tcp=10.0, time_limit=60),
        ),
    )
    # pure-LUT weighting never uses more LUTs than pure-FF weighting
    by_alpha = {p.alpha: p for p in points}
    assert by_alpha[1.0].luts <= by_alpha[0.0].luts
    assert by_alpha[0.0].ffs <= by_alpha[1.0].ffs
    results_sink.append(format_alpha_beta(points, "GFMUL"))


def test_ablation_k_sweep(benchmark, results_sink):
    """Sec. 3.1: enumeration grows with K but stays fast for K <= 6."""
    points = run_once(benchmark, lambda: sweep_k(
        designs=["GFMUL", "CLZ", "MT"], ks=[2, 3, 4, 5, 6]))
    for design in {p.design for p in points}:
        mine = sorted((p.k, p.cuts) for p in points if p.design == design)
        counts = [c for _, c in mine]
        assert counts == sorted(counts), f"{design}: cuts not monotone in K"
    assert all(p.seconds < 30.0 for p in points)
    results_sink.append(format_k_sweep(points))


def test_ablation_heuristic_gap(benchmark, results_sink):
    """Extension: the scalable mapping-aware heuristic vs the exact MILP."""
    from repro.experiments import format_heuristic_gap, sweep_heuristic_gap

    points = run_once(
        benchmark,
        lambda: sweep_heuristic_gap(designs=["GFMUL", "MT", "GSM"]),
    )
    # the heuristic is drastically faster and never beats the exact MILP
    for p in points:
        assert p.heur_ffs >= p.milp_ffs
    results_sink.append(format_heuristic_gap(points))


def test_ablation_bitblast(benchmark, results_sink):
    """Sec. 3.1: bit-level decomposition's cut blowup, measured."""
    from repro.experiments import format_bitblast, sweep_bitblast

    points = run_once(benchmark,
                      lambda: sweep_bitblast(designs=["GFMUL", "MT", "GSM"]))
    for p in points:
        assert p.bit_ops > p.word_ops
        assert p.bit_cuts > p.word_cuts
    results_sink.append(format_bitblast(points))

"""Regenerates Figure 1 (schedule walkthrough) and Figure 2 (cut
enumeration walkthrough).

Run with ``pytest benchmarks/bench_figures.py --benchmark-only -s``.
"""

from __future__ import annotations

from repro.experiments import (
    format_figure1,
    format_figure2,
    run_figure1,
    run_figure2,
)

from benchmarks.conftest import run_once


def test_figure1(benchmark, results_sink):
    result = run_once(benchmark, run_figure1)
    tool = result.reports["hls-tool"]
    mapped = result.reports["milp-map"]
    # the paper's headline: fewer LUTs AND a single-stage pipeline
    assert result.schedules["milp-map"].latency == 1
    assert mapped.luts < tool.luts
    benchmark.extra_info["tool_luts"] = tool.luts
    benchmark.extra_info["map_luts"] = mapped.luts
    results_sink.append(format_figure1(result))


def test_figure2(benchmark, results_sink):
    result = run_once(benchmark, run_figure2)
    assert result.stats.total_selectable > 0
    benchmark.extra_info["selectable_cuts"] = result.stats.total_selectable
    results_sink.append(format_figure2(result))

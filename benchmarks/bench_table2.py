"""Regenerates Table 2: MILP solver runtime, MILP-base vs MILP-map.

Run with ``pytest benchmarks/bench_table2.py --benchmark-only -s``.
The timed quantity is the solver wall time alone (cut enumeration and model
construction excluded, matching the paper's caption).
"""

from __future__ import annotations

import pytest

from repro.core import BaseScheduler, MapScheduler
from repro.designs import BENCHMARKS
from repro.experiments.reporting import render_table
from repro.tech.device import XC7

from benchmarks.conftest import paper_config, run_once

_ROWS: dict[tuple[str, str], dict] = {}


@pytest.mark.parametrize("design", sorted(BENCHMARKS))
@pytest.mark.parametrize("variant", ["milp-base", "milp-map"])
def test_table2_cell(benchmark, design, variant):
    spec = BENCHMARKS[design]
    config = paper_config()
    cls = BaseScheduler if variant == "milp-base" else MapScheduler
    scheduler = cls(spec.build(), XC7, config)
    scheduler.enumerate()
    horizon = scheduler._horizon()
    formulation_holder = {}

    def build_and_solve():
        # timed portion: the solve itself dominates; construction is cheap
        sched = scheduler._solve_with_horizon(horizon)
        formulation_holder["f"] = scheduler.formulation
        return sched

    sched = run_once(benchmark, build_and_solve)
    assert sched is not None
    stats = formulation_holder["f"].stats
    benchmark.extra_info["solver_seconds"] = round(sched.solve_seconds, 2)
    benchmark.extra_info["constraints"] = stats.num_constraints
    benchmark.extra_info["ops"] = scheduler.graph.num_operations
    _ROWS[(design, variant)] = {
        "seconds": sched.solve_seconds,
        "constraints": stats.num_constraints,
        "ops": scheduler.graph.num_operations,
        "optimal": sched.optimal,
    }


def test_table2_print(benchmark, results_sink):
    if len(_ROWS) < len(BENCHMARKS) * 2:
        pytest.skip("run the full bench_table2 module to print the table")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["Design", "Ops", "MILP-base (s)", "MILP-map (s)",
               "base cons", "map cons"]
    rows = []
    tot_b = tot_m = 0.0
    for design in sorted(BENCHMARKS):
        b = _ROWS[(design, "milp-base")]
        m = _ROWS[(design, "milp-map")]
        tot_b += b["seconds"]
        tot_m += m["seconds"]
        rows.append([design, b["ops"], f"{b['seconds']:.1f}",
                     f"{m['seconds']:.1f}", b["constraints"],
                     m["constraints"]])
    n = len(BENCHMARKS)
    rows.append(["Mean", "", f"{tot_b / n:.1f}", f"{tot_m / n:.1f}", "", ""])
    results_sink.append(render_table(
        headers, rows,
        title="Table 2 (regenerated): MILP solver runtime",
    ))

"""Regenerates Table 1: CP / LUT / FF for the three flows on all designs.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s``.
Each (design, method) pair is one benchmark case; the assembled table is
printed at the end of the session in the paper's layout.
"""

from __future__ import annotations

import pytest

from repro.designs import BENCHMARKS
from repro.experiments import run_flow
from repro.experiments.reporting import percent, render_table
from repro.tech.device import XC7

from benchmarks.conftest import paper_config, run_once

_ROWS: dict[tuple[str, str], object] = {}
_METHODS = ("hls-tool", "milp-base", "milp-map")


@pytest.mark.parametrize("design", sorted(BENCHMARKS))
@pytest.mark.parametrize("method", _METHODS)
def test_table1_cell(benchmark, design, method):
    spec = BENCHMARKS[design]
    config = paper_config()

    def work():
        return run_flow(spec.build(), method, XC7, config, design=design)

    flow = run_once(benchmark, work)
    report = flow.report
    benchmark.extra_info["cp_ns"] = round(report.cp, 2)
    benchmark.extra_info["luts"] = report.luts
    benchmark.extra_info["ffs"] = report.ffs
    benchmark.extra_info["latency"] = report.latency
    benchmark.extra_info["ii"] = report.ii
    _ROWS[(design, method)] = report
    assert report.cp <= config.tcp + 1e-6
    assert report.ii >= config.ii


def test_table1_print(benchmark, results_sink):
    """Assemble and queue the Table 1 text (runs after all cells)."""
    if len(_ROWS) < len(BENCHMARKS) * len(_METHODS):
        pytest.skip("run the full bench_table1 module to print the table")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["Design", "Method", "CP(ns)", "LUT", "%", "FF", "%"]
    rows = []
    for design in sorted(BENCHMARKS):
        base = _ROWS[(design, "hls-tool")]
        for method in _METHODS:
            r = _ROWS[(design, method)]
            rows.append([
                design if method == "hls-tool" else "",
                method,
                f"{r.cp:.2f}",
                r.luts,
                "" if method == "hls-tool" else percent(r.luts, base.luts),
                r.ffs,
                "" if method == "hls-tool" else percent(r.ffs, base.ffs),
            ])
    results_sink.append(render_table(
        headers, rows, title="Table 1 (regenerated): resource usage comparison"
    ))

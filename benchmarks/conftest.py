"""Shared configuration for the benchmark harnesses.

Every harness both *times* its workload (pytest-benchmark) and *prints* the
regenerated table/figure, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's evaluation artifacts in one run. MILP solves are
timed pedantically (one round): re-running a 60-second solver many times
would add nothing.
"""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig


def paper_config(time_limit: float = 120.0) -> SchedulerConfig:
    """The paper's operating point: Tcp=10 ns, II=1, alpha=beta=0.5."""
    return SchedulerConfig(ii=1, tcp=10.0, alpha=0.5, beta=0.5,
                           time_limit=time_limit)


@pytest.fixture(scope="session")
def results_sink():
    """Collects formatted tables to echo at the end of the session."""
    collected: list[str] = []
    yield collected
    if collected:
        print("\n\n" + "\n\n".join(collected))


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (solver workloads are not re-runnable in a
    tight loop) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

"""Operation delay characterization.

Two delay views exist, and the difference between them is the whole point of
the paper:

* :meth:`DelayModel.operator_delay` — the delay of a node implemented as a
  standalone operator (its *unit cut*). These are the "pre-characterized
  delays" an additive-model scheduler uses.
* :meth:`DelayModel.cut_delay` — the delay of a node given a selected cut:
  a K-feasible cone is one LUT level regardless of how many word-level
  operations it swallows.

A node's ``delay_override`` (back-annotated from an HLS schedule report,
Sec. 4) always wins for the operator view.
"""

from __future__ import annotations

import math

from ..cuts.cut import Cut
from ..ir.graph import CDFG
from ..ir.node import Node
from ..ir.types import OpClass, OpKind
from .device import Device

__all__ = ["DelayModel"]


class DelayModel:
    """Maps (node, implementation) to a delay in nanoseconds."""

    def __init__(self, device: Device, graph: CDFG) -> None:
        self.device = device
        self.graph = graph

    # ------------------------------------------------------------------
    def operator_delay(self, node: Node) -> float:
        """Delay of ``node`` as a standalone operator (unit-cut view)."""
        if node.delay_override is not None:
            return node.delay_override
        dev = self.device
        kind = node.kind
        if node.op_class is OpClass.BOUNDARY:
            return 0.0
        if node.attrs.get("recurrence"):
            return 0.0  # a loop-carried phi: just a register output
        if node.op_class is OpClass.BLACKBOX:
            default = dev.blackbox_delays.get(node.rclass or "", None)
            if default is not None:
                return default
            if kind is OpKind.MUL:
                return dev.blackbox_delays.get("dsp", 3.2)
            if kind in (OpKind.DIV, OpKind.MOD):
                return dev.blackbox_delays.get("div", 8.0)
            return dev.blackbox_delays.get("mem_port", 2.1)
        if node.op_class in (OpClass.BITWISE,):
            return dev.lut_level_delay
        if node.op_class is OpClass.SHIFT:
            # Constant shifts / slices / concats are pure wiring.
            return 0.0
        # Arithmetic class.
        if kind in (OpKind.ADD, OpKind.SUB, OpKind.NEG):
            return dev.carry_base + dev.carry_per_bit * node.width
        if kind in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE,
                    OpKind.SLT, OpKind.SGE):
            width = max(
                self.graph.node(op.source).width for op in node.operands
            )
            return dev.carry_base + dev.carry_per_bit * width
        if kind in (OpKind.VSHL, OpKind.VSHR):
            levels = self._barrel_levels(node.width)
            return levels * dev.lut_level_delay
        raise AssertionError(f"unhandled kind {kind}")  # pragma: no cover

    def cut_delay(self, node: Node, cut: Cut) -> float:
        """Delay of ``node`` given its selected cut.

        A K-feasible cut is exactly one LUT level. An infeasible unit cut
        falls back to the operator delay (carry chain, barrel shifter,
        black box...). Pure-wiring roots (every output bit has support <= 1
        and the op is a re-wiring kind) cost nothing.
        """
        if cut.is_unit and not cut.feasible(self.device.k):
            return self.operator_delay(node)
        if node.op_class is OpClass.BOUNDARY:
            return 0.0
        if node.op_class is OpClass.BLACKBOX:
            return self.operator_delay(node)
        if self.is_free_wiring(node, cut):
            return 0.0
        if cut.is_unit:
            # A standalone operator is never slower than its characterized
            # delay (e.g. a sign test is one wire into a flop, not a full
            # LUT level).
            return min(self.operator_delay(node), self.device.lut_level_delay)
        return self.device.lut_level_delay

    def _barrel_levels(self, width: int) -> int:
        stages = max(1, math.ceil(math.log2(max(2, width))))
        # A K-input LUT implements a mux tree absorbing ~log2(K/2)+1 stages.
        per_lut = max(1, int(math.log2(max(2, self.device.k // 2))) + 1)
        return max(1, math.ceil(stages / per_lut))

    def is_free_wiring(self, node: Node, cut: Cut) -> bool:
        """True when the selected cone needs no logic at all.

        A cone made exclusively of shift-class operations (constant shifts,
        slices, zero-extensions, concatenations) and loop-carried phis only
        re-indexes bits; it is routed, not mapped. Anything else — even a
        single-input function like NOT — needs a truth table.
        """

        def free(n) -> bool:
            return n.op_class is OpClass.SHIFT or bool(n.attrs.get("recurrence"))

        if not free(node):
            return False
        return all(free(self.graph.node(i)) for i in cut.interior)

"""Device, delay and area characterization for LUT-based FPGA targets."""

from .area import AreaModel
from .delay import DelayModel
from .device import TUTORIAL4, XC7, Device

__all__ = ["AreaModel", "DelayModel", "Device", "TUTORIAL4", "XC7"]

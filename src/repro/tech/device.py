"""FPGA device characterization.

A :class:`Device` bundles the numbers the scheduler needs: LUT input count K,
per-LUT-level delay, carry-chain timing for word arithmetic, and black-box
operator characteristics. Two stock devices are provided:

* :data:`XC7` — a Xilinx-7-series-like device (K=6), matching the paper's
  experimental target;
* :data:`TUTORIAL4` — the K=4, 2 ns-per-LUT device of the paper's Figure 1
  walkthrough (target clock 5 ns).

All numbers are representative, not vendor-binding; DESIGN.md explains why
this preserves the experiment's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Device", "XC7", "TUTORIAL4"]


@dataclass(frozen=True)
class Device:
    """Timing/area characterization of a LUT-based FPGA target.

    Attributes
    ----------
    name:
        Display name.
    k:
        LUT input count (the K of K-feasible cuts).
    lut_delay:
        Logic delay of one LUT, ns.
    net_delay:
        Average local routing delay charged per LUT level, ns.
    carry_base / carry_per_bit:
        Carry-chain timing for ADD/SUB/compare operators: total delay is
        ``carry_base + carry_per_bit * width`` ns.
    blackbox_delays:
        Default delay (ns) per resource class of black-box operations.
    blackbox_counts:
        Available resource instances per class (Eq. 14's ``N_r``); classes
        missing from the map are unconstrained.
    ff_setup:
        Register setup time charged at the end of a cycle, ns.
    clock_uncertainty:
        Fraction of the clock period withheld from the scheduler as margin
        for routing/jitter (Vivado HLS defaults to 12.5%). Schedulers fill
        only ``usable_period``; the cost model's achieved CP may then use
        the full period.
    """

    name: str = "xc7"
    k: int = 6
    lut_delay: float = 0.9
    net_delay: float = 0.5
    carry_base: float = 0.6
    carry_per_bit: float = 0.025
    blackbox_delays: dict[str, float] = field(
        default_factory=lambda: {"mem_port": 2.1, "dsp": 3.2, "div": 8.0}
    )
    blackbox_counts: dict[str, int] = field(default_factory=dict)
    ff_setup: float = 0.1
    clock_uncertainty: float = 0.125

    @property
    def lut_level_delay(self) -> float:
        """Delay of one mapped LUT level including local routing, ns."""
        return self.lut_delay + self.net_delay

    def usable_period(self, tcp: float) -> float:
        """The scheduling budget for a target period ``tcp``."""
        return tcp * (1.0 - self.clock_uncertainty)

    def with_resources(self, **counts: int) -> "Device":
        """Return a copy with resource availability overrides (Eq. 14)."""
        merged = dict(self.blackbox_counts)
        merged.update(counts)
        return Device(
            name=self.name,
            k=self.k,
            lut_delay=self.lut_delay,
            net_delay=self.net_delay,
            carry_base=self.carry_base,
            carry_per_bit=self.carry_per_bit,
            blackbox_delays=dict(self.blackbox_delays),
            blackbox_counts=merged,
            ff_setup=self.ff_setup,
            clock_uncertainty=self.clock_uncertainty,
        )


#: Xilinx-7-series-like target used for the Table 1 / Table 2 experiments.
XC7 = Device()

#: The K=4 teaching device of the paper's Figure 1 (2 ns per LUT level).
TUTORIAL4 = Device(
    name="tutorial-k4",
    k=4,
    lut_delay=1.6,
    net_delay=0.4,
    carry_base=1.0,
    carry_per_bit=0.1,
    ff_setup=0.0,
    clock_uncertainty=0.0,
)

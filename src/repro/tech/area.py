"""Operation area characterization (LUT counts).

Like delays, area has two views: the paper's MILP objective charges
``Bits(v)`` LUTs per selected root (Eq. 15); the refined view used by both
the MILP objective weights and the hardware cost model additionally
recognizes free wiring (pure bit re-indexing), constant bits, and operator
(carry-chain / barrel / black-box) implementations. The same model is
applied to every flow, so relative comparisons are fair.
"""

from __future__ import annotations

import math

from ..bitdeps.support import popcount
from ..cuts.cut import Cut
from ..ir.graph import CDFG
from ..ir.node import Node
from ..ir.types import OpClass, OpKind
from .delay import DelayModel
from .device import Device

__all__ = ["AreaModel"]


class AreaModel:
    """Maps (node, implementation) to a LUT count."""

    def __init__(self, device: Device, graph: CDFG) -> None:
        self.device = device
        self.graph = graph
        self._delay = DelayModel(device, graph)

    def paper_lut_cost(self, node: Node) -> int:
        """The paper's Eq. 15 cost: ``Bits(v)`` for any selected root."""
        return node.width

    def cut_lut_cost(self, node: Node, cut: Cut) -> int:
        """Refined LUT count of ``node`` implemented by ``cut``."""
        if node.op_class in (OpClass.BOUNDARY, OpClass.BLACKBOX):
            return 0
        if cut.is_unit and not cut.feasible(self.device.k):
            return self.operator_lut_cost(node)
        if self._delay.is_free_wiring(node, cut):
            return 0
        # One K-LUT per output bit that actually computes a function of at
        # least one variable; constant bits are free.
        return sum(1 for m in cut.masks if popcount(m) >= 1)

    def operator_lut_cost(self, node: Node) -> int:
        """LUT count of ``node`` as a standalone (non-cone) operator."""
        kind = node.kind
        if node.op_class in (OpClass.BOUNDARY, OpClass.BLACKBOX):
            return 0
        if node.op_class is OpClass.SHIFT or node.attrs.get("recurrence"):
            return 0
        if node.op_class is OpClass.BITWISE:
            return node.width
        if kind in (OpKind.ADD, OpKind.SUB, OpKind.NEG):
            return node.width  # one LUT + carry element per bit
        if kind in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE,
                    OpKind.SLT, OpKind.SGE):
            width = max(self.graph.node(op.source).width for op in node.operands)
            # A tree comparator packs ~ (K-2) bit-pairs per LUT level.
            return max(1, math.ceil(width / max(2, self.device.k - 2)))
        if kind in (OpKind.VSHL, OpKind.VSHR):
            levels = self._delay._barrel_levels(node.width)
            return node.width * levels
        raise AssertionError(f"unhandled kind {kind}")  # pragma: no cover

    def register_bits(self, node: Node) -> int:
        """FF cost of keeping ``node``'s value live for one extra cycle."""
        return node.width

"""Word-level cut enumeration (paper Algorithm 1 + Eq. 1).

For every node the enumerator produces:

* the **trivial** cut ``{v}`` — merge ingredient only;
* the **unit** cut — v implemented as a standalone operator over its direct
  DEP inputs (the only selectable cut in MILP-base, and the fallback when no
  K-feasible cone exists, e.g. wide carry chains);
* **merged** cuts grown by combining one cut per DEP input (Eq. 1), kept
  when K-feasible in the bit-support sense (DESIGN.md note 2).

Loop-carried (distance >= 1) operands always contribute their trivial cut:
a registered value can feed a cone but the cone cannot grow through the
register (DESIGN.md note 5) — this is how the enumerator "handles the cycle"
of the paper's Figure 2. Black boxes and primary inputs likewise only offer
their trivial cut. Constants are absorbed for free and never appear in
boundaries.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from ..bitdeps.dep import dep_bits, word_dep_sources
from ..bitdeps.packed import (
    PackedSupportCalculator,
    ints_to_rows,
    max_popcount,
    rows_to_ints,
)
from ..bitdeps.support import SupportCalculator
from ..errors import CutError
from ..ir.graph import CDFG
from ..ir.types import OpKind
from ..vectorize import vectorize_enabled
from .cut import Cut, CutSet

__all__ = ["CutEnumerator", "EnumerationStats", "enumerate_cuts"]


@dataclass
class EnumerationStats:
    """Bookkeeping for Table 2 / the K-sweep ablation."""

    k: int
    nodes_processed: int = 0
    worklist_visits: int = 0
    candidates_generated: int = 0
    cuts_kept: int = 0
    capped_nodes: int = 0
    per_node_counts: dict[int, int] = field(default_factory=dict)

    @property
    def total_selectable(self) -> int:
        """Total selectable cuts across the graph (drives MILP size)."""
        return sum(self.per_node_counts.values())


class CutEnumerator:
    """Enumerates K-feasible word-level cuts for a CDFG.

    Parameters
    ----------
    graph:
        The CDFG (validated).
    k:
        LUT input count of the target device.
    max_cuts:
        Cap on *merged* cuts kept per node (priority: small support, then
        small boundary). The unit cut never counts against the cap.
    max_candidates:
        Safety valve on the per-node merge product.
    vectorize:
        Run the merge-filter inner loop on packed uint64 bitmask rows
        (byte-identical cuts; see docs/performance.md). ``None`` defers to
        ``REPRO_VECTORIZE``.
    """

    def __init__(self, graph: CDFG, k: int, max_cuts: int = 12,
                 max_candidates: int = 20000,
                 vectorize: bool | None = None) -> None:
        if k < 2:
            raise CutError(f"K must be >= 2, got {k}")
        self.graph = graph
        self.k = k
        self.max_cuts = max_cuts
        self.max_candidates = max_candidates
        self.calc = SupportCalculator(graph)
        self.vectorize = vectorize_enabled(vectorize)
        self._pcalc = PackedSupportCalculator(graph) if self.vectorize else None
        self.stats = EnumerationStats(k=k)
        self._trivial: dict[int, Cut] = {}
        self._merged: dict[int, list[Cut]] = {}
        self._unit: dict[int, Cut | None] = {}

    # ------------------------------------------------------------------
    def run(self) -> dict[int, CutSet]:
        """Execute Algorithm 1 and return a CutSet per node id."""
        graph = self.graph
        for nid in graph.node_ids:
            self._trivial[nid] = self._make_trivial(nid)
            self._merged[nid] = []
            self._unit[nid] = None

        order = graph.topological_order()
        worklist = deque(order)
        queued = set(worklist)
        while worklist:
            nid = worklist.popleft()
            queued.discard(nid)
            self.stats.worklist_visits += 1
            node = graph.node(nid)
            if node.kind in (OpKind.INPUT, OpKind.CONST):
                continue
            changed = self._update_node(nid)
            if changed:
                for succ in graph.successor_ids(nid):
                    if succ not in queued:
                        worklist.append(succ)
                        queued.add(succ)

        result: dict[int, CutSet] = {}
        for nid in graph.node_ids:
            node = graph.node(nid)
            selectable: list[Cut] = []
            unit = self._unit[nid]
            if unit is not None:
                selectable.append(unit)
            unit_boundary = unit.boundary if unit is not None else None
            for cut in self._merged[nid]:
                if cut.boundary != unit_boundary:
                    selectable.append(cut)
            result[nid] = CutSet(nid, self._trivial[nid], selectable)
            self.stats.per_node_counts[nid] = len(selectable)
            if not node.is_boundary:
                self.stats.nodes_processed += 1
        if self._pcalc is not None:
            # The packed rows only matter while cuts are merge ingredients;
            # downstream consumers read the int masks. Drop the matrices so
            # the enumerator does not double the mask memory footprint.
            for cuts in self._merged.values():
                for cut in cuts:
                    if "_rows" in cut.__dict__:
                        object.__delattr__(cut, "_rows")
            for unit in self._unit.values():
                if unit is not None and "_rows" in unit.__dict__:
                    object.__delattr__(unit, "_rows")
        return result

    # ------------------------------------------------------------------
    def _make_trivial(self, nid: int) -> Cut:
        return Cut(
            root=nid,
            boundary=frozenset({nid}),
            masks=tuple(self.calc.leaf_masks(nid)),
            kind="trivial",
        )

    def _make_unit(self, nid: int) -> Cut:
        """The standalone-operator cut: boundary = direct non-const inputs."""
        graph = self.graph
        node = graph.node(nid)
        if node.is_blackbox:
            pairs = {
                (op.source, op.distance)
                for op in node.operands
                if graph.node(op.source).kind is not OpKind.CONST
            }
            return Cut(nid, frozenset(p[0] for p in pairs),
                       tuple([0] * node.width), kind="unit",
                       entries=tuple(sorted(pairs)))
        slots = word_dep_sources(graph, node)
        pairs = set()
        if self._pcalc is not None:
            slot_rows: dict[int, object] = {}
            for slot in slots:
                op = node.operands[slot]
                if graph.node(op.source).kind is OpKind.CONST:
                    continue
                pairs.add((op.source, op.distance))
                slot_rows[slot] = self._pcalc.leaf_rows(op.source, op.distance)
            rows = self._pcalc.transfer(node, slot_rows)
            cut = Cut(nid, frozenset(p[0] for p in pairs),
                      tuple(rows_to_ints(rows)), kind="unit",
                      entries=tuple(sorted(pairs)))
            object.__setattr__(cut, "_rows", rows)
            object.__setattr__(cut, "_max_support", max_popcount(rows))
            return cut
        slot_masks: dict[int, list[int]] = {}
        for slot in slots:
            op = node.operands[slot]
            if graph.node(op.source).kind is OpKind.CONST:
                continue
            pairs.add((op.source, op.distance))
            slot_masks[slot] = self.calc.leaf_masks(op.source, op.distance)
        masks = self._compose_masks(node, slot_masks)
        return Cut(nid, frozenset(p[0] for p in pairs), tuple(masks),
                   kind="unit", entries=tuple(sorted(pairs)))

    def _compose_masks(self, node, slot_masks: dict[int, list[int]]) -> list[int]:
        """Support masks of ``node`` given masks for each operand *slot*.

        Keying by slot (not source id) keeps two uses of the same node at
        different iteration distances distinct.
        """
        graph = self.graph
        masks: list[int] = []
        for j in range(node.width):
            m = 0
            for entry in dep_bits(graph, node, j):
                src_masks = slot_masks.get(entry.slot)
                if src_masks is None:
                    continue  # constant operand: absorbed for free
                if entry.bit < len(src_masks):
                    m |= src_masks[entry.bit]
            masks.append(m)
        return masks

    def _cut_rows(self, cut: Cut):
        """Packed rows of a cut's masks, cached on the cut instance."""
        rows = cut.__dict__.get("_rows")
        if rows is None:
            rows = ints_to_rows(cut.masks, self._pcalc.words)
            object.__setattr__(cut, "_rows", rows)
        return rows

    def _update_node(self, nid: int) -> bool:
        """Recompute the cut set of one node; True if it changed (Alg. 1 l.7-10)."""
        graph = self.graph
        node = graph.node(nid)

        if self._unit[nid] is None:
            self._unit[nid] = self._make_unit(nid)
            changed = True
        else:
            changed = False

        if not node.is_mappable or node.kind is OpKind.OUTPUT:
            return changed
        if self.max_cuts == 0:
            return changed  # MILP-base: unit cuts only, no cone growth

        # Build the per-slot choice lists (Eq. 1: one cut per input). Each
        # choice is (slot, cut, edge_distance): the distance matters when the
        # operand enters as a boundary value (registered vs combinational),
        # and only distance-0 operands may be absorbed (DESIGN.md note 5).
        slots = word_dep_sources(graph, node)
        choice_lists: list[list[tuple[int, Cut, int]]] = []
        for slot in slots:
            op = node.operands[slot]
            src_node = graph.node(op.source)
            if src_node.kind is OpKind.CONST:
                continue
            choices = [(slot, self._trivial[op.source], op.distance)]
            if op.distance == 0 and src_node.is_mappable \
                    and src_node.kind is not OpKind.OUTPUT:
                unit = self._unit[op.source]
                if unit is not None and unit.feasible(self.k):
                    choices.append((slot, unit, 0))
                choices.extend((slot, c, 0) for c in self._merged[op.source]
                               if c.feasible(self.k))
            choice_lists.append(choices)

        total = 1
        for lst in choice_lists:
            total *= len(lst)
        if total > self.max_candidates:
            self.stats.capped_nodes += 1
            choice_lists = [lst[: max(2, self.max_candidates // 1000)]
                            for lst in choice_lists]

        seen: dict[tuple, Cut] = {c.entries: c for c in self._merged[nid]}
        new_cuts: list[Cut] = list(self._merged[nid])
        pcalc = self._pcalc
        for combo in itertools.product(*choice_lists):
            self.stats.candidates_generated += 1
            pairs: set[tuple[int, int]] = set()
            slot_masks: dict[int, list[int]] = {}
            slot_rows: dict[int, object] = {}
            interior: set[int] = set()
            for slot, cut, edge_dist in combo:
                if cut.is_trivial:
                    pairs.add((cut.root, edge_dist))
                    if pcalc is not None:
                        slot_rows[slot] = pcalc.leaf_rows(cut.root, edge_dist)
                    else:
                        slot_masks[slot] = self.calc.leaf_masks(cut.root,
                                                                edge_dist)
                else:
                    pairs.update(cut.entries)
                    if pcalc is not None:
                        slot_rows[slot] = self._cut_rows(cut)
                    else:
                        slot_masks[slot] = list(cut.masks)
                    interior.add(cut.root)
                    interior.update(cut.interior)
            entries = tuple(sorted(pairs))
            if entries in seen:
                continue
            boundary = frozenset(p[0] for p in pairs)
            # A node may be absorbed through one operand *and* enter as a
            # (typically registered) boundary value through another; it then
            # appears in both interior and boundary, keeping its co-timing
            # obligation. Subtracting the boundary here once created covers
            # whose recomputed logic could be scheduled before its inputs.
            if pcalc is not None:
                rows = pcalc.transfer(node, slot_rows)
                support = max_popcount(rows)
                if support > self.k:
                    continue
                candidate = Cut(nid, boundary, tuple(rows_to_ints(rows)),
                                kind="merged", interior=frozenset(interior),
                                entries=entries)
                object.__setattr__(candidate, "_rows", rows)
                object.__setattr__(candidate, "_max_support", support)
            else:
                masks = self._compose_masks(node, slot_masks)
                candidate = Cut(nid, boundary, tuple(masks), kind="merged",
                                interior=frozenset(interior),
                                entries=entries)
                if not candidate.feasible(self.k):
                    continue
            seen[entries] = candidate
            new_cuts.append(candidate)

        new_cuts = self._prune(new_cuts)
        if {c.entries for c in new_cuts} != {c.entries for c in self._merged[nid]}:
            self._merged[nid] = new_cuts
            changed = True
        self.stats.cuts_kept = sum(len(v) for v in self._merged.values())
        return changed

    def _prune(self, cuts: list[Cut]) -> list[Cut]:
        """Drop dominated cuts, then cap (small support / boundary first)."""
        cuts = sorted(cuts, key=lambda c: (len(c.boundary), c.max_support,
                                           tuple(sorted(c.boundary))))
        kept: list[Cut] = []
        for cut in cuts:
            if any(k.boundary <= cut.boundary for k in kept):
                continue
            kept.append(cut)
        kept.sort(key=lambda c: (c.max_support, len(c.boundary),
                                 tuple(sorted(c.boundary))))
        return kept[: self.max_cuts]


def enumerate_cuts(graph: CDFG, k: int, max_cuts: int = 12,
                   max_candidates: int = 20000,
                   vectorize: bool | None = None) -> dict[int, CutSet]:
    """Convenience wrapper: run a :class:`CutEnumerator` and return its cuts."""
    return CutEnumerator(graph, k, max_cuts, max_candidates,
                         vectorize=vectorize).run()


def prune_cut_sets(graph: CDFG, cuts: dict[int, CutSet], device,
                   budget: float) -> tuple[dict[int, CutSet], int]:
    """Drop provably-useless cuts before the MILP is even built.

    Two conservative rules, each preserving at least one optimal schedule
    (see docs/performance.md):

    * **over-budget** — a merged cut whose mapped delay exceeds the
      usable clock budget can never satisfy Eq. 8 (``L >= 0``), so
      selecting it is infeasible; drop it.
    * **dominance** — a merged cut C is dominated by a sibling C' with
      the *same interior* (identical coverage), ``entries(C') subset of
      entries(C)`` (weaker chain/liveness obligations), and
      delay/LUT-cost no worse; any schedule selecting C stays feasible
      and no more expensive selecting C' instead.

    Unit cuts are never dropped: they are the fallback the coverage
    constraints and forced roots rely on, and an over-budget *unit* cut
    means the node itself cannot meet timing — a diagnosis the solver
    should surface, not the pruner. Returns the pruned mapping (same
    object, mutated CutSets) and the number of cuts removed.
    """
    from ..tech.area import AreaModel
    from ..tech.delay import DelayModel

    delay_model = DelayModel(device, graph)
    area_model = AreaModel(device, graph)
    dropped = 0
    for nid, cs in cuts.items():
        if len(cs.selectable) <= 1:
            continue
        node = graph.node(nid)
        scored = [
            (cut, delay_model.cut_delay(node, cut),
             area_model.cut_lut_cost(node, cut))
            for cut in cs.selectable
        ]
        kept: list[Cut] = []
        for i, (cut, delay, cost) in enumerate(scored):
            if cut.is_unit:
                kept.append(cut)
                continue
            if delay > budget + 1e-9:
                dropped += 1
                continue
            entries = set(cut.entries)

            def dominates(j: int) -> bool:
                other, d2, c2 = scored[j]
                if (other is cut or other.interior != cut.interior
                        or not set(other.entries) <= entries
                        or d2 > delay + 1e-9 or c2 > cost + 1e-9):
                    return False
                # Ties broken by position so equal twins cannot
                # eliminate each other: only the earlier one survives.
                strict = (set(other.entries) < entries
                          or d2 < delay - 1e-9 or c2 < cost - 1e-9)
                return strict or j < i

            if any(dominates(j) for j in range(len(scored))):
                dropped += 1
            else:
                kept.append(cut)
        if kept:
            cs.selectable = kept
    return cuts, dropped

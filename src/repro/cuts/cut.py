"""Cut and cut-set value objects."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bitdeps.support import popcount

__all__ = ["Cut", "CutSet"]


@dataclass(frozen=True)
class Cut:
    """A word-level cut of node ``root``.

    Attributes
    ----------
    root:
        The node this cut belongs to (the prospective LUT root, Eq. 2).
    boundary:
        The cut nodes — non-constant nodes whose values enter the cone from
        outside. The **trivial** cut of v has boundary ``{v}`` and is only a
        merge ingredient, never selectable for v itself (DESIGN.md note 1).
    masks:
        Per output bit of ``root``: the global-bit support mask w.r.t. the
        boundary (see :class:`~repro.bitdeps.SupportCalculator`).
    kind:
        ``"trivial"``, ``"unit"`` (the standalone-operator cut over direct
        DEP inputs) or ``"merged"`` (grown by Eq. 1).
    interior:
        Node ids strictly inside the cone (excluding root and boundary,
        excluding constants). Empty for trivial and unit cuts.
    entries:
        Sorted ``(boundary_node, distance)`` pairs: every iteration distance
        at which each boundary value enters the cone. Distance 0 =
        combinational entry; >= 1 = the value crosses that many
        pipeline-register stages first (loop-carried, DESIGN.md note 5).
        A node may appear at several distances (x combined with x from the
        previous iteration).
    """

    root: int
    boundary: frozenset[int]
    masks: tuple[int, ...]
    kind: str = "merged"
    interior: frozenset[int] = field(default_factory=frozenset)
    entries: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.entries and self.boundary:
            object.__setattr__(
                self, "entries", tuple((nid, 0) for nid in sorted(self.boundary))
            )

    @property
    def entry_distance(self) -> dict[int, int]:
        """Minimum entry distance per boundary node."""
        result: dict[int, int] = {}
        for nid, dist in self.entries:
            result[nid] = min(result.get(nid, dist), dist)
        return result

    @property
    def max_support(self) -> int:
        """Largest per-output-bit support size (decides K-feasibility).

        Computed once and cached: masks are immutable, and the pruning
        passes sort on this repeatedly.
        """
        cached = self.__dict__.get("_max_support")
        if cached is None:
            cached = max((popcount(m) for m in self.masks), default=0)
            object.__setattr__(self, "_max_support", cached)
        return cached

    @property
    def is_trivial(self) -> bool:
        """True for the base cut ``{root}``."""
        return self.kind == "trivial"

    @property
    def is_unit(self) -> bool:
        """True for the standalone-operator cut."""
        return self.kind == "unit"

    def feasible(self, k: int) -> bool:
        """True iff every output bit fits in a ``k``-input LUT."""
        return self.max_support <= k

    def covers(self, nid: int) -> bool:
        """True if ``nid`` is computed inside this cone (root or interior)."""
        return nid == self.root or nid in self.interior

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        b = ",".join(map(str, sorted(self.boundary)))
        return f"Cut(root={self.root}, kind={self.kind}, boundary={{{b}}}, supp={self.max_support})"


class CutSet:
    """All cuts enumerated for one node."""

    def __init__(self, root: int, trivial: Cut, selectable: list[Cut]) -> None:
        self.root = root
        self.trivial = trivial
        self.selectable = list(selectable)

    @property
    def unit(self) -> Cut | None:
        """The standalone-operator cut, if the node has one."""
        for cut in self.selectable:
            if cut.is_unit:
                return cut
        return None

    @property
    def merged(self) -> list[Cut]:
        """All non-unit selectable cuts."""
        return [c for c in self.selectable if not c.is_unit]

    def __len__(self) -> int:
        return len(self.selectable)

    def __iter__(self):
        return iter(self.selectable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CutSet(root={self.root}, {len(self.selectable)} selectable)"

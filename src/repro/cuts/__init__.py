"""Word-level cut enumeration (paper Sec. 3.1, Algorithm 1)."""

from .cut import Cut, CutSet
from .enumerate import CutEnumerator, EnumerationStats, enumerate_cuts

__all__ = ["Cut", "CutSet", "CutEnumerator", "EnumerationStats", "enumerate_cuts"]

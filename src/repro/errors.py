"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single handler while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed CDFG: bad operands, widths, unknown nodes, or bad edges."""


class ValidationError(IRError):
    """A CDFG failed structural validation."""


class FrontendError(ReproError):
    """The mini-language frontend rejected a program."""


class CutError(ReproError):
    """Cut enumeration failed or was queried inconsistently."""


class ModelError(ReproError):
    """An MILP model was built or queried incorrectly."""


class SolverError(ReproError):
    """An MILP/LP backend failed to produce a usable answer."""


class InfeasibleError(SolverError):
    """The optimization problem admits no feasible solution."""

    def __init__(self, message: str = "problem is infeasible") -> None:
        super().__init__(message)


class SchedulingError(ReproError):
    """A scheduler could not produce a legal schedule."""


class ScheduleVerificationError(SchedulingError):
    """An independently-checked schedule violates a constraint.

    Attributes
    ----------
    violations:
        Human-readable descriptions of every violated constraint.
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        preview = "; ".join(self.violations[:5])
        more = "" if len(self.violations) <= 5 else f" (+{len(self.violations) - 5} more)"
        super().__init__(f"schedule verification failed: {preview}{more}")


class MappingError(ReproError):
    """Technology mapping failed (e.g., no feasible cover for a stage)."""


class SimulationError(ReproError):
    """Functional or cycle-accurate simulation failed or diverged."""


class RTLError(ReproError):
    """Verilog emission failed."""


class ExperimentError(ReproError):
    """An experiment harness was configured or run incorrectly."""

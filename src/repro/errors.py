"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single handler while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed CDFG: bad operands, widths, unknown nodes, or bad edges."""


class ValidationError(IRError):
    """A CDFG failed structural validation."""


class AnalysisError(ReproError):
    """Static analysis found blocking diagnostics.

    Attributes
    ----------
    report:
        The :class:`~repro.analysis.DiagnosticReport` that tripped the
        failure threshold, when available (``None`` for configuration
        errors inside the analysis engine itself).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class FrontendError(ReproError):
    """The mini-language frontend rejected a program."""


class CutError(ReproError):
    """Cut enumeration failed or was queried inconsistently."""


class ModelError(ReproError):
    """An MILP model was built or queried incorrectly."""


class SolverError(ReproError):
    """An MILP/LP backend failed to produce a usable answer."""


class InfeasibleError(SolverError):
    """The optimization problem admits no feasible solution."""

    def __init__(self, message: str = "problem is infeasible") -> None:
        super().__init__(message)


class SchedulingError(ReproError):
    """A scheduler could not produce a legal schedule."""


class ScheduleVerificationError(SchedulingError):
    """An independently-checked schedule violates a constraint.

    Attributes
    ----------
    violations:
        Human-readable descriptions of every violated constraint.
    report:
        Optional :class:`~repro.analysis.DiagnosticReport` with the full
        machine-readable findings (codes, severities, locations).
    """

    #: How many violations :meth:`__str__` renders before truncating —
    #: a schedule can violate thousands of constraints at once, and a
    #: traceback is not the place for all of them.
    MAX_RENDERED = 5

    def __init__(self, violations: list[str], report=None) -> None:
        self.violations = list(violations)
        self.report = report
        super().__init__(self._render())

    def _render(self) -> str:
        shown = self.violations[:self.MAX_RENDERED]
        hidden = len(self.violations) - len(shown)
        preview = "; ".join(shown)
        more = f" (+{hidden} more)" if hidden > 0 else ""
        return f"schedule verification failed: {preview}{more}"

    def __str__(self) -> str:
        return self._render()


class MappingError(ReproError):
    """Technology mapping failed (e.g., no feasible cover for a stage)."""


class SimulationError(ReproError):
    """Functional or cycle-accurate simulation failed or diverged."""


class RTLError(ReproError):
    """Verilog emission failed."""


class ExperimentError(ReproError):
    """An experiment harness was configured or run incorrectly."""


class FlowCancelled(ReproError):
    """A flow observed its cancellation signal at a phase checkpoint.

    Raised by :func:`repro.experiments.run_flow` when the caller-supplied
    ``cancel`` predicate turns true between phases. Deliberately *not* a
    subclass of :class:`SolverError`/:class:`SchedulingError`/
    :class:`AnalysisError`, so the narrowed-graph fallback never swallows
    a cancellation into a retry on the original graph.

    Attributes
    ----------
    phase:
        The phase the flow was about to enter when it stopped.
    """

    def __init__(self, message: str, phase: str | None = None) -> None:
        super().__init__(message)
        self.phase = phase


class ServiceError(ReproError):
    """Base class for job-server errors (:mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """A service request payload is malformed (HTTP 400)."""


class QuotaExceeded(ServiceError):
    """A client exceeded its per-client active-job quota (HTTP 429)."""


class ServiceBusy(ServiceError):
    """The bounded job queue is full; submission rejected (HTTP 429)."""

"""Campaign driver: fan seeds over processes, collect a JSON summary.

One *task* = one seed: generate (and on odd seeds mutate) a graph, run
the selected oracles, and — when one diverges — shrink the case in-worker
with :func:`repro.fuzz.shrink.shrink` so the summary only ever contains
*minimal* repros. Tasks are picklable and the worker is a module-level
function, so :func:`repro.runtime.run_parallel`'s ordered merge makes the
``--jobs 2`` summary byte-identical to the serial one (the determinism
the test suite pins).

The summary schema is ``repro-fuzz/v1``. ``FuzzSummary.canonical_json``
strips wall-clock fields (timing, jobs, budget bookkeeping) — that is the
byte-stable form; the full ``to_dict`` additionally carries per-oracle
seconds for the nightly artifacts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.config import SchedulerConfig
from ..runtime.parallel import resolve_jobs, run_parallel
from ..tech.device import XC7, Device
from .corpus import make_entry
from .generate import FuzzCaseData, generate_case, make_stimulus
from .mutate import mutate
from .oracles import DEFAULT_ORACLES, FuzzCase, run_oracle
from .shrink import shrink

FUZZ_SCHEMA = "repro-fuzz/v1"

__all__ = ["FUZZ_SCHEMA", "FuzzTask", "FuzzSummary", "run_campaign"]

#: Fields of a per-seed result that carry wall-clock time (stripped from
#: the canonical summary).
_TIMING_KEYS = ("seconds",)


@dataclass(frozen=True)
class FuzzTask:
    """One unit of campaign work (picklable; crosses process boundaries)."""

    seed: int
    oracles: tuple[str, ...] = DEFAULT_ORACLES
    profile: str | None = None        # None = route by seed
    mutate_rounds: int = 1            # applied on odd seeds only
    shrink_divergences: bool = True
    shrink_checks: int = 80
    device: Device = XC7
    config: SchedulerConfig | None = None


def _case_for_task(task: FuzzTask) -> FuzzCaseData:
    data = generate_case(task.seed, task.profile)
    if task.mutate_rounds > 0 and task.seed % 2 == 1:
        mutated = mutate(data.graph, task.seed, rounds=task.mutate_rounds)
        if mutated is not data.graph:
            # Mutation preserves the input interface (DCE keeps primary
            # inputs), so the original stimulus still applies; regenerate
            # anyway so row count matches the profile even after clipping.
            data = FuzzCaseData(
                graph=mutated,
                stimulus=make_stimulus(mutated, task.seed,
                                       len(data.stimulus)),
                seed=task.seed, profile=data.profile + "+mut")
    return data


def _shrink_divergence(task: FuzzTask, data: FuzzCaseData,
                       oracle: str) -> dict[str, Any]:
    """Minimize a diverging case against its one failing oracle."""

    def failing(graph, stimulus) -> bool:
        candidate = FuzzCase(
            FuzzCaseData(graph=graph, stimulus=stimulus, seed=data.seed,
                         profile=data.profile),
            device=task.device, config=task.config)
        return run_oracle(oracle, candidate).status == "diverge"

    result = shrink(data.graph, data.stimulus, failing,
                    max_checks=task.shrink_checks)
    return {
        "nodes": len(result.graph),
        "stimulus_len": len(result.stimulus),
        "checks": result.checks,
        "entry": make_entry(
            oracle=oracle, seed=data.seed, profile=data.profile,
            graph=result.graph, stimulus=result.stimulus,
            description=f"shrunk divergence of seed {data.seed} "
                        f"({data.profile}) against oracle {oracle}"),
    }


def fuzz_worker(task: FuzzTask) -> dict[str, Any]:
    """Run one seed end to end (module-level: the pool pickles it)."""
    data = _case_for_task(task)
    case = FuzzCase(data, device=task.device, config=task.config)
    oracles: dict[str, Any] = {}
    divergences: list[dict[str, Any]] = []
    for name in task.oracles:
        result = run_oracle(name, case)
        record: dict[str, Any] = {"status": result.status,
                                  "seconds": result.seconds}
        if result.message:
            record["message"] = result.message
        oracles[name] = record
        if result.status == "diverge":
            entry: dict[str, Any] = result.divergence.to_dict()
            if task.shrink_divergences:
                entry["shrunk"] = _shrink_divergence(task, data, name)
            divergences.append(entry)
    return {
        "seed": task.seed,
        "profile": data.profile,
        "nodes": len(data.graph),
        "oracles": oracles,
        "divergences": divergences,
    }


@dataclass
class FuzzSummary:
    """Aggregated campaign outcome."""

    results: list[dict[str, Any]]
    oracles: tuple[str, ...]
    seeds_requested: int
    stopped_early: bool = False
    elapsed: float = 0.0
    jobs: int = 1
    corpus_files: list[str] = field(default_factory=list)

    @property
    def divergences(self) -> list[dict[str, Any]]:
        return [d for r in self.results for d in r["divergences"]]

    def counts(self) -> dict[str, int]:
        tally = {"pass": 0, "skip": 0, "diverge": 0}
        for r in self.results:
            for record in r["oracles"].values():
                tally[record["status"]] += 1
        return tally

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        results = self.results
        if not include_timing:
            results = [self._strip_timing(r) for r in results]
        data: dict[str, Any] = {
            "schema": FUZZ_SCHEMA,
            "oracles": list(self.oracles),
            "seeds_requested": self.seeds_requested,
            "seeds_run": len(self.results),
            "stopped_early": self.stopped_early,
            "counts": self.counts(),
            "results": results,
        }
        if include_timing:
            data["elapsed"] = self.elapsed
            data["jobs"] = self.jobs
            data["corpus_files"] = list(self.corpus_files)
        return data

    @staticmethod
    def _strip_timing(result: dict[str, Any]) -> dict[str, Any]:
        clean = dict(result)
        clean["oracles"] = {
            name: {k: v for k, v in record.items()
                   if k not in _TIMING_KEYS}
            for name, record in result["oracles"].items()
        }
        return clean

    def canonical_json(self) -> str:
        """Byte-stable summary: wall-clock and pool-shape fields removed."""
        return json.dumps(self.to_dict(include_timing=False),
                          sort_keys=True, separators=(",", ":"))


def run_campaign(seeds: int = 50, seed_start: int = 0,
                 oracles: tuple[str, ...] = DEFAULT_ORACLES,
                 profiles: tuple[str, ...] | None = None,
                 time_budget: float | None = None,
                 jobs: int | None = None,
                 device: Device = XC7,
                 config: SchedulerConfig | None = None,
                 mutate_rounds: int = 1,
                 shrink_divergences: bool = True,
                 corpus_dir: str | None = None,
                 progress: Callable[[FuzzTask], None] | None = None
                 ) -> FuzzSummary:
    """Run ``seeds`` fuzz tasks, optionally bounded by ``time_budget``.

    The budget is checked *between* chunks of ``jobs * 4`` tasks, so a
    budgeted run still gets the ordered-merge determinism within every
    chunk and never kills a solver mid-flight.
    """
    from .generate import PROFILES, profile_for_seed

    names = tuple(profiles) if profiles else None
    if names:
        unknown = [n for n in names if n not in PROFILES]
        if unknown:
            raise ValueError(f"unknown fuzz profile(s): {unknown}")
    tasks = [
        FuzzTask(seed=seed_start + k, oracles=tuple(oracles),
                 profile=(profile_for_seed(seed_start + k, names).name
                          if names else None),
                 mutate_rounds=mutate_rounds,
                 shrink_divergences=shrink_divergences,
                 device=device, config=config)
        for k in range(seeds)
    ]
    jobs = resolve_jobs(jobs)
    t0 = time.monotonic()
    results: list[dict[str, Any]] = []
    stopped_early = False
    chunk = max(1, jobs * 4)
    for lo in range(0, len(tasks), chunk):
        if time_budget is not None and time.monotonic() - t0 >= time_budget:
            stopped_early = True
            break
        results.extend(run_parallel(tasks[lo:lo + chunk], fuzz_worker,
                                    jobs=jobs, progress=progress))

    summary = FuzzSummary(results=results, oracles=tuple(oracles),
                          seeds_requested=seeds,
                          stopped_early=stopped_early,
                          elapsed=time.monotonic() - t0, jobs=jobs)
    if corpus_dir:
        from .corpus import save_entry

        for result in results:
            for div in result["divergences"]:
                entry = div.get("shrunk", {}).get("entry")
                if entry:
                    summary.corpus_files.append(
                        save_entry(corpus_dir, entry))
    return summary

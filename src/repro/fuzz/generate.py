"""Coverage-directed CDFG generation for the differential fuzzer.

Extends :func:`repro.designs.synthetic.random_dfg` with the knobs the
fuzzing campaign needs to reach corners the fixed generator cannot:
per-class opcode weights, mixed/edge bit-width profiles (including 1-bit
values), deep-chain vs. wide-fan-out shapes, multiple recurrences, and
black-box memory reads. Every graph returned by :func:`generate_case` is
``validate``-clean by construction — the generator is the *trusted* half
of the differential loop, so it must only emit kernels every downstream
layer claims to support.

The generator is deterministic per ``(seed, profile)``: two processes
running the same task produce byte-identical graphs and stimulus, which
is what makes the parallel fuzz runner's summaries reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..ir.builder import DFGBuilder, Value
from ..ir.graph import CDFG
from ..ir.types import OpKind
from ..sim.functional import SimEnvironment

__all__ = ["FuzzProfile", "PROFILES", "FuzzCaseData", "generate_case",
           "generate_graph", "make_stimulus", "fuzz_env_factory",
           "profile_for_seed"]

#: Opcode classes the weight table understands.
OPCODE_CLASSES = ("logic", "shift", "arith", "cmp", "mux", "widthop",
                  "memory")


@dataclass(frozen=True)
class FuzzProfile:
    """One coverage direction for the generator.

    Attributes
    ----------
    name:
        Stable identifier (appears in summaries and corpus entries).
    ops:
        Inclusive ``(lo, hi)`` range for the number of generated operations.
    widths:
        Candidate bit widths; each operation draws its target width from
        this tuple, so mixed-width graphs arise naturally.
    inputs / recurrences:
        Primary input count and loop-carried value count.
    weights:
        Relative weight per opcode class (see :data:`OPCODE_CLASSES`);
        missing classes get weight 0.
    shape:
        ``"mixed"`` (uniform operand picks), ``"chain"`` (bias toward the
        most recent values — deep combinational chains), or ``"wide"``
        (bias toward the earliest values — wide fan-out).
    memories:
        Number of black-box read-only memories; LOAD ops address them.
    stimulus_len:
        Iterations of random stimulus generated per case.
    """

    name: str
    ops: tuple[int, int] = (8, 14)
    widths: tuple[int, ...] = (8,)
    inputs: int = 3
    recurrences: int = 1
    weights: Mapping[str, float] = field(
        default_factory=lambda: {"logic": 4.0, "shift": 1.0, "arith": 2.0,
                                 "cmp": 1.0, "mux": 2.0})
    shape: str = "mixed"
    memories: int = 0
    stimulus_len: int = 8


#: The default campaign: each seed is routed to one of these directions
#: (``profile_for_seed``), so a plain ``repro fuzz --seeds N`` sweeps all
#: of them without configuration.
PROFILES: dict[str, FuzzProfile] = {
    p.name: p for p in (
        FuzzProfile("logic-dense", ops=(8, 14), widths=(4, 6, 8),
                    weights={"logic": 6.0, "mux": 2.0, "cmp": 1.0,
                             "widthop": 1.0}),
        FuzzProfile("arith-chain", ops=(8, 12), widths=(8, 12),
                    shape="chain",
                    weights={"arith": 5.0, "logic": 2.0, "shift": 1.0,
                             "widthop": 1.0}),
        FuzzProfile("wide-fanout", ops=(10, 16), widths=(4, 8),
                    shape="wide", inputs=4,
                    weights={"logic": 3.0, "mux": 3.0, "cmp": 2.0,
                             "arith": 1.0}),
        FuzzProfile("bit-edge", ops=(5, 8), widths=(1, 2, 3), inputs=2,
                    weights={"logic": 3.0, "arith": 2.0, "cmp": 2.0,
                             "mux": 2.0, "widthop": 2.0}),
        FuzzProfile("multi-rec", ops=(8, 12), widths=(4, 8),
                    recurrences=3,
                    weights={"logic": 3.0, "arith": 2.0, "mux": 2.0,
                             "shift": 1.0}),
        FuzzProfile("memory", ops=(6, 10), widths=(8,), memories=2,
                    weights={"logic": 3.0, "arith": 2.0, "mux": 1.0,
                             "memory": 2.0}),
    )
}


def profile_for_seed(seed: int,
                     names: tuple[str, ...] | None = None) -> FuzzProfile:
    """Deterministically route a seed to one campaign profile."""
    keys = list(names) if names else list(PROFILES)
    return PROFILES[keys[seed % len(keys)]]


@dataclass
class FuzzCaseData:
    """Everything one fuzz seed produces: graph, stimulus, environment."""

    graph: CDFG
    stimulus: list[dict[str, int]]
    seed: int
    profile: str

    def env_factory(self) -> SimEnvironment:
        """Fresh memory environment (per-simulator, so STOREs never leak)."""
        return fuzz_env_factory(self.graph, self.seed)()


# ----------------------------------------------------------------------
# Graph generation
# ----------------------------------------------------------------------
def _adapt(b: DFGBuilder, v: Value, width: int) -> Value:
    """Make ``v`` exactly ``width`` bits wide (explicit trunc/zext)."""
    if v.width == width:
        return v
    if v.width > width:
        return v.trunc(width)
    return v.zext(width)


def generate_graph(seed: int, profile: FuzzProfile) -> CDFG:
    """Generate one ``validate``-clean CDFG for ``(seed, profile)``."""
    rng = random.Random(seed ^ 0x5EED)
    widths = profile.widths
    b = DFGBuilder(f"fuzz_{profile.name.replace('-', '_')}_{seed}",
                   width=max(widths))
    pool: list[Value] = []

    def draw_width() -> int:
        return rng.choice(widths)

    for k in range(profile.inputs):
        pool.append(b.input(f"i{k}", draw_width()))
    recs: list[Value] = []
    for r in range(profile.recurrences):
        w = draw_width()
        reg = b.recurrence(f"r{r}", width=w, initial=rng.randrange(1 << w))
        recs.append(reg)
        pool.append(reg)

    def pick() -> Value:
        """Operand choice biased by the profile's shape."""
        if len(pool) > 2 and profile.shape == "chain" and rng.random() < 0.7:
            v = rng.choice(pool[-3:])
        elif len(pool) > 2 and profile.shape == "wide" \
                and rng.random() < 0.7:
            v = rng.choice(pool[:max(3, len(pool) // 3)])
        else:
            v = rng.choice(pool)
        return v

    def pick_w(width: int) -> Value:
        return _adapt(b, pick(), width)

    def select_bit() -> Value:
        """An explicitly 1-bit MUX select (IR003): compare or bit slice."""
        v = pick()
        if rng.random() < 0.4:
            return v.ne(0) if rng.random() < 0.5 else v.lt(pick_w(v.width))
        if v.width == 1:
            return v
        return v.bit(rng.randrange(v.width))

    classes = [c for c in OPCODE_CLASSES
               if profile.weights.get(c, 0.0) > 0.0
               and (c != "memory" or profile.memories > 0)]
    class_weights = [profile.weights[c] for c in classes]

    ops = rng.randint(*profile.ops)
    for _ in range(ops):
        cls = rng.choices(classes, weights=class_weights)[0]
        w = draw_width()
        if cls == "logic":
            kind = rng.choice(["and", "or", "xor", "not"])
            if kind == "not":
                v = ~pick()
            else:
                a, c = pick_w(w), pick_w(w)
                v = {"and": a.__and__, "or": a.__or__,
                     "xor": a.__xor__}[kind](c)
        elif cls == "shift":
            a = pick()
            if a.width == 1:
                v = ~a
            else:
                amount = rng.randrange(1, a.width)
                v = (a << amount) if rng.random() < 0.5 else (a >> amount)
        elif cls == "arith":
            kind = rng.choice(["add", "add", "sub", "neg"])
            if kind == "neg":
                v = -pick()
            else:
                a, c = pick_w(w), pick_w(w)
                v = (a + c) if kind == "add" else (a - c)
        elif cls == "cmp":
            a = pick()
            c = pick_w(a.width)
            v = rng.choice([a.eq, a.ne, a.lt, a.ge, a.slt, a.sge])(c)
        elif cls == "mux":
            v = b.mux(select_bit(), pick_w(w), pick_w(w))
        elif cls == "widthop":
            a = pick()
            choice = rng.random()
            if choice < 0.3 and a.width > 1:
                lo = rng.randrange(a.width)
                v = a.slice(lo, rng.randint(1, a.width - lo))
            elif choice < 0.6:
                other = pick()
                v = b.concat(a, other)
            else:
                v = _adapt(b, a, w) if a.width != w else a.zext(w + 1)
        else:  # memory read (black-box; read-only keeps sims race-free)
            mem = rng.randrange(profile.memories)
            address = pick_w(min(4, w))
            v = b.load(address, width=w, name=f"m{mem}")
        pool.append(v)

    # Close recurrences with late, distinct producers (a shared producer
    # would need equal initial values); widths are adapted explicitly.
    used_producers: set[int] = set()
    for reg in recs:
        candidates = [v for v in pool[-max(4, ops // 2):]
                      if v is not reg and v.nid not in used_producers]
        if not candidates:
            candidates = [v for v in pool
                          if v is not reg and v.nid not in used_producers]
        producer = _adapt(b, rng.choice(candidates), reg.width)
        used_producers.add(producer.nid)
        producer.feed(reg, distance=rng.randint(1, 2)
                      if profile.recurrences > 1 else 1)

    # Fold into the output every pool value that does not already reach it
    # (IR008): consumption alone is not enough — a recurrence island whose
    # only sink is its own back-edge is dead despite every node being used.
    def backward(nid: int, reached: set[int]) -> None:
        stack = [nid]
        while stack:
            cur = stack.pop()
            if cur in reached:
                continue
            reached.add(cur)
            stack.extend(op.source for op in b.graph.node(cur).operands)

    out_w = max(widths)
    acc = _adapt(b, pool[-1], out_w)
    reached: set[int] = set()
    backward(acc.nid, reached)
    for v in pool:
        if v.nid not in reached:
            acc = acc ^ _adapt(b, v, out_w)
            backward(acc.nid, reached)
    b.output(acc, "o")
    return b.build()


# ----------------------------------------------------------------------
# Stimulus and memory environments
# ----------------------------------------------------------------------
def make_stimulus(graph: CDFG, seed: int, n: int) -> list[dict[str, int]]:
    """Random per-iteration input maps keyed by the graph's input names."""
    rng = random.Random(seed ^ 0x57131)
    return [
        {node.name or f"in{node.nid}": rng.randrange(1 << node.width)
         for node in graph.inputs}
        for _ in range(n)
    ]


def fuzz_env_factory(graph: CDFG, seed: int) -> Callable[[], SimEnvironment]:
    """Environment factory binding deterministic memories for every
    LOAD/STORE in ``graph`` (by node name, falling back to rclass)."""
    names: list[tuple[str, int]] = []
    seen: set[str] = set()
    for node in graph.nodes_of_kind(OpKind.LOAD, OpKind.STORE):
        key = node.name or node.rclass or "mem"
        if key not in seen:
            seen.add(key)
            names.append((key, node.width))

    def factory() -> SimEnvironment:
        rng = random.Random(seed ^ 0x3E3)
        return SimEnvironment(memories={
            key: [rng.randrange(1 << width) for _ in range(8)]
            for key, width in names
        })

    return factory


def generate_case(seed: int, profile: FuzzProfile | str | None = None
                  ) -> FuzzCaseData:
    """Generate graph + stimulus for one fuzz seed (fully deterministic)."""
    if profile is None:
        profile = profile_for_seed(seed)
    elif isinstance(profile, str):
        profile = PROFILES[profile]
    graph = generate_graph(seed, profile)
    stimulus = make_stimulus(graph, seed, profile.stimulus_len)
    return FuzzCaseData(graph=graph, stimulus=stimulus, seed=seed,
                        profile=profile.name)

"""Graph mutators for the differential fuzzer.

Each mutator takes a ``validate``-clean CDFG and a seeded RNG and returns a
*new* graph (the input is never touched) that is again ``validate``-clean,
or ``None`` when the chosen mutation site cannot be legalized. Mutations
are **not** semantics-preserving — a mutant is a fresh test case for the
oracle layer, not an equivalence claim. What they must preserve is the
generator's contract: only constructs every downstream layer supports.

Mutators work on a copy of the node list and re-validate the result, so a
mutation that would break an IR invariant (a multi-bit MUX select, a
combinational cycle, dead code) is discarded instead of shipped.
"""

from __future__ import annotations

import random

from ..errors import ReproError
from ..ir.graph import CDFG
from ..ir.node import Operand
from ..ir.types import OpKind
from ..ir.validate import check_problems

__all__ = ["MUTATORS", "mutate", "splice", "width_perturb",
           "constant_inject", "recurrence_rewire"]


def _finish(graph: CDFG) -> CDFG | None:
    """Dead-code-eliminate and validate a mutated graph; None if broken."""
    from ..ir.transforms import eliminate_dead_code

    try:
        cleaned, _ = eliminate_dead_code(graph)
    except ReproError:
        return None
    return cleaned if not check_problems(cleaned) else None


def _op_nodes(graph: CDFG) -> list[int]:
    return [n.nid for n in graph
            if n.kind not in (OpKind.INPUT, OpKind.OUTPUT, OpKind.CONST)]


def splice(graph: CDFG, rng: random.Random) -> CDFG | None:
    """Insert a fresh unary op on a randomly chosen combinational edge.

    ``consumer.operand[slot]`` is rewired from ``src`` to ``f(src)`` where
    ``f`` is NOT or a 1-position shift — semantics change, structure (and
    widths) stay legal.
    """
    edges = [(node.nid, slot, op.source)
             for node in graph
             for slot, op in enumerate(node.operands)
             if op.distance == 0 and node.kind is not OpKind.OUTPUT]
    if not edges:
        return None
    consumer, slot, src = rng.choice(edges)
    sel_slot = graph.node(consumer).kind is OpKind.MUX and slot == 0
    g = graph.copy()
    width = g.node(src).width
    if width > 1 and not sel_slot and rng.random() < 0.5:
        amount = rng.randrange(1, width)
        kind = rng.choice([OpKind.SHL, OpKind.SHR])
        new = g.add_node(kind, width, operands=[Operand(src, 0)],
                         amount=amount)
    else:
        # NOT keeps a 1-bit value 1 bit wide, so MUX selects stay legal.
        new = g.add_node(OpKind.NOT, width, operands=[Operand(src, 0)])
    g.set_operand(consumer, slot, Operand(new.nid, 0))
    return _finish(g)


def width_perturb(graph: CDFG, rng: random.Random) -> CDFG | None:
    """Grow or shrink one operation's declared width by one bit.

    Nodes whose width is load-bearing for IR legality (constants, slices,
    comparisons, and anything feeding a MUX select) are skipped; the
    validator catches whatever this misses.
    """
    protected: set[int] = set()
    for node in graph:
        if node.kind is OpKind.MUX:
            protected.add(node.operands[0].source)
    candidates = [
        n.nid for n in graph
        if n.nid not in protected
        and n.kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
                       OpKind.ADD, OpKind.SUB, OpKind.NEG, OpKind.MUX,
                       OpKind.ZEXT, OpKind.TRUNC)
    ]
    if not candidates:
        return None
    nid = rng.choice(candidates)
    g = graph.copy()
    node = g.node(nid)
    delta = rng.choice([-1, 1])
    if node.width + delta < 1:
        delta = 1
    node.width += delta
    g._invalidate()
    return _finish(g)


def constant_inject(graph: CDFG, rng: random.Random) -> CDFG | None:
    """Replace one operand edge with a fresh random constant."""
    edges = [(node.nid, slot, op)
             for node in graph
             for slot, op in enumerate(node.operands)
             if node.kind is not OpKind.OUTPUT]
    if not edges:
        return None
    consumer, slot, op = rng.choice(edges)
    g = graph.copy()
    width = g.node(op.source).width
    const = g.add_node(OpKind.CONST, width,
                       value=rng.randrange(1 << width))
    # Distance collapses to 0: a constant is the same in every iteration.
    g.set_operand(consumer, slot, Operand(const.nid, 0))
    return _finish(g)


def recurrence_rewire(graph: CDFG, rng: random.Random) -> CDFG | None:
    """Retarget or re-time one loop-carried edge.

    Either the dependence distance changes (1..3) or the back-edge source
    moves to another node of the same width — both legal by construction
    (back edges cannot create combinational cycles).
    """
    back_edges = [(node.nid, slot, op)
                  for node in graph
                  for slot, op in enumerate(node.operands)
                  if op.distance >= 1]
    if not back_edges:
        return None
    consumer, slot, op = rng.choice(back_edges)
    g = graph.copy()
    if rng.random() < 0.5:
        new_distance = rng.choice([d for d in (1, 2, 3) if d != op.distance])
        g.set_operand(consumer, slot, Operand(op.source, new_distance))
    else:
        width = g.node(op.source).width
        same_width = [n.nid for n in g
                      if n.width == width and n.nid != op.source
                      and n.kind not in (OpKind.OUTPUT,)]
        if not same_width:
            return None
        g.set_operand(consumer, slot,
                      Operand(rng.choice(same_width), op.distance))
    return _finish(g)


MUTATORS = {
    "splice": splice,
    "width-perturb": width_perturb,
    "constant-inject": constant_inject,
    "recurrence-rewire": recurrence_rewire,
}


def mutate(graph: CDFG, seed: int, rounds: int = 2) -> CDFG:
    """Apply up to ``rounds`` random mutations; always returns a valid graph
    (falling back to the input when every attempted mutation is rejected)."""
    rng = random.Random(seed ^ 0xB10B)
    current = graph
    for _ in range(rounds):
        name = rng.choice(list(MUTATORS))
        mutated = MUTATORS[name](current, rng)
        if mutated is not None:
            current = mutated
    return current

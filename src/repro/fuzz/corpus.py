"""Crash-corpus persistence and replay.

Every divergence the fuzzer shrinks is written as one JSON file under
``tests/corpus/`` (schema ``repro-fuzz-corpus/v1``) and replayed forever
after by the test suite — the corpus is the regression memory of the
campaign, exactly like the pinned seed-2563 graph that caught the
empty-boundary-cone bug.

Entry fields:

=============  ========================================================
``schema``      ``repro-fuzz-corpus/v1``
``oracle``      which oracle the entry trips (or used to trip)
``seed``        original fuzz seed (drives the memory environment)
``profile``     generator profile name (provenance only)
``description`` one-line human summary of the divergence
``xfail``       True = a *known, still-open* divergence: replay asserts
                it still trips (a silently "fixed" xfail is stale)
``reason``      tracking note for xfail entries
``graph``       serialized CDFG (:func:`~repro.ir.serialize.graph_to_dict`)
``stimulus``    input rows fed to every simulator
=============  ========================================================
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..core.config import SchedulerConfig
from ..tech.device import XC7, Device

CORPUS_SCHEMA = "repro-fuzz-corpus/v1"

__all__ = ["CORPUS_SCHEMA", "make_entry", "save_entry", "load_corpus",
           "replay_entry"]


def make_entry(oracle: str, seed: int, profile: str, graph,
               stimulus: list[dict[str, int]], description: str,
               xfail: bool = False, reason: str = "") -> dict[str, Any]:
    """Build one corpus entry (JSON-safe dict)."""
    from ..ir.serialize import graph_to_dict

    return {
        "schema": CORPUS_SCHEMA,
        "oracle": oracle,
        "seed": seed,
        "profile": profile,
        "description": description,
        "xfail": xfail,
        "reason": reason,
        "graph": graph_to_dict(graph),
        "stimulus": [dict(row) for row in stimulus],
    }


def save_entry(directory: str, entry: dict[str, Any]) -> str:
    """Write one entry as ``<oracle>-seed<seed>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"{entry['oracle']}-seed{entry['seed']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(directory: str) -> list[dict[str, Any]]:
    """Load all ``*.json`` entries (sorted by filename; [] if absent)."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as fh:
            entry = json.load(fh)
        if entry.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"{name}: unsupported corpus schema "
                f"{entry.get('schema')!r} (expected {CORPUS_SCHEMA!r})")
        entry["_file"] = name
        entries.append(entry)
    return entries


def replay_entry(entry: dict[str, Any], device: Device = XC7,
                 config: SchedulerConfig | None = None):
    """Re-run the entry's oracle on its pinned graph + stimulus.

    Returns the :class:`~repro.fuzz.oracles.OracleResult`. The caller
    decides pass/fail policy: a normal entry must *not* diverge, an
    ``xfail`` entry must *still* diverge (else it is stale and should be
    promoted to a normal entry).
    """
    from ..ir.serialize import graph_from_dict
    from .generate import FuzzCaseData
    from .oracles import FuzzCase, run_oracle

    graph = graph_from_dict(entry["graph"])
    stimulus = [{k: int(v) for k, v in row.items()}
                for row in entry["stimulus"]]
    data = FuzzCaseData(graph=graph, stimulus=stimulus,
                        seed=int(entry["seed"]),
                        profile=entry.get("profile", "corpus"))
    case = FuzzCase(data, device=device, config=config)
    return run_oracle(entry["oracle"], case)

"""Pluggable differential oracles.

Every oracle takes a :class:`FuzzCase` — a graph plus deterministic
stimulus — and cross-checks two independent computations of the same
behaviour. Disagreement is reported as a structured :class:`Divergence`;
an *unexpected* exception inside an oracle is also a divergence (the
"generate, check, localize" loop treats crashes as findings), while known
benign outcomes (II=1 genuinely infeasible, solver time-cap) are skips.

The oracle catalog (see ``docs/fuzzing.md``):

========== ==========================================================
name        cross-check
========== ==========================================================
sim-replay  functional simulation vs. cycle-accurate pipeline replay
            of the milp-map (and heur-map) schedule
bitblast    word-level functional simulation vs. the bit-blasted
            boolean network's simulation (bit-level ground truth)
narrow      ``narrow_graph`` input/output equivalence
schedule    milp-map vs. milp-base vs. heur-map: independent verifier
            plus cost sanity (map <= base objective at optimality)
backend     scipy (HiGHS) vs. branch-and-bound MILP objective
            agreement on the mapping-aware model
rtl         Verilog emission + self-checking testbench through the
            structural linter
equiv       symbolic translation validation: narrowing, cut cover and
            emitted RTL miter-checked against the CDFG semantics
            (BMC + k-induction; counterexamples decode to input
            streams)
cache       FlowResult -> JSON -> FlowResult round-trip, replayed
========== ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.config import SchedulerConfig
from ..errors import (
    AnalysisError,
    ReproError,
    SchedulingError,
    ScheduleVerificationError,
    SolverError,
)
from ..milp.model import SolveStatus
from ..sim.functional import FunctionalSimulator
from ..sim.pipeline import PipelineSimulator
from ..tech.device import XC7, Device
from .generate import FuzzCaseData, fuzz_env_factory

__all__ = ["Divergence", "FuzzCase", "OracleResult", "ORACLES",
           "DEFAULT_ORACLES", "SkipOracle", "run_oracle"]

_EPS = 1e-6


class SkipOracle(Exception):
    """Raised inside an oracle when the case is out of its scope."""


@dataclass
class Divergence:
    """One cross-layer disagreement, ready for shrinking and pinning."""

    oracle: str
    kind: str          # "mismatch" | "verify" | "cost" | "lint" | "error"
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"oracle": self.oracle, "kind": self.kind,
                "message": self.message, "details": dict(self.details)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Divergence":
        return cls(oracle=data["oracle"], kind=data["kind"],
                   message=data["message"],
                   details=dict(data.get("details", {})))


@dataclass
class OracleResult:
    """Outcome of one oracle on one case."""

    oracle: str
    status: str                      # "pass" | "skip" | "diverge"
    message: str = ""
    divergence: Divergence | None = None
    seconds: float = 0.0

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {"oracle": self.oracle, "status": self.status}
        if self.message:
            data["message"] = self.message
        if self.divergence is not None:
            data["divergence"] = self.divergence.to_dict()
        if include_timing:
            data["seconds"] = self.seconds
        return data


class FuzzCase:
    """A graph + stimulus under test, with per-case flow memoization.

    Several oracles need the same ``milp-map`` schedule; solving it once
    per case (not once per oracle) keeps a campaign's cost dominated by
    distinct seeds, mirroring how :class:`~repro.runtime.FlowCache`
    de-duplicates experiment work.
    """

    def __init__(self, data: FuzzCaseData, device: Device = XC7,
                 config: SchedulerConfig | None = None) -> None:
        self.graph = data.graph
        self.stimulus = list(data.stimulus)
        self.seed = data.seed
        self.profile = data.profile
        self.device = device
        self.config = config or SchedulerConfig(time_limit=30.0, max_cuts=8)
        self._flows: dict[str, Any] = {}
        self._env_factory = fuzz_env_factory(data.graph, data.seed)

    def env(self):
        """A fresh memory environment (safe to consume per simulator)."""
        return self._env_factory()

    def flow(self, method: str):
        """Run (or reuse) one scheduling flow for this case.

        :class:`SkipOracle` is raised for the benign failure modes —
        II=1 infeasibility and solver time-caps are properties of the
        *case*, not bugs. Verification and analysis failures propagate:
        the oracle wrapper turns them into divergences.
        """
        if method not in self._flows:
            from ..experiments.flows import run_flow

            try:
                self._flows[method] = run_flow(
                    self.graph, method, self.device, self.config,
                    design=self.graph.name)
            except (ScheduleVerificationError, AnalysisError):
                raise
            except SolverError as exc:
                raise SkipOracle(f"{method}: solver gave up ({exc})") from exc
            except SchedulingError as exc:
                raise SkipOracle(f"{method}: infeasible ({exc})") from exc
        return self._flows[method]

    def golden(self) -> list[dict[str, int]]:
        """Functional-simulation outputs over the stimulus (memoized)."""
        if "golden" not in self._flows:
            self._flows["golden"] = FunctionalSimulator(
                self.graph, self.env()).run(self.stimulus)
        return self._flows["golden"]


def _first_mismatch(golden: list[dict[str, int]],
                    other: list[dict[str, int]]) -> dict[str, Any]:
    for k, (a, b) in enumerate(zip(golden, other)):
        if a != b:
            return {"iteration": k, "expected": a, "actual": b}
    return {"iteration": None,
            "expected_len": len(golden), "actual_len": len(other)}


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def oracle_sim_replay(case: FuzzCase) -> Divergence | None:
    """Functional reference vs. cycle-accurate replay of the mapped
    schedules — the paper's behaviour-preservation claim, dynamically."""
    golden = case.golden()
    for method in ("milp-map", "heur-map"):
        try:
            schedule = case.flow(method).schedule
        except SkipOracle:
            if method == "heur-map":
                continue        # the exact MILP verdict is the one that counts
            raise
        piped = PipelineSimulator(schedule, case.device, case.env())\
            .run(case.stimulus)
        if piped != golden:
            return Divergence(
                oracle="sim-replay", kind="mismatch",
                message=f"{method} pipeline replay disagrees with the "
                        f"functional reference",
                details={"method": method,
                         **_first_mismatch(golden, piped)})
    return None


def oracle_bitblast(case: FuzzCase) -> Divergence | None:
    """Word-level semantics vs. the bit-blasted boolean network."""
    from ..bitdeps.bitblast import bit_blast

    golden = case.golden()
    blast = bit_blast(case.graph)
    blasted = FunctionalSimulator(blast.graph, case.env()).run(case.stimulus)
    if blasted != golden:
        return Divergence(
            oracle="bitblast", kind="mismatch",
            message="bit-blasted network disagrees with word-level "
                    "semantics",
            details=_first_mismatch(golden, blasted))
    return None


def oracle_narrow(case: FuzzCase) -> Divergence | None:
    """``narrow_graph`` must preserve input/output behaviour exactly."""
    from ..ir.transforms import narrow_graph

    golden = case.golden()
    narrowed, _ = narrow_graph(case.graph)
    outputs = FunctionalSimulator(narrowed, case.env()).run(case.stimulus)
    if outputs != golden:
        return Divergence(
            oracle="narrow", kind="mismatch",
            message="narrowed graph disagrees with the original",
            details=_first_mismatch(golden, outputs))
    return None


def oracle_schedule(case: FuzzCase) -> Divergence | None:
    """All three flows verify independently; at optimality the
    mapping-aware objective never exceeds the mapping-agnostic one
    (unit cuts are a subset of the full cut sets)."""
    from ..core.verify import schedule_problems

    base = case.flow("milp-base")
    mapped = case.flow("milp-map")
    for method, flow in (("milp-base", base), ("milp-map", mapped)):
        problems = schedule_problems(flow.schedule, case.device)
        if problems:
            return Divergence(
                oracle="schedule", kind="verify",
                message=f"{method} schedule fails independent "
                        f"re-verification",
                details={"method": method, "problems": problems[:5]})
    sb, sm = base.schedule, mapped.schedule
    if (sb.optimal and sm.optimal
            and sb.objective is not None and sm.objective is not None
            and base.source_graph == mapped.source_graph
            and sm.objective > sb.objective + _EPS):
        return Divergence(
            oracle="schedule", kind="cost",
            message="milp-map objective exceeds milp-base at optimality",
            details={"map_objective": sm.objective,
                     "base_objective": sb.objective,
                     "source_graph": mapped.source_graph})
    return None


def oracle_backend(case: FuzzCase) -> Divergence | None:
    """scipy (HiGHS) vs. the pure-python branch-and-bound backend must
    agree on the optimal objective of the mapping-aware MILP."""
    import dataclasses

    from ..core.mapsched import MapScheduler

    if case.graph.num_operations > 20 or case.graph.total_bits() > 48:
        raise SkipOracle("model too large for the bnb backend")
    scipy_sched = case.flow("milp-map").schedule
    if not scipy_sched.optimal:
        raise SkipOracle("scipy solve not proved optimal")
    bnb_config = dataclasses.replace(case.config, backend="bnb",
                                     time_limit=20.0)
    try:
        # Same graph the scipy flow actually scheduled (run_flow may have
        # narrowed it) — otherwise the two backends solve different models.
        bnb_sched = MapScheduler(scipy_sched.graph, case.device,
                                 bnb_config).schedule()
    except SolverError as exc:
        raise SkipOracle(f"bnb gave up: {exc}") from exc
    if not bnb_sched.optimal:
        raise SkipOracle("bnb solve not proved optimal")
    a, b = scipy_sched.objective, bnb_sched.objective
    if a is not None and b is not None \
            and abs(a - b) > 1e-4 * max(1.0, abs(a)):
        return Divergence(
            oracle="backend", kind="cost",
            message="scipy and bnb backends disagree on the optimal "
                    "objective",
            details={"scipy": a, "bnb": b})
    return None


def oracle_presolve(case: FuzzCase) -> Divergence | None:
    """Presolve must be solution-preserving: the reduced-model solve,
    expanded back through :class:`~repro.milp.Postsolve`, must match a
    raw solve's status and objective, and its assignment must satisfy
    every *original* constraint."""
    import dataclasses

    from ..core.formulation import MappingAwareFormulation
    from ..core.mapsched import MapScheduler

    # Both solves are scipy/HiGHS, so this gate can afford to be much
    # looser than the bnb-bound backend oracle's.
    if case.graph.num_operations > 64 or case.graph.total_bits() > 256:
        raise SkipOracle("model too large for a double solve")
    # Same graph the scipy flow actually scheduled (run_flow may have
    # narrowed it) — presolve must be safe on the model that flow solved.
    sched = case.flow("milp-map").schedule
    config = dataclasses.replace(case.config, presolve=False,
                                 warm_start=False)
    scheduler = MapScheduler(sched.graph, case.device, config)
    scheduler.enumerate()
    formulation = MappingAwareFormulation(
        sched.graph, scheduler.cuts, case.device, config,
        scheduler._horizon())
    model = formulation.build()
    raw = model.solve(backend="scipy", time_limit=20.0)
    pre = model.solve(backend="scipy", time_limit=20.0, presolve=True)
    if raw.status != pre.status:
        statuses = {raw.status, pre.status}
        if statuses == {SolveStatus.OPTIMAL, SolveStatus.FEASIBLE}:
            # One side hit the 20 s cap holding an incumbent while the
            # other proved optimality — a budget artifact, not a
            # presolve bug (and shrinking it would re-pay the cap on
            # every step).
            raise SkipOracle(f"time cap split the statuses "
                             f"(raw={raw.status}, presolved={pre.status})")
        if SolveStatus.OPTIMAL not in statuses:
            raise SkipOracle(f"no optimal reference "
                             f"(raw={raw.status}, presolved={pre.status})")
        return Divergence(
            oracle="presolve", kind="mismatch",
            message="raw and presolved solves disagree on status",
            details={"raw": raw.status, "presolved": pre.status})
    if not raw.ok:
        return None
    a, b = raw.objective, pre.objective
    if raw.status == SolveStatus.OPTIMAL and pre.status == SolveStatus.OPTIMAL \
            and a is not None and b is not None \
            and abs(a - b) > 1e-4 * max(1.0, abs(a)):
        return Divergence(
            oracle="presolve", kind="cost",
            message="presolve changed the optimal objective",
            details={"raw": a, "presolved": b})
    violated = model.check(pre.values)
    if violated:
        return Divergence(
            oracle="presolve", kind="verify",
            message="expanded presolve solution violates original "
                    "constraints",
            details={"violated": violated[:5]})
    return None


def oracle_rtl(case: FuzzCase) -> Divergence | None:
    """Emitted module and self-checking testbench pass the structural
    linter (the offline stand-in for an external Verilog simulator)."""
    from ..rtl import emit_testbench, emit_verilog, lint_verilog

    schedule = case.flow("milp-map").schedule
    if schedule.ii != 1:
        raise SkipOracle(f"emitter supports II=1, schedule has "
                         f"II={schedule.ii}")
    module = emit_verilog(schedule)
    problems = lint_verilog(module)
    if problems:
        return Divergence(oracle="rtl", kind="lint",
                          message="emitted module fails the Verilog linter",
                          details={"problems": problems[:5]})
    bench = emit_testbench(schedule, case.device, case.stimulus,
                           env=case.env())
    problems = lint_verilog(bench)
    if problems:
        return Divergence(oracle="rtl", kind="lint",
                          message="emitted testbench fails the Verilog "
                                  "linter",
                          details={"problems": problems[:5]})
    return None


def oracle_equiv(case: FuzzCase) -> Divergence | None:
    """Symbolic translation validation (see ``docs/equivalence.md``):
    miter-check the narrowing, the cut cover and the emitted RTL against
    the CDFG semantics with BMC + k-induction. Where the dynamic oracles
    sample the stimulus, this one *proves* (or refutes with a decoded
    counterexample — which doubles as a shrinker-ready input stream in
    the divergence details).

    Known divergence classes are skips, not findings: pipeline fill
    transients (staged registers still hold reset values, and gap-0
    carried edges have no register to materialise their declared
    initial, during the first iterations — a by-design property of the
    emitter, pinned by the DR benchmark) and budget/modeling-gap
    verdicts. A fill-window counterexample only earns the skip when the
    validator's steady-state re-check proved the frames *past* the
    window equal; otherwise the stage is broken for real and the
    divergence is reported.
    """
    from ..analysis.equiv import EquivBudget, validate_flow

    if case.graph.num_operations > 48:
        raise SkipOracle("graph too large for symbolic validation")
    schedule = case.flow("milp-map").schedule
    if schedule.ii != 1:
        raise SkipOracle(f"emitter supports II=1, schedule has "
                         f"II={schedule.ii}")
    budget = EquivBudget(max_frames=4, induction_k=2, sat_conflicts=10_000)
    report = validate_flow(case.graph, schedule,
                           stages=("narrow", "cover", "rtl"),
                           budget=budget, design=case.graph.name,
                           method="milp-map")
    fill_transients = []
    for verdict in report.stages:
        if verdict.status != "inequivalent":
            continue
        if any("fill window" in note for note in verdict.notes) \
                and any("steady state checks out" in note
                        for note in verdict.notes):
            fill_transients.append(verdict.stage)
            continue
        cex = verdict.counterexample
        return Divergence(
            oracle="equiv", kind="mismatch",
            message=f"{verdict.stage} stage refuted symbolically: "
                    f"{verdict.detail}",
            details={"stage": verdict.stage, "notes": list(verdict.notes),
                     "counterexample": cex.to_dict() if cex else None})
    if fill_transients:
        raise SkipOracle(
            "known divergence class: pipeline fill transient in "
            + ",".join(fill_transients) + " (see docs/equivalence.md)")
    return None


def oracle_cache(case: FuzzCase) -> Divergence | None:
    """FlowResult -> JSON -> FlowResult must be lossless, and the restored
    schedule must still replay against the functional reference."""
    from ..ir.serialize import graph_to_dict, schedule_to_dict
    from ..runtime.cache import flow_result_from_dict, flow_result_to_dict

    flow = case.flow("milp-map")
    wire = json.loads(json.dumps(flow_result_to_dict(flow)))
    restored = flow_result_from_dict(wire)
    if graph_to_dict(restored.schedule.graph) \
            != graph_to_dict(flow.schedule.graph):
        return Divergence(oracle="cache", kind="mismatch",
                          message="graph changed across the cache "
                                  "round-trip")
    if schedule_to_dict(restored.schedule) != schedule_to_dict(flow.schedule):
        return Divergence(oracle="cache", kind="mismatch",
                          message="schedule changed across the cache "
                                  "round-trip")
    if restored.report.to_dict() != flow.report.to_dict():
        return Divergence(oracle="cache", kind="mismatch",
                          message="hardware report changed across the "
                                  "cache round-trip")
    golden = FunctionalSimulator(restored.schedule.graph, case.env())\
        .run(case.stimulus)
    piped = PipelineSimulator(restored.schedule, case.device, case.env())\
        .run(case.stimulus)
    if piped != golden:
        return Divergence(oracle="cache", kind="mismatch",
                          message="restored schedule no longer replays "
                                  "against the functional reference",
                          details=_first_mismatch(golden, piped))
    return None


def oracle_partition(case: FuzzCase) -> Divergence | None:
    """Subgraph decomposition vs the monolithic solve (docs/partitioning.md).

    The stitched schedule must re-verify independently, must replay
    bit-exactly against the functional reference, and must never *worsen*
    the II: every subgraph problem is a restriction of the monolithic one
    (its recurrences and resource demands are subsets), so with time caps
    skipped the fleet II can only match or beat the monolithic II.
    """
    import dataclasses

    from ..core.verify import schedule_problems
    from ..partition import PartitionScheduler

    mono = case.flow("milp-map")
    # A third of the graph per subgraph forces 2-4 subgraphs on fuzz-sized
    # cases — real boundaries, real stitching, still one solver call each.
    size = max(4, len(case.graph.node_ids) // 3)
    cfg = dataclasses.replace(case.config, partition=True,
                              partition_size=size, partition_rounds=1)
    try:
        stitched = PartitionScheduler(case.graph, case.device, cfg,
                                      method="milp-map").schedule()
    except ScheduleVerificationError:
        raise                  # a stitched schedule that fails verify IS the bug
    except SolverError as exc:
        raise SkipOracle(f"partition: solver gave up ({exc})") from exc
    except SchedulingError as exc:
        raise SkipOracle(f"partition: infeasible ({exc})") from exc

    problems = schedule_problems(stitched, case.device)
    if problems:
        return Divergence(
            oracle="partition", kind="verify",
            message="stitched schedule fails independent re-verification",
            details={"problems": problems[:5], "subgraph_size": size})
    if stitched.ii > mono.schedule.ii:
        return Divergence(
            oracle="partition", kind="cost",
            message="partitioning worsened the II",
            details={"partition_ii": stitched.ii,
                     "monolithic_ii": mono.schedule.ii})
    golden = case.golden()
    piped = PipelineSimulator(stitched, case.device, case.env())\
        .run(case.stimulus)
    if piped != golden:
        return Divergence(
            oracle="partition", kind="mismatch",
            message="stitched schedule disagrees with the functional "
                    "reference",
            details=_first_mismatch(golden, piped))
    return None


ORACLES: dict[str, Callable[[FuzzCase], Divergence | None]] = {
    "sim-replay": oracle_sim_replay,
    "bitblast": oracle_bitblast,
    "narrow": oracle_narrow,
    "schedule": oracle_schedule,
    "backend": oracle_backend,
    "presolve": oracle_presolve,
    "rtl": oracle_rtl,
    "equiv": oracle_equiv,
    "cache": oracle_cache,
    "partition": oracle_partition,
}

#: Run for every seed unless ``--oracles`` narrows the set. ``backend``
#: self-gates on model size, so including it is cheap.
DEFAULT_ORACLES = tuple(ORACLES)


def run_oracle(name: str, case: FuzzCase) -> OracleResult:
    """Run one oracle, folding every outcome into an :class:`OracleResult`.

    Unexpected library errors become divergences of kind ``"error"`` —
    a crash on a valid input is a finding, not noise.
    """
    import time

    fn = ORACLES[name]
    t0 = time.perf_counter()
    try:
        divergence = fn(case)
    except SkipOracle as exc:
        return OracleResult(oracle=name, status="skip", message=str(exc),
                            seconds=time.perf_counter() - t0)
    except ReproError as exc:
        divergence = Divergence(
            oracle=name, kind="error",
            message=f"{type(exc).__name__}: {exc}",
            details={"exception": type(exc).__name__})
    seconds = time.perf_counter() - t0
    if divergence is None:
        return OracleResult(oracle=name, status="pass", seconds=seconds)
    return OracleResult(oracle=name, status="diverge",
                        message=divergence.message, divergence=divergence,
                        seconds=seconds)

"""Differential fuzzing harness (see ``docs/fuzzing.md``).

Four layers, composed by the ``repro fuzz`` CLI:

* :mod:`~repro.fuzz.generate` / :mod:`~repro.fuzz.mutate` — coverage-
  directed graph generation plus structure mutators, all validate-clean;
* :mod:`~repro.fuzz.oracles` — pluggable differential checks (functional
  sim vs. pipeline replay vs. bit-blast, narrowing equivalence, schedule
  re-verification + cost sanity, solver-backend agreement, RTL lint,
  cache round-trip);
* :mod:`~repro.fuzz.shrink` — delta-debugging minimizer re-running only
  the failing oracle;
* :mod:`~repro.fuzz.corpus` / :mod:`~repro.fuzz.runner` — crash-corpus
  persistence and the parallel campaign driver (``repro-fuzz/v1``).
"""

from .corpus import CORPUS_SCHEMA, load_corpus, make_entry, replay_entry, save_entry
from .generate import (
    PROFILES,
    FuzzCaseData,
    FuzzProfile,
    generate_case,
    generate_graph,
    make_stimulus,
    profile_for_seed,
)
from .mutate import MUTATORS, mutate
from .oracles import DEFAULT_ORACLES, ORACLES, Divergence, FuzzCase, OracleResult, run_oracle
from .runner import FUZZ_SCHEMA, FuzzSummary, FuzzTask, fuzz_worker, run_campaign
from .shrink import ShrinkResult, drop_node, shrink

__all__ = [
    "CORPUS_SCHEMA", "FUZZ_SCHEMA", "PROFILES", "ORACLES",
    "DEFAULT_ORACLES", "MUTATORS",
    "Divergence", "FuzzCase", "FuzzCaseData", "FuzzProfile",
    "FuzzSummary", "FuzzTask", "OracleResult", "ShrinkResult",
    "drop_node", "fuzz_worker", "generate_case", "generate_graph",
    "load_corpus", "make_entry", "make_stimulus", "mutate",
    "profile_for_seed", "replay_entry", "run_campaign", "run_oracle",
    "save_entry", "shrink",
]

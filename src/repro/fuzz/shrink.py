"""Delta-debugging minimizer for fuzz divergences.

Given a graph + stimulus that trips one oracle, :func:`shrink` searches for
a smaller case that *still trips the same oracle*, re-running only that
oracle per candidate. Three reduction dimensions, cheapest first:

1. **stimulus** — ddmin-lite over iterations (halves, then singles);
2. **nodes** — drop one operation at a time, rewiring its consumers to a
   same-width operand (or a zero constant) so the graph stays legal;
3. **widths** — clamp individual node widths toward 1 bit.

Every candidate is ``validate``-clean before the oracle sees it, so the
minimizer can never "shrink" a divergence into an invalid-IR artifact. The
total number of oracle re-runs is budgeted (``max_checks``) — minimization
is best-effort, monotone, and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ReproError
from ..ir.graph import CDFG
from ..ir.node import Operand
from ..ir.types import OpKind
from ..ir.validate import check_problems

__all__ = ["ShrinkResult", "shrink", "drop_node"]

#: ``failing(graph, stimulus) -> bool`` — True when the candidate still
#: trips the original oracle.
FailingFn = Callable[[CDFG, list[dict[str, int]]], bool]


@dataclass
class ShrinkResult:
    """Outcome of one minimization run."""

    graph: CDFG
    stimulus: list[dict[str, int]]
    checks: int          # oracle re-runs spent
    dropped_nodes: int   # node count: original - minimized
    dropped_iters: int   # stimulus length: original - minimized


def drop_node(graph: CDFG, nid: int) -> CDFG | None:
    """Remove one operation, rewiring its consumers; None if illegal.

    Consumers are redirected to a same-width distance-0 operand of the
    dropped node when one exists (keeping the case connected), else to a
    fresh zero constant of the same width. Followed by dead-code
    elimination and validation, so the result is always a legal, smaller
    graph or ``None``.
    """
    from ..ir.transforms import eliminate_dead_code

    node = graph.node(nid)
    if node.kind in (OpKind.INPUT, OpKind.OUTPUT):
        return None
    g = graph.copy()
    replacement: int | None = None
    for op in g.node(nid).operands:
        if op.distance == 0 and g.node(op.source).width == node.width:
            replacement = op.source
            break
    if replacement is None:
        replacement = g.add_node(OpKind.CONST, node.width, value=0).nid
    for use in list(g.uses(nid)):
        g.set_operand(use.consumer, use.operand_index,
                      Operand(replacement, use.distance))
    try:
        cleaned, mapping = eliminate_dead_code(g)
    except ReproError:
        return None
    if nid in mapping:
        return None   # a self-loop kept it alive (ids are renumbered, so
                      # membership must be tested via the old->new mapping)
    return cleaned if not check_problems(cleaned) else None


def _narrow_node(graph: CDFG, nid: int, width: int) -> CDFG | None:
    """Clamp one node's width; None when the result is not legal."""
    node = graph.node(nid)
    if node.kind in (OpKind.OUTPUT,) or node.width <= width:
        return None
    g = graph.copy()
    g.node(nid).width = width
    if g.node(nid).kind is OpKind.CONST:
        g.node(nid).value &= (1 << width) - 1
    g._invalidate()
    return g if not check_problems(g) else None


def _clip_stimulus(stimulus: list[dict[str, int]],
                   failing: Callable[[list[dict[str, int]]], bool],
                   budget: list[int]) -> list[dict[str, int]]:
    """ddmin-lite over iterations: try halves, then drop single rows."""
    current = stimulus

    def attempt(candidate: list[dict[str, int]]) -> bool:
        if not candidate or budget[0] <= 0:
            return False
        budget[0] -= 1
        return failing(candidate)

    changed = True
    while changed and len(current) > 1:
        changed = False
        half = len(current) // 2
        for part in (current[:half], current[half:]):
            if len(part) < len(current) and attempt(part):
                current = part
                changed = True
                break
    k = 0
    while k < len(current) and len(current) > 1:
        candidate = current[:k] + current[k + 1:]
        if attempt(candidate):
            current = candidate
        else:
            k += 1
    return current


def shrink(graph: CDFG, stimulus: list[dict[str, int]], failing: FailingFn,
           max_checks: int = 200) -> ShrinkResult:
    """Minimize ``(graph, stimulus)`` while ``failing`` stays True.

    ``failing(graph, stimulus)`` must already be True for the input —
    callers hand in a confirmed divergence, not a suspicion.
    """
    budget = [max_checks]
    current = graph
    stim = _clip_stimulus(
        stimulus, lambda s: failing(current, s), budget)

    # Greedy node drops, largest ids first (later nodes tend to be the
    # accumulated XOR-join scaffolding, cheap to remove), to fixpoint.
    progress = True
    while progress and budget[0] > 0:
        progress = False
        for nid in sorted((n.nid for n in current), reverse=True):
            if budget[0] <= 0:
                break
            if nid not in {n.nid for n in current}:
                continue
            candidate = drop_node(current, nid)
            if candidate is None:
                continue
            budget[0] -= 1
            if failing(candidate, stim):
                current = candidate
                progress = True

    # Width clamping: try 1 bit per node (then give up — widths between
    # 1 and the original rarely change which oracle trips).
    for node in list(current):
        if budget[0] <= 0:
            break
        candidate = _narrow_node(current, node.nid, 1)
        if candidate is None:
            continue
        budget[0] -= 1
        if failing(candidate, stim):
            current = candidate

    # One more stimulus pass: a smaller graph often needs fewer iterations.
    stim = _clip_stimulus(stim, lambda s: failing(current, s), budget)
    return ShrinkResult(
        graph=current, stimulus=stim, checks=max_checks - budget[0],
        dropped_nodes=len(graph) - len(current),
        dropped_iters=len(stimulus) - len(stim))

"""Post-scheduling technology mapping for the baseline flow.

In the traditional flow the paper criticizes, scheduling happens first with
additive delays and register boundaries are frozen; technology mapping then
covers each pipeline stage *separately* ("Downstream technology mapping must
respect these register boundaries and is unable to shorten the pipeline",
Sec. 1). This module implements that downstream mapper: a greedy area-
oriented cover where a cone may only absorb operations scheduled in the same
cycle as its root.

Because one LUT level is never slower than the operator it absorbs, mapping
within a stage cannot violate the stage's already-checked timing budget.
"""

from __future__ import annotations

from ..cuts.cut import Cut, CutSet
from ..cuts.enumerate import CutEnumerator
from ..errors import MappingError
from ..ir.graph import CDFG
from ..ir.types import OpKind
from ..scheduling.schedule import Schedule
from ..tech.area import AreaModel
from ..tech.delay import DelayModel
from ..tech.device import Device

__all__ = ["StageMapper", "map_schedule"]


class StageMapper:
    """Greedy per-stage LUT covering of an additive-delay schedule."""

    def __init__(self, schedule: Schedule, device: Device,
                 max_cuts: int = 12) -> None:
        if schedule.cover:
            raise MappingError("schedule already has a cover")
        self.schedule = schedule
        self.graph: CDFG = schedule.graph
        self.device = device
        self.area = AreaModel(device, self.graph)
        self._delay_model = DelayModel(device, self.graph)
        self.enumerator = CutEnumerator(self.graph, device.k,
                                        max_cuts=max_cuts)
        self.cuts: dict[int, CutSet] = self.enumerator.run()

    # ------------------------------------------------------------------
    def _stage_legal(self, root: int, cut: Cut) -> bool:
        """A cone is legal iff its interior shares the root's cycle and is
        fanout-free (every interior use stays inside the cone).

        The fanout-free restriction means the greedy mapper never duplicates
        logic, so an absorbed operation is never simultaneously a root —
        typical of area-oriented mappers and required for the simple
        retiming pass that follows.
        """
        cycle = self.schedule.cycle
        c = cycle[root]
        inside = cut.interior | {root}
        for w in cut.interior:
            if cycle.get(w, -1) != c:
                return False
            for use in self.graph.uses(w):
                if use.consumer not in inside:
                    return False
        return True

    def _additive_path(self, root: int, cut: Cut) -> float:
        """Longest additive operator-delay path through the cone to root."""
        delay = self._delay_model
        graph = self.graph
        inside = cut.interior | {root}
        memo: dict[int, float] = {}

        def path_to(nid: int) -> float:
            if nid in memo:
                return memo[nid]
            node = graph.node(nid)
            best = 0.0
            for op in node.operands:
                if op.distance == 0 and op.source in inside:
                    best = max(best, path_to(op.source))
            memo[nid] = best + delay.operator_delay(node)
            return memo[nid]

        return path_to(root)

    def _candidate_cuts(self, nid: int) -> list[Cut]:
        """Legal cuts: unit always; merged cuts that stay in-stage and are
        never slower than the additive chain they replace (the schedule's
        slack was computed with additive delays, so a cone whose LUT level
        exceeds its cone's additive path could break timing)."""
        node = self.graph.node(nid)
        cs = self.cuts[nid]
        out = []
        for cut in cs.selectable:
            if cut.is_unit:
                out.append(cut)
            elif (cut.feasible(self.device.k)
                  and self._stage_legal(nid, cut)
                  and self._delay_model.cut_delay(node, cut)
                  <= self._additive_path(nid, cut) + 1e-9):
                out.append(cut)
        if not out:
            raise MappingError(f"node {nid} ({node.label}) has no legal cut")
        return out

    def _pick(self, nid: int, required: set[int]) -> Cut:
        """Greedy area choice: prefer cuts whose boundaries are already
        needed elsewhere and whose cone is cheap (area-flow lite)."""
        node = self.graph.node(nid)
        best = None
        best_key = None
        for cut in self._candidate_cuts(nid):
            new_roots = sum(
                1 for u in cut.boundary
                if u not in required
                and self.graph.node(u).kind not in (OpKind.INPUT, OpKind.CONST)
            )
            key = (
                self.area.cut_lut_cost(node, cut) + new_roots,
                new_roots,
                len(cut.boundary),
                tuple(sorted(cut.boundary)),
            )
            if best_key is None or key < best_key:
                best_key = key
                best = cut
        assert best is not None
        return best

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Select a cover and attach it to the schedule (returned)."""
        graph = self.graph
        schedule = self.schedule
        required: set[int] = set()
        worklist: list[int] = []

        def require(nid: int) -> None:
            node = graph.node(nid)
            if node.kind in (OpKind.INPUT, OpKind.CONST):
                return
            if nid not in required:
                required.add(nid)
                worklist.append(nid)

        # Roots demanded by the interface and by register boundaries.
        for node in graph:
            if node.kind is OpKind.OUTPUT or node.is_blackbox:
                require(node.nid)
            for op in node.operands:
                if op.distance > 0:
                    require(op.source)

        cover: dict[int, Cut] = {}
        while worklist:
            nid = worklist.pop()
            if nid in cover:
                continue
            node = graph.node(nid)
            if node.kind is OpKind.OUTPUT or node.is_blackbox:
                unit = self.cuts[nid].unit
                if unit is None:
                    raise MappingError(f"sink {nid} has no unit cut")
                cover[nid] = unit
                for u in unit.boundary:
                    require(u)
                continue
            cut = self._pick(nid, required)
            cover[nid] = cut
            for u in cut.boundary:
                require(u)
            # A value consumed from a *different* cycle than where one of
            # its cone-interior copies lives must itself be registered: the
            # stage restriction already guarantees interior nodes share the
            # root's cycle, so nothing extra is needed here.

        # Any mappable node consumed in a different cycle than its consumer
        # is necessarily a boundary of that consumer's (same-cycle) cone, so
        # the loop above reaches it through require(); uncovered nodes are
        # exactly the absorbed ones. Sanity-check coverage:
        covered = set(cover)
        for nid, cut in cover.items():
            covered.update(cut.interior)
        for node in graph:
            if node.is_mappable and node.nid not in covered:
                # Dead-ish node kept by validation (cannot happen for valid
                # graphs); make it a standalone root for safety.
                unit = self.cuts[node.nid].unit
                if unit is None:
                    raise MappingError(f"node {node.nid} unmapped")
                cover[node.nid] = unit

        for node in graph.inputs:
            cover[node.nid] = self.cuts[node.nid].trivial

        schedule.cover = cover
        from .retime import recompute_starts

        return recompute_starts(schedule, self.device)


def map_schedule(schedule: Schedule, device: Device,
                 max_cuts: int = 12) -> Schedule:
    """Convenience wrapper around :class:`StageMapper`."""
    return StageMapper(schedule, device, max_cuts=max_cuts).run()

"""Intra-cycle start-time recomputation after mapping.

Once a cover exists, operator start times from the additive schedule are
stale: a cone is one LUT level, not a chain of operators. This pass rewrites
``L_v`` so that every root starts when its last same-cycle entry finishes
and every interior node inherits its root's time (the co-timing invariant
the verifier checks).
"""

from __future__ import annotations

from ..errors import MappingError
from ..ir.types import OpKind
from ..scheduling.schedule import Schedule
from ..tech.delay import DelayModel
from ..tech.device import Device

__all__ = ["recompute_starts"]


def recompute_starts(schedule: Schedule, device: Device) -> Schedule:
    """Rewrite ``schedule.start`` in place from the cover; returns it."""
    if not schedule.cover:
        raise MappingError("recompute_starts needs a covered schedule")
    graph = schedule.graph
    ii = schedule.ii
    delay = DelayModel(device, graph)
    start: dict[int, float] = {}

    def start_of(nid: int, stack: tuple = ()) -> float:
        if nid in start:
            return start[nid]
        if nid in stack:
            raise MappingError(f"combinational cycle through root {nid}")
        node = graph.node(nid)
        cut = schedule.cover.get(nid)
        if cut is None or node.kind in (OpKind.INPUT, OpKind.CONST):
            start[nid] = 0.0
            return 0.0
        arrival = 0.0
        for u, dist in cut.entries:
            un = graph.node(u)
            if un.kind is OpKind.CONST:
                continue
            if schedule.cycle.get(u, 0) == schedule.cycle[nid] + ii * dist:
                u_start = start_of(u, stack + (nid,))
                u_cut = schedule.cover.get(u)
                d = delay.cut_delay(un, u_cut) if u_cut is not None else 0.0
                arrival = max(arrival, u_start + d)
        start[nid] = arrival
        return arrival

    for nid in schedule.cover:
        start_of(nid)
    # Interior nodes inherit their root's start (and cycle is already equal
    # for stage-legal covers; the MILP enforces it by constraint).
    for nid, cut in schedule.cover.items():
        for w in cut.interior:
            start[w] = start[nid]
    for node in graph:
        start.setdefault(node.nid, 0.0)
    schedule.start = start
    return schedule

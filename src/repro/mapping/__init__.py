"""Post-scheduling technology mapping (the baseline flow's downstream step)."""

from .retime import recompute_starts
from .stage_mapper import StageMapper, map_schedule

__all__ = ["StageMapper", "map_schedule", "recompute_starts"]

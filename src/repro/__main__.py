"""Command-line entry point: regenerate the paper's evaluation artifacts
and lint designs with the static-analysis engine.

Usage::

    python -m repro table1 [DESIGN ...] [--device xc7|--k 4] [--no-narrow]
                           [--jobs N] [--cache-dir DIR]
    python -m repro table2 [DESIGN ...] [--jobs N] [--cache-dir DIR]
    python -m repro figure1
    python -m repro figure2
    python -m repro ablations [--jobs N] [--cache-dir DIR]
    python -m repro trace DESIGN [--method milp-map] [--cache-dir DIR]
                          [--format json]
    python -m repro list
    python -m repro lint [DESIGN|FILE ...] [--format json|sarif]
                         [--fail-on warning] [--baseline FILE]
    python -m repro equiv [DESIGN ...] [--stage narrow|cover|pipeline|rtl]
                          [--method milp-map] [--format json]
    python -m repro fuzz [--seeds N] [--time-budget S] [--oracles a,b]
                         [--jobs N] [--corpus-dir DIR] [--format json]
    python -m repro bench [DESIGN ...] [--quick] [--output FILE]
                          [--baseline FILE] [--max-ratio X] [--jobs N]
    python -m repro serve [--host H] [--port P] [--workers N]
                          [--queue-limit N] [--quota N] [--time-budget S]
                          [--cache-dir DIR] [--jobs N]
    python -m repro submit [DESIGN] [--graph FILE] [--method M]
                           [--host H] [--port P] [--no-watch]
                           [--load N [--output FILE]]

``--jobs N`` fans (design, method) tasks over a process pool with an
ordered merge — the output is byte-identical to the serial run.
``--cache-dir DIR`` enables the content-addressed flow cache: a warm
rerun of any experiment performs zero MILP solves. ``trace`` runs (or
replays from the cache) a single flow and dumps its per-phase spans; see
``docs/runtime.md``.

``lint`` accepts benchmark names (case-insensitive) and/or paths to
serialized CDFG JSON files; with no targets it lints all nine benchmarks.
It exits 1 when any report reaches the ``--fail-on`` threshold (default
``error``), making it directly usable as a CI gate; ``--baseline FILE``
subtracts previously recorded findings (written with ``--write-baseline``)
so only *new* diagnostics gate. Select/ignore patterns that match no
registered rule are a configuration error (exit 2). See
``docs/diagnostics.md`` for the code table and the JSON/SARIF schemas.

``--no-narrow`` on the experiment commands disables the dataflow-based
graph narrowing that otherwise runs before scheduling (see
``docs/dataflow.md``).

``equiv`` runs the symbolic translation validator (see
``docs/equivalence.md``): each flow stage — narrowing, cut cover,
pipelined replay, emitted Verilog — is miter-checked against the CDFG
semantics with BMC + k-induction. It exits 1 when any stage is refuted
(a confirmed counterexample) and prints the diverging input stream.

``fuzz`` runs the differential fuzzing campaign (see ``docs/fuzzing.md``):
coverage-directed random CDFGs cross-checked by pluggable oracles, with
divergences shrunk to minimal repros. It exits 1 when any oracle
diverges; ``--corpus-dir`` additionally writes the shrunk repros as
corpus entries the test suite replays.

``serve`` runs the scheduling-as-a-service job server (see
``docs/service.md``): an HTTP/JSON endpoint that dedupes submissions by
content fingerprint, fans them over sharded workers with per-client
quotas and bounded-queue backpressure, and streams per-phase progress.
``submit`` is its client: submit one design (or a serialized CDFG file)
and watch the live event stream, or drive the fuzz-sourced load
generator with ``--load N``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from .core.config import SchedulerConfig
from .designs.registry import BENCHMARKS


def _config(args) -> SchedulerConfig:
    # Partition flags only exist on parsers that include the partition
    # parent; getattr keeps the other commands on the defaults.
    return SchedulerConfig(ii=args.ii, tcp=args.tcp, alpha=args.alpha,
                           beta=1.0 - args.alpha, time_limit=args.time_limit,
                           narrow=not args.no_narrow,
                           presolve=not args.no_presolve,
                           warm_start=not args.no_warm_start,
                           vectorize=False if args.no_vectorize else None,
                           partition=getattr(args, "partition", False),
                           partition_size=getattr(args, "partition_size", 48),
                           partition_rounds=getattr(args, "partition_rounds",
                                                    2))


def _device(args):
    """Resolve ``--device``/``--k`` into a :class:`~repro.tech.device.Device`."""
    from .tech.device import TUTORIAL4, XC7

    base = {"xc7": XC7, "tutorial4": TUTORIAL4}[args.device]
    if args.k is not None:
        base = dataclasses.replace(base, k=args.k)
    return base


def _progress(verb: str):
    return lambda s: print(f"  {verb} {s}...", file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mapping-aware modulo scheduling (DAC'15) experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sched = argparse.ArgumentParser(add_help=False)
    sched.add_argument("--tcp", type=float, default=10.0,
                       help="target clock period in ns (default 10)")
    sched.add_argument("--ii", type=int, default=1,
                       help="target initiation interval (default 1)")
    sched.add_argument("--alpha", type=float, default=0.5,
                       help="Eq. 15 LUT weight; FF weight is 1-alpha")
    sched.add_argument("--time-limit", type=float, default=120.0,
                       help="MILP solver cap in seconds (default 120)")
    sched.add_argument("--no-narrow", action="store_true",
                       help="disable dataflow-based graph narrowing before "
                            "scheduling (see docs/dataflow.md)")
    sched.add_argument("--no-presolve", action="store_true",
                       help="disable MILP presolve before solving "
                            "(see docs/performance.md)")
    sched.add_argument("--no-warm-start", action="store_true",
                       help="disable heuristic warm starts for the MILP "
                            "solves (see docs/performance.md)")
    sched.add_argument("--no-vectorize", action="store_true",
                       help="use the pure-Python reference kernels instead "
                            "of the numpy-vectorized hot paths; results are "
                            "bit-identical either way (overrides "
                            "REPRO_VECTORIZE; see docs/performance.md)")

    partition = argparse.ArgumentParser(add_help=False)
    partition.add_argument("--partition", action="store_true",
                           help="solve by subgraph decomposition with "
                                "feedback-guided re-cuts "
                                "(milp-base/milp-map only; see "
                                "docs/partitioning.md)")
    partition.add_argument("--partition-size", type=int, default=48,
                           metavar="N",
                           help="target nodes per subgraph (default 48)")
    partition.add_argument("--partition-rounds", type=int, default=2,
                           metavar="R",
                           help="feedback re-cut rounds (default 2)")

    runtime = argparse.ArgumentParser(add_help=False)
    runtime.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="fan tasks over N worker processes "
                              "(default: $REPRO_JOBS or 1 = serial)")
    runtime.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="content-addressed flow-result cache; warm "
                              "reruns perform zero MILP solves")

    def device_parent(default: str) -> argparse.ArgumentParser:
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument("--device", choices=["xc7", "tutorial4"],
                       default=default,
                       help=f"target device model (default {default})")
        p.add_argument("--k", type=int, default=None,
                       help="override the device's LUT input count K")
        return p

    p = sub.add_parser("table1",
                       parents=[sched, device_parent("xc7"), runtime],
                       help="QoR comparison across the four flows (Table 1)")
    p.add_argument("designs", nargs="*",
                   help="benchmark subset (default: all nine)")

    p = sub.add_parser("table2",
                       parents=[sched, device_parent("xc7"), runtime],
                       help="MILP sizes and solve times (Table 2)")
    p.add_argument("designs", nargs="*",
                   help="benchmark subset (default: all nine)")

    p = sub.add_parser("figure1", parents=[device_parent("tutorial4")],
                       help="the pipelining tutorial example (Figure 1)")
    p.add_argument("--tcp", type=float, default=5.0,
                   help="target clock period in ns (default 5)")

    sub.add_parser("figure2", parents=[device_parent("tutorial4")],
                   help="cut enumeration on the Figure 2 kernel")

    sub.add_parser("ablations",
                   parents=[sched, device_parent("xc7"), runtime],
                   help="sensitivity sweeps (depth, alpha/beta, K, heuristic)")

    p = sub.add_parser("trace",
                       parents=[sched, device_parent("xc7"), runtime],
                       help="run (or replay from cache) one flow and dump "
                            "its per-phase trace spans")
    p.add_argument("design", help="benchmark name (see `repro list`)")
    p.add_argument("--method",
                   choices=["hls-tool", "milp-base", "milp-map", "heur-map"],
                   default="milp-map",
                   help="flow to trace (default milp-map)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (default text)")

    p = sub.add_parser("schedule",
                       parents=[sched, partition, device_parent("xc7"),
                                runtime],
                       help="schedule one design end-to-end, optionally "
                            "via subgraph decomposition "
                            "(see docs/partitioning.md)")
    p.add_argument("design",
                   help="benchmark or full-size design name "
                        "(see `repro list`)")
    p.add_argument("--method",
                   choices=["hls-tool", "milp-base", "milp-map", "heur-map"],
                   default="milp-map",
                   help="flow to run (default milp-map)")
    p.add_argument("--validate", action="store_true",
                   help="prove every flow stage with the miter/SAT "
                        "equivalence engine (see docs/equivalence.md)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (default text)")

    sub.add_parser("list", help="list the registered benchmark designs")

    p = sub.add_parser("lint", parents=[device_parent("xc7")],
                       help="run the static-analysis rules over designs")
    p.add_argument("targets", nargs="*", metavar="DESIGN|FILE",
                   help="benchmark names and/or serialized CDFG JSON files "
                        "(default: all nine benchmarks)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="output format (default text)")
    p.add_argument("--fail-on", choices=["error", "warning"],
                   default="error",
                   help="exit 1 when any finding reaches this severity "
                        "(default error)")
    p.add_argument("--select", action="append", default=[], metavar="CODE",
                   help="only run rules matching this code or prefix "
                        "(repeatable; e.g. IR, SCH003)")
    p.add_argument("--ignore", action="append", default=[], metavar="CODE",
                   help="skip rules matching this code or prefix (repeatable)")
    p.add_argument("--baseline", metavar="FILE",
                   help="suppress findings recorded in this baseline file; "
                        "only new diagnostics count toward --fail-on")
    p.add_argument("--write-baseline", metavar="FILE",
                   help="record all current findings to FILE and exit 0")

    p = sub.add_parser("bench",
                       parents=[sched, device_parent("xc7"), runtime],
                       help="MILP hot-path performance benchmark "
                            "(writes BENCH_milp.json; see "
                            "docs/performance.md)")
    p.add_argument("designs", nargs="*",
                   help="benchmark subset (default: all nine, or the "
                        "quick trio with --quick)")
    p.add_argument("--quick", action="store_true",
                   help="small fast matrix (the CI perf-smoke shape)")
    p.add_argument("--output", default="BENCH_milp.json", metavar="FILE",
                   help="write the JSON report here "
                        "(default BENCH_milp.json; '-' to skip)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare wall times against this stored bench "
                        "report and exit 1 on regressions")
    p.add_argument("--max-ratio", type=float, default=3.0, metavar="X",
                   help="regression threshold for --baseline "
                        "(default 3.0x)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="stdout format (default text)")

    p = sub.add_parser("serve", parents=[runtime],
                       help="run the scheduling-as-a-service job server "
                            "(see docs/service.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (default 8321; 0 picks a free port)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker shard threads (default 2)")
    p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                   help="max queued jobs before 429 (default 32)")
    p.add_argument("--quota", type=int, default=8, metavar="N",
                   help="max active jobs per client before 429 (default 8)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="default per-job time budget in seconds "
                        "(jobs may set their own; default: none)")
    p.add_argument("--max-retries", type=int, default=1, metavar="N",
                   help="re-queue attempts after a worker crash (default 1)")

    p = sub.add_parser("submit",
                       parents=[sched, device_parent("xc7")],
                       help="submit a job to a running `repro serve` "
                            "endpoint and watch it")
    p.add_argument("design", nargs="?", default=None,
                   help="benchmark or full-size design name "
                        "(see `repro list`)")
    p.add_argument("--graph", default=None, metavar="FILE",
                   help="submit this serialized CDFG JSON file instead "
                        "of a registered design")
    p.add_argument("--method",
                   choices=["hls-tool", "milp-base", "milp-map", "heur-map"],
                   default="milp-map",
                   help="flow to run (default milp-map)")
    p.add_argument("--host", default="127.0.0.1",
                   help="server address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8321,
                   help="server port (default 8321)")
    p.add_argument("--client", default="cli", metavar="NAME",
                   help="client name for per-client quotas (default cli)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="fail the job after S seconds of service time")
    p.add_argument("--no-watch", action="store_true",
                   help="print the job id and exit instead of streaming "
                        "events until completion")
    p.add_argument("--load", type=int, default=None, metavar="N",
                   help="load-generator mode: submit N fuzz-seeded jobs "
                        "and report throughput/latency")
    p.add_argument("--duration", type=float, default=None, metavar="S",
                   help="with --load: keep cycling the seeds for S "
                        "seconds (the CI smoke shape)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="with --load: write the JSON load report here")

    p = sub.add_parser("equiv",
                       parents=[sched, device_parent("xc7"), runtime],
                       help="prove every flow stage semantics-preserving "
                            "with the miter/SAT engine "
                            "(see docs/equivalence.md)")
    p.add_argument("designs", nargs="*",
                   help="benchmark subset (default: all nine)")
    p.add_argument("--method",
                   choices=["hls-tool", "milp-base", "milp-map", "heur-map"],
                   default="milp-map",
                   help="flow whose artifacts are validated "
                        "(default milp-map)")
    p.add_argument("--stage", action="append", default=[], metavar="STAGE",
                   choices=["narrow", "cover", "pipeline", "rtl"],
                   help="validate only this stage (repeatable; "
                        "default: all four)")
    p.add_argument("--frames", type=int, default=None, metavar="N",
                   help="BMC unrolling depth per miter (default 6)")
    p.add_argument("--induction-k", type=int, default=None, metavar="K",
                   help="maximum k-induction depth (default 2)")
    p.add_argument("--sat-conflicts", type=int, default=None, metavar="N",
                   help="CDCL conflict budget per goal (default 30000)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (default text)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="also write the full JSON report to FILE")

    p = sub.add_parser("fuzz",
                       parents=[sched, device_parent("xc7"), runtime],
                       help="differential fuzzing campaign over random "
                            "CDFGs (see docs/fuzzing.md)")
    p.add_argument("--seeds", type=int, default=50, metavar="N",
                   help="number of fuzz seeds to run (default 50)")
    p.add_argument("--seed-start", type=int, default=0, metavar="K",
                   help="first seed value (default 0)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="stop dispatching new seeds after S seconds")
    p.add_argument("--oracles", default=None, metavar="a,b",
                   help="comma-separated oracle subset (default: all; see "
                        "docs/fuzzing.md for the catalog)")
    p.add_argument("--profiles", default=None, metavar="p,q",
                   help="comma-separated generator profile subset "
                        "(default: all, routed by seed)")
    p.add_argument("--mutate-rounds", type=int, default=1, metavar="R",
                   help="mutation rounds applied to odd seeds (default 1; "
                        "0 disables mutation)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report divergences without minimizing them")
    p.add_argument("--corpus-dir", default=None, metavar="DIR",
                   help="write shrunk divergences as corpus entries here")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="summary format on stdout (default text)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="also write the full JSON summary to FILE")
    return parser


def _cmd_lint(args) -> int:
    from .analysis import Linter

    linter = Linter(select=args.select or None, ignore=args.ignore or None)
    unmatched = linter.unmatched_patterns()
    if unmatched:
        print("repro lint: selector(s) match no registered rule: "
              + ", ".join(repr(p) for p in unmatched)
              + " (prefixes match codes, e.g. IR or DF001)",
              file=sys.stderr)
        return 2
    device = _device(args)
    targets = args.targets or list(BENCHMARKS)

    reports = []
    for target in targets:
        name = target.upper()
        if name in BENCHMARKS:
            graph = BENCHMARKS[name].build()
        elif os.path.exists(target):
            from .errors import ReproError
            from .ir.serialize import load_graph

            # check=False: structurally broken graphs should be *reported*
            # by the linter, not rejected before it runs.
            try:
                graph = load_graph(target, check=False)
            except (ReproError, ValueError, KeyError, OSError) as exc:
                print(f"repro lint: failed to load {target!r}: {exc}",
                      file=sys.stderr)
                return 2
        else:
            print(f"repro lint: unknown design or missing file {target!r}",
                  file=sys.stderr)
            return 2
        reports.append(linter.lint_graph(graph, device=device))

    if args.write_baseline:
        from .analysis.baseline import write_baseline

        count = write_baseline(args.write_baseline, reports)
        print(f"repro lint: recorded {count} fingerprint(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0
    if args.baseline:
        from .analysis.baseline import load_baseline, suppress
        from .errors import AnalysisError

        try:
            known = load_baseline(args.baseline)
        except (AnalysisError, ValueError, OSError) as exc:
            print(f"repro lint: failed to load baseline: {exc}",
                  file=sys.stderr)
            return 2
        reports = suppress(reports, known)

    failed = any(r.fails(args.fail_on) for r in reports)
    if args.format == "json":
        from .analysis import SCHEMA_VERSION

        print(json.dumps({
            "schema": SCHEMA_VERSION,
            "fail_on": args.fail_on,
            "failed": failed,
            "reports": [r.to_dict() for r in reports],
        }, indent=2))
    elif args.format == "sarif":
        from .analysis.sarif import to_sarif

        print(json.dumps(to_sarif(reports), indent=2))
    else:
        for report in reports:
            print(report.render_text())
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    """Run (or replay from the cache) one flow and dump its trace."""
    from .experiments import run_flow
    from .runtime import TRACE_SCHEMA, FlowCache

    name = args.design.upper()
    if name not in BENCHMARKS:
        print(f"repro trace: unknown design {args.design!r}", file=sys.stderr)
        return 2
    cache = FlowCache(args.cache_dir) if args.cache_dir else None
    flow = run_flow(BENCHMARKS[name].build(), args.method,
                    device=_device(args), config=_config(args),
                    design=name, cache=cache)
    if args.format == "json":
        print(json.dumps({
            "schema": TRACE_SCHEMA,
            "design": name,
            "method": args.method,
            "cached": flow.cached,
            "fingerprint": flow.fingerprint,
            "source_graph": flow.source_graph,
            "report": flow.report.to_dict(),
            "spans": [s.to_dict() for s in flow.trace.spans],
        }, indent=2))
    else:
        state = "cache hit" if flow.cached else "computed"
        print(f"trace {name}:{args.method} ({state}, "
              f"graph={flow.source_graph})")
        print(flow.trace.render_text())
    return 0


def _cmd_schedule(args) -> int:
    """Run one flow on one design (Table 1 size or full-size variant)."""
    from .designs.fullsize import FULLSIZE
    from .experiments import run_flow
    from .runtime import FlowCache

    name = args.design.upper()
    spec = BENCHMARKS.get(name) or FULLSIZE.get(name)
    if spec is None:
        print(f"repro schedule: unknown design {args.design!r} "
              f"(see `repro list`)", file=sys.stderr)
        return 2
    if args.partition and args.method not in ("milp-base", "milp-map"):
        print(f"repro schedule: --partition requires milp-base or "
              f"milp-map, not {args.method}", file=sys.stderr)
        return 2
    cache = FlowCache(args.cache_dir) if args.cache_dir else None
    flow = run_flow(spec.build(), args.method, device=_device(args),
                    config=_config(args), design=name, cache=cache,
                    validate=True if args.validate else None,
                    jobs=args.jobs)
    report = flow.report

    partition_spans = [s for s in flow.trace.spans
                       if s.name in ("partition-cut", "stitch", "feedback")]
    equiv_ok = None if flow.equiv is None else flow.equiv.ok
    if args.format == "json":
        document = {
            "design": name,
            "method": args.method,
            "cached": flow.cached,
            "fingerprint": flow.fingerprint,
            "source_graph": flow.source_graph,
            "report": report.to_dict(),
            "partition": {
                "enabled": args.partition,
                "spans": [s.to_dict() for s in partition_spans],
            },
        }
        if flow.equiv is not None:
            document["equiv"] = flow.equiv.to_dict()
        print(json.dumps(document, indent=2))
    else:
        state = "cache hit" if flow.cached else "computed"
        print(f"schedule {name}:{args.method} ({state}, "
              f"graph={flow.source_graph})")
        print(f"  cp {report.cp:.2f} ns  luts {report.luts}  "
              f"ffs {report.ffs}  latency {report.latency}  "
              f"ii {report.ii}  solve {report.solve_seconds:.1f}s"
              + ("  optimal" if report.optimal else ""))
        for span in partition_spans:
            meta = {k: v for k, v in span.meta.items() if k != "cached"}
            print(f"  {span.name}: {meta}")
        if flow.equiv is not None:
            for v in flow.equiv.stages:
                print(f"  equiv {v.stage:8s} {v.status}")
    if equiv_ok is False:
        return 1
    return 0


def _cmd_equiv(args) -> int:
    """Validate flow stages symbolically; exit 1 on any refuted stage."""
    from .analysis.equiv import EQUIV_SCHEMA, EquivBudget, validate_flow
    from .experiments import run_flow
    from .runtime import FlowCache

    designs = [d.upper() for d in args.designs] or list(BENCHMARKS)
    unknown = [d for d in designs if d not in BENCHMARKS]
    if unknown:
        print("repro equiv: unknown design(s): " + ", ".join(unknown),
              file=sys.stderr)
        return 2

    budget = EquivBudget()
    if args.frames is not None:
        budget.max_frames = args.frames
    if args.induction_k is not None:
        budget.induction_k = args.induction_k
    if args.sat_conflicts is not None:
        budget.sat_conflicts = args.sat_conflicts
    stages = tuple(args.stage) or None
    cache = FlowCache(args.cache_dir) if args.cache_dir else None

    reports = []
    failed = False
    for name in designs:
        graph = BENCHMARKS[name].build()
        flow = run_flow(graph, args.method, device=_device(args),
                        config=_config(args), design=name, cache=cache)
        report = validate_flow(graph, flow.schedule, stages=stages,
                               budget=budget, tracer=flow.trace,
                               design=name, method=args.method)
        reports.append(report)
        failed = failed or not report.ok
        if args.format != "json":
            for v in report.stages:
                mark = {"proved": "ok  ", "bounded": "WARN",
                        "inequivalent": "FAIL", "unknown": "WARN",
                        "skipped": "skip", "error": "FAIL"}[v.status]
                print(f"  {mark} {name:8s} {v.stage:8s} {v.status:12s} "
                      f"{v.seconds:6.2f}s  {v.detail}")
                for note in v.notes:
                    print(f"       {' ' * 8} note: {note}")
                cex = v.counterexample
                if cex is not None and cex.stream:
                    print(f"       {' ' * 8} counterexample frame 0: "
                          f"{cex.stream[0]}")

    document = {
        "schema": EQUIV_SCHEMA,
        "method": args.method,
        "ok": not failed,
        "reports": [r.to_dict() for r in reports],
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
    elif not failed:
        print(f"repro equiv: all stages hold on "
              f"{', '.join(r.design for r in reports)}")
    return 1 if failed else 0


def _cmd_fuzz(args) -> int:
    from .fuzz import ORACLES, PROFILES, run_campaign

    oracles = tuple(args.oracles.split(",")) if args.oracles else None
    if oracles:
        unknown = [o for o in oracles if o not in ORACLES]
        if unknown:
            print("repro fuzz: unknown oracle(s): " + ", ".join(unknown)
                  + " (known: " + ", ".join(ORACLES) + ")", file=sys.stderr)
            return 2
    profiles = tuple(args.profiles.split(",")) if args.profiles else None
    if profiles:
        unknown = [p for p in profiles if p not in PROFILES]
        if unknown:
            print("repro fuzz: unknown profile(s): " + ", ".join(unknown)
                  + " (known: " + ", ".join(PROFILES) + ")", file=sys.stderr)
            return 2

    config = dataclasses.replace(_config(args), max_cuts=8)
    kwargs = {}
    if oracles:
        kwargs["oracles"] = oracles
    summary = run_campaign(
        seeds=args.seeds, seed_start=args.seed_start,
        profiles=profiles, time_budget=args.time_budget,
        jobs=args.jobs, device=_device(args), config=config,
        mutate_rounds=args.mutate_rounds,
        shrink_divergences=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        progress=lambda t: print(f"  fuzzing seed {t.seed}...",
                                 file=sys.stderr),
        **kwargs)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary.to_dict(), fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        counts = summary.counts()
        state = " (stopped early: time budget)" if summary.stopped_early \
            else ""
        print(f"fuzz: {len(summary.results)}/{summary.seeds_requested} "
              f"seeds{state}, oracles: {counts['pass']} pass, "
              f"{counts['skip']} skip, {counts['diverge']} diverge")
        for result in summary.results:
            for div in result["divergences"]:
                shrunk = div.get("shrunk")
                where = (f" [shrunk to {shrunk['nodes']} nodes, "
                         f"{shrunk['stimulus_len']} iterations]"
                         if shrunk else "")
                print(f"  DIVERGE seed {result['seed']} "
                      f"({result['profile']}) {div['oracle']}: "
                      f"{div['message']}{where}")
        for path in summary.corpus_files:
            print(f"  corpus entry written: {path}")
    return 1 if summary.divergences else 0


def _cmd_bench(args) -> int:
    from .experiments.bench import compare_to_baseline, format_bench, run_bench

    result = run_bench(designs=[d.upper() for d in args.designs] or None,
                       device=_device(args), config=_config(args),
                       quick=args.quick, jobs=args.jobs,
                       progress=_progress("benching"))
    data = result.to_dict()
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"repro bench: wrote {args.output}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(format_bench(result))
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"repro bench: failed to load baseline: {exc}",
                  file=sys.stderr)
            return 2
        regressions = compare_to_baseline(data, baseline,
                                          max_ratio=args.max_ratio)
        for line in regressions:
            print(f"  REGRESSION {line}")
        if regressions:
            return 1
        print(f"repro bench: no regressions vs {args.baseline} "
              f"(max-ratio {args.max_ratio:.1f}x)", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import SchedulingService, ServiceServer

    service = SchedulingService(workers=args.workers,
                                queue_limit=args.queue_limit,
                                quota=args.quota,
                                cache=args.cache_dir,
                                flow_jobs=args.jobs,
                                max_retries=args.max_retries,
                                default_time_budget=args.time_budget)
    service.start()
    server = ServiceServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(f"repro serve: listening on "
              f"http://{server.host}:{server.port} "
              f"({service.workers} worker shard(s), queue limit "
              f"{service.queue_limit}, quota {service.quota}/client"
              + (f", cache {args.cache_dir}" if args.cache_dir else "")
              + ")", file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


def _cmd_submit(args) -> int:
    from .service import ServiceClient, job_payload
    from .service.loadgen import format_load, run_load

    client = ServiceClient(host=args.host, port=args.port)
    try:
        client.health()
    except OSError as exc:
        print(f"repro submit: no server at {args.host}:{args.port} "
              f"({exc}); start one with `repro serve`", file=sys.stderr)
        return 2

    if args.load is not None:
        report = run_load(client, seeds=range(args.load),
                          method=args.method, duration=args.duration,
                          progress=None if args.no_watch else
                          _progress("job"))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"repro submit: wrote {args.output}", file=sys.stderr)
        print(format_load(report))
        return 1 if report.failed else 0

    if (args.design is None) == (args.graph is None):
        print("repro submit: supply exactly one of DESIGN or --graph FILE",
              file=sys.stderr)
        return 2
    graph = None
    if args.graph is not None:
        try:
            with open(args.graph, encoding="utf-8") as fh:
                graph = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"repro submit: failed to load {args.graph!r}: {exc}",
                  file=sys.stderr)
            return 2
    payload = job_payload(design=args.design, graph=graph,
                          method=args.method, device=args.device,
                          config=dataclasses.asdict(_config(args)),
                          client=args.client, time_budget=args.time_budget)
    status, doc = client.submit(payload)
    if status not in (200, 202):
        print(f"repro submit: rejected ({status}): "
              f"{doc.get('message', doc)}", file=sys.stderr)
        return 1
    joined = " (joined in-flight job)" if doc.get("deduped") else ""
    print(f"submitted {doc['id']} "
          f"fingerprint {doc['fingerprint'][:12]}...{joined}",
          file=sys.stderr)
    if args.no_watch:
        print(doc["id"])
        return 0
    for event in client.events(doc["id"]):
        kind = event.get("event")
        if kind == "phase":
            suffix = (f" ({event['seconds'] * 1000:.1f} ms)"
                      if "seconds" in event else "")
            print(f"  {event['phase']} {event['status']}{suffix}",
                  file=sys.stderr)
        elif kind == "state":
            print(f"  -> {event['state']}", file=sys.stderr)
    final = client.wait(doc["id"])
    if final["state"] != "done":
        error = final.get("error") or {}
        print(f"repro submit: job {final['state']}: "
              f"{error.get('type', '')} {error.get('message', '')}",
              file=sys.stderr)
        return 1
    report = final["result"]["report"]
    print(f"done {doc['id']}: cp {report['cp']:.2f} ns  "
          f"luts {report['luts']}  ffs {report['ffs']}  "
          f"latency {report['latency']}  ii {report['ii']}"
          + ("  [cache hit]" if final["result"].get("cached") else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from .designs.fullsize import FULLSIZE

        for name, spec in BENCHMARKS.items():
            print(f"{name:8s} {spec.kind:12s} {spec.domain:22s} "
                  f"{spec.description}")
        for name, spec in FULLSIZE.items():
            print(f"{name:8s} full-size    {spec.domain:22s} "
                  f"{spec.description}")
        return 0

    if args.command == "lint":
        return _cmd_lint(args)

    if args.command == "equiv":
        return _cmd_equiv(args)

    if args.command == "fuzz":
        return _cmd_fuzz(args)

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "submit":
        return _cmd_submit(args)

    if args.command == "table1":
        from .experiments import format_table1, run_table1

        result = run_table1(designs=[d.upper() for d in args.designs] or None,
                            device=_device(args), config=_config(args),
                            progress=_progress("running"),
                            jobs=args.jobs, cache_dir=args.cache_dir)
        print(format_table1(result))
        return 0

    if args.command == "table2":
        from .experiments import format_table2, run_table2

        result = run_table2(designs=[d.upper() for d in args.designs] or None,
                            device=_device(args), config=_config(args),
                            progress=_progress("solving"),
                            jobs=args.jobs, cache_dir=args.cache_dir)
        print(format_table2(result))
        return 0

    if args.command == "trace":
        return _cmd_trace(args)

    if args.command == "schedule":
        return _cmd_schedule(args)

    if args.command == "figure1":
        from .experiments import format_figure1, run_figure1

        print(format_figure1(run_figure1(device=_device(args), tcp=args.tcp)))
        return 0

    if args.command == "figure2":
        from .experiments import format_figure2, run_figure2

        print(format_figure2(run_figure2(k=_device(args).k)))
        return 0

    if args.command == "ablations":
        from .experiments import (
            format_alpha_beta,
            format_heuristic_gap,
            format_k_sweep,
            format_xorr_depth,
            sweep_alpha_beta,
            sweep_heuristic_gap,
            sweep_k,
            sweep_xorr_depth,
        )

        device = _device(args)
        print(format_xorr_depth(
            sweep_xorr_depth(device=device, config=_config(args),
                             jobs=args.jobs, cache_dir=args.cache_dir)))
        print()
        print(format_alpha_beta(
            sweep_alpha_beta(device=device, base_config=_config(args),
                             jobs=args.jobs, cache_dir=args.cache_dir),
            "GFMUL"))
        print()
        print(format_k_sweep(
            sweep_k(ks=[args.k] if args.k is not None else None)))
        print()
        print(format_heuristic_gap(
            sweep_heuristic_gap(device=device, config=_config(args),
                                jobs=args.jobs, cache_dir=args.cache_dir)))
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # downstream consumer (head, jq -e ...) closed the pipe early;
        # suppress the shutdown traceback from flushing stdout
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)

"""Command-line entry point: regenerate the paper's evaluation artifacts.

Usage::

    python -m repro table1 [DESIGN ...]
    python -m repro table2 [DESIGN ...]
    python -m repro figure1
    python -m repro figure2
    python -m repro ablations
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from .core.config import SchedulerConfig
from .designs.registry import BENCHMARKS


def _config(args) -> SchedulerConfig:
    return SchedulerConfig(ii=args.ii, tcp=args.tcp, alpha=args.alpha,
                           beta=1.0 - args.alpha, time_limit=args.time_limit)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mapping-aware modulo scheduling (DAC'15) experiments",
    )
    parser.add_argument("command",
                        choices=["table1", "table2", "figure1", "figure2",
                                 "ablations", "list"])
    parser.add_argument("designs", nargs="*",
                        help="benchmark subset (default: all nine)")
    parser.add_argument("--tcp", type=float, default=10.0,
                        help="target clock period in ns (default 10)")
    parser.add_argument("--ii", type=int, default=1,
                        help="target initiation interval (default 1)")
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="Eq. 15 LUT weight; FF weight is 1-alpha")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="MILP solver cap in seconds (default 120)")
    args = parser.parse_args(argv)

    designs = [d.upper() for d in args.designs] or None

    if args.command == "list":
        for name, spec in BENCHMARKS.items():
            print(f"{name:8s} {spec.kind:12s} {spec.domain:22s} "
                  f"{spec.description}")
        return 0

    if args.command == "table1":
        from .experiments import format_table1, run_table1

        result = run_table1(designs=designs, config=_config(args),
                            progress=lambda s: print(f"  running {s}...",
                                                     file=sys.stderr))
        print(format_table1(result))
        return 0

    if args.command == "table2":
        from .experiments import format_table2, run_table2

        result = run_table2(designs=designs, config=_config(args),
                            progress=lambda s: print(f"  solving {s}...",
                                                     file=sys.stderr))
        print(format_table2(result))
        return 0

    if args.command == "figure1":
        from .experiments import format_figure1, run_figure1

        print(format_figure1(run_figure1()))
        return 0

    if args.command == "figure2":
        from .experiments import format_figure2, run_figure2

        print(format_figure2(run_figure2()))
        return 0

    if args.command == "ablations":
        from .experiments import (
            format_alpha_beta,
            format_heuristic_gap,
            format_k_sweep,
            format_xorr_depth,
            sweep_alpha_beta,
            sweep_heuristic_gap,
            sweep_k,
            sweep_xorr_depth,
        )

        print(format_xorr_depth(sweep_xorr_depth(config=_config(args))))
        print()
        print(format_alpha_beta(
            sweep_alpha_beta(base_config=_config(args)), "GFMUL"))
        print()
        print(format_k_sweep(sweep_k()))
        print()
        print(format_heuristic_gap(
            sweep_heuristic_gap(config=_config(args))))
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Minimum initiation interval (MII) computation.

``MII = max(ResMII, RecMII)`` as in Rau's iterative modulo scheduling
(ref [18] of the paper):

* **ResMII** — for each constrained resource class, ceil(uses / available).
* **RecMII** — over every elementary dependence cycle, the initiation
  interval must satisfy ``II * distance(C) * Tcp >= total_delay(C)`` so the
  recurrence's combinational work fits in the cycles the distance buys.
"""

from __future__ import annotations

import math
from typing import Callable

import networkx as nx

from ..ir.graph import CDFG
from ..tech.device import Device

__all__ = ["res_mii", "rec_mii", "minimum_ii"]


def res_mii(graph: CDFG, device: Device) -> int:
    """Resource-constrained lower bound on II (Eq. 14's feasibility)."""
    usage: dict[str, int] = {}
    for node in graph:
        if node.is_blackbox and node.rclass:
            usage[node.rclass] = usage.get(node.rclass, 0) + 1
    bound = 1
    for rclass, used in usage.items():
        available = device.blackbox_counts.get(rclass)
        if available:
            bound = max(bound, math.ceil(used / available))
    return bound


def rec_mii(graph: CDFG, delay_of: Callable[[int], float], tcp: float,
            max_cycles: int = 20000) -> int:
    """Recurrence-constrained lower bound on II.

    Enumerates elementary cycles of the dependence multigraph (networkx).
    Benchmarks in this library have few recurrences; the enumeration is
    capped defensively for synthetic stress graphs.
    """
    g = graph.to_networkx(include_back_edges=True)
    # Collapse the multigraph to a digraph keeping the minimum distance per
    # edge pair (minimum distance = tightest recurrence).
    simple = nx.DiGraph()
    for u, v, data in g.edges(data=True):
        d = data["distance"]
        if simple.has_edge(u, v):
            simple[u][v]["distance"] = min(simple[u][v]["distance"], d)
        else:
            simple.add_edge(u, v, distance=d)
    bound = 1
    count = 0
    for cyc in nx.simple_cycles(simple):
        count += 1
        if count > max_cycles:
            break
        total_delay = sum(delay_of(nid) for nid in cyc)
        total_dist = 0
        for i, u in enumerate(cyc):
            v = cyc[(i + 1) % len(cyc)]
            total_dist += simple[u][v]["distance"]
        if total_dist == 0:
            continue  # combinational cycle: rejected by validation earlier
        bound = max(bound, math.ceil(total_delay / (tcp * total_dist) - 1e-9))
    return bound


def minimum_ii(graph: CDFG, device: Device, delay_of: Callable[[int], float],
               tcp: float) -> int:
    """``max(ResMII, RecMII)``."""
    return max(res_mii(graph, device), rec_mii(graph, delay_of, tcp))

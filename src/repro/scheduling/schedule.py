"""The pipeline schedule object shared by every scheduler in the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SchedulingError
from ..ir.graph import CDFG

if TYPE_CHECKING:  # pragma: no cover
    from ..cuts.cut import Cut

__all__ = ["Schedule"]


@dataclass
class Schedule:
    """A modulo schedule plus (optionally) a LUT cover.

    Attributes
    ----------
    graph:
        The scheduled CDFG.
    ii:
        Initiation interval in cycles.
    tcp:
        Target clock period, ns (the budget each cycle must respect).
    cycle:
        ``S_v`` — pipeline cycle per node id (Eq. 6).
    start:
        ``L_v`` — start time within the cycle, ns (Sec. 3.2 cycle-time
        constraints). Nodes absorbed into a cone share the root's start.
    cover:
        Selected cut per *root* node id (Eq. 2); empty when only timing was
        decided (e.g. a raw additive-delay schedule before mapping).
    method:
        Which flow produced this schedule ("hls-tool", "milp-base",
        "milp-map", ...). Used in reports.
    objective:
        Solver objective value, when produced by an MILP.
    solve_seconds:
        Wall-clock solver time (Table 2).
    optimal:
        True when the producing solver proved optimality.
    """

    graph: CDFG
    ii: int
    tcp: float
    cycle: dict[int, int] = field(default_factory=dict)
    start: dict[int, float] = field(default_factory=dict)
    cover: dict[int, "Cut"] = field(default_factory=dict)
    method: str = "unknown"
    objective: float | None = None
    solve_seconds: float = 0.0
    optimal: bool = True

    # ------------------------------------------------------------------
    @property
    def latency(self) -> int:
        """Pipeline depth in cycles (last used cycle index + 1)."""
        if not self.cycle:
            return 0
        return max(self.cycle.values()) + 1

    @property
    def num_stages(self) -> int:
        """Number of register stages = latency - 1 (a 1-cycle pipeline has
        no internal registers, as in the paper's Figure 1(b))."""
        return max(0, self.latency - 1)

    @property
    def roots(self) -> set[int]:
        """Node ids selected as LUT/operator roots."""
        return set(self.cover)

    def cycle_of(self, nid: int) -> int:
        """``S_v`` (raises if the node was not scheduled)."""
        try:
            return self.cycle[nid]
        except KeyError:
            raise SchedulingError(f"node {nid} is not scheduled") from None

    def nodes_in_cycle(self, cycle: int) -> list[int]:
        """Node ids assigned to ``cycle``, ordered by start time."""
        members = [nid for nid, c in self.cycle.items() if c == cycle]
        members.sort(key=lambda nid: (self.start.get(nid, 0.0), nid))
        return members

    def finish_time(self, nid: int, delay: float) -> float:
        """Absolute finish time (ns) of a node given its delay."""
        return self.cycle_of(nid) * self.tcp + self.start.get(nid, 0.0) + delay

    def describe(self) -> str:
        """Multi-line human-readable dump (used by examples)."""
        lines = [
            f"schedule[{self.method}] of {self.graph.name}: II={self.ii}, "
            f"Tcp={self.tcp:g} ns, latency={self.latency} cycles, "
            f"{len(self.cover)} roots"
        ]
        for c in range(self.latency):
            members = self.nodes_in_cycle(c)
            if not members:
                continue
            parts = []
            for nid in members:
                node = self.graph.node(nid)
                tag = "*" if nid in self.cover else " "
                parts.append(f"{tag}{node.label}@{self.start.get(nid, 0.0):.2f}")
            lines.append(f"  cycle {c}: " + ", ".join(parts))
        return "\n".join(lines)

"""Heuristic modulo scheduler with an additive delay model.

This is the library's stand-in for the scheduling engine of a commercial
HLS tool (Sec. 4): a fast, *mapping-agnostic* heuristic. Every operation
carries its pre-characterized operator delay; chaining is additive; the
schedule is built greedily in topological order with a modulo reservation
table for constrained black-box resources; loop-carried recurrences are
verified after placement and the II is bumped until they hold.

Its pessimism on logic networks (a chain of ten XORs is charged ten LUT
delays even though mapping collapses it) is precisely the behaviour the
paper's Figure 1(a) illustrates.
"""

from __future__ import annotations

import math

from ..errors import SchedulingError
from ..ir.graph import CDFG
from ..tech.delay import DelayModel
from ..tech.device import Device
from .asap import asap_schedule
from .mii import minimum_ii
from .mrt import ModuloReservationTable
from .schedule import Schedule

__all__ = ["HeuristicModuloScheduler"]


class HeuristicModuloScheduler:
    """Greedy additive-delay modulo scheduling (the HLS-tool proxy)."""

    def __init__(self, graph: CDFG, device: Device, tcp: float,
                 max_ii: int = 64, delay_fn=None, method: str = "hls-tool") -> None:
        self.graph = graph
        self.device = device
        # Schedule against the uncertainty-derated budget, like real tools.
        self.tcp = device.usable_period(tcp)
        self.max_ii = max_ii
        self.method = method
        self._delay_model = DelayModel(device, graph)
        self._delay_fn = delay_fn
        self._delay_cache: dict[int, float] = {}

    def delay_of(self, nid: int) -> float:
        """Per-op delay: the additive operator model by default, or the
        injected ``delay_fn`` (used by the mapping-aware heuristic, which
        schedules an already-mapped LUT network)."""
        if nid not in self._delay_cache:
            if self._delay_fn is not None:
                self._delay_cache[nid] = self._delay_fn(nid)
            else:
                node = self.graph.node(nid)
                self._delay_cache[nid] = self._delay_model.operator_delay(node)
        return self._delay_cache[nid]

    # ------------------------------------------------------------------
    def schedule(self, target_ii: int | None = None) -> Schedule:
        """Find the smallest feasible II >= max(target, MII) and schedule."""
        mii = minimum_ii(self.graph, self.device, self.delay_of, self.tcp)
        start_ii = max(mii, target_ii or 1)
        last_error = "no feasible II tried"
        for ii in range(start_ii, start_ii + self.max_ii):
            try:
                return self._try(ii)
            except SchedulingError as exc:
                last_error = str(exc)
        raise SchedulingError(
            f"no feasible II in [{start_ii}, {start_ii + self.max_ii}): "
            f"{last_error}"
        )

    # ------------------------------------------------------------------
    def _try(self, ii: int, max_rounds: int = 24) -> Schedule:
        """ASAP placement with recurrence-driven re-placement rounds.

        A loop-carried consumer may need to execute *later* than its ASAP
        slot so that the producing iteration has finished (e.g. a running
        minimum updated at the end of a multi-cycle reduction). Each round
        raises the earliest-start bound of violated consumers and replaces
        everything — a poor man's modulo-SDC fixpoint.
        """
        min_ready: dict[int, float] = {}
        for _ in range(max_rounds):
            cycle, start = self._place(ii, min_ready)
            violations = self._recurrence_violations(ii, cycle, start)
            if not violations:
                return Schedule(
                    graph=self.graph, ii=ii, tcp=self.tcp, cycle=cycle,
                    start=start, method=self.method, optimal=False,
                )
            for v, needed in violations:
                if needed <= min_ready.get(v, 0.0) + 1e-9:
                    raise SchedulingError(
                        f"recurrence through node {v} cannot converge at II={ii}"
                    )
                min_ready[v] = needed
        raise SchedulingError(f"recurrence fixpoint did not converge at II={ii}")

    def _place(self, ii: int, min_ready: dict[int, float]
               ) -> tuple[dict[int, int], dict[int, float]]:
        graph = self.graph
        tcp = self.tcp
        mrt = ModuloReservationTable(ii, self.device.blackbox_counts)
        cycle: dict[int, int] = {}
        start: dict[int, float] = {}

        for nid in graph.topological_order():
            node = graph.node(nid)
            d = self.delay_of(nid)
            if d > tcp + 1e-9:
                raise SchedulingError(
                    f"operator delay of node {nid} ({d:.2f} ns) exceeds the "
                    f"clock period {tcp:.2f} ns"
                )
            ready = min_ready.get(nid, 0.0)
            for op in node.operands:
                if op.distance != 0:
                    continue
                u = op.source
                ready = max(ready, cycle[u] * tcp + start[u] + self.delay_of(u))
            c = int(math.floor(ready / tcp + 1e-9))
            offset = ready - c * tcp
            if offset + d > tcp + 1e-9:
                c += 1
                offset = 0.0
            if d == 0.0 and offset <= 1e-9 and c > 0 and ready > 1e-9:
                # zero-delay node exactly on a cycle boundary: keep it in
                # the earlier cycle (L = budget), like the MILP does
                c -= 1
                offset = tcp

            if node.is_blackbox and node.rclass:
                placed = False
                for attempt in range(ii):
                    if mrt.fits(node.rclass, c + attempt):
                        mrt.place(nid, node.rclass, c + attempt)
                        if attempt:
                            c += attempt
                            offset = 0.0
                        placed = True
                        break
                if not placed:
                    raise SchedulingError(
                        f"resource class {node.rclass!r} oversubscribed at II={ii}"
                    )

            cycle[nid] = c
            start[nid] = offset
        return cycle, start

    def _recurrence_violations(self, ii: int, cycle: dict[int, int],
                               start: dict[int, float]
                               ) -> list[tuple[int, float]]:
        """Loop-carried edges whose producer finishes after the consumer
        starts; returns (consumer, required_start_time) pairs."""
        tcp = self.tcp
        out: list[tuple[int, float]] = []
        for node in self.graph:
            for op in node.operands:
                if op.distance == 0:
                    continue
                u = op.source
                u_finish = cycle[u] * tcp + start[u] + self.delay_of(u)
                v_start = (cycle[node.nid] + ii * op.distance) * tcp \
                    + start[node.nid]
                if u_finish > v_start + 1e-9:
                    out.append((node.nid, u_finish - ii * op.distance * tcp))
        return out

    # ------------------------------------------------------------------
    def asap_latency(self) -> int:
        """Latency of the acyclic ASAP schedule (horizon estimation)."""
        return asap_schedule(self.graph, self.delay_of, self.tcp).latency

"""A system-of-difference-constraints (SDC) solver.

SDC is the workhorse of modern HLS schedulers (Zhang & Liu, ICCAD'13;
Canis et al., FPL'14 — refs [22, 3] of the paper): constraints of the form
``x_u - x_v <= c`` are feasible iff the constraint graph has no negative
cycle, and the shortest-path potentials give the (lexicographically minimal)
solution. This implementation supports incremental constraint addition with
rollback, which is what a modulo scheduler needs when it tentatively places
an operation.
"""

from __future__ import annotations

from collections import deque

from ..errors import SchedulingError

__all__ = ["SDCSystem"]


class SDCSystem:
    """Difference constraints ``x_u - x_v <= c`` over named variables."""

    def __init__(self) -> None:
        self._vars: dict[object, int] = {}
        # adjacency: edges[v] = {u: c} encodes x_u - x_v <= c, i.e. an edge
        # v -> u with weight c in the constraint graph.
        self._edges: list[dict[int, float]] = []
        self._potential: list[float] = []
        self._trail: list[tuple[int, int, float | None]] = []

    # ------------------------------------------------------------------
    def var(self, key: object) -> int:
        """Intern a variable; returns its internal index."""
        if key not in self._vars:
            self._vars[key] = len(self._edges)
            self._edges.append({})
            self._potential.append(0.0)
        return self._vars[key]

    def value(self, key: object) -> float:
        """Current solution value of a variable (normalized to min = 0)."""
        idx = self._vars[key]
        base = min(self._potential) if self._potential else 0.0
        return self._potential[idx] - base

    def values(self) -> dict[object, float]:
        """Solution values for all variables, normalized to min = 0."""
        base = min(self._potential) if self._potential else 0.0
        return {k: self._potential[i] - base for k, i in self._vars.items()}

    # ------------------------------------------------------------------
    def add(self, u: object, v: object, c: float) -> bool:
        """Add ``x_u - x_v <= c``; False (and no change) if infeasible.

        Uses incremental Bellman–Ford: only potentials reachable from the
        new edge are updated; a cycle back to the edge's source at negative
        reduced cost proves infeasibility, in which case all updates are
        rolled back.
        """
        ui = self.var(u)
        vi = self.var(v)
        old = self._edges[vi].get(ui)
        if old is not None and old <= c:
            return True  # weaker than an existing constraint
        self._trail.clear()
        self._trail.append((vi, ui, old))
        self._edges[vi][ui] = c

        # Re-relax from vi.
        pot = self._potential
        changed: dict[int, float] = {}
        queue = deque([vi])
        in_queue = {vi}
        relaxations = 0
        num_edges = sum(len(adj) for adj in self._edges)
        limit = (len(self._edges) + 2) * (num_edges + 2)
        while queue:
            x = queue.popleft()
            in_queue.discard(x)
            for y, w in self._edges[x].items():
                if pot[x] + w < pot[y] - 1e-9:
                    relaxations += 1
                    if relaxations > limit:
                        self._rollback(changed)
                        return False
                    if y not in changed:
                        changed[y] = pot[y]
                    pot[y] = pot[x] + w
                    if y == vi:
                        # Negative cycle through the new edge.
                        self._rollback(changed)
                        return False
                    if y not in in_queue:
                        queue.append(y)
                        in_queue.add(y)
        self._trail.clear()
        return True

    def require(self, u: object, v: object, c: float) -> None:
        """Like :meth:`add` but raises :class:`SchedulingError` on conflict."""
        if not self.add(u, v, c):
            raise SchedulingError(
                f"SDC constraint {u} - {v} <= {c} is infeasible"
            )

    def _rollback(self, changed: dict[int, float]) -> None:
        for idx, old_pot in changed.items():
            self._potential[idx] = old_pot
        for vi, ui, old_edge in self._trail:
            if old_edge is None:
                del self._edges[vi][ui]
            else:
                self._edges[vi][ui] = old_edge
        self._trail.clear()

    def __len__(self) -> int:
        return len(self._vars)

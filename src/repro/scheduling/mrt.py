"""Modulo reservation table (MRT).

Tracks, for every resource class and modulo slot ``t mod II``, which
operations occupy an instance (Eq. 14). Unconstrained classes are tracked
too so reports can state achieved utilization ``X_r``.
"""

from __future__ import annotations

from ..errors import SchedulingError

__all__ = ["ModuloReservationTable"]


class ModuloReservationTable:
    """Slot bookkeeping for black-box resource classes."""

    def __init__(self, ii: int, capacity: dict[str, int] | None = None) -> None:
        if ii < 1:
            raise SchedulingError(f"II must be >= 1, got {ii}")
        self.ii = ii
        self.capacity = dict(capacity or {})
        self._slots: dict[tuple[str, int], list[int]] = {}
        self._placed: dict[int, tuple[str, int]] = {}

    def occupancy(self, rclass: str, slot: int) -> int:
        """Operations currently holding (rclass, slot % II)."""
        return len(self._slots.get((rclass, slot % self.ii), ()))

    def fits(self, rclass: str, slot: int) -> bool:
        """True if another op of ``rclass`` can be placed at ``slot``."""
        cap = self.capacity.get(rclass)
        if cap is None:
            return True
        return self.occupancy(rclass, slot) < cap

    def place(self, nid: int, rclass: str, slot: int) -> None:
        """Reserve an instance; raises if full or already placed."""
        if nid in self._placed:
            raise SchedulingError(f"node {nid} already placed in MRT")
        if not self.fits(rclass, slot):
            raise SchedulingError(
                f"resource {rclass} full at modulo slot {slot % self.ii}"
            )
        key = (rclass, slot % self.ii)
        self._slots.setdefault(key, []).append(nid)
        self._placed[nid] = key

    def remove(self, nid: int) -> None:
        """Release a previously placed operation (for backtracking)."""
        key = self._placed.pop(nid, None)
        if key is not None:
            self._slots[key].remove(nid)

    def usage(self) -> dict[str, int]:
        """Peak instances used per class (the paper's ``X_r``)."""
        peak: dict[str, int] = {}
        for (rclass, _), members in self._slots.items():
            peak[rclass] = max(peak.get(rclass, 0), len(members))
        return peak

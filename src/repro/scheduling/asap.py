"""ASAP / ALAP scheduling with operator chaining.

These are the classic list-scheduling bounds: ASAP packs every operation as
early as the additive delay model permits (chaining operations inside a
cycle until the clock budget runs out); ALAP packs as late as possible given
a latency bound. Both ignore loop-carried edges (they constrain the modulo
schedule, not the acyclic one) and both are used as priority functions and
latency estimates by the heuristic modulo scheduler and the MILP's horizon
bound M.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import SchedulingError
from ..ir.graph import CDFG

__all__ = ["asap_schedule", "alap_schedule", "ChainingTimes"]


class ChainingTimes:
    """Per-node (cycle, start) pairs produced by ASAP/ALAP."""

    def __init__(self, cycle: dict[int, int], start: dict[int, float]) -> None:
        self.cycle = cycle
        self.start = start

    @property
    def latency(self) -> int:
        """Schedule depth in cycles."""
        return max(self.cycle.values()) + 1 if self.cycle else 0


def _check_delay(delay: float, tcp: float, nid: int) -> None:
    if delay > tcp + 1e-9:
        raise SchedulingError(
            f"operation {nid} has delay {delay:.3f} ns > clock period "
            f"{tcp:.3f} ns; lower the delay or raise the period"
        )


def asap_schedule(graph: CDFG, delay_of: Callable[[int], float],
                  tcp: float) -> ChainingTimes:
    """Earliest (cycle, start) per node under additive chaining.

    ``delay_of`` maps node id to its operator delay in ns. A dependence
    ``u -> v`` (distance 0) forces v to start at or after u's finish time;
    if the remaining budget in u's last cycle cannot fit v, v slips to the
    next cycle boundary.
    """
    cycle: dict[int, int] = {}
    start: dict[int, float] = {}
    for nid in graph.topological_order():
        node = graph.node(nid)
        d = delay_of(nid)
        _check_delay(d, tcp, nid)
        ready = 0.0  # absolute time, ns
        for op in node.operands:
            if op.distance != 0:
                continue
            u = op.source
            finish = cycle[u] * tcp + start[u] + delay_of(u)
            ready = max(ready, finish)
        c = int(math.floor(ready / tcp + 1e-9))
        offset = ready - c * tcp
        if offset + d > tcp + 1e-9:
            c += 1
            offset = 0.0
        if d == 0.0 and offset <= 1e-9 and c > 0 and ready > 1e-9:
            # zero-delay node exactly on a cycle boundary stays in the
            # earlier cycle (L = budget), mirroring the MILP's convention
            c -= 1
            offset = tcp
        cycle[nid] = c
        start[nid] = offset
    return ChainingTimes(cycle, start)


def alap_schedule(graph: CDFG, delay_of: Callable[[int], float],
                  tcp: float, latency: int | None = None) -> ChainingTimes:
    """Latest (cycle, start) per node for a given latency bound.

    When ``latency`` is omitted, the ASAP latency is used (the minimum
    feasible), so slack = ALAP - ASAP is well defined.
    """
    if latency is None:
        latency = asap_schedule(graph, delay_of, tcp).latency
    horizon = latency * tcp
    cycle: dict[int, int] = {}
    start: dict[int, float] = {}
    for nid in reversed(graph.topological_order()):
        node = graph.node(nid)
        d = delay_of(nid)
        _check_delay(d, tcp, nid)
        due = horizon  # absolute deadline for this node's finish
        for use in graph.uses(nid):
            if use.distance != 0:
                continue
            v = use.consumer
            due = min(due, cycle[v] * tcp + start[v])
        finish = due
        c = int(math.ceil(finish / tcp - 1e-9)) - 1
        offset = finish - d - c * tcp
        if offset < -1e-9:
            c -= 1
            offset = tcp - d
        if c < 0:
            raise SchedulingError(
                f"latency bound {latency} too small for node {nid}"
            )
        cycle[nid] = c
        start[nid] = max(0.0, offset)
    return ChainingTimes(cycle, start)

"""Scheduling substrate: SDC, ASAP/ALAP, MII, MRT, heuristic modulo scheduling."""

from .asap import ChainingTimes, alap_schedule, asap_schedule
from .mii import minimum_ii, rec_mii, res_mii
from .modulo import HeuristicModuloScheduler
from .mrt import ModuloReservationTable
from .schedule import Schedule
from .sdc import SDCSystem

__all__ = [
    "ChainingTimes",
    "HeuristicModuloScheduler",
    "ModuloReservationTable",
    "SDCSystem",
    "Schedule",
    "alap_schedule",
    "asap_schedule",
    "minimum_ii",
    "rec_mii",
    "res_mii",
]

"""A structural parser for the Verilog subset ``verilog.py`` emits.

The equivalence engine refuses to trust the emitter: the RTL stage of
``repro equiv`` re-reads the *emitted text* and rebuilds a symbolic
machine from it (:mod:`repro.analysis.equiv.netlist`), so a bug in
expression printing, staging references or register initialization shows
up as a miter counterexample instead of silently shipping.

The grammar is exactly the emitter's output language — ports, ``wire``
declarations with one expression each, behavioral memory arrays,
register chains with initializers inside a single ``always`` block,
continuous ``assign``s and the ``valid_sr`` fill tracker. Anything else
raises :class:`RtlParseError`; the validator downgrades that to a
diagnostic (EQ006) rather than guessing at semantics.

Expression evaluation (with Verilog-2001 context sizing rules) lives
with the machine, not here: the parser produces a plain AST so the lint
pass can reuse it for width checking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import RTLError

__all__ = [
    "RtlParseError", "parse_module",
    "Expr", "Num", "Ref", "Part", "Index", "Concat", "Unary", "Binary",
    "Ternary", "Signed",
    "Port", "WireDef", "RegDef", "MemoryDef", "RegUpdate", "MemWrite",
    "ContAssign", "VerilogModule",
]


class RtlParseError(RTLError):
    """The text falls outside the emitter's subset (or is malformed)."""


# ----------------------------------------------------------------------
# Expression AST
# ----------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Num(Expr):
    value: int
    width: int | None  # None for bare (unsized) literals


@dataclass(frozen=True)
class Ref(Expr):
    name: str


@dataclass(frozen=True)
class Part(Expr):
    """``name[hi:lo]`` — part-select of an identifier."""

    name: str
    hi: int
    lo: int


@dataclass(frozen=True)
class Index(Expr):
    """``name[expr]`` — bit-select or memory word read."""

    name: str
    index: Expr


@dataclass(frozen=True)
class Concat(Expr):
    """``{a, b, ...}`` — parts listed most-significant first."""

    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "~" | "-"
    arg: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Signed(Expr):
    """``$signed(expr)``."""

    arg: Expr


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Port:
    direction: str  # "input" | "output"
    name: str
    width: int


@dataclass(frozen=True)
class WireDef:
    name: str
    width: int
    expr: Expr


@dataclass(frozen=True)
class RegDef:
    name: str
    width: int
    init: int


@dataclass(frozen=True)
class MemoryDef:
    name: str
    width: int
    size: int


@dataclass(frozen=True)
class RegUpdate:
    """``target <= expr;`` inside ``always @(posedge clk)``."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class MemWrite:
    """``mem[addr] <= data;`` inside ``always @(posedge clk)``."""

    mem: str
    addr: Expr
    data: Expr


@dataclass(frozen=True)
class ContAssign:
    target: str
    expr: Expr


@dataclass
class VerilogModule:
    name: str
    ports: list[Port] = field(default_factory=list)
    wires: list[WireDef] = field(default_factory=list)
    regs: list[RegDef] = field(default_factory=list)
    memories: list[MemoryDef] = field(default_factory=list)
    updates: list[RegUpdate] = field(default_factory=list)
    mem_writes: list[MemWrite] = field(default_factory=list)
    assigns: list[ContAssign] = field(default_factory=list)

    def port(self, name: str) -> Port | None:
        for p in self.ports:
            if p.name == name:
                return p
        return None


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<sized>(\d+)'(?:d\d+|b[01]+|h[0-9a-fA-F]+))
  | (?P<num>\d+)
  | (?P<ident>\$?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<|>>|==|!=|<=|>=|[()\[\]{},;:?+\-*/%&|^~<>=@.])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            snippet = text[pos:pos + 20]
            raise RtlParseError(f"unexpected character at {snippet!r}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        tokens.append((m.lastgroup, m.group()))
    return tokens


class _Tokens:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> tuple[str, str]:
        idx = self.pos + offset
        if idx >= len(self.tokens):
            return ("eof", "")
        return self.tokens[idx]

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, value: str) -> str:
        kind, got = self.next()
        if got != value:
            raise RtlParseError(f"expected {value!r}, got {got!r} "
                                f"(token {self.pos - 1})")
        return got

    def expect_kind(self, kind: str) -> str:
        got_kind, got = self.next()
        if got_kind != kind:
            raise RtlParseError(f"expected {kind}, got {got!r}")
        return got

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.pos += 1
            return True
        return False


# ----------------------------------------------------------------------
# Expression parsing (precedence climbing).
# ----------------------------------------------------------------------

# Binary operators by descending precedence tier (Verilog-2001 order for
# the operators the emitter uses).
_BINARY_TIERS: tuple[tuple[str, ...], ...] = (
    ("*", "/", "%"),
    ("+", "-"),
    ("<<", ">>"),
    ("<", ">=", "<=", ">"),
    ("==", "!="),
    ("&",),
    ("^",),
    ("|",),
)


def _parse_expr(ts: _Tokens) -> Expr:
    return _parse_ternary(ts)


def _parse_ternary(ts: _Tokens) -> Expr:
    cond = _parse_binary(ts, 0)
    if ts.accept("?"):
        if_true = _parse_ternary(ts)
        ts.expect(":")
        if_false = _parse_ternary(ts)
        return Ternary(cond, if_true, if_false)
    return cond


def _parse_binary(ts: _Tokens, tier: int) -> Expr:
    if tier >= len(_BINARY_TIERS):
        return _parse_unary(ts)
    # Tiers are ordered highest-precedence first, so parse tightest last.
    left = _parse_binary(ts, tier + 1)
    ops = _BINARY_TIERS[tier]
    while ts.peek()[1] in ops:
        op = ts.next()[1]
        right = _parse_binary(ts, tier + 1)
        left = Binary(op, left, right)
    return left


def _parse_unary(ts: _Tokens) -> Expr:
    kind, value = ts.peek()
    if value == "~":
        ts.next()
        return Unary("~", _parse_unary(ts))
    if value == "-":
        ts.next()
        return Unary("-", _parse_unary(ts))
    return _parse_primary(ts)


def _parse_primary(ts: _Tokens) -> Expr:
    kind, value = ts.next()
    if kind == "sized":
        width_s, _, rest = value.partition("'")
        base = {"d": 10, "b": 2, "h": 16}[rest[0]]
        return Num(int(rest[1:], base), int(width_s))
    if kind == "num":
        return Num(int(value), None)
    if value == "(":
        inner = _parse_expr(ts)
        ts.expect(")")
        return inner
    if value == "{":
        parts = [_parse_expr(ts)]
        while ts.accept(","):
            parts.append(_parse_expr(ts))
        ts.expect("}")
        return Concat(tuple(parts))
    if value == "$signed":
        ts.expect("(")
        inner = _parse_expr(ts)
        ts.expect(")")
        return Signed(inner)
    if kind == "ident":
        name = value
        if ts.peek()[1] == "[":
            ts.next()
            first = _parse_expr(ts)
            if ts.accept(":"):
                second = _parse_expr(ts)
                ts.expect("]")
                hi = _const_value(first, "part-select bound")
                lo = _const_value(second, "part-select bound")
                if lo > hi:
                    raise RtlParseError(
                        f"descending part-select {name}[{hi}:{lo}]")
                return Part(name, hi, lo)
            ts.expect("]")
            return Index(name, first)
        return Ref(name)
    raise RtlParseError(f"unexpected token {value!r} in expression")


def _const_value(expr: Expr, what: str) -> int:
    if isinstance(expr, Num):
        return expr.value
    raise RtlParseError(f"{what} must be a literal, got {expr!r}")


# ----------------------------------------------------------------------
# Module parsing
# ----------------------------------------------------------------------

def _parse_range(ts: _Tokens) -> int:
    """``[hi:lo]`` → declared width; the emitter always uses ``lo == 0``."""
    ts.expect("[")
    hi = _const_value(_parse_expr(ts), "range bound")
    ts.expect(":")
    lo = _const_value(_parse_expr(ts), "range bound")
    ts.expect("]")
    if lo != 0:
        raise RtlParseError(f"declaration range [{hi}:{lo}] must end at 0")
    return hi + 1


def _parse_port(ts: _Tokens) -> Port:
    kind, direction = ts.next()
    if direction not in ("input", "output"):
        raise RtlParseError(f"expected port direction, got {direction!r}")
    ts.expect("wire")
    width = 1
    if ts.peek()[1] == "[":
        width = _parse_range(ts)
    name = ts.expect_kind("ident")
    return Port(direction, name, width)


def _parse_always(ts: _Tokens, module: VerilogModule) -> None:
    ts.expect("@")
    ts.expect("(")
    ts.expect("posedge")
    ts.expect("clk")
    ts.expect(")")
    ts.expect("begin")
    while not ts.accept("end"):
        name = ts.expect_kind("ident")
        if ts.peek()[1] == "[":
            ts.next()
            addr = _parse_expr(ts)
            ts.expect("]")
            ts.expect("<=")
            data = _parse_expr(ts)
            ts.expect(";")
            module.mem_writes.append(MemWrite(name, addr, data))
            continue
        ts.expect("<=")
        expr = _parse_expr(ts)
        ts.expect(";")
        module.updates.append(RegUpdate(name, expr))


def parse_module(text: str) -> VerilogModule:
    """Parse one emitted module; raises :class:`RtlParseError` outside
    the subset."""
    ts = _Tokens(_tokenize(text))
    ts.expect("module")
    module = VerilogModule(name=ts.expect_kind("ident"))
    ts.expect("(")
    if ts.peek()[1] != ")":
        module.ports.append(_parse_port(ts))
        while ts.accept(","):
            module.ports.append(_parse_port(ts))
    ts.expect(")")
    ts.expect(";")

    while True:
        kind, value = ts.peek()
        if value == "endmodule":
            ts.next()
            break
        if kind == "eof":
            raise RtlParseError("missing endmodule")
        if value == "wire":
            ts.next()
            width = 1
            if ts.peek()[1] == "[":
                width = _parse_range(ts)
            name = ts.expect_kind("ident")
            ts.expect("=")
            expr = _parse_expr(ts)
            ts.expect(";")
            module.wires.append(WireDef(name, width, expr))
        elif value == "reg":
            ts.next()
            width = 1
            if ts.peek()[1] == "[":
                width = _parse_range(ts)
            name = ts.expect_kind("ident")
            if ts.peek()[1] == "[":
                # Memory: reg [W-1:0] name [0:SIZE-1];
                ts.expect("[")
                lo = _const_value(_parse_expr(ts), "memory bound")
                ts.expect(":")
                hi = _const_value(_parse_expr(ts), "memory bound")
                ts.expect("]")
                ts.expect(";")
                if lo != 0:
                    raise RtlParseError("memory range must start at 0")
                module.memories.append(MemoryDef(name, width, hi + 1))
            else:
                ts.expect("=")
                init = _parse_expr(ts)
                ts.expect(";")
                module.regs.append(
                    RegDef(name, width, _const_value(init, "reg initializer")))
        elif value == "always":
            ts.next()
            _parse_always(ts, module)
        elif value == "assign":
            ts.next()
            target = ts.expect_kind("ident")
            ts.expect("=")
            expr = _parse_expr(ts)
            ts.expect(";")
            module.assigns.append(ContAssign(target, expr))
        else:
            raise RtlParseError(f"unsupported construct at {value!r}")
    return module

"""Verilog emission, testbench generation and structural linting."""

from .lint import lint_verilog
from .testbench import emit_testbench
from .verilog import VerilogEmitter, emit_verilog

__all__ = ["VerilogEmitter", "emit_testbench", "emit_verilog", "lint_verilog"]

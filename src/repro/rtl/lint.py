"""A lightweight structural linter for emitted Verilog.

No Verilog simulator is available offline, so this linter provides the
self-checks the test suite runs on every emitted module: balanced
constructs, sane ranges, no dangling identifiers (every identifier used
in an expression is declared somewhere in the module — Verilog allows
declaration after use, so this is a two-pass check), no undriven wires,
and no width-mismatched continuous assigns. It is intentionally
conservative and only parses the constructs the emitter produces.

The width check rides on the structural parser (:mod:`repro.rtl.parse`):
when the text is inside the parser's subset (every emitted DUT module
is), each ``wire ... = expr`` / ``assign target = expr`` is checked for
*definite* width bugs — a sized literal whose value overflows its width
or whose width disagrees with the LHS it directly drives, a part/bit
select reaching past its vector's declared range (or a memory's size),
and a concatenation whose exact width disagrees with the LHS. General
self-width inequality is deliberately **not** an error: the emitter
leans on Verilog's implicit truncation/extension for bits the dataflow
analysis proved dead, and the symbolic equivalence engine
(:mod:`repro.analysis.equiv`) proves those assigns semantics-preserving
— the linter only rejects mismatches no correct emitter can produce.
Text outside the subset (testbenches, with their initial blocks and
``$display`` tasks) skips the width pass but keeps every textual check,
where a wire counts as driven when it is inline-assigned, the target of
an ``assign``, or connected to a module instance port.
"""

from __future__ import annotations

import re

from .parse import (
    Binary,
    Concat,
    Index,
    Num,
    Part,
    Ref,
    RtlParseError,
    Signed,
    Ternary,
    Unary,
    parse_module,
)

__all__ = ["lint_verilog"]

_DECL_RE = re.compile(
    r"\b(?:input\s+wire|output\s+wire|wire|reg|integer)\s*"
    r"(?:\[\s*(-?\d+)\s*:\s*(-?\d+)\s*\])?\s*"
    r"([A-Za-z_][A-Za-z_0-9]*)"
)
_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
# The optional ``$`` must be part of the match: otherwise a system task
# like ``$display`` is scanned as the undeclared identifier ``display``.
_IDENT_RE = re.compile(r"\$?[A-Za-z_][A-Za-z_0-9]*")
_NUM_SUFFIX_RE = re.compile(r"^(?:b[01]+|d\d+|h[0-9a-fA-F]+)$")
_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "posedge", "negedge", "begin", "end", "if", "else", "signed",
}

# A wire declaration with no inline initializer: ``wire [7:0] name;``.
_BARE_WIRE_RE = re.compile(
    r"^\s*wire\s*(?:\[[^]]*\]\s*)?([A-Za-z_][A-Za-z_0-9]*)\s*;",
    re.MULTILINE,
)
# Drivers for such a wire: an ``assign`` targeting it, or a module
# instance port connection ``.port(name)``.
_ASSIGN_TARGET_RE = re.compile(
    r"\bassign\s+([A-Za-z_][A-Za-z_0-9]*)\s*[=\[]")
_PORT_CONN_RE = re.compile(
    r"\.\s*[A-Za-z_][A-Za-z_0-9]*\s*\(\s*([A-Za-z_][A-Za-z_0-9]*)\s*\)")

def _concat_width(expr, env: dict[str, int],
                  memories: set[str]) -> int | None:
    """Exact width of a concat part (None = not statically known)."""
    if isinstance(expr, Num):
        return expr.width
    if isinstance(expr, Ref):
        return env.get(expr.name)
    if isinstance(expr, Part):
        return expr.hi - expr.lo + 1
    if isinstance(expr, Index):
        return env.get(expr.name) if expr.name in memories else 1
    if isinstance(expr, Concat):
        widths = [_concat_width(p, env, memories) for p in expr.parts]
        return None if any(w is None for w in widths) else sum(widths)
    return None


def _expr_problems(expr, env: dict[str, int], memories: set[str],
                   sizes: dict[str, int], what: str) -> list[str]:
    """Definite width bugs anywhere inside ``expr``."""
    problems = []
    if isinstance(expr, Num):
        if expr.width is not None and expr.value >= (1 << expr.width):
            problems.append(
                f"{what}: literal {expr.width}'d{expr.value} overflows "
                f"its declared width")
    elif isinstance(expr, Part):
        declared = env.get(expr.name)
        if expr.lo < 0 or expr.hi < expr.lo:
            problems.append(
                f"{what}: degenerate part select "
                f"{expr.name}[{expr.hi}:{expr.lo}]")
        elif declared is not None and expr.name not in memories \
                and expr.hi >= declared:
            problems.append(
                f"{what}: part select {expr.name}[{expr.hi}:{expr.lo}] "
                f"reaches past the {declared}-bit declaration")
    elif isinstance(expr, Index):
        if isinstance(expr.index, Num):
            idx = expr.index.value
            if expr.name in memories:
                if idx >= sizes.get(expr.name, idx + 1):
                    problems.append(
                        f"{what}: memory index {expr.name}[{idx}] reaches "
                        f"past the array size {sizes.get(expr.name)}")
            else:
                declared = env.get(expr.name)
                if declared is not None and idx >= declared:
                    problems.append(
                        f"{what}: bit select {expr.name}[{idx}] reaches "
                        f"past the {declared}-bit declaration")
        problems.extend(_expr_problems(expr.index, env, memories, sizes,
                                       what))
    if isinstance(expr, Concat):
        for part in expr.parts:
            problems.extend(_expr_problems(part, env, memories, sizes, what))
    elif isinstance(expr, (Unary, Signed)):
        problems.extend(_expr_problems(expr.arg, env, memories, sizes, what))
    elif isinstance(expr, Ternary):
        for sub in (expr.cond, expr.if_true, expr.if_false):
            problems.extend(_expr_problems(sub, env, memories, sizes, what))
    elif isinstance(expr, Binary):
        problems.extend(_expr_problems(expr.left, env, memories, sizes,
                                       what))
        problems.extend(_expr_problems(expr.right, env, memories, sizes,
                                       what))
    return problems


def _width_problems(text: str) -> list[str]:
    """Width-check every continuous assign, when ``text`` parses."""
    try:
        module = parse_module(text)
    except RtlParseError:
        return []  # outside the structural subset (e.g. a testbench)
    env: dict[str, int] = {p.name: p.width for p in module.ports}
    env.update({w.name: w.width for w in module.wires})
    env.update({r.name: r.width for r in module.regs})
    env.update({m.name: m.width for m in module.memories})
    memories = {m.name for m in module.memories}
    sizes = {m.name: m.size for m in module.memories}

    problems = []
    targets = [(w.name, w.expr, f"wire {w.name}") for w in module.wires]
    targets += [(a.target, a.expr, f"assign {a.target}")
                for a in module.assigns]
    targets += [(u.target, u.expr, f"register {u.target}")
                for u in module.updates]
    for name, expr, what in targets:
        problems.extend(_expr_problems(expr, env, memories, sizes, what))
        lhs = env.get(name)
        if lhs is None:
            continue
        # Exact-width RHS shapes must fit the LHS: a literal sized wider
        # than its target or a concatenation of the wrong exact width has
        # no implicit-sizing story to hide behind. (A *narrower* sized
        # literal zero-extends benignly — the emitter drives wide output
        # ports with narrowed constants.)
        if isinstance(expr, Num) and expr.width is not None \
                and expr.width > lhs:
            problems.append(
                f"width mismatch in {what}: LHS is {lhs} bits but the "
                f"literal is sized {expr.width} bits")
        elif isinstance(expr, Concat):
            rhs = _concat_width(expr, env, memories)
            if rhs is not None and rhs != lhs:
                problems.append(
                    f"width mismatch in {what}: LHS is {lhs} bits but "
                    f"the concatenation is exactly {rhs} bits")
    return problems


def lint_verilog(text: str) -> list[str]:
    """Return a list of problems (empty = clean)."""
    problems: list[str] = []
    if "module" not in text or "endmodule" not in text:
        problems.append("missing module/endmodule")
    if text.count("(") != text.count(")"):
        problems.append("unbalanced parentheses")
    if text.count("[") != text.count("]"):
        problems.append("unbalanced brackets")
    if text.count("{") != text.count("}"):
        problems.append("unbalanced braces")
    begins = len(re.findall(r"\bbegin\b", text))
    ends = len(re.findall(r"\bend\b", text))
    if begins != ends:
        problems.append(f"unbalanced begin/end ({begins} vs {ends})")

    # Pass 1: collect declarations (ports, wires, regs, memory arrays).
    declared: set[str] = set()
    for m in _DECL_RE.finditer(text):
        hi, lo, name = m.groups()
        if hi is not None and (int(hi) < int(lo) or int(hi) < 0):
            problems.append(f"degenerate range [{hi}:{lo}] for {name}")
        declared.add(name)

    # Pass 2: every identifier on an assignment RHS must be declared.
    # String literals are erased first — a $display format such as
    # "x = %0d, expected %0d" is prose, not a reference.
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = _STRING_RE.sub('""', line).strip()
        if "=" not in stripped:
            continue
        if stripped.startswith("//") or stripped.startswith("module"):
            continue
        rhs = stripped.split("=", 1)[1]
        for ident in _IDENT_RE.findall(rhs):
            if ident in _KEYWORDS or _NUM_SUFFIX_RE.match(ident):
                continue
            if ident.startswith("$"):
                continue
            if ident not in declared:
                problems.append(
                    f"line {line_no}: identifier {ident!r} is never declared"
                )

    # Pass 3: every bare wire must be driven somewhere — by an assign or
    # by a module instance port connection. An undriven wire is high-Z in
    # simulation and a silent constant after synthesis.
    driven = set(_ASSIGN_TARGET_RE.findall(text))
    driven.update(_PORT_CONN_RE.findall(text))
    for m in _BARE_WIRE_RE.finditer(text):
        name = m.group(1)
        if name not in driven:
            problems.append(f"wire {name!r} is never driven")

    problems.extend(_width_problems(text))
    return problems

"""A lightweight structural linter for emitted Verilog.

No Verilog simulator is available offline, so this linter provides the
self-checks the test suite runs on every emitted module: balanced
constructs, sane ranges, and no dangling identifiers (every identifier used
in an expression is declared somewhere in the module — Verilog allows
declaration after use, so this is a two-pass check). It is intentionally
conservative and only parses the constructs the emitter produces.
"""

from __future__ import annotations

import re

__all__ = ["lint_verilog"]

_DECL_RE = re.compile(
    r"\b(?:input\s+wire|output\s+wire|wire|reg|integer)\s*"
    r"(?:\[\s*(-?\d+)\s*:\s*(-?\d+)\s*\])?\s*"
    r"([A-Za-z_][A-Za-z_0-9]*)"
)
_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
# The optional ``$`` must be part of the match: otherwise a system task
# like ``$display`` is scanned as the undeclared identifier ``display``.
_IDENT_RE = re.compile(r"\$?[A-Za-z_][A-Za-z_0-9]*")
_NUM_SUFFIX_RE = re.compile(r"^(?:b[01]+|d\d+|h[0-9a-fA-F]+)$")
_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "posedge", "negedge", "begin", "end", "if", "else", "signed",
}


def lint_verilog(text: str) -> list[str]:
    """Return a list of problems (empty = clean)."""
    problems: list[str] = []
    if "module" not in text or "endmodule" not in text:
        problems.append("missing module/endmodule")
    if text.count("(") != text.count(")"):
        problems.append("unbalanced parentheses")
    if text.count("[") != text.count("]"):
        problems.append("unbalanced brackets")
    if text.count("{") != text.count("}"):
        problems.append("unbalanced braces")
    begins = len(re.findall(r"\bbegin\b", text))
    ends = len(re.findall(r"\bend\b", text))
    if begins != ends:
        problems.append(f"unbalanced begin/end ({begins} vs {ends})")

    # Pass 1: collect declarations (ports, wires, regs, memory arrays).
    declared: set[str] = set()
    for m in _DECL_RE.finditer(text):
        hi, lo, name = m.groups()
        if hi is not None and (int(hi) < int(lo) or int(hi) < 0):
            problems.append(f"degenerate range [{hi}:{lo}] for {name}")
        declared.add(name)

    # Pass 2: every identifier on an assignment RHS must be declared.
    # String literals are erased first — a $display format such as
    # "x = %0d, expected %0d" is prose, not a reference.
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = _STRING_RE.sub('""', line).strip()
        if "=" not in stripped:
            continue
        if stripped.startswith("//") or stripped.startswith("module"):
            continue
        rhs = stripped.split("=", 1)[1]
        for ident in _IDENT_RE.findall(rhs):
            if ident in _KEYWORDS or _NUM_SUFFIX_RE.match(ident):
                continue
            if ident.startswith("$"):
                continue
            if ident not in declared:
                problems.append(
                    f"line {line_no}: identifier {ident!r} is never declared"
                )
    return problems

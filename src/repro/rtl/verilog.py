"""Verilog emission for a scheduled, covered II=1 pipeline.

Emits one synthesizable-style module per schedule:

* each LUT root becomes a combinational ``assign`` whose expression is the
  word-level dataflow of its cone (synthesis tools re-derive the truth
  tables; the *structure* — what is chained in which stage — is what the
  schedule decided and what the emitted registers pin down);
* a value consumed ``n`` cycles after it is produced rides an ``n``-deep
  register chain — exactly the FFs the cost model counts;
* black-box memory operations become behavioral array reads/writes;
* a ``valid`` shift register tracks pipeline fill.

Only II=1 schedules are supported (every experiment in the paper is fully
pipelined to II=1); other IIs raise :class:`RTLError`.
"""

from __future__ import annotations

from ..errors import RTLError
from ..ir.graph import CDFG
from ..ir.node import Node
from ..ir.types import OpKind
from ..scheduling.schedule import Schedule

__all__ = ["VerilogEmitter", "emit_verilog"]


def _ident(node: Node) -> str:
    base = node.name if node.name else f"{node.kind.value}_{node.nid}"
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in base)
    if not safe or safe[0].isdigit():
        safe = "n_" + safe
    return f"{safe}_{node.nid}" if node.name else safe


class VerilogEmitter:
    """Builds the Verilog text for one schedule."""

    def __init__(self, schedule: Schedule, module_name: str | None = None) -> None:
        if schedule.ii != 1:
            raise RTLError(
                f"Verilog emission supports II=1 pipelines, got II={schedule.ii}"
            )
        if not schedule.cover:
            raise RTLError("Verilog emission needs a covered schedule")
        self.schedule = schedule
        self.graph: CDFG = schedule.graph
        self.module_name = module_name or schedule.graph.name.replace("-", "_")
        self._stage_depth: dict[int, int] = {}
        self._warm_depth = 0

    # ------------------------------------------------------------------
    # Expression construction
    # ------------------------------------------------------------------
    def _expr(self, nid: int, frame_root: int, depth: int = 0) -> str:
        """Verilog expression for ``nid`` inside ``frame_root``'s cone.

        Cut-boundary nodes reference their (possibly staged) wire; interior
        nodes expand recursively.
        """
        if depth > 256:
            raise RTLError(f"expression for node {nid} is unreasonably deep")
        graph = self.graph
        node = graph.node(nid)
        cut = self.schedule.cover[frame_root]
        if node.kind is OpKind.CONST:
            return f"{node.width}'d{node.value}"
        if nid != frame_root and nid in cut.boundary:
            raise RTLError("boundary nodes are referenced via _staged_ref")

        def operand(slot: int) -> str:
            op = node.operands[slot]
            src = graph.node(op.source)
            if src.kind is OpKind.CONST:
                return f"{src.width}'d{src.value}"
            if op.source in cut.boundary or op.source in (
                u for u, _ in cut.entries
            ):
                return self._staged_ref(op.source, frame_root, op.distance)
            if op.source in cut.interior or op.source == frame_root:
                inner = self._expr(op.source, frame_root, depth + 1)
                if self._fits_width(src):
                    return "(" + inner + ")"
                # Verilog evaluates an inlined expression at the *context*
                # width, keeping carries, borrow wraps and inverted high
                # bits that the IR masks off at every node boundary. A
                # root gets that mask for free from its wire declaration;
                # an interior needs it spelled out (the sized mask literal
                # also pins the context to at least the node's width).
                m = (1 << src.width) - 1
                return f"(({inner}) & {src.width}'d{m})"
            # Neither boundary nor in-cone: the cut's support masks proved
            # the cone output independent of this operand (e.g. a shift-out
            # that became constant after narrowing). No wire exists; any
            # constant preserves the function, so feed zero.
            return f"{src.width}'d0"

        k = node.kind
        if k is OpKind.AND:
            return f"{operand(0)} & {operand(1)}"
        if k is OpKind.OR:
            return f"{operand(0)} | {operand(1)}"
        if k is OpKind.XOR:
            return f"{operand(0)} ^ {operand(1)}"
        if k is OpKind.NOT:
            return f"~{operand(0)}"
        if k is OpKind.MUX:
            return f"{operand(0)} ? {operand(1)} : {operand(2)}"
        if k is OpKind.SHL:
            return f"{operand(0)} << {node.amount}"
        if k is OpKind.SHR:
            return f"{operand(0)} >> {node.amount}"
        if k is OpKind.ZEXT:
            return f"{node.width}'d0 | {operand(0)}"
        if k is OpKind.TRUNC:
            mask_lit = (1 << node.width) - 1
            return f"({operand(0)}) & {node.width}'d{mask_lit}"
        if k is OpKind.SLICE:
            src = graph.node(node.operands[0].source)
            hi = node.amount + node.width - 1
            if src.kind is OpKind.CONST:
                sliced = (src.value >> node.amount) & ((1 << node.width) - 1)
                return f"{node.width}'d{sliced}"
            inner = operand(0)
            if inner.startswith("("):
                # Expressions cannot be bit-sliced in Verilog: shift + mask.
                mask_lit = (1 << node.width) - 1
                return f"(({inner}) >> {node.amount}) & {node.width}'d{mask_lit}"
            return f"{inner}[{hi}:{node.amount}]"
        if k is OpKind.CONCAT:
            lo_w = graph.node(node.operands[0].source).width
            lo, hi = operand(0), operand(1)
            if lo.startswith("(") or hi.startswith("("):
                # A concat part's placement is its *self-determined*
                # width, and an inlined expression's self-width need not
                # match its node's width; shift-or keeps the layout
                # explicit instead (callers mask it, so the context is
                # wide enough to hold the shifted high part).
                return f"({hi} << {lo_w}) | {lo}"
            return f"{{{hi}, {lo}}}"
        if k is OpKind.ADD:
            return f"{operand(0)} + {operand(1)}"
        if k is OpKind.SUB:
            return f"{operand(0)} - {operand(1)}"
        if k is OpKind.NEG:
            return f"-{operand(0)}"
        if k is OpKind.EQ:
            return f"{operand(0)} == {operand(1)}"
        if k is OpKind.NE:
            return f"{operand(0)} != {operand(1)}"
        if k is OpKind.LT:
            return f"{operand(0)} < {operand(1)}"
        if k is OpKind.GE:
            return f"{operand(0)} >= {operand(1)}"
        if k in (OpKind.SLT, OpKind.SGE):
            # ``$signed`` takes its sign bit from the operand's
            # *self-determined* width, which for an inlined expression
            # need not match the node width the IR signs at. The offset-
            # binary form depends only on operand *values*: mapping
            # ``x -> sext(x) + 2^(W-1)`` (over ``W = max(w0, w1)`` bits)
            # preserves signed order under an unsigned compare, and the
            # W-sized bias literal pins the comparison context to W.
            w0 = graph.node(node.operands[0].source).width
            w1 = graph.node(node.operands[1].source).width
            wide = max(w0, w1)

            def biased(e: str, w: int) -> str:
                sign = 1 << (w - 1)
                bias = (1 << (wide - 1)) - sign
                return f"(({e} ^ {w}'d{sign}) + {wide}'d{bias})"

            rel = "<" if k is OpKind.SLT else ">="
            return (f"{biased(operand(0), w0)} {rel} "
                    f"{biased(operand(1), w1)}")
        if k is OpKind.VSHL:
            return f"{operand(0)} << {operand(1)}"
        if k is OpKind.VSHR:
            return f"{operand(0)} >> {operand(1)}"
        if k is OpKind.MUL:
            return f"{operand(0)} * {operand(1)}"
        if k is OpKind.DIV:
            return f"{operand(0)} / {operand(1)}"
        if k is OpKind.MOD:
            return f"{operand(0)} % {operand(1)}"
        if k is OpKind.OUTPUT:
            return operand(0)
        raise RTLError(f"cannot emit expression for {k.value}")

    _EXACT_KINDS = frozenset((
        OpKind.TRUNC,   # emits its own mask
        OpKind.SLICE,   # exact bit range (or shift+mask fallback)
        OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE,
        OpKind.SLT, OpKind.SGE,  # comparisons are one bit in Verilog
    ))

    def _fits_width(self, node: Node) -> bool:
        """Whether ``node``'s emitted expression can never exceed
        ``mask(node.width)``, in *any* (wider) evaluation context.

        Nodes that fit need no guard when inlined: their Verilog value
        equals the IR value bit for bit. Everything else — arithmetic
        carries and borrow wraps, shifted-out bits, ``~`` inverting
        context-extension bits, bitwise/mux operands wider than the
        node — must be masked back down at the point of inlining.
        CONCAT is conservatively guarded: its shift-or form relies on
        the caller's mask literal to size the context.
        """
        if node.kind in self._EXACT_KINDS:
            return True
        widths = [self.graph.node(op.source).width for op in node.operands]
        if node.kind is OpKind.AND:
            return bool(widths) and min(widths) <= node.width
        if node.kind in (OpKind.OR, OpKind.XOR, OpKind.ZEXT):
            return bool(widths) and max(widths) <= node.width
        if node.kind is OpKind.MUX:
            return max(widths[1:]) <= node.width
        return False

    def _staged_ref(self, source: int, consumer_root: int,
                    distance: int) -> str:
        """Reference to a boundary value, staged by the cycle gap."""
        sched = self.schedule
        src = self.graph.node(source)
        gap = (sched.cycle[consumer_root] + distance
               - sched.cycle.get(source, 0))
        if gap < 0:
            raise RTLError(
                f"negative stage gap {gap} from {source} to {consumer_root}"
            )
        name = _ident(src)
        self._stage_depth[source] = max(self._stage_depth.get(source, 0), gap)
        ref = name if gap == 0 else f"{name}_r{gap}"
        if distance > 0:
            # Cold-start gate for carried dependences. The consumer
            # computes iteration i = clock - S_consumer and wants source
            # iteration i - d, which only exists once i >= d — before
            # that, the chain (or, for gap 0, the same-cycle wire) holds
            # values derived from other initials, not the declared seed,
            # which would permanently contaminate recurrences. warm_sr
            # shifts in ones, so warm_sr[k] is high iff clock >= k + 1;
            # gate on k = d + S_consumer - 1 to substitute the declared
            # initial during exactly the cold iterations i < d.
            k = distance + sched.cycle[consumer_root] - 1
            self._warm_depth = max(self._warm_depth, k + 1)
            init = int(src.attrs.get("initial", 0)) & ((1 << src.width) - 1)
            return f"(warm_sr[{k}] ? {ref} : {src.width}'d{init})"
        return ref

    def _operand_ref(self, node: Node, slot: int) -> str:
        """Staged reference for one operand, with constants as literals.

        CONST nodes are never declared as wires, so referencing one by name
        (as ``_staged_ref`` would) produces a dangling identifier; they are
        also the same in every cycle, so they never need staging.
        """
        op = node.operands[slot]
        src = self.graph.node(op.source)
        if src.kind is OpKind.CONST:
            return f"{src.width}'d{src.value}"
        return self._staged_ref(op.source, node.nid, op.distance)

    # ------------------------------------------------------------------
    def emit(self) -> str:
        """Return the module text."""
        graph = self.graph
        sched = self.schedule
        lines: list[str] = []
        inputs = graph.inputs
        outputs = graph.outputs

        ports = ["input wire clk", "input wire in_valid"]
        for node in inputs:
            ports.append(f"input wire [{node.width - 1}:0] {_ident(node)}")
        for node in outputs:
            ports.append(f"output wire [{node.width - 1}:0] {_ident(node)}")
        ports.append("output wire out_valid")
        lines.append(f"module {self.module_name} (")
        lines.append("    " + ",\n    ".join(ports))
        lines.append(");")
        lines.append("")
        lines.append(f"// generated by repro (method={sched.method}, "
                     f"II={sched.ii}, latency={sched.latency})")
        lines.append("")

        # Combinational cones (topological order keeps definitions first).
        body: list[str] = []
        order = graph.topological_order()
        memories: list[Node] = []
        for nid in order:
            node = graph.node(nid)
            if nid not in sched.cover:
                continue
            if node.kind in (OpKind.INPUT, OpKind.OUTPUT):
                continue
            if node.kind is OpKind.CONST:
                continue
            name = _ident(node)
            if node.kind in (OpKind.LOAD, OpKind.STORE):
                memories.append(node)
                continue
            expr = self._expr(nid, nid)
            body.append(f"wire [{node.width - 1}:0] {name} = {expr};")

        # Black-box memories: one behavioral array per LOAD/STORE.
        mem_lines: list[str] = []
        for node in memories:
            name = _ident(node)
            mem = f"{name}_mem"
            addr = self._operand_ref(node, 0)
            mem_lines.append(
                f"reg [{node.width - 1}:0] {mem} [0:1023]; "
                f"// black-box {node.kind.value}"
            )
            if node.kind is OpKind.LOAD:
                mem_lines.append(
                    f"wire [{node.width - 1}:0] {name} = {mem}[{addr}];"
                )
            else:
                data = self._operand_ref(node, 1)
                mem_lines.append(
                    f"wire [{node.width - 1}:0] {name} = {data};"
                )
                mem_lines.append("always @(posedge clk) begin")
                mem_lines.append(f"    {mem}[{addr}] <= {data};")
                mem_lines.append("end")

        # Output assigns (may add staging requirements).
        out_lines: list[str] = []
        for node in outputs:
            op = node.operands[0]
            src = graph.node(op.source)
            if src.kind is OpKind.CONST:
                ref = f"{src.width}'d{src.value}"
            else:
                ref = self._staged_ref(op.source, node.nid, op.distance)
            out_lines.append(f"assign {_ident(node)} = {ref};")

        # Register chains discovered during expression construction.
        reg_lines: list[str] = []
        always_lines: list[str] = []
        for source in sorted(self._stage_depth):
            depth = self._stage_depth[source]
            if depth == 0:
                continue
            src = graph.node(source)
            name = _ident(src)
            init = int(src.attrs.get("initial", 0)) & ((1 << src.width) - 1)
            for d in range(1, depth + 1):
                reg_lines.append(
                    f"reg [{src.width - 1}:0] {name}_r{d} = {src.width}'d{init};"
                )
                prev = name if d == 1 else f"{name}_r{d - 1}"
                always_lines.append(f"    {name}_r{d} <= {prev};")

        if self._warm_depth:
            d = self._warm_depth
            reg_lines.append(f"reg [{d - 1}:0] warm_sr = 0;")
            if d == 1:
                always_lines.append("    warm_sr <= 1'b1;")
            else:
                always_lines.append(
                    f"    warm_sr <= {{warm_sr[{d - 2}:0], 1'b1}};")

        latency = sched.latency
        reg_lines.append(f"reg [{max(latency, 1)}:0] valid_sr = 0;")
        always_lines.append(
            f"    valid_sr <= {{valid_sr[{max(latency, 1) - 1}:0], in_valid}};"
        )

        lines.extend(body)
        lines.append("")
        lines.extend(mem_lines)
        lines.append("")
        lines.extend(reg_lines)
        lines.append("")
        lines.append("always @(posedge clk) begin")
        lines.extend(always_lines)
        lines.append("end")
        lines.append("")
        lines.extend(out_lines)
        lines.append(f"assign out_valid = valid_sr[{max(latency - 1, 0)}];")
        lines.append("")
        lines.append("endmodule")
        return "\n".join(lines)


def emit_verilog(schedule: Schedule, module_name: str | None = None) -> str:
    """Emit Verilog for a covered II=1 schedule."""
    return VerilogEmitter(schedule, module_name).emit()

"""Self-checking Verilog testbench generation.

Pairs the emitted module with a stimulus/expectation trace produced by the
cycle-accurate :class:`~repro.sim.PipelineSimulator`, so the RTL can be
validated in any external simulator (Icarus, Verilator, XSim). The
testbench drives one iteration per clock (II=1), waits out the pipeline
fill via ``out_valid``, compares every output word, and finishes with a
PASS/FAIL banner and a non-zero ``$fatal`` on mismatch.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import RTLError
from ..scheduling.schedule import Schedule
from ..sim.functional import SimEnvironment
from ..sim.pipeline import PipelineSimulator
from ..tech.device import Device
from .verilog import VerilogEmitter, _ident

__all__ = ["emit_testbench"]


def emit_testbench(schedule: Schedule, device: Device,
                   input_stream: Sequence[Mapping[str, int]],
                   env: SimEnvironment | None = None,
                   module_name: str | None = None) -> str:
    """Build testbench text for ``schedule``'s module.

    The expected outputs come from replaying the schedule itself, which the
    library has already cross-checked against the functional model — so a
    mismatch in an external simulator isolates an *emission* bug.
    """
    if schedule.ii != 1:
        raise RTLError("testbench generation supports II=1 pipelines")
    graph = schedule.graph
    emitter = VerilogEmitter(schedule, module_name)
    dut = emitter.module_name
    expected = PipelineSimulator(schedule, device,
                                 env or SimEnvironment()).run(list(input_stream))
    n = len(expected)
    latency = max(schedule.latency, 1)

    inputs = graph.inputs
    outputs = graph.outputs
    lines = [
        "`timescale 1ns/1ps",
        f"module {dut}_tb;",
        "reg clk = 0;",
        "reg in_valid = 0;",
        "always #5 clk = ~clk;",
        "",
        f"integer errors = 0;",
        f"integer sent = 0;",
        f"integer checked = 0;",
    ]
    for node in inputs:
        name = _ident(node)
        lines.append(f"reg [{node.width - 1}:0] {name} = 0;")
        lines.append(
            f"reg [{node.width - 1}:0] {name}_stim [0:{max(n - 1, 0)}];"
        )
    for node in outputs:
        name = _ident(node)
        lines.append(f"wire [{node.width - 1}:0] {name};")
        lines.append(
            f"reg [{node.width - 1}:0] {name}_gold [0:{max(n - 1, 0)}];"
        )
    lines.append("wire out_valid;")
    lines.append("")

    ports = ["    .clk(clk)", "    .in_valid(in_valid)"]
    for node in inputs + outputs:
        name = _ident(node)
        ports.append(f"    .{name}({name})")
    ports.append("    .out_valid(out_valid)")
    lines.append(f"{dut} dut (")
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")

    lines.append("initial begin")
    for k, row in enumerate(input_stream):
        for node in inputs:
            value = int(row[node.name]) & ((1 << node.width) - 1)
            lines.append(
                f"    {_ident(node)}_stim[{k}] = {node.width}'d{value};"
            )
    for k, row in enumerate(expected):
        for node in outputs:
            key = node.name or f"out{node.nid}"
            value = int(row[key]) & ((1 << node.width) - 1)
            lines.append(
                f"    {_ident(node)}_gold[{k}] = {node.width}'d{value};"
            )
    lines.append("end")
    lines.append("")

    drive = [f"        {_ident(node)} <= {_ident(node)}_stim[sent];"
             for node in inputs]
    checks = []
    for node in outputs:
        name = _ident(node)
        checks.append(
            f"        if ({name} !== {name}_gold[checked]) begin\n"
            f"            errors = errors + 1;\n"
            f"            $display(\"FAIL iter %0d: {name} = %0d, expected "
            f"%0d\", checked, {name}, {name}_gold[checked]);\n"
            f"        end"
        )
    lines.extend([
        "always @(posedge clk) begin",
        f"    if (sent < {n}) begin",
        "        in_valid <= 1;",
        *drive,
        "        sent <= sent + 1;",
        "    end else begin",
        "        in_valid <= 0;",
        "    end",
        f"    if (out_valid && checked < {n}) begin",
        *checks,
        "        checked <= checked + 1;",
        "    end",
        f"    if (checked == {n}) begin",
        "        if (errors == 0) $display(\"PASS: %0d iterations\", checked);",
        "        else $fatal(1, \"FAIL: %0d mismatches\", errors);",
        "        $finish;",
        "    end",
        "end",
        "",
        "initial begin",
        f"    #{(n + latency + 16) * 10} "
        "$fatal(1, \"TIMEOUT: out_valid never drained\");",
        "end",
        "",
        "endmodule",
    ])
    return "\n".join(lines)

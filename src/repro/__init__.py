"""repro — mapping-aware modulo scheduling for FPGA-targeted HLS.

Reproduction of Zhao, Tan, Dai, Zhang, "Area-Efficient Pipelining for
FPGA-Targeted High-Level Synthesis" (DAC 2015).

The top-level package re-exports the most commonly used entry points; see
the subpackages for the full API:

* :mod:`repro.ir` — word-level CDFG IR, builder DSL, kernel-language frontend
* :mod:`repro.bitdeps` — bit-level dependence tracking (Sec. 3.1 DEP functions)
* :mod:`repro.cuts` — word-level cut enumeration (Algorithm 1)
* :mod:`repro.tech` — device, delay and area characterization
* :mod:`repro.milp` — MILP modeling layer and solver backends
* :mod:`repro.scheduling` — SDC / modulo scheduling substrate
* :mod:`repro.core` — the paper's MILP formulation (MILP-map / MILP-base)
* :mod:`repro.mapping` — post-scheduling per-stage technology mapper
* :mod:`repro.hls` — the commercial-HLS-tool proxy baseline flow
* :mod:`repro.hw` — hardware cost model (LUT/FF/CP reporting)
* :mod:`repro.rtl` — Verilog emission
* :mod:`repro.sim` — functional and cycle-accurate simulation
* :mod:`repro.designs` — the nine paper benchmarks + synthetic generators
* :mod:`repro.experiments` — Table 1 / Table 2 / Figure 1 / Figure 2 harnesses
* :mod:`repro.analysis` — static-analysis engine (``python -m repro lint``)
"""

__version__ = "1.0.0"

from .ir import CDFG, DFGBuilder, OpKind, compile_kernel  # noqa: F401


def lint(artifact, device=None, **linter_kwargs):
    """Lint a CDFG or a Schedule with the static-analysis engine.

    Convenience dispatcher over :func:`repro.analysis.lint_graph` /
    :func:`repro.analysis.lint_schedule`; returns a
    :class:`~repro.analysis.DiagnosticReport`.
    """
    from .analysis import lint_graph, lint_schedule
    from .scheduling.schedule import Schedule

    if isinstance(artifact, Schedule):
        if device is None:
            raise TypeError("linting a Schedule requires a device")
        return lint_schedule(artifact, device, **linter_kwargs)
    return lint_graph(artifact, device=device, **linter_kwargs)


__all__ = ["CDFG", "DFGBuilder", "OpKind", "compile_kernel", "lint",
           "__version__"]

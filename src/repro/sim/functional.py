"""Functional (untimed) simulation of a CDFG.

Evaluates a pipelined kernel iteration by iteration at the word level,
resolving loop-carried operands from previous iterations (or their declared
initial values). This is the golden reference the cycle-accurate pipeline
simulator and the RTL self-checks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import SimulationError
from ..ir.graph import CDFG
from ..ir.semantics import eval_node, mask
from ..ir.types import OpKind

__all__ = ["SimEnvironment", "FunctionalSimulator", "run_functional"]


@dataclass
class SimEnvironment:
    """External state for black-box operations.

    ``memories`` maps a memory name to its backing list; a LOAD/STORE node
    selects its memory by ``node.name`` first, then ``node.rclass``.
    Addresses wrap modulo the memory length (benchmark kernels index within
    bounds; wrapping keeps property tests total).
    """

    memories: dict[str, list[int]] = field(default_factory=dict)

    def _memory_for(self, node) -> list[int]:
        for key in (node.name, node.rclass):
            if key and key in self.memories:
                return self.memories[key]
        raise SimulationError(
            f"no memory bound for node {node.nid} "
            f"(name={node.name!r}, rclass={node.rclass!r})"
        )

    def load(self, node, address: int) -> int:
        mem = self._memory_for(node)
        return mask(mem[address % len(mem)], node.width)

    def store(self, node, address: int, value: int) -> int:
        mem = self._memory_for(node)
        mem[address % len(mem)] = mask(value, node.width)
        return mask(value, node.width)


class FunctionalSimulator:
    """Iteration-by-iteration evaluator with loop-carried history."""

    def __init__(self, graph: CDFG, env: SimEnvironment | None = None) -> None:
        self.graph = graph
        self.env = env or SimEnvironment()
        self._order = graph.topological_order()
        self._history: list[dict[int, int]] = []

    def reset(self) -> None:
        """Forget all iteration history."""
        self._history.clear()

    def _initial_value(self, nid: int) -> int:
        node = self.graph.node(nid)
        return mask(int(node.attrs.get("initial", 0)), node.width)

    def _operand_value(self, values: dict[int, int], source: int,
                       distance: int) -> int:
        if distance == 0:
            return values[source]
        k = len(self._history) - distance
        if k < 0:
            return self._initial_value(source)
        return self._history[k][source]

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Run one loop iteration; returns output-name -> value."""
        graph = self.graph
        values: dict[int, int] = {}
        for nid in self._order:
            node = graph.node(nid)
            if node.kind is OpKind.INPUT:
                if node.name not in inputs:
                    raise SimulationError(f"missing input {node.name!r}")
                values[nid] = mask(int(inputs[node.name]), node.width)
                continue
            args = [
                self._operand_value(values, op.source, op.distance)
                for op in node.operands
            ]
            widths = [graph.node(op.source).width for op in node.operands]
            if node.kind is OpKind.LOAD:
                values[nid] = self.env.load(node, args[0])
            elif node.kind is OpKind.STORE:
                values[nid] = self.env.store(node, args[0], args[1])
            else:
                values[nid] = eval_node(node, args, widths)
        self._history.append(values)
        outputs = {}
        for out in graph.outputs:
            outputs[out.name or f"out{out.nid}"] = values[out.nid]
        return outputs

    def run(self, input_stream: Iterable[Mapping[str, int]]
            ) -> list[dict[str, int]]:
        """Run one iteration per element of ``input_stream``."""
        return [self.step(inputs) for inputs in input_stream]

    def values_at(self, iteration: int) -> dict[int, int]:
        """All node values computed during ``iteration`` (for debugging)."""
        return dict(self._history[iteration])


def run_functional(graph: CDFG, input_stream: Iterable[Mapping[str, int]],
                   env: SimEnvironment | None = None) -> list[dict[str, int]]:
    """One-shot helper: simulate ``graph`` over an input stream."""
    return FunctionalSimulator(graph, env).run(input_stream)

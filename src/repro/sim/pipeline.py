"""Cycle-accurate replay of a modulo schedule.

Executes the *scheduled* datapath: iteration ``k`` of operation ``v`` runs
in absolute cycle ``k*II + S_v``, values chain combinationally inside a
cycle only when the producer finishes before the consumer starts, and every
cross-cycle value must come out of a register written in an earlier cycle.
Any read that the hardware could not satisfy (value not yet produced, or
produced later in the same cycle) raises :class:`SimulationError` — so
replaying a schedule against the functional reference is a *dynamic* proof
that the pipeline both computes the right values and is physically
realizable at its II.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import SimulationError
from ..ir.graph import CDFG
from ..ir.semantics import eval_node, mask
from ..ir.types import OpKind
from ..scheduling.schedule import Schedule
from ..tech.delay import DelayModel
from ..tech.device import Device
from .functional import SimEnvironment

__all__ = ["PipelineSimulator", "replay_equivalent"]

_TOL = 1e-6


class PipelineSimulator:
    """Executes a schedule over a stream of per-iteration inputs."""

    def __init__(self, schedule: Schedule, device: Device,
                 env: SimEnvironment | None = None) -> None:
        self.schedule = schedule
        self.graph: CDFG = schedule.graph
        self.device = device
        self.env = env or SimEnvironment()
        self._delay = DelayModel(device, self.graph)
        # (nid, iteration) -> (finish_time_ns_absolute, value)
        self._produced: dict[tuple[int, int], tuple[float, int]] = {}

    # ------------------------------------------------------------------
    def _impl_delay(self, nid: int) -> float:
        node = self.graph.node(nid)
        if self.schedule.cover:
            cut = self.schedule.cover.get(nid)
            if cut is not None:
                return self._delay.cut_delay(node, cut)
            # Absorbed into some cone: the value is virtual and materializes
            # with its root, which is co-timed with this node.
            return 0.0
        return self._delay.operator_delay(node)

    def _abs_start(self, nid: int, iteration: int) -> float:
        sched = self.schedule
        cycle = sched.cycle.get(nid, 0) + iteration * sched.ii
        return cycle * sched.tcp + sched.start.get(nid, 0.0)

    def _read(self, consumer: int, iteration: int, source: int,
              distance: int) -> int:
        """Fetch an operand value, enforcing hardware readability."""
        graph = self.graph
        src = graph.node(source)
        if src.kind is OpKind.CONST:
            return mask(int(src.value), src.width)
        k = iteration - distance
        if k < 0:
            return mask(int(src.attrs.get("initial", 0)), src.width)
        key = (source, k)
        if key not in self._produced:
            raise SimulationError(
                f"node {consumer} (iter {iteration}) reads {source} "
                f"(iter {k}) before it executes"
            )
        finish, value = self._produced[key]
        sched = self.schedule
        if sched.cover:
            ccut = sched.cover.get(consumer)
            if ccut is None or source in ccut.interior:
                # Absorbed consumers read virtual in-cone values; interior
                # sources are recomputed inside the consumer's own LUT
                # (logic duplication). Wire timing for cones is enforced
                # per cut entry by the static verifier; replay checks the
                # root-to-root wires below and data values throughout.
                return value
            if (source, distance) not in ccut.entries:
                # The selected cut provably does not depend on this operand
                # at this distance — e.g. a cone whose output became
                # constant after dataflow narrowing has an empty boundary.
                # No physical wire exists, so there is no timing to check;
                # the value still feeds the semantic evaluation.
                return value
        my_start = self._abs_start(consumer, iteration)
        # Registered values are ready at the cycle boundary; combinational
        # values must finish before the consumer starts.
        consumer_cycle = sched.cycle.get(consumer, 0) + iteration * sched.ii
        producer_cycle = sched.cycle.get(source, 0) + k * sched.ii
        if producer_cycle > consumer_cycle:
            raise SimulationError(
                f"node {consumer} reads {source} from a later cycle"
            )
        if producer_cycle == consumer_cycle and finish > my_start + _TOL:
            raise SimulationError(
                f"combinational race: {source} finishes at {finish:.3f} "
                f"but {consumer} starts at {my_start:.3f}"
            )
        return value

    # ------------------------------------------------------------------
    def run(self, input_stream: Sequence[Mapping[str, int]]
            ) -> list[dict[str, int]]:
        """Feed one iteration per input map; returns outputs per iteration."""
        graph = self.graph
        sched = self.schedule
        order = graph.topological_order()
        results: list[dict[str, int]] = []
        for k, inputs in enumerate(input_stream):
            values: dict[int, int] = {}
            for nid in order:
                node = graph.node(nid)
                if node.kind is OpKind.INPUT:
                    if node.name not in inputs:
                        raise SimulationError(f"missing input {node.name!r}")
                    value = mask(int(inputs[node.name]), node.width)
                elif node.kind is OpKind.CONST:
                    value = mask(int(node.value), node.width)
                else:
                    args = [
                        self._read(nid, k, op.source, op.distance)
                        for op in node.operands
                    ]
                    widths = [graph.node(op.source).width
                              for op in node.operands]
                    if node.kind is OpKind.LOAD:
                        value = self.env.load(node, args[0])
                    elif node.kind is OpKind.STORE:
                        value = self.env.store(node, args[0], args[1])
                    else:
                        value = eval_node(node, args, widths)
                values[nid] = value
                finish = self._abs_start(nid, k) + self._impl_delay(nid)
                self._produced[(nid, k)] = (finish, value)
            results.append({
                out.name or f"out{out.nid}": values[out.nid]
                for out in graph.outputs
            })
        return results


def replay_equivalent(schedule: Schedule, device: Device,
                      input_stream: Iterable[Mapping[str, int]],
                      env_factory=None) -> bool:
    """True iff the scheduled pipeline reproduces the functional outputs.

    ``env_factory`` builds a fresh :class:`SimEnvironment` per simulator (so
    STOREs in one run don't leak into the other); defaults to empty
    environments.
    """
    from .functional import FunctionalSimulator

    stream = list(input_stream)
    env_a = env_factory() if env_factory else SimEnvironment()
    env_b = env_factory() if env_factory else SimEnvironment()
    golden = FunctionalSimulator(schedule.graph, env_a).run(stream)
    piped = PipelineSimulator(schedule, device, env_b).run(stream)
    return golden == piped

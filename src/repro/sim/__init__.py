"""Functional and cycle-accurate simulation of kernels and schedules."""

from .functional import FunctionalSimulator, SimEnvironment, run_functional
from .pipeline import PipelineSimulator, replay_equivalent

__all__ = [
    "FunctionalSimulator",
    "PipelineSimulator",
    "SimEnvironment",
    "replay_equivalent",
    "run_functional",
]

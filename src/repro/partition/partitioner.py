"""Recurrence-aware, cut-cone-respecting CDFG partitioning.

The partitioner produces a *chain* of subgraphs: an ordered list of
disjoint node sets whose every crossing dependence edge — loop-carried
edges included — points forward in chain order. That invariant is what
makes stitching trivially feasible (a single forward pass assigns cycle
offsets; see :mod:`repro.partition.stitch`) and it is obtained by
construction, not by luck:

* **atomic clusters** are formed first: the strongly connected components
  of the dependence graph over *all* edges (so no recurrence is ever cut),
  unioned with every enumerated cut's ``{root} ∪ interior`` (so no cone
  the monolithic enumerator could select is split across a boundary);
* the cluster quotient graph is then **condensed** (clusters that ended up
  on a mutual cycle — possible once overlapping cones are unioned — are
  merged), leaving a DAG;
* a deterministic topological order of that DAG is **greedily chunked**
  into subgraphs of roughly ``config.partition_size`` nodes. A cluster is
  never split, so one oversized recurrence or cone yields one oversized
  subgraph rather than an invalid cut.

INPUT and CONST nodes are not assigned to any subgraph: extraction
replicates them into every subgraph that reads them (they carry no
schedule freedom — the stitcher pins them to cycle 0).
"""

from __future__ import annotations

import heapq

from ..core.config import SchedulerConfig
from ..ir.graph import CDFG
from ..ir.types import OpKind
from ..tech.device import XC7, Device

__all__ = ["partition_graph"]


class _UnionFind:
    def __init__(self, items) -> None:
        self.parent = {i: i for i in items}

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: the smaller id wins.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def _sccs(graph: CDFG, eligible: set[int]) -> list[list[int]]:
    """SCCs over *all* dependence edges (any distance), iteratively.

    Tarjan via an explicit stack: paper-sized graphs (2500+ nodes) would
    blow the recursion limit otherwise.
    """
    succ: dict[int, list[int]] = {nid: [] for nid in eligible}
    for nid in eligible:
        for use in graph.uses(nid):
            if use.consumer in succ:
                succ[nid].append(use.consumer)
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    sccs: list[list[int]] = []
    for start in sorted(eligible):
        if start in index:
            continue
        work = [(start, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            recursed = False
            edges = succ[v]
            while pi < len(edges):
                w = edges[pi]
                pi += 1
                if w not in index:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    recursed = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if recursed:
                continue
            work.pop()
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return sccs


def _selected_cones(graph: CDFG, device: Device,
                    config: SchedulerConfig) -> list[set[int]]:
    """``{root} ∪ interior`` of every cone in a mapping-aware heuristic
    cover of the full graph.

    Unioning *every* enumerated cone would be degenerate — overlapping
    candidates chain transitively until the whole graph is one cluster.
    The heuristic cover picks one cone per root, which is exactly the
    kind of cone the per-subgraph MILP will want to select; keeping those
    intact is what "no enumerated cut is split across subgraphs" buys in
    practice. Heuristic failure degrades to SCC-only clustering.
    """
    from ..core.heuristic import MappingAwareHeuristicScheduler

    try:
        schedule = MappingAwareHeuristicScheduler(
            graph, device, config).schedule(config.ii)
    except Exception:
        return []
    cones: list[set[int]] = []
    for cut in schedule.cover.values():
        if cut.interior:
            cones.append({cut.root} | set(cut.interior))
    return cones


def partition_graph(graph: CDFG, device: Device = XC7,
                    config: SchedulerConfig | None = None,
                    respect_cones: bool = True) -> list[tuple[int, ...]]:
    """Cut ``graph`` into a chain of owned node sets.

    Returns an ordered list of sorted node-id tuples. Every dependence
    edge between two different subgraphs — at any iteration distance —
    goes from an earlier tuple to a later one. INPUT/CONST nodes are
    owned by no subgraph (extraction replicates them).

    ``respect_cones=False`` skips the cut enumeration (used by MILP-base,
    whose unit cuts never span nodes, and by tests that want pure
    SCC/size-driven chunking).
    """
    config = config or SchedulerConfig()
    eligible = {n.nid for n in graph
                if n.kind not in (OpKind.INPUT, OpKind.CONST)}
    if not eligible:
        return []

    uf = _UnionFind(eligible)
    for scc in _sccs(graph, eligible):
        first = min(scc)
        for nid in scc:
            uf.union(first, nid)
    if respect_cones and config.use_mapping and config.max_cuts > 0:
        for cone in _selected_cones(graph, device, config):
            members = [nid for nid in cone if nid in eligible]
            for nid in members[1:]:
                uf.union(members[0], nid)

    # Cluster quotient over all edges; condense any cycles the cone
    # unions introduced (overlapping cones can bridge two clusters both
    # ways even though the node graph is acyclic through them).
    members: dict[int, list[int]] = {}
    for nid in eligible:
        members.setdefault(uf.find(nid), []).append(nid)
    cluster_of = {nid: rep for rep, nids in members.items() for nid in nids}
    edges: dict[int, set[int]] = {rep: set() for rep in members}
    for nid in eligible:
        for use in graph.uses(nid):
            if use.consumer not in cluster_of:
                continue
            a, b = cluster_of[nid], cluster_of[use.consumer]
            if a != b:
                edges[a].add(b)

    condensed = _condense(members, edges)

    # Deterministic topological order of the condensed DAG: Kahn with a
    # min-heap keyed by the smallest member id, then greedy chunking.
    indeg = {rep: 0 for rep in condensed.members}
    for rep, outs in condensed.edges.items():
        for other in outs:
            indeg[other] += 1
    heap = [(min(condensed.members[rep]), rep)
            for rep, d in indeg.items() if d == 0]
    heapq.heapify(heap)
    chain: list[tuple[int, ...]] = []
    current: list[int] = []
    target = max(1, config.partition_size)
    while heap:
        _, rep = heapq.heappop(heap)
        current.extend(condensed.members[rep])
        if len(current) >= target:
            chain.append(tuple(sorted(current)))
            current = []
        for other in sorted(condensed.edges.get(rep, ())):
            indeg[other] -= 1
            if indeg[other] == 0:
                heapq.heappush(heap, (min(condensed.members[other]), other))
    if current:
        chain.append(tuple(sorted(current)))
    return chain


class _Condensed:
    def __init__(self, members: dict[int, list[int]],
                 edges: dict[int, set[int]]) -> None:
        self.members = members
        self.edges = edges


def _condense(members: dict[int, list[int]],
              edges: dict[int, set[int]]) -> _Condensed:
    """Merge quotient-level SCCs so the cluster graph is a DAG."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    groups: list[list[int]] = []
    for start in sorted(members):
        if start in index:
            continue
        work = [(start, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            recursed = False
            succ = sorted(edges.get(v, ()))
            while pi < len(succ):
                w = succ[pi]
                pi += 1
                if w not in index:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    recursed = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if recursed:
                continue
            work.pop()
            if low[v] == index[v]:
                group = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    group.append(w)
                    if w == v:
                        break
                groups.append(group)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])

    rep_of: dict[int, int] = {}
    merged_members: dict[int, list[int]] = {}
    for group in groups:
        rep = min(group)
        for old in group:
            rep_of[old] = rep
        merged: list[int] = []
        for old in group:
            merged.extend(members[old])
        merged_members[rep] = sorted(merged)
    merged_edges: dict[int, set[int]] = {rep: set() for rep in merged_members}
    for old, outs in edges.items():
        a = rep_of[old]
        for other in outs:
            b = rep_of[other]
            if a != b:
                merged_edges[a].add(b)
    return _Condensed(merged_members, merged_edges)

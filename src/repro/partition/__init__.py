"""Subgraph decomposition for paper-sized designs.

The monolithic mapping-aware MILP explodes on graphs in the paper's
387–2503-instruction range. This package scales it by decomposition:

1. :mod:`~repro.partition.partitioner` cuts the CDFG into a chain of
   subgraphs that respect recurrences (every SCC over *all* dependence
   edges, loop-carried included, stays intact) and enumerated cut cones
   (no cone the monolithic enumerator would grow is split across a
   boundary);
2. :mod:`~repro.partition.extract` materializes each subgraph as a
   standalone, valid CDFG — crossing in-values become INPUT placeholders,
   crossing out-values grow OUTPUT exposers so the MILP is forced to make
   them roots (the composed cover then satisfies SCH004 globally);
3. :mod:`~repro.partition.solve` fans the per-subgraph MILP solves out
   over :func:`repro.runtime.run_parallel` with warm-started ascending-II
   sweeps;
4. :mod:`~repro.partition.stitch` composes the local schedules into one
   global :class:`~repro.scheduling.schedule.Schedule` under registered
   boundary handoff constraints and prices every crossing value;
5. :class:`~repro.partition.scheduler.PartitionScheduler` drives the
   feedback loop: re-cut (merge) the partition where the stitched cost
   model reports the worst boundary pressure, re-solve only what changed,
   keep the best verified result.

See docs/partitioning.md for the algorithm and its boundary-constraint
semantics.
"""

from .extract import SubgraphExtraction, extract_subgraph
from .partitioner import partition_graph
from .scheduler import PartitionScheduler
from .stitch import StitchInfo, stitch_schedules

__all__ = [
    "PartitionScheduler",
    "partition_graph",
    "extract_subgraph",
    "SubgraphExtraction",
    "stitch_schedules",
    "StitchInfo",
]

"""Materialize one partition subgraph as a standalone, valid CDFG.

A subgraph owns a set of operation/OUTPUT nodes. Everything else it needs
is synthesized:

* **replicas** — INPUT and CONST nodes read by an owned node are copied
  in verbatim (they carry no schedule freedom; the stitcher pins INPUTs
  to cycle 0 and CONSTs are timeless);
* **placeholders** — a crossing in-value produced by an operation owned
  elsewhere becomes a local INPUT node of the same width. Consumers keep
  their original operand distances, so loop-carried reads stay
  loop-carried locally;
* **exposers** — a crossing out-value (an owned operation consumed by
  another subgraph) grows a local OUTPUT sink. The MILP forces OUTPUT
  producers to be cover roots (Eq. 3/4), so every value that crosses a
  boundary is guaranteed to be a root — exactly what SCH004 demands of
  the composed global cover.

Node ids are densely renumbered (the serializer requires it);
``to_global`` maps every local node that has a real counterpart back to
the source graph. Exposers map to nothing and are dropped at stitch time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..ir.graph import CDFG
from ..ir.node import Node, Operand
from ..ir.types import OpKind

__all__ = ["SubgraphExtraction", "extract_subgraph"]


@dataclass
class SubgraphExtraction:
    """One subgraph plus the bookkeeping the stitcher needs.

    Attributes
    ----------
    graph:
        The standalone subgraph CDFG (valid; dense ids).
    index:
        Position in the partition chain.
    to_global:
        Local id -> source-graph id for owned nodes, replicas and
        placeholders. Exposer OUTPUTs are absent.
    owned_local:
        Local ids of nodes this subgraph *owns* (their cycles/starts and
        cover entries flow into the composed schedule).
    placeholder_local:
        Local ids of INPUT placeholders standing in for values produced
        by other subgraphs.
    fingerprint:
        SHA-256 over the canonical serialized subgraph. Content-addressed:
        two extractions of the same owned set are identical, whatever
        their chain position — this keys both the solve memo and the
        per-subgraph RNG seed, so re-cuts never perturb untouched
        subgraphs.
    """

    graph: CDFG
    index: int
    to_global: dict[int, int] = field(default_factory=dict)
    owned_local: set[int] = field(default_factory=set)
    placeholder_local: set[int] = field(default_factory=set)
    fingerprint: str = ""


def extract_subgraph(graph: CDFG, owned: tuple[int, ...] | set[int],
                     index: int) -> SubgraphExtraction:
    """Extract the subgraph of ``graph`` owning ``owned`` node ids."""
    owned_set = set(owned)
    topo_pos = {nid: pos for pos, nid in enumerate(graph.topological_order())}

    # Gather external sources read by owned nodes, split by treatment.
    replicas: set[int] = set()
    placeholders: set[int] = set()
    for gid in owned_set:
        for op in graph.node(gid).operands:
            if op.source in owned_set:
                continue
            src = graph.node(op.source)
            if src.kind in (OpKind.INPUT, OpKind.CONST):
                replicas.add(op.source)
            else:
                placeholders.add(op.source)

    # Owned values consumed outside get an OUTPUT exposer (forces them to
    # be cover roots). OUTPUT nodes are sinks and INPUT replicas are free
    # to be re-read elsewhere — neither needs exposing.
    exposed: list[int] = []
    for gid in sorted(owned_set):
        node = graph.node(gid)
        if node.kind is OpKind.OUTPUT:
            continue
        if any(use.consumer not in owned_set for use in graph.uses(gid)):
            exposed.append(gid)

    # Local id plan: replicas and placeholders first (sorted by global
    # id), then owned nodes in source topological order, then exposers.
    # Distance-0 operands of owned nodes always point backwards in this
    # order; loop-carried internal edges may point forward, which the
    # CDFG builder permits.
    order: list[int] = sorted(replicas) + sorted(placeholders)
    order += sorted(owned_set, key=lambda nid: topo_pos[nid])
    local_of = {gid: lid for lid, gid in enumerate(order)}

    # The name must NOT embed the chain index: the fingerprint hashes the
    # serialized graph, and feedback re-cuts renumber positions while
    # leaving untouched subgraphs byte-identical.
    sub = CDFG(f"{graph.name}#part")
    for gid in order:
        node = graph.node(gid)
        if gid in placeholders:
            sub.add_node(OpKind.INPUT, node.width,
                         name=f"bx_{node.label}", signed=node.signed)
            continue
        sub.add_node(
            node.kind, node.width,
            operands=[Operand(local_of[op.source], op.distance)
                      for op in node.operands] if gid in owned_set else [],
            name=node.name, value=node.value, amount=node.amount,
            rclass=node.rclass, delay_override=node.delay_override,
            signed=node.signed, attrs=dict(node.attrs),
        )
    for gid in exposed:
        sub.add_node(OpKind.OUTPUT, graph.node(gid).width,
                     operands=[Operand(local_of[gid], 0)],
                     name=f"expose_{graph.node(gid).label}")

    to_global = {lid: gid for gid, lid in local_of.items()}
    fingerprint = _content_fingerprint(sub)
    return SubgraphExtraction(
        graph=sub,
        index=index,
        to_global=to_global,
        owned_local={local_of[gid] for gid in owned_set},
        placeholder_local={local_of[gid] for gid in placeholders},
        fingerprint=fingerprint,
    )


def _content_fingerprint(sub: CDFG) -> str:
    from ..ir.serialize import graph_to_dict

    blob = json.dumps(graph_to_dict(sub), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Feedback-guided partition scheduling: cut, solve, stitch, re-cut.

:class:`PartitionScheduler` mirrors the monolithic schedulers' contract
(construct with graph/device/config, call :meth:`schedule`, get back a
verified :class:`~repro.scheduling.schedule.Schedule`) but solves by
decomposition:

1. partition the graph into a chain of cone/recurrence-respecting
   subgraphs (:func:`~repro.partition.partitioner.partition_graph`);
2. solve every subgraph MILP over the :func:`repro.runtime.run_parallel`
   pool with a warm-started ascending-II sweep; pin stragglers to the
   fleet-maximum II so the composition is a single modulo schedule;
3. stitch under registered-boundary constraints and verify the global
   result (:func:`~repro.partition.stitch.stitch_schedules`);
4. feed the stitched boundary pricing back: merge the two chain
   neighbours at the most expensive boundary, re-solve *only* what
   changed (solves are memoized by subgraph content fingerprint) and
   keep the best verified schedule seen.

The loop runs ``config.partition_rounds`` times and degrades gracefully:
with every merge it walks toward the monolithic solve, so on small
graphs the result converges to the monolithic one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..core.config import SchedulerConfig
from ..core.verify import verify_schedule
from ..errors import SchedulingError
from ..ir.graph import CDFG
from ..ir.validate import validate
from ..runtime.parallel import run_parallel
from ..runtime.trace import Tracer
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device
from .extract import SubgraphExtraction, extract_subgraph
from .partitioner import partition_graph
from .solve import SubgraphSolveTask, solve_subgraph_task
from .stitch import StitchInfo, stitch_schedules

__all__ = ["PartitionScheduler"]


class PartitionScheduler:
    """Partition-solve-stitch-iterate driver for ``milp-map``/``milp-base``."""

    def __init__(self, graph: CDFG, device: Device = XC7,
                 config: SchedulerConfig | None = None,
                 method: str = "milp-map",
                 tracer: Tracer | None = None,
                 jobs: int | None = 1,
                 design: str | None = None) -> None:
        if method not in ("milp-map", "milp-base"):
            raise SchedulingError(
                f"partition scheduling supports milp-map/milp-base, "
                f"not {method!r}")
        validate(graph)
        self.graph = graph
        self.device = device
        self.config = config or SchedulerConfig()
        self.method = method
        self.tracer = tracer or Tracer()
        self.jobs = jobs
        self.design = design or graph.name
        #: Solved-subgraph memo keyed by (content fingerprint, pinned II);
        #: feedback rounds re-solve only the merged subgraph.
        self._memo: dict[tuple[str, int | None], dict[str, Any]] = {}
        #: Stitch bookkeeping of the *returned* schedule (tests/reports).
        self.info: StitchInfo | None = None
        self.rounds_run = 0
        self.subgraph_counts: list[int] = []

    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        config = self.config
        with self.tracer.span("partition-cut", method=self.method) as span:
            chain = partition_graph(
                self.graph, self.device, config,
                respect_cones=self.method == "milp-map")
            span.meta["subgraphs"] = len(chain)
            span.meta["sizes"] = [len(owned) for owned in chain]
        if not chain:
            raise SchedulingError(
                f"{self.graph.name} has no schedulable operations")

        best: tuple[float, Schedule, StitchInfo] | None = None
        for round_idx in range(config.partition_rounds + 1):
            self.rounds_run = round_idx + 1
            self.subgraph_counts.append(len(chain))
            subs = [extract_subgraph(self.graph, owned, i)
                    for i, owned in enumerate(chain)]
            scheds = self._solve_all(subs, round_idx)
            with self.tracer.span("stitch", round=round_idx) as span:
                stitched, info = stitch_schedules(
                    self.graph, subs, scheds, self.device, config,
                    self.method)
                span.meta["ii"] = stitched.ii
                span.meta["offsets"] = list(info.offsets)
                span.meta["boundary_bits"] = info.total_boundary_bits
                span.meta["crossing_values"] = info.crossing_values
                span.meta["repair_bumps"] = info.repair_bumps
            verify_schedule(stitched, self.device)
            cost = self._cost(stitched)
            if best is None or cost < best[0] - 1e-9:
                best = (cost, stitched, info)
            if len(chain) <= 1 or round_idx == config.partition_rounds:
                break
            merged = self._merge_worst(chain, info)
            if merged is None:
                break
            with self.tracer.span("feedback", round=round_idx) as span:
                span.meta["merged_to"] = len(merged)
                span.meta["cost"] = cost
            chain = merged
        assert best is not None
        self.info = best[2]
        return best[1]

    # ------------------------------------------------------------------
    def _solve_all(self, subs: list[SubgraphExtraction],
                   round_idx: int) -> list[Schedule]:
        """Sweep every subgraph, then pin laggards to the fleet-max II."""
        from ..ir.serialize import graph_to_dict, schedule_from_dict

        cfg = replace(self.config, partition=False)
        serialized = {sub.fingerprint: graph_to_dict(sub.graph)
                      for sub in subs}

        def tasks_for(pending: list[SubgraphExtraction],
                      pin_ii: int | None) -> list[SubgraphSolveTask]:
            return [SubgraphSolveTask(
                design=self.design, method=self.method, index=sub.index,
                fingerprint=sub.fingerprint,
                graph_data=serialized[sub.fingerprint],
                device=self.device, config=cfg, pin_ii=pin_ii,
            ) for sub in pending]

        pending = [sub for sub in subs
                   if (sub.fingerprint, None) not in self._memo]
        with self.tracer.span("subgraph-solve", round=round_idx,
                              phase="sweep") as span:
            span.meta["subgraphs"] = len(subs)
            span.meta["solved"] = len(pending)
            sweep_tasks = tasks_for(pending, None)
            results = run_parallel(sweep_tasks, solve_subgraph_task,
                                   jobs=self.jobs)
            for task, result in zip(sweep_tasks, results):
                self._memo[(task.fingerprint, None)] = result

        scheds = [schedule_from_dict(self._memo[(sub.fingerprint, None)],
                                     check=False)
                  for sub in subs]
        fleet_ii = max(s.ii for s in scheds)

        laggards = [sub for sub, sched in zip(subs, scheds)
                    if sched.ii != fleet_ii
                    and (sub.fingerprint, fleet_ii) not in self._memo]
        if laggards or any(s.ii != fleet_ii for s in scheds):
            with self.tracer.span("subgraph-solve", round=round_idx,
                                  phase="pin", ii=fleet_ii) as span:
                span.meta["solved"] = len(laggards)
                pin_tasks = tasks_for(laggards, fleet_ii)
                results = run_parallel(pin_tasks, solve_subgraph_task,
                                       jobs=self.jobs)
                for task, result in zip(pin_tasks, results):
                    self._memo[(task.fingerprint, fleet_ii)] = result
            scheds = [
                sched if sched.ii == fleet_ii else schedule_from_dict(
                    self._memo[(sub.fingerprint, fleet_ii)], check=False)
                for sub, sched in zip(subs, scheds)
            ]
        return scheds

    # ------------------------------------------------------------------
    def _cost(self, schedule: Schedule) -> float:
        """The stitched cost model: the Eq. 15 weighting of real QoR."""
        from ..hw.cost import evaluate

        report = evaluate(schedule, self.device, design=self.design)
        return (self.config.alpha * report.luts
                + self.config.beta * report.ffs)

    def _merge_worst(self, chain: list[tuple[int, ...]],
                     info: StitchInfo) -> list[tuple[int, ...]] | None:
        """Merge the chain neighbours at the priciest boundary."""
        worst = info.worst_pair()
        if worst is None:
            return None  # no crossings: merging cannot help
        j = worst[0]
        if j + 1 >= len(chain):  # pragma: no cover - defensive
            return None
        merged = list(chain)
        merged[j:j + 2] = [tuple(sorted(merged[j] + merged[j + 1]))]
        return merged

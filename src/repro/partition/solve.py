"""Per-subgraph MILP solves, shaped for :func:`repro.runtime.run_parallel`.

The worker is a module-level function over a picklable task so the pool
can ship it to worker processes; results come back as serialized
schedules (:func:`repro.ir.serialize.schedule_to_dict`), which keeps the
pool protocol JSON-plain and lets the scheduler memoize them directly.

Each worker seeds the global RNG from :func:`repro.runtime.task_seed`
over the subgraph's *content fingerprint* rather than its position in
the partition chain: a feedback re-cut renumbers chain positions but
leaves untouched subgraphs byte-identical, so content-keyed seeds keep
their solves deterministic across re-cuts (and distinct subgraphs still
get distinct seeds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ..core.config import SchedulerConfig
from ..runtime.parallel import task_seed
from ..runtime.trace import Tracer
from ..tech.device import Device

__all__ = ["SubgraphSolveTask", "solve_subgraph_task", "subgraph_seed"]


@dataclass(frozen=True)
class SubgraphSolveTask:
    """One subgraph solve: sweep from ``config.ii`` or pin an exact II."""

    design: str
    method: str  # "milp-map" | "milp-base"
    index: int
    fingerprint: str
    graph_data: Any  # graph_to_dict payload (picklable, canonical)
    device: Device
    config: SchedulerConfig
    pin_ii: int | None = None  # None = ascending-II sweep


def subgraph_seed(task: SubgraphSolveTask) -> int:
    """Deterministic per-subgraph seed (stable under partition re-cuts)."""
    return task_seed(task.design, task.method, "subgraph",
                     task.fingerprint, task.pin_ii)


def solve_subgraph_task(task: SubgraphSolveTask) -> dict[str, Any]:
    """Solve one subgraph; returns ``schedule_to_dict`` of the result.

    Pinned solves (``pin_ii``) run the scheduler at exactly that II;
    sweep solves start at ``config.ii`` and ascend, warm-started by the
    mapping-aware heuristic at every probe (the same machinery the
    monolithic flow uses).
    """
    from dataclasses import replace

    from ..core.mapsched import BaseScheduler, MapScheduler
    from ..ir.serialize import graph_from_dict, schedule_to_dict

    random.seed(subgraph_seed(task))
    graph = graph_from_dict(task.graph_data)
    config = task.config
    if task.pin_ii is not None:
        config = replace(config, ii=task.pin_ii)
    cls = MapScheduler if task.method == "milp-map" else BaseScheduler
    scheduler = cls(graph, task.device, config, tracer=Tracer())
    if task.pin_ii is not None:
        schedule = scheduler.schedule()
    else:
        schedule = scheduler.sweep()
    return schedule_to_dict(schedule)

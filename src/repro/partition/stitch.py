"""Compose per-subgraph schedules into one global verified schedule.

Boundary semantics (docs/partitioning.md): every value that crosses a
subgraph boundary is handed off through at least one pipeline register —
the consumer's cycle must satisfy ``S_v + II·d >= S_u + 1`` for a
crossing dependence ``u -> v`` at iteration distance ``d``. Because the
producer is a cover root in its own subgraph (the exposer forced it),
its cone finishes within its cycle (SCH007), so a one-cycle handoff
always satisfies the global chaining rule (SCH008) regardless of where
either side sits within its clock period.

The partitioner guarantees every crossing edge points forward in chain
order, so the offset system ``off[i] >= off[j] + delta`` (j < i) is
solved exactly by one forward longest-path pass — stitching never fails
for latency reasons. Black-box resource oversubscription across
subgraphs (possible at II > 1, since each local solve only polices its
own modulo slots) is repaired by bumping offsets and re-running the
pass, bounded; II = 1 needs no repair because slot usage equals total
usage, which partitioning does not change.

The stitcher also *prices* every handoff: per crossing value, the
register bits implied by its global lifetime. That per-boundary pressure
map is the feedback signal the scheduler's re-cut loop consumes, and it
flows into the composed objective estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import SchedulerConfig
from ..cuts.cut import Cut
from ..errors import SchedulingError
from ..ir.graph import CDFG
from ..scheduling.schedule import Schedule
from ..tech.device import Device
from .extract import SubgraphExtraction

__all__ = ["StitchInfo", "stitch_schedules"]


@dataclass
class StitchInfo:
    """Bookkeeping from one stitch: offsets, pricing, repair effort."""

    offsets: list[int] = field(default_factory=list)
    #: (producer subgraph, consumer subgraph) -> boundary register bits.
    boundary_bits: dict[tuple[int, int], int] = field(default_factory=dict)
    total_boundary_bits: int = 0
    crossing_values: int = 0
    repair_bumps: int = 0

    def worst_pair(self) -> tuple[int, int] | None:
        """The boundary carrying the most register bits (ties: earliest)."""
        if not self.boundary_bits:
            return None
        return min(self.boundary_bits,
                   key=lambda pair: (-self.boundary_bits[pair], pair))


def stitch_schedules(graph: CDFG, subs: list[SubgraphExtraction],
                     scheds: list[Schedule], device: Device,
                     config: SchedulerConfig,
                     method: str) -> tuple[Schedule, StitchInfo]:
    """Compose local ``scheds`` (one per sub, all at one II) globally."""
    if not subs:
        raise SchedulingError("cannot stitch an empty partition")
    ii = scheds[0].ii
    if any(s.ii != ii for s in scheds):
        raise SchedulingError(
            f"subgraph IIs disagree: {[s.ii for s in scheds]}")

    owner: dict[int, tuple[int, int]] = {}
    for i, sub in enumerate(subs):
        for lid in sub.owned_local:
            owner[sub.to_global[lid]] = (i, lid)

    # off[i] >= off[j] + delta for every crossing edge; all j < i by the
    # partitioner's chain invariant.
    constraints: list[list[tuple[int, int]]] = [[] for _ in subs]
    crossings: list[tuple[int, int, int, int, int]] = []  # u, v, d, j, i
    for node in graph:
        place = owner.get(node.nid)
        if place is None:
            continue
        i, lid = place
        cv = scheds[i].cycle[lid]
        for op in node.operands:
            src_place = owner.get(op.source)
            if src_place is None or src_place[0] == i:
                continue
            j, src_lid = src_place
            if j > i:
                raise SchedulingError(
                    f"partition chain broken: edge {op.source} -> "
                    f"{node.nid} crosses backwards ({j} -> {i})")
            cu = scheds[j].cycle[src_lid]
            constraints[i].append((j, cu - cv + 1 - ii * op.distance))
            crossings.append((op.source, node.nid, op.distance, j, i))

    lower = [0] * len(subs)
    offsets = _forward_offsets(constraints, lower)
    cycle, start = _compose_times(graph, subs, scheds, offsets)

    # Cross-subgraph black-box packing repair (II > 1 only).
    bumps = 0
    max_bumps = ii * len(subs) + 8
    while True:
        violations = _resource_violations(graph, cycle, ii, device)
        if not violations:
            break
        if ii == 1:
            rclass, _, nids = violations[0]
            raise SchedulingError(
                f"resource {rclass} oversubscribed at II=1 "
                f"({len(nids)} ops); the device cannot fit this design")
        if bumps >= max_bumps:
            rclass, slot, _ = violations[0]
            raise SchedulingError(
                f"could not repair modulo packing of {rclass} "
                f"(slot {slot}) after {bumps} offset bumps")
        # Shift the subgraph owning the latest-cycled conflicting op one
        # cycle later; downstream offsets follow in the re-run pass.
        _, _, nids = violations[0]
        victim = max(nids, key=lambda nid: (cycle[nid], nid))
        sub_idx = owner[victim][0]
        lower[sub_idx] = offsets[sub_idx] + 1
        offsets = _forward_offsets(constraints, lower)
        cycle, start = _compose_times(graph, subs, scheds, offsets)
        bumps += 1

    cover = _compose_cover(subs, scheds)

    info = StitchInfo(offsets=offsets, repair_bumps=bumps)
    _price_boundaries(graph, crossings, cycle, ii, info)

    objective = None
    if all(s.objective is not None for s in scheds):
        objective = sum(s.objective for s in scheds) \
            + config.beta * info.total_boundary_bits
    stitched = Schedule(
        graph=graph,
        ii=ii,
        tcp=config.tcp,
        cycle=cycle,
        start=start,
        cover=cover,
        method=method,
        objective=objective,
        solve_seconds=sum(s.solve_seconds for s in scheds),
        optimal=len(subs) == 1 and scheds[0].optimal,
    )
    return stitched, info


# ----------------------------------------------------------------------
def _forward_offsets(constraints: list[list[tuple[int, int]]],
                     lower: list[int]) -> list[int]:
    offsets = [0] * len(constraints)
    for i, rows in enumerate(constraints):
        best = lower[i]
        for j, delta in rows:
            best = max(best, offsets[j] + delta)
        offsets[i] = max(0, best)
    return offsets


def _compose_times(graph: CDFG, subs: list[SubgraphExtraction],
                   scheds: list[Schedule], offsets: list[int]
                   ) -> tuple[dict[int, int], dict[int, float]]:
    cycle: dict[int, int] = {}
    start: dict[int, float] = {}
    for i, sub in enumerate(subs):
        sched = scheds[i]
        for lid in sub.owned_local:
            gid = sub.to_global[lid]
            cycle[gid] = offsets[i] + sched.cycle[lid]
            start[gid] = sched.start.get(lid, 0.0)
    # INPUT/CONST nodes are owned by nobody: pin them to cycle 0 — valid
    # for every rule (inputs have zero implementation delay; constants
    # are exempt from chaining and dependence checks) and honestly priced
    # by the evaluator as input staging registers.
    for node in graph:
        if node.nid not in cycle:
            if not node.is_boundary:
                raise SchedulingError(
                    f"operation {node.nid} belongs to no subgraph")
            cycle[node.nid] = 0
            start[node.nid] = 0.0
    return cycle, start


def _compose_cover(subs: list[SubgraphExtraction],
                   scheds: list[Schedule]) -> dict[int, Cut]:
    cover: dict[int, Cut] = {}
    for i, sub in enumerate(subs):
        remap = sub.to_global
        for lid, cut in scheds[i].cover.items():
            if lid not in remap:
                continue  # exposer OUTPUT: no global counterpart
            if lid in sub.placeholder_local:
                # The placeholder's trivial self-cut describes a value
                # *produced elsewhere*; the producing subgraph owns the
                # real cone for that global node.
                continue
            gid = remap[lid]
            remapped = Cut(
                root=gid,
                boundary=frozenset(remap[b] for b in cut.boundary),
                masks=cut.masks,
                kind=cut.kind,
                interior=frozenset(remap[w] for w in cut.interior),
                entries=tuple(sorted((remap[u], d)
                                     for u, d in cut.entries)),
            )
            if lid in sub.owned_local:
                cover[gid] = remapped
            elif gid not in cover:
                # INPUT/CONST replica: every replica carries the same
                # trivial cut; keep the first, mirroring the monolithic
                # cover's implicit input roots.
                cover[gid] = remapped
    return cover


def _resource_violations(graph: CDFG, cycle: dict[int, int], ii: int,
                         device: Device
                         ) -> list[tuple[str, int, list[int]]]:
    usage: dict[tuple[str, int], list[int]] = {}
    for node in graph:
        if node.is_blackbox and node.rclass:
            slot = cycle[node.nid] % ii
            usage.setdefault((node.rclass, slot), []).append(node.nid)
    violations = []
    for (rclass, slot), nids in sorted(usage.items()):
        cap = device.blackbox_counts.get(rclass)
        if cap is not None and len(nids) > cap:
            violations.append((rclass, slot, sorted(nids)))
    return violations


def _price_boundaries(graph: CDFG,
                      crossings: list[tuple[int, int, int, int, int]],
                      cycle: dict[int, int], ii: int,
                      info: StitchInfo) -> None:
    """Register bits per boundary: width x global lifetime per value.

    Mirrors the evaluator's liveness model (a value read at
    ``S_v + II·d`` lives from its production cycle to that read), folded
    per (value, consumer-subgraph) so multi-use reads are not
    double-counted.
    """
    lifetime: dict[tuple[int, int], tuple[int, int]] = {}
    for u, v, d, j, i in crossings:
        span = max(1, cycle[v] + ii * d - cycle[u])
        key = (u, i)
        prev = lifetime.get(key)
        if prev is None or span > prev[0]:
            lifetime[key] = (span, j)
    bits: dict[tuple[int, int], int] = {}
    for (u, i), (span, j) in lifetime.items():
        bits[(j, i)] = bits.get((j, i), 0) \
            + graph.node(u).width * span
    info.boundary_bits = bits
    info.total_boundary_bits = sum(bits.values())
    info.crossing_values = len(lifetime)

"""Structural validation for CDFGs."""

from __future__ import annotations

from ..errors import ValidationError
from .graph import CDFG
from .types import OpKind

__all__ = ["validate", "check_problems"]


def check_problems(graph: CDFG, require_outputs: bool = True) -> list[str]:
    """Return a list of structural problems (empty list = valid).

    Checks, in order:

    * every operand source refers to an existing node;
    * constants fit their declared width;
    * MUX selects are 1 bit wide;
    * OUTPUT nodes are sinks (no consumers) and INPUT/CONST have no operands;
    * distance-0 edges form a DAG;
    * (optionally) at least one primary output exists and every operation
      reaches one — dead code would silently distort area numbers.
    """
    problems: list[str] = []
    for node in graph:
        for idx, op in enumerate(node.operands):
            if op.source not in graph:
                problems.append(
                    f"node {node.nid} operand {idx} references missing node {op.source}"
                )
    if problems:
        return problems  # later checks assume well-formed edges

    for node in graph:
        if node.kind is OpKind.CONST and node.value is not None:
            if node.value < 0 or node.value >= (1 << node.width):
                problems.append(
                    f"const {node.nid} value {node.value} does not fit width {node.width}"
                )
        if node.kind is OpKind.MUX:
            sel = graph.node(node.operands[0].source)
            if sel.width != 1:
                problems.append(
                    f"mux {node.nid} select (node {sel.nid}) has width {sel.width} != 1"
                )
        if node.kind is OpKind.OUTPUT and graph.uses(node.nid):
            problems.append(f"output {node.nid} has consumers")
        if node.kind is OpKind.SLICE:
            src = graph.node(node.operands[0].source)
            if node.amount + node.width > src.width:
                problems.append(
                    f"slice {node.nid} [{node.amount}+:{node.width}] exceeds "
                    f"source width {src.width}"
                )

    try:
        graph.topological_order()
    except ValidationError as exc:
        problems.append(str(exc))
        return problems

    if require_outputs:
        if not graph.outputs:
            problems.append("graph has no primary outputs")
        else:
            live = _live_set(graph)
            for node in graph:
                if not node.is_boundary and node.nid not in live:
                    problems.append(
                        f"dead operation {node.nid} ({node.kind.value}) "
                        "does not reach any output"
                    )
    return problems


def _live_set(graph: CDFG) -> set[int]:
    """Nodes backward-reachable from outputs (across any distance)."""
    live: set[int] = set()
    stack = [out.nid for out in graph.outputs]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for op in graph.node(nid).operands:
            if op.source not in live:
                stack.append(op.source)
    return live


def validate(graph: CDFG, require_outputs: bool = True) -> None:
    """Raise :class:`ValidationError` if the graph is malformed."""
    problems = check_problems(graph, require_outputs=require_outputs)
    if problems:
        raise ValidationError("; ".join(problems[:8]))

"""Structural validation for CDFGs.

This module is a thin backward-compatible facade over the rule-based
analysis engine (:mod:`repro.analysis`): every check lives in
:mod:`repro.analysis.ir_rules` with a stable diagnostic code, and
:func:`check_problems` re-assembles the historical plain-string output —
same messages, same ordering, same early-exit behaviour — for callers that
predate the engine. New code should prefer
:func:`repro.analysis.lint_graph`, which also runs the semantic rules
(width inference, dead MUX arms, constant folding, DEP soundness) that have
no string-based equivalent.
"""

from __future__ import annotations

from ..errors import ValidationError
from .graph import CDFG

__all__ = ["validate", "check_problems"]


def check_problems(graph: CDFG, require_outputs: bool = True) -> list[str]:
    """Return a list of structural problems (empty list = valid).

    Checks, in order:

    * every operand source refers to an existing node (``IR001``);
    * constants fit their declared width (``IR002``);
    * MUX selects are 1 bit wide (``IR003``);
    * OUTPUT nodes are sinks (``IR004``) and SLICEs stay in range (``IR005``);
    * distance-0 edges form a DAG (``IR006``);
    * (optionally) at least one primary output exists (``IR007``) and every
      operation reaches one (``IR008``) — dead code would silently distort
      area numbers.
    """
    from ..analysis import ir_rules
    from ..analysis.registry import AnalysisContext

    ctx = AnalysisContext(graph=graph)

    problems = [d.message for d in ir_rules.missing_operand_source(ctx)]
    if problems:
        return problems  # later checks assume well-formed edges

    # The historical checker ran these four checks node by node; merge the
    # per-rule streams back into that interleaved order.
    per_node: list[tuple[int, int, str]] = []
    node_checks = (ir_rules.const_overflow, ir_rules.mux_select_width,
                   ir_rules.output_not_sink, ir_rules.slice_out_of_range)
    for check_idx, check in enumerate(node_checks):
        for diag in check(ctx):
            nid = diag.node if diag.node is not None else -1
            per_node.append((nid, check_idx, diag.message))
    per_node.sort(key=lambda item: (item[0], item[1]))
    problems = [message for _, _, message in per_node]

    cycle = [d.message for d in ir_rules.combinational_cycle(ctx)]
    if cycle:
        problems.extend(cycle)
        return problems

    if require_outputs:
        no_outputs = [d.message for d in ir_rules.no_primary_outputs(ctx)]
        problems.extend(no_outputs)
        if not no_outputs:
            problems.extend(d.message for d in ir_rules.dead_operation(ctx))
    return problems


def validate(graph: CDFG, require_outputs: bool = True) -> None:
    """Raise :class:`ValidationError` if the graph is malformed."""
    problems = check_problems(graph, require_outputs=require_outputs)
    if problems:
        raise ValidationError("; ".join(problems[:8]))

"""Operation kinds and classes for the word-level CDFG.

The paper (Sec. 3.1) partitions operations into classes that determine their
bit-level dependence (``DEP``) behaviour:

* **bitwise** — each output bit depends on the same-indexed bit of each input
  (AND/OR/XOR/NOT, and MUX which additionally reads the 1-bit select).
* **shift** — each output bit depends on one shifted bit of the input
  (constant-amount shifts only; variable shifts are arithmetic-class).
* **arith** — output bit *j* may depend on bits ``0..j`` of every input
  (ADD/SUB) or on *all* input bits (comparisons, variable shifts, etc.).
* **blackbox** — not mapped to LUTs at all (memory ports, DSP multiplies);
  cut enumeration never looks inside them (Sec. 3.1, "BB operations").
* **boundary** — primary inputs, constants and outputs; these delimit the
  combinational fabric.
"""

from __future__ import annotations

import enum

__all__ = [
    "OpClass",
    "OpKind",
    "COMMUTATIVE_KINDS",
    "COMPARISON_KINDS",
    "arity_of",
    "op_class_of",
]


class OpClass(enum.Enum):
    """Coarse operation class driving DEP tracking and cut growth."""

    BOUNDARY = "boundary"
    BITWISE = "bitwise"
    SHIFT = "shift"
    ARITH = "arith"
    BLACKBOX = "blackbox"


class OpKind(enum.Enum):
    """Concrete word-level operation kinds supported by the IR."""

    # Boundary
    INPUT = "input"
    CONST = "const"
    OUTPUT = "output"

    # Bitwise logic
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    MUX = "mux"  # mux(sel, a, b): sel is 1 bit; out[j] dep {sel[0], a[j], b[j]}

    # Constant-amount shifts (amount stored on the node, not an operand)
    SHL = "shl"
    SHR = "shr"  # logical right shift

    # Width adjustment (bit re-indexing; shift-like in DEP terms)
    TRUNC = "trunc"  # keep low `width` bits
    ZEXT = "zext"  # zero-extend to `width` bits
    SLICE = "slice"  # out[j] = in[j + lo]; `lo` stored on the node
    CONCAT = "concat"  # out = {hi, lo}: operand 0 is low part, operand 1 high

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    NEG = "neg"
    EQ = "eq"
    NE = "ne"
    LT = "lt"  # unsigned <
    GE = "ge"  # unsigned >=
    SLT = "slt"  # signed <
    SGE = "sge"  # signed >=
    VSHL = "vshl"  # variable-amount shifts: arithmetic class
    VSHR = "vshr"

    # Black-box operations (never LUT-mapped)
    LOAD = "load"
    STORE = "store"
    MUL = "mul"  # mapped to DSP blocks on real devices
    DIV = "div"
    MOD = "mod"


#: Kinds whose two data operands may be swapped without changing the result.
COMMUTATIVE_KINDS = frozenset(
    {OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ADD, OpKind.EQ, OpKind.NE, OpKind.MUL}
)

#: Kinds producing a single-bit comparison result.
COMPARISON_KINDS = frozenset(
    {OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE, OpKind.SLT, OpKind.SGE}
)

_CLASS_OF: dict[OpKind, OpClass] = {
    OpKind.INPUT: OpClass.BOUNDARY,
    OpKind.CONST: OpClass.BOUNDARY,
    OpKind.OUTPUT: OpClass.BOUNDARY,
    OpKind.AND: OpClass.BITWISE,
    OpKind.OR: OpClass.BITWISE,
    OpKind.XOR: OpClass.BITWISE,
    OpKind.NOT: OpClass.BITWISE,
    OpKind.MUX: OpClass.BITWISE,
    OpKind.SHL: OpClass.SHIFT,
    OpKind.SHR: OpClass.SHIFT,
    OpKind.TRUNC: OpClass.SHIFT,
    OpKind.ZEXT: OpClass.SHIFT,
    OpKind.SLICE: OpClass.SHIFT,
    OpKind.CONCAT: OpClass.SHIFT,
    OpKind.ADD: OpClass.ARITH,
    OpKind.SUB: OpClass.ARITH,
    OpKind.NEG: OpClass.ARITH,
    OpKind.EQ: OpClass.ARITH,
    OpKind.NE: OpClass.ARITH,
    OpKind.LT: OpClass.ARITH,
    OpKind.GE: OpClass.ARITH,
    OpKind.SLT: OpClass.ARITH,
    OpKind.SGE: OpClass.ARITH,
    OpKind.VSHL: OpClass.ARITH,
    OpKind.VSHR: OpClass.ARITH,
    OpKind.LOAD: OpClass.BLACKBOX,
    OpKind.STORE: OpClass.BLACKBOX,
    OpKind.MUL: OpClass.BLACKBOX,
    OpKind.DIV: OpClass.BLACKBOX,
    OpKind.MOD: OpClass.BLACKBOX,
}

# Expected operand count per kind; None means "any positive number".
_ARITY: dict[OpKind, int | None] = {
    OpKind.INPUT: 0,
    OpKind.CONST: 0,
    OpKind.OUTPUT: 1,
    OpKind.AND: 2,
    OpKind.OR: 2,
    OpKind.XOR: 2,
    OpKind.NOT: 1,
    OpKind.MUX: 3,
    OpKind.SHL: 1,
    OpKind.SHR: 1,
    OpKind.TRUNC: 1,
    OpKind.ZEXT: 1,
    OpKind.SLICE: 1,
    OpKind.CONCAT: 2,
    OpKind.ADD: 2,
    OpKind.SUB: 2,
    OpKind.NEG: 1,
    OpKind.EQ: 2,
    OpKind.NE: 2,
    OpKind.LT: 2,
    OpKind.GE: 2,
    OpKind.SLT: 2,
    OpKind.SGE: 2,
    OpKind.VSHL: 2,
    OpKind.VSHR: 2,
    OpKind.LOAD: 1,
    OpKind.STORE: 2,
    OpKind.MUL: 2,
    OpKind.DIV: 2,
    OpKind.MOD: 2,
}


def op_class_of(kind: OpKind) -> OpClass:
    """Return the :class:`OpClass` of an :class:`OpKind`."""
    return _CLASS_OF[kind]


def arity_of(kind: OpKind) -> int | None:
    """Return the required operand count for ``kind`` (``None`` = variadic)."""
    return _ARITY[kind]

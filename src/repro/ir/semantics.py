"""Word-level operation semantics.

A single place defines what every :class:`~repro.ir.types.OpKind` computes.
It is shared by the functional simulator, the cycle-accurate pipeline
simulator, the constant folder, and the Verilog emitter's self-checks, so a
semantic bug cannot hide in just one consumer.

All values are Python ints in ``[0, 2**width)``; signed interpretation is
applied locally where an operation requires it.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SimulationError
from .node import Node
from .types import OpKind

__all__ = ["mask", "to_signed", "eval_node"]


def mask(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (two's-complement wrap)."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Reinterpret an unsigned ``width``-bit value as two's-complement."""
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def eval_node(node: Node, args: Sequence[int], widths: Sequence[int]) -> int:
    """Evaluate ``node`` given operand values ``args`` of bit widths ``widths``.

    Black-box memory operations are *not* evaluated here — the simulator
    provides a memory model for them; calling this on LOAD/STORE raises.
    """
    kind = node.kind
    w = node.width

    if kind is OpKind.CONST:
        return mask(int(node.value), w)
    if kind is OpKind.INPUT:
        raise SimulationError(f"input node {node.nid} has no intrinsic value")
    if kind is OpKind.OUTPUT:
        return mask(args[0], w)

    if kind is OpKind.AND:
        return mask(args[0] & args[1], w)
    if kind is OpKind.OR:
        return mask(args[0] | args[1], w)
    if kind is OpKind.XOR:
        return mask(args[0] ^ args[1], w)
    if kind is OpKind.NOT:
        return mask(~args[0], w)
    if kind is OpKind.MUX:
        return mask(args[1] if args[0] & 1 else args[2], w)

    if kind is OpKind.SHL:
        return mask(args[0] << node.amount, w)
    if kind is OpKind.SHR:
        return mask(args[0] >> node.amount, w)
    if kind is OpKind.TRUNC:
        return mask(args[0], w)
    if kind is OpKind.ZEXT:
        return mask(args[0], w)
    if kind is OpKind.SLICE:
        return mask(args[0] >> node.amount, w)
    if kind is OpKind.CONCAT:
        lo, hi = args
        return mask(lo | (hi << widths[0]), w)

    if kind is OpKind.ADD:
        return mask(args[0] + args[1], w)
    if kind is OpKind.SUB:
        return mask(args[0] - args[1], w)
    if kind is OpKind.NEG:
        return mask(-args[0], w)
    if kind is OpKind.EQ:
        return int(args[0] == args[1])
    if kind is OpKind.NE:
        return int(args[0] != args[1])
    if kind is OpKind.LT:
        return int(args[0] < args[1])
    if kind is OpKind.GE:
        return int(args[0] >= args[1])
    if kind is OpKind.SLT:
        return int(to_signed(args[0], widths[0]) < to_signed(args[1], widths[1]))
    if kind is OpKind.SGE:
        return int(to_signed(args[0], widths[0]) >= to_signed(args[1], widths[1]))
    if kind is OpKind.VSHL:
        return mask(args[0] << min(args[1], w), w)
    if kind is OpKind.VSHR:
        return mask(args[0] >> min(args[1], w), w)

    if kind is OpKind.MUL:
        return mask(args[0] * args[1], w)
    if kind is OpKind.DIV:
        if args[1] == 0:
            raise SimulationError(f"node {node.nid}: division by zero")
        return mask(args[0] // args[1], w)
    if kind is OpKind.MOD:
        if args[1] == 0:
            raise SimulationError(f"node {node.nid}: modulo by zero")
        return mask(args[0] % args[1], w)

    raise SimulationError(f"cannot evaluate {kind.value} node {node.nid} directly")

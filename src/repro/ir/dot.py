"""Graphviz DOT export for CDFGs and schedules (debugging / figures)."""

from __future__ import annotations

from typing import Callable, Mapping

from .graph import CDFG
from .types import OpClass

__all__ = ["to_dot"]

_CLASS_COLORS = {
    OpClass.BOUNDARY: "lightgray",
    OpClass.BITWISE: "lightblue",
    OpClass.SHIFT: "lightyellow",
    OpClass.ARITH: "lightgreen",
    OpClass.BLACKBOX: "lightsalmon",
}


def to_dot(
    graph: CDFG,
    cycle_of: Mapping[int, int] | None = None,
    highlight_roots: set[int] | None = None,
    extra_label: Callable[[int], str] | None = None,
) -> str:
    """Render the graph as DOT text.

    Parameters
    ----------
    cycle_of:
        Optional schedule; when given, nodes are clustered by pipeline cycle
        (this reproduces the visual layout of the paper's Figure 1).
    highlight_roots:
        Node ids drawn with a bold border (selected LUT roots).
    extra_label:
        Optional per-node label suffix provider.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;", "  node [shape=box];"]

    def node_line(node) -> str:
        label = f"{node.label}\\n[{node.width}b]"
        if extra_label is not None:
            suffix = extra_label(node.nid)
            if suffix:
                label += f"\\n{suffix}"
        color = _CLASS_COLORS[node.op_class]
        pen = ' penwidth=3 color="red"' if highlight_roots and node.nid in highlight_roots else ""
        return f'    n{node.nid} [label="{label}" style=filled fillcolor="{color}"{pen}];'

    if cycle_of:
        by_cycle: dict[int, list] = {}
        unscheduled = []
        for node in graph:
            if node.nid in cycle_of:
                by_cycle.setdefault(cycle_of[node.nid], []).append(node)
            else:
                unscheduled.append(node)
        for cycle in sorted(by_cycle):
            lines.append(f"  subgraph cluster_c{cycle} {{")
            lines.append(f'    label="cycle {cycle}";')
            for node in by_cycle[cycle]:
                lines.append(node_line(node))
            lines.append("  }")
        for node in unscheduled:
            lines.append(node_line(node))
    else:
        for node in graph:
            lines.append(node_line(node))

    for node in graph:
        for op in node.operands:
            style = "" if op.distance == 0 else f' [style=dashed label="d={op.distance}"]'
            lines.append(f"  n{op.source} -> n{node.nid}{style};")
    lines.append("}")
    return "\n".join(lines)

"""The control data-flow graph (CDFG) container.

A :class:`CDFG` holds word-level operations (:class:`~repro.ir.node.Node`)
connected by dependence edges with iteration distances. Distance-0 edges must
form a DAG (combinational dependences within one loop iteration); edges with
distance >= 1 close loop-carried recurrences and may create cycles, exactly as
in the paper's Figure 2 (nodes D and E).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import networkx as nx

from ..errors import IRError, ValidationError
from .node import Node, Operand
from .types import OpKind

__all__ = ["CDFG", "Use"]


@dataclass(frozen=True)
class Use:
    """One use of a node's value: consumer id, operand slot, and distance."""

    consumer: int
    operand_index: int
    distance: int


class CDFG:
    """A word-level control data-flow graph for one pipelined loop body.

    The graph is the unit of work for cut enumeration and scheduling: its
    nodes are the operations of one loop iteration, and loop-carried values
    are expressed as operand edges with ``distance >= 1``.
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._next_id = 0
        self._uses: dict[int, list[Use]] = {}
        self._topo_cache: list[int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        kind: OpKind,
        width: int,
        operands: Iterable[Operand | int] = (),
        **attrs: Any,
    ) -> Node:
        """Create a node and wire its operand edges.

        Operands may be given as :class:`Operand` objects or bare node ids
        (meaning distance 0). Sources must already exist in the graph —
        except for loop-carried (distance >= 1) operands, which may point
        forward to nodes added later; use :meth:`set_operand` to patch
        recurrences, or pass the id once the source exists.
        """
        ops: list[Operand] = []
        for op in operands:
            if isinstance(op, int):
                op = Operand(op)
            if op.source not in self._nodes and op.distance == 0:
                raise IRError(f"operand source {op.source} not in graph")
            ops.append(op)
        node = Node(nid=self._next_id, kind=kind, width=width, operands=ops, **attrs)
        self._nodes[node.nid] = node
        self._uses.setdefault(node.nid, [])
        self._next_id += 1
        self._invalidate()
        return node

    def set_operand(self, nid: int, index: int, operand: Operand | int) -> None:
        """Replace operand ``index`` of node ``nid`` (used to close cycles)."""
        if isinstance(operand, int):
            operand = Operand(operand)
        node = self.node(nid)
        if not 0 <= index < len(node.operands):
            raise IRError(f"node {nid} has no operand {index}")
        node.operands[index] = operand
        self._invalidate()

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._uses_valid = False
        # Structure changed: memoized analysis results (e.g. dataflow
        # fixpoints) describe the old shape and must be recomputed.
        self._analysis_cache: dict = {}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, nid: int) -> Node:
        """Return the node with id ``nid`` (raises :class:`IRError` if absent)."""
        try:
            return self._nodes[nid]
        except KeyError:
            raise IRError(f"no node with id {nid}") from None

    def __contains__(self, nid: int) -> bool:
        return nid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def node_ids(self) -> list[int]:
        """All node ids in insertion order."""
        return list(self._nodes)

    def nodes_of_kind(self, *kinds: OpKind) -> list[Node]:
        """All nodes whose kind is one of ``kinds``, in insertion order."""
        wanted = set(kinds)
        return [n for n in self._nodes.values() if n.kind in wanted]

    @property
    def inputs(self) -> list[Node]:
        """Primary input nodes."""
        return self.nodes_of_kind(OpKind.INPUT)

    @property
    def outputs(self) -> list[Node]:
        """Primary output nodes."""
        return self.nodes_of_kind(OpKind.OUTPUT)

    @property
    def constants(self) -> list[Node]:
        """Constant nodes."""
        return self.nodes_of_kind(OpKind.CONST)

    def uses(self, nid: int) -> list[Use]:
        """All uses of node ``nid`` as (consumer, slot, distance) triples."""
        self._rebuild_uses()
        return list(self._uses.get(nid, ()))

    def successor_ids(self, nid: int) -> list[int]:
        """Unique consumer node ids of ``nid`` (any distance)."""
        seen: dict[int, None] = {}
        for use in self.uses(nid):
            seen.setdefault(use.consumer, None)
        return list(seen)

    def _rebuild_uses(self) -> None:
        if getattr(self, "_uses_valid", False):
            return
        uses: dict[int, list[Use]] = {nid: [] for nid in self._nodes}
        for node in self._nodes.values():
            for idx, op in enumerate(node.operands):
                if op.source in uses:
                    uses[op.source].append(Use(node.nid, idx, op.distance))
        self._uses = uses
        self._uses_valid = True

    # ------------------------------------------------------------------
    # Orderings and structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Node ids in topological order over distance-0 edges.

        Loop-carried edges are ignored for ordering purposes (their values
        come from a previous iteration, so they impose no intra-iteration
        order). Raises :class:`ValidationError` on a combinational cycle.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg: dict[int, int] = {nid: 0 for nid in self._nodes}
        for node in self._nodes.values():
            for op in node.operands:
                if op.distance == 0 and op.source in self._nodes:
                    indeg[node.nid] += 1
        queue = deque(nid for nid, d in indeg.items() if d == 0)
        order: list[int] = []
        while queue:
            nid = queue.popleft()
            order.append(nid)
            for use in self.uses(nid):
                if use.distance == 0:
                    indeg[use.consumer] -= 1
                    if indeg[use.consumer] == 0:
                        queue.append(use.consumer)
        if len(order) != len(self._nodes):
            cyclic = sorted(set(self._nodes) - set(order))
            raise ValidationError(f"combinational cycle through nodes {cyclic[:10]}")
        self._topo_cache = order
        return list(order)

    def to_networkx(self, include_back_edges: bool = True) -> nx.MultiDiGraph:
        """Export to a networkx multigraph (edge attr ``distance``)."""
        g = nx.MultiDiGraph(name=self.name)
        for node in self._nodes.values():
            g.add_node(node.nid, kind=node.kind.value, width=node.width)
        for node in self._nodes.values():
            for op in node.operands:
                if op.distance == 0 or include_back_edges:
                    g.add_edge(op.source, node.nid, distance=op.distance)
        return g

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def op_histogram(self) -> Counter[str]:
        """Count of nodes per kind name (for reports and Table 2 sizes)."""
        return Counter(node.kind.value for node in self._nodes.values())

    @property
    def num_operations(self) -> int:
        """Number of non-boundary nodes (the paper's "instruction" count)."""
        return sum(1 for n in self._nodes.values() if not n.is_boundary)

    def total_bits(self) -> int:
        """Sum of widths over all non-boundary nodes."""
        return sum(n.width for n in self._nodes.values() if not n.is_boundary)

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "CDFG":
        """Deep-copy the graph (nodes are re-created, ids preserved)."""
        clone = CDFG(name or self.name)
        clone._next_id = self._next_id
        for node in self._nodes.values():
            clone._nodes[node.nid] = Node(
                nid=node.nid,
                kind=node.kind,
                width=node.width,
                operands=list(node.operands),
                name=node.name,
                value=node.value,
                amount=node.amount,
                rclass=node.rclass,
                delay_override=node.delay_override,
                signed=node.signed,
                attrs=dict(node.attrs),
            )
        clone._invalidate()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CDFG({self.name!r}, {len(self)} nodes, {self.num_operations} ops)"

"""A small DSL for constructing CDFGs.

The builder hands out :class:`Value` objects that overload Python operators,
so benchmark generators read like the dataflow they describe::

    b = DFGBuilder("gf_mult", width=8)
    a, x = b.input("a"), b.input("x")
    prod = (a ^ x) & b.const(0x1D)
    b.output(prod >> 1, "out")
    graph = b.build()

Loop-carried values (the paper's inter-iteration dependences) are created
with :meth:`DFGBuilder.recurrence` and closed with :meth:`Value.feed`.
"""

from __future__ import annotations

from typing import Any

from ..errors import IRError
from .graph import CDFG
from .node import Operand
from .types import OpKind

__all__ = ["DFGBuilder", "Value"]


class Value:
    """A handle to a node's output inside a :class:`DFGBuilder`."""

    __slots__ = ("builder", "nid")

    def __init__(self, builder: "DFGBuilder", nid: int) -> None:
        self.builder = builder
        self.nid = nid

    @property
    def node(self):
        """The underlying IR node."""
        return self.builder.graph.node(self.nid)

    @property
    def width(self) -> int:
        """Bit width of this value."""
        return self.node.width

    # -- bitwise ---------------------------------------------------------
    def __and__(self, other: "Value | int") -> "Value":
        return self.builder.op(OpKind.AND, self, other)

    def __or__(self, other: "Value | int") -> "Value":
        return self.builder.op(OpKind.OR, self, other)

    def __xor__(self, other: "Value | int") -> "Value":
        return self.builder.op(OpKind.XOR, self, other)

    def __invert__(self) -> "Value":
        return self.builder.op(OpKind.NOT, self)

    # -- shifts (constant amounts) ----------------------------------------
    def __lshift__(self, amount: int) -> "Value":
        return self.builder.shift(self, amount, left=True)

    def __rshift__(self, amount: int) -> "Value":
        return self.builder.shift(self, amount, left=False)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "Value | int") -> "Value":
        return self.builder.op(OpKind.ADD, self, other)

    def __sub__(self, other: "Value | int") -> "Value":
        return self.builder.op(OpKind.SUB, self, other)

    def __neg__(self) -> "Value":
        return self.builder.op(OpKind.NEG, self)

    def __mul__(self, other: "Value | int") -> "Value":
        return self.builder.op(OpKind.MUL, self, other)

    # -- comparisons (1-bit results) ----------------------------------------
    def eq(self, other: "Value | int") -> "Value":
        """Equality comparison (1-bit result)."""
        return self.builder.op(OpKind.EQ, self, other, width=1)

    def ne(self, other: "Value | int") -> "Value":
        """Inequality comparison (1-bit result)."""
        return self.builder.op(OpKind.NE, self, other, width=1)

    def lt(self, other: "Value | int") -> "Value":
        """Unsigned less-than (1-bit result)."""
        return self.builder.op(OpKind.LT, self, other, width=1)

    def ge(self, other: "Value | int") -> "Value":
        """Unsigned greater-or-equal (1-bit result)."""
        return self.builder.op(OpKind.GE, self, other, width=1)

    def slt(self, other: "Value | int") -> "Value":
        """Signed less-than (1-bit result)."""
        return self.builder.op(OpKind.SLT, self, other, width=1)

    def sge(self, other: "Value | int") -> "Value":
        """Signed greater-or-equal (1-bit result)."""
        return self.builder.op(OpKind.SGE, self, other, width=1)

    # -- width management -----------------------------------------------------
    def trunc(self, width: int) -> "Value":
        """Keep the low ``width`` bits."""
        return self.builder.op(OpKind.TRUNC, self, width=width)

    def zext(self, width: int) -> "Value":
        """Zero-extend to ``width`` bits."""
        return self.builder.op(OpKind.ZEXT, self, width=width)

    def slice(self, lo: int, width: int) -> "Value":
        """Extract ``width`` bits starting at bit ``lo``."""
        return self.builder.slice(self, lo, width)

    def bit(self, index: int) -> "Value":
        """Extract a single bit."""
        return self.builder.slice(self, index, 1)

    # -- recurrences --------------------------------------------------------
    def feed(self, recurrence: "Value", distance: int = 1) -> None:
        """Close a loop: make ``recurrence`` carry this value across
        ``distance`` iterations. ``recurrence`` must come from
        :meth:`DFGBuilder.recurrence`."""
        self.builder.close_recurrence(recurrence, self, distance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value({self.node!r})"


class DFGBuilder:
    """Incrementally builds a :class:`CDFG`."""

    def __init__(self, name: str = "kernel", width: int = 32) -> None:
        self.graph = CDFG(name)
        self.default_width = width
        self._pending_recurrences: dict[int, bool] = {}
        self._const_cache: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def input(self, name: str, width: int | None = None) -> Value:
        """Declare a primary input."""
        node = self.graph.add_node(OpKind.INPUT, width or self.default_width, name=name)
        return Value(self, node.nid)

    def const(self, value: int, width: int | None = None) -> Value:
        """Materialize a constant (deduplicated per (value, width))."""
        w = width or self.default_width
        masked = value & ((1 << w) - 1)
        key = (masked, w)
        if key not in self._const_cache:
            node = self.graph.add_node(OpKind.CONST, w, value=masked)
            self._const_cache[key] = node.nid
        return Value(self, self._const_cache[key])

    def output(self, value: Value, name: str) -> Value:
        """Declare a primary output fed by ``value``."""
        node = self.graph.add_node(
            OpKind.OUTPUT, value.width, operands=[value.nid], name=name
        )
        return Value(self, node.nid)

    # ------------------------------------------------------------------
    def _coerce(self, x: "Value | int", width: int) -> Value:
        if isinstance(x, Value):
            return x
        return self.const(x, width)

    def op(
        self,
        kind: OpKind,
        *args: "Value | int",
        width: int | None = None,
        **attrs: Any,
    ) -> Value:
        """Create an operation node from Values and/or int literals."""
        ref_width = width
        if ref_width is None:
            widths = [a.width for a in args if isinstance(a, Value)]
            ref_width = max(widths) if widths else self.default_width
        lit_width = max(
            [a.width for a in args if isinstance(a, Value)], default=ref_width
        )
        values = [self._coerce(a, lit_width) for a in args]
        node = self.graph.add_node(
            kind, ref_width, operands=[v.nid for v in values], **attrs
        )
        return Value(self, node.nid)

    def mux(self, sel: "Value | int", a: "Value | int", b: "Value | int") -> Value:
        """``sel ? a : b`` — operand order is (sel, a, b)."""
        widths = [x.width for x in (a, b) if isinstance(x, Value)]
        w = max(widths) if widths else self.default_width
        sel_v = self._coerce(sel, 1)
        a_v = self._coerce(a, w)
        b_v = self._coerce(b, w)
        node = self.graph.add_node(OpKind.MUX, w, operands=[sel_v.nid, a_v.nid, b_v.nid])
        return Value(self, node.nid)

    def shift(self, value: Value, amount: int, left: bool) -> Value:
        """Constant-amount shift (amount stored on the node)."""
        if amount < 0:
            raise IRError(f"negative shift amount {amount}")
        kind = OpKind.SHL if left else OpKind.SHR
        node = self.graph.add_node(kind, value.width, operands=[value.nid], amount=amount)
        return Value(self, node.nid)

    def slice(self, value: Value, lo: int, width: int) -> Value:
        """Extract bits ``[lo, lo+width)``."""
        node = self.graph.add_node(OpKind.SLICE, width, operands=[value.nid], amount=lo)
        return Value(self, node.nid)

    def concat(self, hi: Value, lo: Value) -> Value:
        """Concatenate: result is ``{hi, lo}`` with width ``hi.width+lo.width``."""
        node = self.graph.add_node(
            OpKind.CONCAT, hi.width + lo.width, operands=[lo.nid, hi.nid]
        )
        return Value(self, node.nid)

    def blackbox(
        self,
        kind: OpKind,
        *args: "Value | int",
        width: int | None = None,
        rclass: str | None = None,
        delay: float | None = None,
        name: str | None = None,
    ) -> Value:
        """Create a black-box operation (memory port, DSP multiply, ...)."""
        w = width or self.default_width
        values = [self._coerce(a, w) for a in args]
        node = self.graph.add_node(
            kind,
            w,
            operands=[v.nid for v in values],
            rclass=rclass,
            delay_override=delay,
            name=name,
        )
        return Value(self, node.nid)

    def load(self, address: "Value | int", width: int | None = None,
             rclass: str = "mem_port", name: str | None = None) -> Value:
        """Black-box memory read."""
        return self.blackbox(OpKind.LOAD, address, width=width, rclass=rclass, name=name)

    # ------------------------------------------------------------------
    # Recurrences (loop-carried values)
    # ------------------------------------------------------------------
    def recurrence(self, name: str, width: int | None = None,
                   initial: int = 0) -> Value:
        """Declare a loop-carried value before its producer exists.

        Returns a placeholder Value that may be used as an operand now; the
        producer is attached later via :meth:`Value.feed`. The placeholder is
        a 1-operand MUX-free pass-through implemented as an OR with zero so
        that it stays a mappable bitwise node; its single real operand is
        patched when the loop is closed.
        """
        w = width or self.default_width
        zero = self.const(0, w)
        node = self.graph.add_node(
            OpKind.OR, w, operands=[zero.nid, zero.nid], name=name
        )
        node.attrs["recurrence"] = True
        node.attrs["initial"] = initial
        self._pending_recurrences[node.nid] = True
        return Value(self, node.nid)

    def close_recurrence(self, placeholder: Value, producer: Value,
                         distance: int = 1) -> None:
        """Attach ``producer`` as the loop-carried source of ``placeholder``."""
        if not self._pending_recurrences.pop(placeholder.nid, False):
            raise IRError(f"node {placeholder.nid} is not an open recurrence")
        if distance < 1:
            raise IRError("recurrence distance must be >= 1")
        self.graph.set_operand(placeholder.nid, 1, Operand(producer.nid, distance))
        # The declared initial value architecturally lives in the register
        # that carries the producer's value across iterations; simulators
        # and the RTL emitter read it off the *producer*.
        initial = placeholder.node.attrs.get("initial", 0)
        existing = producer.node.attrs.get("initial")
        if existing is not None and existing != initial:
            raise IRError(
                f"node {producer.nid} feeds recurrences with conflicting "
                f"initial values ({existing} vs {initial})"
            )
        producer.node.attrs["initial"] = initial

    # ------------------------------------------------------------------
    def build(self) -> CDFG:
        """Finalize and return the graph (validates it first)."""
        if self._pending_recurrences:
            open_ids = sorted(self._pending_recurrences)
            raise IRError(f"unclosed recurrences: {open_ids}")
        from .validate import validate

        validate(self.graph)
        return self.graph

"""JSON (de)serialization for CDFGs.

Lets users save generated kernels, ship reproducers, and diff designs.
The format is versioned and intentionally explicit — one object per node
with every semantic field; ``attrs`` round-trips as-is (values must be
JSON-serializable, which all library-set attrs are).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import IRError
from .graph import CDFG
from .node import Operand
from .types import OpKind
from .validate import validate

__all__ = ["graph_to_dict", "graph_from_dict", "dumps", "loads",
           "save_graph", "load_graph"]

FORMAT_VERSION = 1


def graph_to_dict(graph: CDFG) -> dict[str, Any]:
    """Serialize to a plain dict (stable key order for clean diffs)."""
    nodes = []
    for nid in graph.node_ids:
        node = graph.node(nid)
        entry: dict[str, Any] = {
            "id": node.nid,
            "kind": node.kind.value,
            "width": node.width,
            "operands": [[op.source, op.distance] for op in node.operands],
        }
        if node.name is not None:
            entry["name"] = node.name
        if node.value is not None:
            entry["value"] = node.value
        if node.amount is not None:
            entry["amount"] = node.amount
        if node.rclass is not None:
            entry["rclass"] = node.rclass
        if node.delay_override is not None:
            entry["delay_override"] = node.delay_override
        if node.signed:
            entry["signed"] = True
        if node.attrs:
            entry["attrs"] = dict(node.attrs)
        nodes.append(entry)
    return {"format": FORMAT_VERSION, "name": graph.name, "nodes": nodes}


def graph_from_dict(data: dict[str, Any], check: bool = True) -> CDFG:
    """Deserialize; validates structure unless ``check=False``."""
    if data.get("format") != FORMAT_VERSION:
        raise IRError(f"unsupported CDFG format {data.get('format')!r}")
    graph = CDFG(data.get("name", "cdfg"))
    entries = data.get("nodes", [])
    # First pass: create nodes in id order with placeholder operands so
    # arbitrary forward references deserialize cleanly.
    by_id = sorted(entries, key=lambda e: e["id"])
    expected = 0
    for entry in by_id:
        if entry["id"] != expected:
            raise IRError(
                f"node ids must be dense starting at 0; missing {expected}"
            )
        expected += 1
        node = graph.add_node(
            OpKind(entry["kind"]),
            entry["width"],
            operands=[Operand(op[0], op[1]) for op in entry["operands"]]
            if all(op[1] > 0 or op[0] < entry["id"]
                   for op in entry["operands"]) else [],
            name=entry.get("name"),
            value=entry.get("value"),
            amount=entry.get("amount"),
            rclass=entry.get("rclass"),
            delay_override=entry.get("delay_override"),
            signed=entry.get("signed", False),
            attrs=dict(entry.get("attrs", {})),
        )
        if not node.operands and entry["operands"]:
            # second chance below once every node exists
            node.attrs["_pending_operands"] = entry["operands"]
    for node in graph:
        pending = node.attrs.pop("_pending_operands", None)
        if pending is not None:
            node.operands.extend(Operand(op[0], op[1]) for op in pending)
    graph._invalidate()
    if check:
        validate(graph)
    return graph


def dumps(graph: CDFG, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str, check: bool = True) -> CDFG:
    """Deserialize from a JSON string."""
    return graph_from_dict(json.loads(text), check=check)


def save_graph(graph: CDFG, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load_graph(path: str, check: bool = True) -> CDFG:
    """Read a graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), check=check)

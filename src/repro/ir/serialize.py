"""JSON (de)serialization for CDFGs.

Lets users save generated kernels, ship reproducers, and diff designs.
The format is versioned and intentionally explicit — one object per node
with every semantic field; ``attrs`` round-trips as-is (values must be
JSON-serializable, which all library-set attrs are).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import IRError
from .graph import CDFG
from .node import Operand
from .types import OpKind
from .validate import validate

__all__ = ["graph_to_dict", "graph_from_dict", "dumps", "loads",
           "save_graph", "load_graph", "cut_to_dict", "cut_from_dict",
           "cover_to_list", "cover_from_list", "schedule_to_dict",
           "schedule_from_dict"]

FORMAT_VERSION = 1

SCHEDULE_FORMAT_VERSION = 1


def graph_to_dict(graph: CDFG) -> dict[str, Any]:
    """Serialize to a plain dict (stable key order for clean diffs)."""
    nodes = []
    for nid in graph.node_ids:
        node = graph.node(nid)
        entry: dict[str, Any] = {
            "id": node.nid,
            "kind": node.kind.value,
            "width": node.width,
            "operands": [[op.source, op.distance] for op in node.operands],
        }
        if node.name is not None:
            entry["name"] = node.name
        if node.value is not None:
            entry["value"] = node.value
        if node.amount is not None:
            entry["amount"] = node.amount
        if node.rclass is not None:
            entry["rclass"] = node.rclass
        if node.delay_override is not None:
            entry["delay_override"] = node.delay_override
        if node.signed:
            entry["signed"] = True
        if node.attrs:
            entry["attrs"] = dict(node.attrs)
        nodes.append(entry)
    return {"format": FORMAT_VERSION, "name": graph.name, "nodes": nodes}


def graph_from_dict(data: dict[str, Any], check: bool = True) -> CDFG:
    """Deserialize; validates structure unless ``check=False``."""
    if data.get("format") != FORMAT_VERSION:
        raise IRError(f"unsupported CDFG format {data.get('format')!r}")
    graph = CDFG(data.get("name", "cdfg"))
    entries = data.get("nodes", [])
    # First pass: create nodes in id order with placeholder operands so
    # arbitrary forward references deserialize cleanly.
    by_id = sorted(entries, key=lambda e: e["id"])
    expected = 0
    for entry in by_id:
        if entry["id"] != expected:
            raise IRError(
                f"node ids must be dense starting at 0; missing {expected}"
            )
        expected += 1
        node = graph.add_node(
            OpKind(entry["kind"]),
            entry["width"],
            operands=[Operand(op[0], op[1]) for op in entry["operands"]]
            if all(op[1] > 0 or op[0] < entry["id"]
                   for op in entry["operands"]) else [],
            name=entry.get("name"),
            value=entry.get("value"),
            amount=entry.get("amount"),
            rclass=entry.get("rclass"),
            delay_override=entry.get("delay_override"),
            signed=entry.get("signed", False),
            attrs=dict(entry.get("attrs", {})),
        )
        if not node.operands and entry["operands"]:
            # second chance below once every node exists
            node.attrs["_pending_operands"] = entry["operands"]
    for node in graph:
        pending = node.attrs.pop("_pending_operands", None)
        if pending is not None:
            node.operands.extend(Operand(op[0], op[1]) for op in pending)
    graph._invalidate()
    if check:
        validate(graph)
    return graph


# ----------------------------------------------------------------------
# Cover and schedule round-trip (flow-cache support)
# ----------------------------------------------------------------------
def cut_to_dict(cut) -> dict[str, Any]:
    """Serialize one :class:`~repro.cuts.cut.Cut` (fully explicit)."""
    return {
        "root": cut.root,
        "boundary": sorted(cut.boundary),
        "masks": list(cut.masks),
        "kind": cut.kind,
        "interior": sorted(cut.interior),
        "entries": [[nid, dist] for nid, dist in cut.entries],
    }


def cut_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.cuts.cut.Cut` from :func:`cut_to_dict`."""
    from ..cuts.cut import Cut

    return Cut(
        root=int(data["root"]),
        boundary=frozenset(int(n) for n in data["boundary"]),
        masks=tuple(int(m) for m in data["masks"]),
        kind=data.get("kind", "merged"),
        interior=frozenset(int(n) for n in data.get("interior", [])),
        entries=tuple((int(nid), int(dist))
                      for nid, dist in data.get("entries", [])),
    )


def cover_to_list(cover: dict[int, Any]) -> list[dict[str, Any]]:
    """Serialize a root-to-cut cover in stable (root id) order."""
    return [cut_to_dict(cover[root]) for root in sorted(cover)]


def cover_from_list(entries: list[dict[str, Any]]) -> dict[int, Any]:
    cover = {}
    for entry in entries:
        cut = cut_from_dict(entry)
        cover[cut.root] = cut
    return cover


def schedule_to_dict(schedule) -> dict[str, Any]:
    """Serialize a :class:`~repro.scheduling.schedule.Schedule` + cover.

    The embedded graph uses :func:`graph_to_dict`, so a schedule file is
    self-contained: it round-trips through JSON without access to the
    original builder.
    """
    return {
        "format": SCHEDULE_FORMAT_VERSION,
        "graph": graph_to_dict(schedule.graph),
        "ii": schedule.ii,
        "tcp": schedule.tcp,
        "cycle": {str(nid): c for nid, c in sorted(schedule.cycle.items())},
        "start": {str(nid): s for nid, s in sorted(schedule.start.items())},
        "cover": cover_to_list(schedule.cover),
        "method": schedule.method,
        "objective": schedule.objective,
        "solve_seconds": schedule.solve_seconds,
        "optimal": schedule.optimal,
    }


def schedule_from_dict(data: dict[str, Any], check: bool = True):
    """Rebuild a schedule (and its graph) from :func:`schedule_to_dict`."""
    from ..scheduling.schedule import Schedule

    if data.get("format") != SCHEDULE_FORMAT_VERSION:
        raise IRError(
            f"unsupported schedule format {data.get('format')!r}"
        )
    graph = graph_from_dict(data["graph"], check=check)
    objective = data.get("objective")
    return Schedule(
        graph=graph,
        ii=int(data["ii"]),
        tcp=float(data["tcp"]),
        cycle={int(nid): int(c) for nid, c in data.get("cycle", {}).items()},
        start={int(nid): float(s) for nid, s in data.get("start", {}).items()},
        cover=cover_from_list(data.get("cover", [])),
        method=data.get("method", "unknown"),
        objective=float(objective) if objective is not None else None,
        solve_seconds=float(data.get("solve_seconds", 0.0)),
        optimal=bool(data.get("optimal", True)),
    )


def dumps(graph: CDFG, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str, check: bool = True) -> CDFG:
    """Deserialize from a JSON string."""
    return graph_from_dict(json.loads(text), check=check)


def save_graph(graph: CDFG, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load_graph(path: str, check: bool = True) -> CDFG:
    """Read a graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), check=check)

"""Node and operand objects for the word-level CDFG."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import IRError
from .types import OpClass, OpKind, arity_of, op_class_of

__all__ = ["Operand", "Node"]


@dataclass(frozen=True)
class Operand:
    """A dependence edge endpoint: which node feeds this operand, and at
    what iteration distance.

    ``distance == 0`` is an intra-iteration (combinational) dependence;
    ``distance >= 1`` is a loop-carried dependence whose value crosses at
    least one pipeline-register boundary (footnote 1 of the paper).
    """

    source: int
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise IRError(f"negative dependence distance {self.distance}")


@dataclass
class Node:
    """One word-level operation in the CDFG.

    Attributes
    ----------
    nid:
        Unique integer id within the graph.
    kind:
        The operation performed.
    width:
        Number of output bits (``Bits(v)`` in the paper's Eq. 13/15).
    operands:
        Ordered dependence edges. Their order is semantically meaningful
        (e.g. ``SUB`` is ``operands[0] - operands[1]``).
    name:
        Optional human-readable label used in reports and DOT dumps.
    value:
        Constant value for ``CONST`` nodes.
    amount:
        Shift amount for ``SHL``/``SHR``, low bit for ``SLICE``.
    rclass:
        Resource class for black-box operations (Eq. 14); e.g. ``"mem_port"``.
    delay_override:
        If set, used instead of the device delay model for this node —
        this is how "back-annotated" delays from the HLS schedule report
        enter the flow (Sec. 4).
    signed:
        Whether the value should be interpreted as two's-complement by
        the functional simulator and by sign-dependent DEP refinements.
    attrs:
        Free-form metadata (used by frontends and experiments).
    """

    nid: int
    kind: OpKind
    width: int
    operands: list[Operand] = field(default_factory=list)
    name: str | None = None
    value: int | None = None
    amount: int | None = None
    rclass: str | None = None
    delay_override: float | None = None
    signed: bool = False
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise IRError(f"node {self.nid}: width must be positive, got {self.width}")
        arity = arity_of(self.kind)
        if arity is not None and len(self.operands) != arity:
            raise IRError(
                f"node {self.nid} ({self.kind.value}): expected {arity} operands, "
                f"got {len(self.operands)}"
            )
        if self.kind is OpKind.CONST and self.value is None:
            raise IRError(f"node {self.nid}: CONST requires a value")
        if self.kind in (OpKind.SHL, OpKind.SHR, OpKind.SLICE) and self.amount is None:
            raise IRError(f"node {self.nid}: {self.kind.value} requires an amount")
        if self.kind in (OpKind.SHL, OpKind.SHR, OpKind.SLICE) and self.amount < 0:
            raise IRError(f"node {self.nid}: negative amount {self.amount}")

    @property
    def op_class(self) -> OpClass:
        """The coarse operation class (drives DEP tracking)."""
        return op_class_of(self.kind)

    @property
    def is_boundary(self) -> bool:
        """True for INPUT/CONST/OUTPUT nodes."""
        return self.op_class is OpClass.BOUNDARY

    @property
    def is_blackbox(self) -> bool:
        """True for operations that are never mapped to LUTs."""
        return self.op_class is OpClass.BLACKBOX

    @property
    def is_mappable(self) -> bool:
        """True if cut enumeration may grow cones rooted at (or through) v."""
        return not self.is_boundary and not self.is_blackbox

    @property
    def source_ids(self) -> list[int]:
        """The operand source node ids, in operand order."""
        return [op.source for op in self.operands]

    @property
    def label(self) -> str:
        """A short display label: the name if set, else ``kind#id``."""
        if self.name:
            return self.name
        return f"{self.kind.value}#{self.nid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(
            f"{o.source}" + (f"@{o.distance}" if o.distance else "") for o in self.operands
        )
        return f"Node({self.nid}: {self.kind.value}[{self.width}] <- [{ops}])"

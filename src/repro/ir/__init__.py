"""Word-level CDFG intermediate representation.

Public surface: operation kinds (:class:`OpKind`, :class:`OpClass`), the
graph container (:class:`CDFG`), the construction DSL (:class:`DFGBuilder`),
validation, transforms, the kernel-language frontend and DOT export.
"""

from .builder import DFGBuilder, Value
from .dot import to_dot
from .frontend import compile_kernel
from .graph import CDFG, Use
from .node import Node, Operand
from .semantics import eval_node, mask, to_signed
from .serialize import dumps, graph_from_dict, graph_to_dict, load_graph, loads, save_graph
from .transforms import (
    balance_reduction_trees,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    rebuild,
)
from .types import (
    COMMUTATIVE_KINDS,
    COMPARISON_KINDS,
    OpClass,
    OpKind,
    arity_of,
    op_class_of,
)
from .validate import check_problems, validate

__all__ = [
    "CDFG",
    "COMMUTATIVE_KINDS",
    "COMPARISON_KINDS",
    "DFGBuilder",
    "Node",
    "OpClass",
    "OpKind",
    "Operand",
    "Use",
    "Value",
    "arity_of",
    "balance_reduction_trees",
    "check_problems",
    "compile_kernel",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "dumps",
    "eval_node",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "loads",
    "save_graph",
    "fold_constants",
    "mask",
    "op_class_of",
    "rebuild",
    "to_dot",
    "to_signed",
    "validate",
]

"""A tiny hardware-kernel language compiled to CDFGs.

The paper compiles C benchmarks through LLVM; here a small, explicit kernel
language plays that role so that examples and tests can describe dataflow
textually. Example::

    input a : 8
    input b : 8
    reg acc : 8 init 0
    t = (a ^ b) >> 1
    c = t >= 0x40
    nxt = mux(c, acc ^ t, acc + t)
    acc <= nxt
    output nxt : result

Statements
----------
``input NAME : WIDTH``
    Declare a primary input.
``reg NAME : WIDTH init VALUE``
    Declare a loop-carried register (a recurrence with distance 1).
``NAME = EXPR``
    Bind an intermediate value.
``NAME <= EXPR``
    Close the recurrence ``NAME`` with producer ``EXPR``.
``output EXPR [: NAME]``
    Declare a primary output.

Expressions support ``| ^ & + -`` (left-assoc, usual precedence), ``~``,
comparisons ``== != < >= <s >=s``, constant shifts ``<< >>``, bit slices
``x[hi:lo]`` and ``x[i]``, calls ``mux(c,a,b)``, ``zext(x,w)``,
``trunc(x,w)``, ``load(addr,w)``, ``mul(a,b)``, integer literals
(``0x..`` hex or decimal), and parentheses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import FrontendError
from .builder import DFGBuilder, Value
from .graph import CDFG

__all__ = ["compile_kernel"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=s|>=s|<s|<<|>>|<=|>=|==|!=|[()\[\]:,=~^&|+\-<])
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str
    text: str
    line: int


def _tokenize_line(text: str, line_no: int) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise FrontendError(f"line {line_no}: cannot tokenize at {text[pos:pos+10]!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, m.group(), line_no))
    return tokens


class _ExprParser:
    """Recursive-descent parser over one statement's tokens."""

    # precedence: | < ^ < & < (== !=) < (< >= <s >=s) < (<< >>) < (+ -) < unary
    def __init__(self, tokens: list[_Token], env: dict[str, Value],
                 builder: DFGBuilder, line: int) -> None:
        self.tokens = tokens
        self.pos = 0
        self.env = env
        self.builder = builder
        self.line = line

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, text: str | None = None) -> _Token:
        tok = self.peek()
        if tok is None:
            raise FrontendError(f"line {self.line}: unexpected end of statement")
        if text is not None and tok.text != text:
            raise FrontendError(f"line {self.line}: expected {text!r}, got {tok.text!r}")
        self.pos += 1
        return tok

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # each level returns a Value or int literal (ints are coerced lazily so
    # widths come from the Value side of a binary op)
    def parse(self) -> "Value | int":
        return self._or()

    def _binary(self, sub, ops: dict[str, str]):
        left = sub()
        while (tok := self.peek()) is not None and tok.text in ops:
            self.take()
            right = sub()
            left = self._apply(ops[tok.text], left, right)
        return left

    def _or(self):
        return self._binary(self._xor, {"|": "or"})

    def _xor(self):
        return self._binary(self._and, {"^": "xor"})

    def _and(self):
        return self._binary(self._eqne, {"&": "and"})

    def _eqne(self):
        return self._binary(self._rel, {"==": "eq", "!=": "ne"})

    def _rel(self):
        return self._binary(self._shift, {"<": "lt", ">=": "ge",
                                          "<s": "slt", ">=s": "sge"})

    def _shift(self):
        left = self._sum()
        while (tok := self.peek()) is not None and tok.text in ("<<", ">>"):
            self.take()
            amount = self._sum()
            if not isinstance(amount, int):
                raise FrontendError(
                    f"line {self.line}: shift amounts must be integer literals"
                )
            left = self._as_value(left)
            left = left << amount if tok.text == "<<" else left >> amount
        return left

    def _sum(self):
        return self._binary(self._unary, {"+": "add", "-": "sub"})

    def _unary(self):
        tok = self.peek()
        if tok is not None and tok.text == "~":
            self.take()
            return ~self._as_value(self._unary())
        if tok is not None and tok.text == "-":
            self.take()
            return -self._as_value(self._unary())
        return self._postfix()

    def _postfix(self):
        value = self._atom()
        while (tok := self.peek()) is not None and tok.text == "[":
            self.take("[")
            hi = self.take()
            if hi.kind != "num":
                raise FrontendError(f"line {self.line}: slice bounds must be literals")
            hi_v = int(hi.text, 0)
            if self.peek() is not None and self.peek().text == ":":
                self.take(":")
                lo = self.take()
                if lo.kind != "num":
                    raise FrontendError(f"line {self.line}: slice bounds must be literals")
                lo_v = int(lo.text, 0)
            else:
                lo_v = hi_v
            self.take("]")
            value = self._as_value(value).slice(lo_v, hi_v - lo_v + 1)
        return value

    def _atom(self):
        tok = self.take()
        if tok.text == "(":
            inner = self.parse()
            self.take(")")
            return inner
        if tok.kind == "num":
            return int(tok.text, 0)
        if tok.kind == "name":
            nxt = self.peek()
            if nxt is not None and nxt.text == "(":
                return self._call(tok.text)
            if tok.text not in self.env:
                raise FrontendError(f"line {self.line}: undefined name {tok.text!r}")
            return self.env[tok.text]
        raise FrontendError(f"line {self.line}: unexpected token {tok.text!r}")

    def _call(self, fname: str):
        self.take("(")
        args: list[Value | int] = []
        if self.peek() is not None and self.peek().text != ")":
            args.append(self.parse())
            while self.peek() is not None and self.peek().text == ",":
                self.take(",")
                args.append(self.parse())
        self.take(")")
        b = self.builder
        if fname == "mux" and len(args) == 3:
            return b.mux(args[0], self._as_value(args[1]), self._as_value(args[2]))
        if fname == "zext" and len(args) == 2 and isinstance(args[1], int):
            return self._as_value(args[0]).zext(args[1])
        if fname == "trunc" and len(args) == 2 and isinstance(args[1], int):
            return self._as_value(args[0]).trunc(args[1])
        if fname == "load" and len(args) == 2 and isinstance(args[1], int):
            return b.load(self._as_value(args[0]), width=args[1])
        if fname == "mul" and len(args) == 2:
            return self._as_value(args[0]) * args[1]
        raise FrontendError(f"line {self.line}: unknown call {fname}({len(args)} args)")

    def _apply(self, opname: str, left, right):
        if isinstance(left, int) and isinstance(right, int):
            raise FrontendError(
                f"line {self.line}: at least one operand of {opname} must be a value"
            )
        if isinstance(left, int):
            # Materialize the literal at the value operand's width; swapping
            # would be wrong for non-commutative operations like `-`.
            left = self.builder.const(left, right.width)
        method = {
            "or": left.__or__, "xor": left.__xor__, "and": left.__and__,
            "add": left.__add__, "sub": left.__sub__,
            "eq": left.eq, "ne": left.ne, "lt": left.lt, "ge": left.ge,
            "slt": left.slt, "sge": left.sge,
        }[opname]
        return method(right)

    def _as_value(self, x: "Value | int") -> Value:
        if isinstance(x, Value):
            return x
        return self.builder.const(x)


def compile_kernel(source: str, name: str = "kernel",
                   default_width: int = 32) -> CDFG:
    """Compile kernel-language source text into a validated :class:`CDFG`."""
    builder = DFGBuilder(name, width=default_width)
    env: dict[str, Value] = {}
    regs: dict[str, Value] = {}

    for line_no, raw in enumerate(source.splitlines(), start=1):
        tokens = _tokenize_line(raw, line_no)
        if not tokens:
            continue
        head = tokens[0]

        if head.text == "input":
            if len(tokens) != 4 or tokens[2].text != ":" or tokens[3].kind != "num":
                raise FrontendError(f"line {line_no}: expected 'input NAME : WIDTH'")
            nm = tokens[1].text
            env[nm] = builder.input(nm, int(tokens[3].text, 0))
            continue

        if head.text == "reg":
            if (len(tokens) != 6 or tokens[2].text != ":" or tokens[3].kind != "num"
                    or tokens[4].text != "init" or tokens[5].kind != "num"):
                raise FrontendError(
                    f"line {line_no}: expected 'reg NAME : WIDTH init VALUE'"
                )
            nm = tokens[1].text
            reg = builder.recurrence(nm, int(tokens[3].text, 0),
                                     initial=int(tokens[5].text, 0))
            env[nm] = reg
            regs[nm] = reg
            continue

        if head.text == "output":
            parser = _ExprParser(tokens[1:], env, builder, line_no)
            value = parser._as_value(parser.parse())
            out_name = "out"
            if not parser.at_end():
                parser.take(":")
                out_name = parser.take().text
            if not parser.at_end():
                raise FrontendError(f"line {line_no}: trailing tokens")
            builder.output(value, out_name)
            continue

        if head.kind == "name" and len(tokens) >= 2 and tokens[1].text in ("=", "<="):
            assign_op = tokens[1].text
            parser = _ExprParser(tokens[2:], env, builder, line_no)
            value = parser._as_value(parser.parse())
            if not parser.at_end():
                raise FrontendError(f"line {line_no}: trailing tokens")
            if assign_op == "=":
                if head.text in regs:
                    raise FrontendError(
                        f"line {line_no}: use '<=' to update register {head.text!r}"
                    )
                env[head.text] = value
            else:
                if head.text not in regs:
                    raise FrontendError(f"line {line_no}: {head.text!r} is not a reg")
                value.feed(regs[head.text])
            continue

        raise FrontendError(f"line {line_no}: cannot parse statement {raw.strip()!r}")

    return builder.build()

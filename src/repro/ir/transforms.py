"""CDFG transformation passes.

These mirror the "compilation and other optimizations" that run before the
scheduler in the paper's flow (Sec. 4): dead-code elimination, constant
folding, common-subexpression elimination, and balancing of reduction trees
(the optimization the commercial tool applied to XORR in Sec. 4.1).

Every pass returns a *new* graph; inputs are never mutated. Node ids are not
preserved across passes — passes return an id mapping where callers need it.
"""

from __future__ import annotations

from ..errors import IRError
from .graph import CDFG
from .node import Node, Operand
from .semantics import eval_node
from .types import COMMUTATIVE_KINDS, OpKind

__all__ = [
    "eliminate_dead_code",
    "fold_constants",
    "eliminate_common_subexpressions",
    "balance_reduction_trees",
    "rebuild",
]


def rebuild(graph: CDFG, keep: set[int] | None = None,
            name: str | None = None) -> tuple[CDFG, dict[int, int]]:
    """Re-create ``graph`` with dense ids, optionally dropping nodes.

    Returns ``(new_graph, old_id -> new_id)``. Nodes in ``keep`` (default:
    all) are copied in topological order, so the result always has ids
    consistent with one valid topological order — a property several
    downstream consumers rely on for determinism.
    """
    keep_ids = set(graph.node_ids) if keep is None else set(keep)
    order = [nid for nid in graph.topological_order() if nid in keep_ids]
    out = CDFG(name or graph.name)
    mapping: dict[int, int] = {}
    for nid in order:
        old = graph.node(nid)
        operands = []
        for op in old.operands:
            if op.source not in keep_ids:
                raise IRError(
                    f"cannot drop node {op.source}: still used by {nid}"
                )
            # Loop-carried sources may appear later in topological order;
            # CDFG.add_node permits forward references for distance >= 1.
            mapped = mapping.get(op.source, None)
            operands.append(Operand(mapped if mapped is not None else -op.source - 1,
                                    op.distance))
        new = out.add_node(
            old.kind,
            old.width,
            operands=operands,
            name=old.name,
            value=old.value,
            amount=old.amount,
            rclass=old.rclass,
            delay_override=old.delay_override,
            signed=old.signed,
            attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid
    # Patch forward (loop-carried) references now that all ids are known.
    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                original = -op.source - 1
                node.operands[idx] = Operand(mapping[original], op.distance)
    out._invalidate()
    return out, mapping


def eliminate_dead_code(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Drop operations that do not (transitively) reach a primary output."""
    live: set[int] = set()
    stack = [out.nid for out in graph.outputs]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for op in graph.node(nid).operands:
            stack.append(op.source)
    # Keep unused primary inputs: they are part of the interface.
    for node in graph.inputs:
        live.add(node.nid)
    return rebuild(graph, keep=live)


def fold_constants(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Evaluate operations whose operands are all constants.

    Loop-carried operands block folding (their value varies by iteration).
    Black-box operations are never folded.
    """
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}
    const_value: dict[int, int] = {}
    const_cache: dict[tuple[int, int], int] = {}

    def emit_const(value: int, width: int) -> int:
        key = (value, width)
        if key not in const_cache:
            node = out.add_node(OpKind.CONST, width, value=value)
            const_cache[key] = node.nid
        return const_cache[key]

    for nid in graph.topological_order():
        old = graph.node(nid)
        foldable = (
            not old.is_boundary
            and not old.is_blackbox
            and old.operands
            and all(op.distance == 0 for op in old.operands)
            and all(op.source in const_value for op in old.operands)
        )
        if old.kind is OpKind.CONST:
            new_id = emit_const(old.value, old.width)
            mapping[nid] = new_id
            const_value[nid] = old.value
            continue
        if foldable:
            args = [const_value[op.source] for op in old.operands]
            widths = [graph.node(op.source).width for op in old.operands]
            value = eval_node(old, args, widths)
            mapping[nid] = emit_const(value, old.width)
            const_value[nid] = value
            continue
        operands = [
            Operand(mapping[op.source] if op.distance == 0 else -op.source - 1,
                    op.distance)
            for op in old.operands
        ]
        new = out.add_node(
            old.kind, old.width, operands=operands,
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid

    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1], op.distance)
    out._invalidate()
    # Folding can orphan constant producers; clean them up.
    out, second = eliminate_dead_code(out)
    mapping = {k: second[v] for k, v in mapping.items() if v in second}
    return out, mapping


def eliminate_common_subexpressions(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Merge structurally identical operations (value numbering).

    Two nodes merge when they have the same kind, width, static attributes
    and (canonically ordered, for commutative kinds) operand edges. Nodes
    with loop-carried operands participate too — the key includes distances.
    Black boxes never merge (two LOADs may read different memory states).
    """
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}
    table: dict[tuple, int] = {}

    deferred: list[tuple[int, Node]] = []
    for nid in graph.topological_order():
        old = graph.node(nid)
        operands = []
        for op in old.operands:
            if op.distance == 0:
                operands.append(Operand(mapping[op.source], 0))
            else:
                operands.append(Operand(-op.source - 1, op.distance))
        key_ops = [(o.source, o.distance) for o in operands]
        if old.kind in COMMUTATIVE_KINDS and len(key_ops) == 2:
            key_ops = sorted(key_ops)
        mergeable = (
            not old.is_blackbox
            and old.kind not in (OpKind.INPUT, OpKind.OUTPUT)
            and all(o.source >= 0 for o in operands)
            and not old.attrs.get("recurrence")
        )
        key = (old.kind, old.width, old.value, old.amount, old.signed,
               tuple(key_ops))
        if mergeable and key in table:
            mapping[nid] = table[key]
            continue
        new = out.add_node(
            old.kind, old.width, operands=operands,
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid
        if mergeable:
            table[key] = new.nid
        if any(o.source < 0 for o in operands):
            deferred.append((nid, new))

    for _, node in deferred:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1], op.distance)
    out._invalidate()
    return out, mapping


def balance_reduction_trees(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Rebalance chains of one associative-commutative op into trees.

    A chain ``((a ^ b) ^ c) ^ d`` of depth 3 becomes ``(a^b) ^ (c^d)`` of
    depth 2. Only single-fanout interior links of the same kind/width with
    distance-0 edges are collapsed, which keeps semantics and interface
    intact. This reproduces what the commercial tool did to XORR (Sec 4.1:
    "optimized by the HLS tool into a reduction tree").
    """
    assoc = {OpKind.XOR, OpKind.AND, OpKind.OR, OpKind.ADD}
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}

    def collect_leaves(nid: int, kind: OpKind, width: int,
                       root: int) -> list[int] | None:
        node = graph.node(nid)
        if (node.kind is not kind or node.width != width
                or (nid != root and len(graph.uses(nid)) != 1)
                or node.attrs.get("recurrence")):
            return None
        leaves: list[int] = []
        for op in node.operands:
            if op.distance != 0:
                return None
            sub = collect_leaves(op.source, kind, width, root)
            if sub is None:
                leaves.append(op.source)
            else:
                leaves.extend(sub)
        return leaves

    consumed: set[int] = set()
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.kind in assoc and nid not in consumed:
            leaves = collect_leaves(nid, node.kind, node.width, nid)
            if leaves is not None and len(leaves) > 2:
                # Mark interior chain nodes as consumed.
                stack = [nid]
                while stack:
                    cur = stack.pop()
                    cnode = graph.node(cur)
                    if cnode.kind is node.kind and cnode.width == node.width \
                            and (cur == nid or len(graph.uses(cur)) == 1) \
                            and not cnode.attrs.get("recurrence"):
                        if cur != nid:
                            consumed.add(cur)
                        for op in cnode.operands:
                            if op.distance == 0:
                                stack.append(op.source)
                node.attrs["_balance_leaves"] = leaves

    for nid in graph.topological_order():
        old = graph.node(nid)
        if nid in consumed:
            continue
        leaves = old.attrs.pop("_balance_leaves", None)
        if leaves is not None:
            level = [mapping[leaf] for leaf in leaves]
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level) - 1, 2):
                    n = out.add_node(old.kind, old.width,
                                     operands=[level[i], level[i + 1]])
                    nxt.append(n.nid)
                if len(level) % 2:
                    nxt.append(level[-1])
                level = nxt
            mapping[nid] = level[0]
            root = out.node(level[0])
            if old.name:
                root.name = old.name
            continue
        operands = [
            Operand(mapping[op.source] if op.distance == 0 else -op.source - 1,
                    op.distance)
            for op in old.operands
        ]
        new = out.add_node(
            old.kind, old.width, operands=operands,
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid

    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1], op.distance)
    out._invalidate()
    # Chain nodes interior to a balanced tree were dropped and have no image
    # in the new graph; they are simply absent from the returned mapping.
    return out, mapping

"""CDFG transformation passes.

These mirror the "compilation and other optimizations" that run before the
scheduler in the paper's flow (Sec. 4): dead-code elimination, constant
folding, common-subexpression elimination, and balancing of reduction trees
(the optimization the commercial tool applied to XORR in Sec. 4.1).

Every pass returns a *new* graph; inputs are never mutated. Node ids are not
preserved across passes — passes return an id mapping where callers need it.
"""

from __future__ import annotations

from ..errors import IRError
from .graph import CDFG
from .node import Node, Operand
from .semantics import eval_node, mask
from .types import COMMUTATIVE_KINDS, OpKind

__all__ = [
    "eliminate_dead_code",
    "fold_constants",
    "eliminate_common_subexpressions",
    "balance_reduction_trees",
    "narrow_graph",
    "rebuild",
]


def rebuild(graph: CDFG, keep: set[int] | None = None,
            name: str | None = None) -> tuple[CDFG, dict[int, int]]:
    """Re-create ``graph`` with dense ids, optionally dropping nodes.

    Returns ``(new_graph, old_id -> new_id)``. Nodes in ``keep`` (default:
    all) are copied in topological order, so the result always has ids
    consistent with one valid topological order — a property several
    downstream consumers rely on for determinism.
    """
    keep_ids = set(graph.node_ids) if keep is None else set(keep)
    order = [nid for nid in graph.topological_order() if nid in keep_ids]
    out = CDFG(name or graph.name)
    mapping: dict[int, int] = {}
    for nid in order:
        old = graph.node(nid)
        operands = []
        for op in old.operands:
            if op.source not in keep_ids:
                raise IRError(
                    f"cannot drop node {op.source}: still used by {nid}"
                )
            # Loop-carried sources may appear later in topological order;
            # CDFG.add_node permits forward references for distance >= 1.
            mapped = mapping.get(op.source, None)
            operands.append(Operand(mapped if mapped is not None else -op.source - 1,
                                    op.distance))
        new = out.add_node(
            old.kind,
            old.width,
            operands=operands,
            name=old.name,
            value=old.value,
            amount=old.amount,
            rclass=old.rclass,
            delay_override=old.delay_override,
            signed=old.signed,
            attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid
    # Patch forward (loop-carried) references now that all ids are known.
    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                original = -op.source - 1
                node.operands[idx] = Operand(mapping[original], op.distance)
    out._invalidate()
    return out, mapping


def eliminate_dead_code(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Drop operations that do not (transitively) reach a primary output."""
    live: set[int] = set()
    stack = [out.nid for out in graph.outputs]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for op in graph.node(nid).operands:
            stack.append(op.source)
    # Keep unused primary inputs: they are part of the interface.
    for node in graph.inputs:
        live.add(node.nid)
    return rebuild(graph, keep=live)


def fold_constants(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Evaluate operations whose operands are all constants.

    Loop-carried operands block folding (their value varies by iteration).
    Black-box operations are never folded.
    """
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}
    const_value: dict[int, int] = {}
    const_cache: dict[tuple[int, int], int] = {}

    def emit_const(value: int, width: int) -> int:
        key = (value, width)
        if key not in const_cache:
            node = out.add_node(OpKind.CONST, width, value=value)
            const_cache[key] = node.nid
        return const_cache[key]

    for nid in graph.topological_order():
        old = graph.node(nid)
        foldable = (
            not old.is_boundary
            and not old.is_blackbox
            and old.operands
            and all(op.distance == 0 for op in old.operands)
            and all(op.source in const_value for op in old.operands)
        )
        if old.kind is OpKind.CONST:
            new_id = emit_const(old.value, old.width)
            mapping[nid] = new_id
            const_value[nid] = old.value
            continue
        if foldable:
            args = [const_value[op.source] for op in old.operands]
            widths = [graph.node(op.source).width for op in old.operands]
            value = eval_node(old, args, widths)
            mapping[nid] = emit_const(value, old.width)
            const_value[nid] = value
            continue
        operands = [
            Operand(mapping[op.source] if op.distance == 0 else -op.source - 1,
                    op.distance)
            for op in old.operands
        ]
        new = out.add_node(
            old.kind, old.width, operands=operands,
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid

    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1], op.distance)
    out._invalidate()
    # Folding can orphan constant producers; clean them up.
    out, second = eliminate_dead_code(out)
    mapping = {k: second[v] for k, v in mapping.items() if v in second}
    return out, mapping


#: Kinds whose *result* width appears inside their own semantics (the
#: variable-shift clamp is ``min(amount, node.width)``), so shrinking the
#: node would change its value, not just drop proven-zero bits.
_WIDTH_SENSITIVE = (OpKind.VSHL, OpKind.VSHR)


def narrow_graph(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Shrink the graph using facts proven by abstract interpretation.

    Three rewrites, all justified by the dataflow fixpoint
    (:mod:`repro.analysis.dataflow`) rather than syntax:

    * nodes proven constant are replaced by CONST nodes (beyond what
      :func:`fold_constants` sees — recurrences and value-level identities
      included);
    * MUX nodes whose select bit is pinned become a pass-through of the
      live arm, letting the dead arm's cone be eliminated;
    * node widths shrink to their live widths (``width`` minus proven-zero
      high bits), with a raise-only legalization fixpoint that keeps every
      IR width rule (IR002/IR005/IR010) satisfied.

    The primary interface (INPUT/OUTPUT names and widths) is preserved, as
    are STORE side effects, so the result is functionally equivalent under
    :class:`~repro.sim.functional.FunctionalSimulator` — the differential
    tests in ``tests/test_dataflow.py`` check exactly that. Returns
    ``(new_graph, old_id -> new_id)``.
    """
    # Imported lazily: analysis imports ir, so a module-level import here
    # would be circular.
    from ..analysis.dataflow import cached_analyze

    df = cached_analyze(graph)
    orig_width = {node.nid: node.width for node in graph}

    # ------------------------------------------------------------------
    # Decide rewrites.
    # ------------------------------------------------------------------
    carried_uses: dict[int, bool] = {node.nid: False for node in graph}
    for node in graph:
        for op in node.operands:
            if op.distance > 0:
                carried_uses[op.source] = True

    def masked_initial(node: Node) -> int:
        return mask(int(node.attrs.get("initial", 0)), node.width)

    replace_const: dict[int, int] = {}
    fold_mux: dict[int, int] = {}
    for node in graph:
        nid = node.nid
        if node.is_boundary or node.is_blackbox:
            continue
        value = df.constant_value(nid)
        if value is not None:
            # A carried read of this node yields its declared initial
            # value on early iterations; folding is only transparent when
            # that initial coincides with the proven constant.
            if not carried_uses[nid] or masked_initial(node) == value:
                replace_const[nid] = value
                continue
        if node.kind is OpKind.MUX:
            sel = df.mux_select(nid)
            if sel is not None:
                fold_mux[nid] = 1 if sel else 2

    # ------------------------------------------------------------------
    # Width targets + raise-only legalization.
    # ------------------------------------------------------------------
    protected: set[int] = set()
    for node in graph:
        if node.is_boundary or node.is_blackbox or node.signed:
            protected.add(node.nid)
        if node.kind in _WIDTH_SENSITIVE:
            protected.add(node.nid)
        if node.kind in (OpKind.SLT, OpKind.SGE):
            # Signed comparisons reinterpret operands at their declared
            # widths; shrinking a source flips its sign bit position.
            protected.update(op.source for op in node.operands)
        if node.kind is OpKind.CONCAT:
            # CONCAT's layout is defined by its low operand's width and
            # checked as the exact sum of both.
            protected.add(node.nid)
            protected.update(op.source for op in node.operands)

    target: dict[int, int] = {}
    for node in graph:
        nid = node.nid
        if nid in protected:
            target[nid] = node.width
            continue
        live = max(1, node.width - df.dead_high_bits(nid))
        if nid in replace_const:
            live = max(1, replace_const[nid].bit_length())
        if carried_uses[nid]:
            # The simulator masks the declared initial value at the
            # node's width; the narrowed width must still hold it.
            live = max(live, masked_initial(node).bit_length())
        target[nid] = min(node.width, live)

    def raise_to(nid: int, width: int) -> bool:
        capped = min(orig_width[nid], max(target[nid], width))
        if capped != target[nid]:
            target[nid] = capped
            return True
        return False

    changed = True
    while changed:
        changed = False
        for node in graph:
            nid = node.nid
            if nid in replace_const:
                continue
            srcs = [op.source for op in node.operands]
            if nid in fold_mux:
                continue  # becomes a TRUNC/ZEXT pass-through: always legal
            if node.kind is OpKind.TRUNC:
                changed |= raise_to(srcs[0], target[nid])
            elif node.kind is OpKind.ZEXT:
                changed |= raise_to(nid, target[srcs[0]])
            elif node.kind is OpKind.SLICE:
                changed |= raise_to(srcs[0], node.amount + target[nid])
            elif node.kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT):
                if target[nid] > max(target[s] for s in srcs):
                    for s in srcs:
                        changed |= raise_to(s, target[nid])
            elif node.kind is OpKind.MUX:
                if target[nid] > max(target[srcs[1]], target[srcs[2]]):
                    changed |= raise_to(srcs[1], target[nid])
                    changed |= raise_to(srcs[2], target[nid])
            elif node.kind in (OpKind.ADD, OpKind.SUB):
                if target[nid] > max(target[s] for s in srcs) + 1:
                    for s in srcs:
                        changed |= raise_to(s, target[nid] - 1)

    # ------------------------------------------------------------------
    # Emit the rewritten graph.
    # ------------------------------------------------------------------
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}
    const_cache: dict[tuple[int, int], int] = {}

    def emit_const(value: int, width: int) -> int:
        key = (value, width)
        if key not in const_cache:
            # ``initial`` makes carried reads of the constant yield the
            # same value the folded node produced on every iteration.
            node = out.add_node(OpKind.CONST, width, value=value,
                                attrs={"initial": value})
            const_cache[key] = node.nid
        return const_cache[key]

    def map_operand(op: Operand) -> Operand:
        if op.distance == 0:
            return Operand(mapping[op.source], 0)
        return Operand(-op.source - 1, op.distance)

    for nid in graph.topological_order():
        old = graph.node(nid)
        if nid in replace_const:
            mapping[nid] = emit_const(replace_const[nid], target[nid])
            continue
        if nid in fold_mux:
            arm = old.operands[fold_mux[nid]]
            kind = (OpKind.ZEXT if target[nid] > target[arm.source]
                    else OpKind.TRUNC)
            new = out.add_node(
                kind, target[nid], operands=[map_operand(arm)],
                name=old.name, rclass=old.rclass,
                delay_override=old.delay_override,
                signed=old.signed, attrs=dict(old.attrs),
            )
            mapping[nid] = new.nid
            continue
        new = out.add_node(
            old.kind, target[nid],
            operands=[map_operand(op) for op in old.operands],
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid

    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1],
                                             op.distance)
    out._invalidate()

    # Dead-cone elimination rooted at the interface *and* at STOREs:
    # a folded MUX must not take a still-executed memory write with it.
    live: set[int] = set()
    stack = [n.nid for n in out.outputs]
    stack.extend(n.nid for n in out if n.kind is OpKind.STORE)
    while stack:
        cur = stack.pop()
        if cur in live:
            continue
        live.add(cur)
        stack.extend(op.source for op in out.node(cur).operands)
    live.update(n.nid for n in out.inputs)
    out, second = rebuild(out, keep=live)
    mapping = {k: second[v] for k, v in mapping.items() if v in second}
    return out, mapping


def eliminate_common_subexpressions(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Merge structurally identical operations (value numbering).

    Two nodes merge when they have the same kind, width, static attributes
    and (canonically ordered, for commutative kinds) operand edges. Nodes
    with loop-carried operands participate too — the key includes distances.
    Black boxes never merge (two LOADs may read different memory states).
    """
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}
    table: dict[tuple, int] = {}

    deferred: list[tuple[int, Node]] = []
    for nid in graph.topological_order():
        old = graph.node(nid)
        operands = []
        for op in old.operands:
            if op.distance == 0:
                operands.append(Operand(mapping[op.source], 0))
            else:
                operands.append(Operand(-op.source - 1, op.distance))
        key_ops = [(o.source, o.distance) for o in operands]
        if old.kind in COMMUTATIVE_KINDS and len(key_ops) == 2:
            key_ops = sorted(key_ops)
        mergeable = (
            not old.is_blackbox
            and old.kind not in (OpKind.INPUT, OpKind.OUTPUT)
            and all(o.source >= 0 for o in operands)
            and not old.attrs.get("recurrence")
        )
        # A loop-carried read resolves the producer's "initial" attribute
        # for the first `distance` iterations, so two otherwise-identical
        # nodes only merge when those observable initial values agree.
        key = (old.kind, old.width, old.value, old.amount, old.signed,
               old.attrs.get("initial"), tuple(key_ops))
        if mergeable and key in table:
            mapping[nid] = table[key]
            continue
        new = out.add_node(
            old.kind, old.width, operands=operands,
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid
        if mergeable:
            table[key] = new.nid
        if any(o.source < 0 for o in operands):
            deferred.append((nid, new))

    for _, node in deferred:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1], op.distance)
    out._invalidate()
    return out, mapping


def balance_reduction_trees(graph: CDFG) -> tuple[CDFG, dict[int, int]]:
    """Rebalance chains of one associative-commutative op into trees.

    A chain ``((a ^ b) ^ c) ^ d`` of depth 3 becomes ``(a^b) ^ (c^d)`` of
    depth 2. Only single-fanout interior links of the same kind/width with
    distance-0 edges are collapsed, which keeps semantics and interface
    intact. This reproduces what the commercial tool did to XORR (Sec 4.1:
    "optimized by the HLS tool into a reduction tree").
    """
    assoc = {OpKind.XOR, OpKind.AND, OpKind.OR, OpKind.ADD}
    out = CDFG(graph.name)
    mapping: dict[int, int] = {}

    def chain_sources(nid: int, kind: OpKind, width: int,
                      root: int) -> list[int] | None:
        """Operand sources if ``nid`` continues the chain, else None."""
        node = graph.node(nid)
        if (node.kind is not kind or node.width != width
                or (nid != root and len(graph.uses(nid)) != 1)
                or node.attrs.get("recurrence")
                or any(op.distance != 0 for op in node.operands)):
            return None
        return [op.source for op in node.operands]

    def collect_leaves(nid: int, kind: OpKind, width: int,
                      root: int) -> list[int] | None:
        # Iterative left-to-right DFS: a linear fold over a paper-sized
        # array is a 1000+-deep chain, past the recursion limit.
        sources = chain_sources(nid, kind, width, root)
        if sources is None:
            return None
        leaves: list[int] = []
        work = list(reversed(sources))
        while work:
            cur = work.pop()
            sub = chain_sources(cur, kind, width, root)
            if sub is None:
                leaves.append(cur)
            else:
                work.extend(reversed(sub))
        return leaves

    consumed: set[int] = set()
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.kind in assoc and nid not in consumed:
            leaves = collect_leaves(nid, node.kind, node.width, nid)
            if leaves is not None and len(leaves) > 2:
                # Mark interior chain nodes as consumed.
                stack = [nid]
                while stack:
                    cur = stack.pop()
                    cnode = graph.node(cur)
                    if cnode.kind is node.kind and cnode.width == node.width \
                            and (cur == nid or len(graph.uses(cur)) == 1) \
                            and not cnode.attrs.get("recurrence"):
                        if cur != nid:
                            consumed.add(cur)
                        for op in cnode.operands:
                            if op.distance == 0:
                                stack.append(op.source)
                node.attrs["_balance_leaves"] = leaves

    for nid in graph.topological_order():
        old = graph.node(nid)
        if nid in consumed:
            continue
        leaves = old.attrs.pop("_balance_leaves", None)
        if leaves is not None:
            level = [mapping[leaf] for leaf in leaves]
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level) - 1, 2):
                    n = out.add_node(old.kind, old.width,
                                     operands=[level[i], level[i + 1]])
                    nxt.append(n.nid)
                if len(level) % 2:
                    nxt.append(level[-1])
                level = nxt
            mapping[nid] = level[0]
            root = out.node(level[0])
            if old.name:
                root.name = old.name
            continue
        operands = [
            Operand(mapping[op.source] if op.distance == 0 else -op.source - 1,
                    op.distance)
            for op in old.operands
        ]
        new = out.add_node(
            old.kind, old.width, operands=operands,
            name=old.name, value=old.value, amount=old.amount,
            rclass=old.rclass, delay_override=old.delay_override,
            signed=old.signed, attrs=dict(old.attrs),
        )
        mapping[nid] = new.nid

    for node in out:
        for idx, op in enumerate(node.operands):
            if op.source < 0:
                node.operands[idx] = Operand(mapping[-op.source - 1], op.distance)
    out._invalidate()
    # Chain nodes interior to a balanced tree were dropped and have no image
    # in the new graph; they are simply absent from the returned mapping.
    return out, mapping

"""Packed-bitmask support kernels.

The reference :class:`~repro.bitdeps.support.SupportCalculator` represents a
per-bit support set as a Python big int and applies DEP one output bit at a
time. This module keeps the exact same global bit numbering but packs every
mask into a row of ``uint64`` words, so the supports of all output bits of a
node form a ``(width, words)`` ndarray and one DEP *transfer* per node
replaces ``width`` calls into :func:`~repro.bitdeps.dep.dep_bits`:

* bitwise class — row-wise OR of the operand matrices, truncated to widths;
* shifts / SLICE / CONCAT — row re-indexing (pure slicing, no bit math);
* ADD/SUB/NEG — a prefix-OR (``np.bitwise_or.accumulate``) indexed by
  ``min(j, w-1)``, the carry-chain ranges of Sec. 3.1 in one shot;
* comparisons — an OR-reduction broadcast to every output bit, with the
  sign-test-against-constant-zero refinement preserved bit for bit;
* VSHL/VSHR — prefix/suffix OR of the data operand plus the reduced amount
  operand.

Each matrix carries its **active word range** ``[lo, hi)`` (:class:`Rows`)
and every kernel touches only that slice. This matches the cost model of the
reference big ints — a Python int only pays for words up to its top set bit
— so designs with a huge global bit space but narrow cones (e.g. XORR512's
16k-bit space) stay fast instead of paying the full row width per OR.

Word order is little-endian, so ``int.from_bytes(row.tobytes(), "little")``
reproduces the reference Python-int mask exactly; the parity suite
(tests/test_vectorize.py) pins this for every op class. Popcounts use
``np.bitwise_count`` when the installed numpy has it (>= 2.0) and a uint8
lookup table otherwise.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import CutError
from ..ir.graph import CDFG
from ..ir.node import Node
from ..ir.types import OpClass, OpKind
from .dep import _is_const_zero

__all__ = [
    "Rows",
    "PackedSupportCalculator",
    "popcount_rows",
    "max_popcount",
    "rows_to_ints",
    "ints_to_rows",
]

_U64 = np.dtype("<u8")

# uint8 popcount lookup table; fallback for numpy < 2.0 (no np.bitwise_count).
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
_BITWISE_COUNT = getattr(np, "bitwise_count", None)


class Rows:
    """A packed ``(n, words)`` uint64 matrix with its active word range.

    Words outside ``[lo, hi)`` are guaranteed zero; kernels only read and
    write the active slice, so per-operation cost tracks the *span* of the
    set bits (like the reference Python big ints) rather than the full
    global bit space.
    """

    __slots__ = ("mat", "lo", "hi")

    def __init__(self, mat: np.ndarray, lo: int, hi: int) -> None:
        self.mat = mat
        self.lo = lo
        self.hi = max(hi, lo)

    @property
    def empty(self) -> bool:
        return self.hi <= self.lo


def popcount_rows(rows: Rows | np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a packed matrix."""
    if isinstance(rows, Rows):
        mat = rows.mat[:, rows.lo:rows.hi]
    else:
        mat = rows
    if mat.shape[1] == 0:
        return np.zeros(mat.shape[0], dtype=np.int64)
    if _BITWISE_COUNT is not None:
        return _BITWISE_COUNT(mat).sum(axis=1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(mat).view(np.uint8).reshape(
        mat.shape[0], -1)
    return _POP8[as_bytes].sum(axis=1, dtype=np.int64)


def max_popcount(rows: Rows | np.ndarray) -> int:
    """Largest per-row popcount (0 for an empty matrix)."""
    mat = rows.mat if isinstance(rows, Rows) else rows
    if mat.shape[0] == 0:
        return 0
    return int(popcount_rows(rows).max())


def rows_to_ints(rows: Rows | np.ndarray) -> list[int]:
    """Convert packed rows back to the reference Python-int masks."""
    if isinstance(rows, Rows):
        mat, lo, hi = rows.mat, rows.lo, rows.hi
        if hi <= lo:
            return [0] * mat.shape[0]
        data = np.ascontiguousarray(mat[:, lo:hi], dtype=_U64)
        shift = lo * 64
    else:
        data = np.ascontiguousarray(rows, dtype=_U64)
        shift = 0
        if data.shape[1] == 0:
            return [0] * data.shape[0]
    stride = data.shape[1] * 8
    raw = data.tobytes()
    return [
        int.from_bytes(raw[i * stride:(i + 1) * stride], "little") << shift
        for i in range(data.shape[0])
    ]


def ints_to_rows(masks: Iterable[int], words: int) -> Rows:
    """Pack reference Python-int masks into a :class:`Rows` matrix."""
    masks = list(masks)
    mat = np.zeros((len(masks), words), dtype=_U64)
    nbytes = words * 8
    hi = 0
    for i, mask in enumerate(masks):
        if mask:
            mat[i] = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=_U64)
            hi = max(hi, (mask.bit_length() + 63) >> 6)
    return Rows(mat, 0, hi)


class PackedSupportCalculator:
    """Packed twin of :class:`~repro.bitdeps.support.SupportCalculator`.

    Uses the identical global bit numbering — bit ``b`` of node ``n`` at
    iteration distance ``d`` lives at ``offset[n] + d * width + b`` — so
    masks round-trip bit-exactly between the two representations.
    """

    def __init__(self, graph: CDFG) -> None:
        self.graph = graph
        max_dist = 0
        for node in graph:
            for op in node.operands:
                max_dist = max(max_dist, op.distance)
        self.max_distance = max_dist
        self._offset: dict[int, int] = {}
        total = 0
        for nid in graph.node_ids:
            self._offset[nid] = total
            total += graph.node(nid).width * (max_dist + 1)
        self.total_bits = total
        self.words = max(1, (total + 63) // 64)
        self._leaf_cache: dict[tuple[int, int], Rows] = {}
        self._width_cache: dict[int, list[int]] = {}

    # -- representation ------------------------------------------------
    def global_index(self, nid: int, bit: int, distance: int = 0) -> int:
        return self._offset[nid] + distance * self.graph.node(nid).width + bit

    def zeros(self, n: int) -> Rows:
        return Rows(np.zeros((n, self.words), dtype=_U64), 0, 0)

    def leaf_rows(self, nid: int, distance: int = 0) -> Rows:
        """Packed equivalent of ``SupportCalculator.leaf_masks``."""
        key = (nid, distance)
        cached = self._leaf_cache.get(key)
        if cached is None:
            node = self.graph.node(nid)
            base = self._offset[nid] + distance * node.width
            mat = np.zeros((node.width, self.words), dtype=_U64)
            idx = base + np.arange(node.width)
            mat[np.arange(node.width), idx >> 6] = np.uint64(1) << (
                idx & 63
            ).astype(_U64)
            mat.setflags(write=False)
            cached = Rows(mat, base >> 6, ((base + node.width - 1) >> 6) + 1)
            self._leaf_cache[key] = cached
        return cached

    def _widths(self, node: Node) -> list[int]:
        widths = self._width_cache.get(node.nid)
        if widths is None:
            widths = [self.graph.node(op.source).width
                      for op in node.operands]
            self._width_cache[node.nid] = widths
        return widths

    # -- DEP transfer --------------------------------------------------
    def transfer(self, node: Node, slot_rows: Mapping[int, Rows]) -> Rows:
        """Support rows of ``node`` given packed rows per operand *slot*.

        Slots absent from ``slot_rows`` contribute nothing (constant
        operands are absorbed for free) — exactly the reference
        ``_compose_masks`` / ``supports`` semantics.
        """
        graph = self.graph
        kind = node.kind
        if node.op_class is OpClass.BLACKBOX:
            raise CutError(f"DEP undefined for black-box node {node.nid}")
        W = node.width
        out = np.zeros((W, self.words), dtype=_U64)
        olo, ohi = self.words, 0
        if kind in (OpKind.INPUT, OpKind.CONST):
            return Rows(out, 0, 0)
        widths = self._widths(node)

        def rows(slot: int) -> Rows | None:
            r = slot_rows.get(slot)
            return None if r is None or r.empty else r

        def done() -> Rows:
            return Rows(out, olo, ohi) if ohi > olo else Rows(out, 0, 0)

        if kind in (OpKind.OUTPUT, OpKind.NOT, OpKind.TRUNC, OpKind.ZEXT):
            r = rows(0)
            if r is not None:
                n = min(W, widths[0])
                out[:n, r.lo:r.hi] |= r.mat[:n, r.lo:r.hi]
                olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
            for slot in (0, 1):
                r = rows(slot)
                if r is not None:
                    n = min(W, widths[slot])
                    out[:n, r.lo:r.hi] |= r.mat[:n, r.lo:r.hi]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind is OpKind.MUX:
            r = rows(0)
            if r is not None:
                out[:, r.lo:r.hi] |= r.mat[0, r.lo:r.hi]
                olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            for slot in (1, 2):
                r = rows(slot)
                if r is not None:
                    n = min(W, widths[slot])
                    out[:n, r.lo:r.hi] |= r.mat[:n, r.lo:r.hi]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind is OpKind.SHL:
            r = rows(0)
            if r is not None:
                n = min(W - node.amount, widths[0])
                if n > 0:
                    out[node.amount:node.amount + n, r.lo:r.hi] |= \
                        r.mat[:n, r.lo:r.hi]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind in (OpKind.SHR, OpKind.SLICE):
            r = rows(0)
            if r is not None:
                n = min(W, widths[0] - node.amount)
                if n > 0:
                    out[:n, r.lo:r.hi] |= \
                        r.mat[node.amount:node.amount + n, r.lo:r.hi]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind is OpKind.CONCAT:
            r = rows(0)
            if r is not None:
                n = min(W, widths[0])
                out[:n, r.lo:r.hi] |= r.mat[:n, r.lo:r.hi]
                olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            r = rows(1)
            if r is not None and W > widths[0]:
                n = min(W - widths[0], widths[1])
                out[widths[0]:widths[0] + n, r.lo:r.hi] |= r.mat[:n, r.lo:r.hi]
                olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind in (OpKind.ADD, OpKind.SUB, OpKind.NEG):
            slots = (0,) if kind is OpKind.NEG else (0, 1)
            for slot in slots:
                r = rows(slot)
                if r is not None:
                    prefix = np.bitwise_or.accumulate(
                        r.mat[:, r.lo:r.hi], axis=0)
                    idx = np.minimum(np.arange(W), widths[slot] - 1)
                    out[:, r.lo:r.hi] |= prefix[idx]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind in (OpKind.SLT, OpKind.SGE):
            if _is_const_zero(graph, node, 1):
                r = rows(0)
                if r is not None:
                    out[:, r.lo:r.hi] |= r.mat[widths[0] - 1, r.lo:r.hi]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
                return done()
            if _is_const_zero(graph, node, 0):
                r = rows(1)
                if r is not None:
                    out[:, r.lo:r.hi] |= r.mat[widths[1] - 1, r.lo:r.hi]
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
                return done()
            for slot in (0, 1):
                r = rows(slot)
                if r is not None:
                    out[:, r.lo:r.hi] |= np.bitwise_or.reduce(
                        r.mat[:, r.lo:r.hi], axis=0)
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE):
            for slot in (0, 1):
                r = rows(slot)
                if r is not None:
                    out[:, r.lo:r.hi] |= np.bitwise_or.reduce(
                        r.mat[:, r.lo:r.hi], axis=0)
                    olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()
        if kind in (OpKind.VSHL, OpKind.VSHR):
            r = rows(0)
            if r is not None:
                if kind is OpKind.VSHL:
                    prefix = np.bitwise_or.accumulate(
                        r.mat[:, r.lo:r.hi], axis=0)
                    out[:, r.lo:r.hi] |= prefix[
                        np.minimum(np.arange(W), widths[0] - 1)]
                else:
                    suffix = np.bitwise_or.accumulate(
                        r.mat[::-1, r.lo:r.hi], axis=0)[::-1]
                    n = min(W, widths[0])
                    out[:n, r.lo:r.hi] |= suffix[:n]
                olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            r = rows(1)
            if r is not None:
                out[:, r.lo:r.hi] |= np.bitwise_or.reduce(
                    r.mat[:, r.lo:r.hi], axis=0)
                olo, ohi = min(olo, r.lo), max(ohi, r.hi)
            return done()

        raise CutError(f"DEP not defined for {kind.value}")  # pragma: no cover

    def live_slots(self, node: Node) -> list[int]:
        """Operand slots with at least one DEP entry over all output bits.

        Mirrors which operands the reference ``supports`` recursion actually
        visits — dead slots (e.g. a SHL amount beyond the output width) are
        never recursed into and never distance-checked.
        """
        kind = node.kind
        if kind in (OpKind.INPUT, OpKind.CONST):
            return []
        widths = self._widths(node)
        W = node.width
        if kind in (OpKind.OUTPUT, OpKind.NOT, OpKind.TRUNC, OpKind.ZEXT,
                    OpKind.NEG):
            return [0] if min(W, widths[0]) > 0 else []
        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ADD, OpKind.SUB,
                    OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE):
            return [s for s in (0, 1) if min(W, widths[s]) > 0]
        if kind is OpKind.MUX:
            return [0] + [s for s in (1, 2) if min(W, widths[s]) > 0]
        if kind is OpKind.SHL:
            return [0] if node.amount < W and widths[0] > 0 else []
        if kind in (OpKind.SHR, OpKind.SLICE):
            return [0] if node.amount < widths[0] and W > 0 else []
        if kind is OpKind.CONCAT:
            out = [0] if min(W, widths[0]) > 0 else []
            if W > widths[0] and widths[1] > 0:
                out.append(1)
            return out
        if kind in (OpKind.SLT, OpKind.SGE):
            if _is_const_zero(self.graph, node, 1):
                return [0]
            if _is_const_zero(self.graph, node, 0):
                return [1]
            return [s for s in (0, 1) if widths[s] > 0]
        if kind in (OpKind.VSHL, OpKind.VSHR):
            return [s for s in (0, 1) if widths[s] > 0]
        raise CutError(f"DEP not defined for {kind.value}")  # pragma: no cover

    # -- support queries ----------------------------------------------
    def supports_rows(
        self,
        target: int,
        boundary: Iterable[int],
        chosen: Mapping[int, Rows] | None = None,
    ) -> Rows:
        """Packed twin of ``SupportCalculator.supports``.

        Same recursion, same memoization, same ``CutError`` conditions (and
        messages) — but each node is expanded with one vectorized transfer
        instead of a per-bit DEP walk.
        """
        graph = self.graph
        bset = set(boundary)
        memo: dict[int, Rows] = {}
        if chosen:
            memo.update(chosen)
        in_progress: set[int] = set()

        def rec(nid: int) -> Rows:
            if nid in memo:
                return memo[nid]
            node = graph.node(nid)
            if nid in bset:
                result = self.leaf_rows(nid)
            elif node.kind is OpKind.CONST:
                result = self.zeros(node.width)
            elif node.is_blackbox or node.kind is OpKind.INPUT:
                raise CutError(
                    f"boundary does not enclose node {nid} ({node.kind.value})"
                )
            else:
                if nid in in_progress:
                    raise CutError(f"combinational cycle through node {nid}")
                in_progress.add(nid)
                slot_rows: dict[int, Rows] = {}
                for slot in self.live_slots(node):
                    op = node.operands[slot]
                    if op.distance != 0:
                        raise CutError(
                            f"cone crosses loop-carried edge into {op.source}"
                        )
                    slot_rows[slot] = rec(op.source)
                result = self.transfer(node, slot_rows)
                in_progress.discard(nid)
            memo[nid] = result
            return result

        return rec(target)

    def supports(
        self,
        target: int,
        boundary: Iterable[int],
        chosen: Mapping[int, list[int]] | None = None,
    ) -> list[int]:
        """Reference-format (Python big int) supports via the packed kernel."""
        packed_chosen = None
        if chosen:
            packed_chosen = {
                nid: masks
                if isinstance(masks, Rows)
                else ints_to_rows(masks, self.words)
                for nid, masks in chosen.items()
            }
        return rows_to_ints(self.supports_rows(target, boundary, packed_chosen))

    def max_support(self, target: int, boundary: Iterable[int]) -> int:
        return max_popcount(self.supports_rows(target, boundary))

    def is_k_feasible(self, target: int, boundary: Iterable[int], k: int) -> bool:
        try:
            return self.max_support(target, boundary) <= k
        except CutError:
            return False

"""The per-bit DEP function of Sec. 3.1.

``DEP(out[j])`` returns which *operand bits* output bit ``j`` of an operation
depends on, as ``(operand_slot, bit_index)`` pairs:

* bitwise ops — one same-indexed bit per input (plus the select bit for MUX);
* shifts (constant amount) — a single re-indexed bit;
* arithmetic — a bit range (carry chains) or, for comparisons, every bit of
  both inputs;
* a **sign-test refinement**: comparisons of a signed value against the
  constant 0 depend only on the sign bit. This is exactly the "B >= 0 is
  testing whether the most significant bit is zero" observation the paper
  makes for node C of Figure 2.

Bits that fall outside an operand (shifted-in zeros, zero-extension) simply
produce no entries. Constants produce no entries either: a LUT absorbs
constant inputs into its truth table for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CutError
from ..ir.graph import CDFG
from ..ir.node import Node
from ..ir.types import OpClass, OpKind

__all__ = ["DepEntry", "dep_bits", "word_dep_sources"]


@dataclass(frozen=True)
class DepEntry:
    """One bit-level dependence: output depends on ``operands[slot][bit]``."""

    slot: int
    bit: int


def _range_entries(slot: int, lo: int, hi: int, width: int) -> list[DepEntry]:
    hi = min(hi, width - 1)
    return [DepEntry(slot, b) for b in range(max(lo, 0), hi + 1)]


def _all_bits(slot: int, width: int) -> list[DepEntry]:
    return [DepEntry(slot, b) for b in range(width)]


def _is_const_zero(graph: CDFG, node: Node, slot: int) -> bool:
    src = graph.node(node.operands[slot].source)
    return src.kind is OpKind.CONST and src.value == 0


def dep_bits(graph: CDFG, node: Node, j: int) -> list[DepEntry]:
    """``DEP(node[j])`` — the operand bits that output bit ``j`` reads.

    ``graph`` is needed for operand widths and for constant-aware
    refinements. Raises :class:`CutError` for black-box operations (their
    internals are opaque; the enumerator must not ask).
    """
    kind = node.kind
    if node.op_class is OpClass.BLACKBOX:
        raise CutError(f"DEP undefined for black-box node {node.nid}")
    if kind in (OpKind.INPUT, OpKind.CONST):
        return []

    widths = [graph.node(op.source).width for op in node.operands]

    if kind is OpKind.OUTPUT:
        return [DepEntry(0, j)] if j < widths[0] else []

    # ---- bitwise class -------------------------------------------------
    if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
        out = []
        for slot in (0, 1):
            if j < widths[slot]:
                out.append(DepEntry(slot, j))
        return out
    if kind is OpKind.NOT:
        return [DepEntry(0, j)] if j < widths[0] else []
    if kind is OpKind.MUX:
        out = [DepEntry(0, 0)]
        for slot in (1, 2):
            if j < widths[slot]:
                out.append(DepEntry(slot, j))
        return out

    # ---- shift class ---------------------------------------------------
    if kind is OpKind.SHL:
        src_bit = j - node.amount
        return [DepEntry(0, src_bit)] if 0 <= src_bit < widths[0] else []
    if kind is OpKind.SHR:
        src_bit = j + node.amount
        return [DepEntry(0, src_bit)] if src_bit < widths[0] else []
    if kind in (OpKind.TRUNC, OpKind.ZEXT):
        return [DepEntry(0, j)] if j < widths[0] else []
    if kind is OpKind.SLICE:
        src_bit = j + node.amount
        return [DepEntry(0, src_bit)] if src_bit < widths[0] else []
    if kind is OpKind.CONCAT:
        if j < widths[0]:
            return [DepEntry(0, j)]
        return [DepEntry(1, j - widths[0])] if j - widths[0] < widths[1] else []

    # ---- arithmetic class ------------------------------------------------
    if kind in (OpKind.ADD, OpKind.SUB):
        return (_range_entries(0, 0, j, widths[0])
                + _range_entries(1, 0, j, widths[1]))
    if kind is OpKind.NEG:
        return _range_entries(0, 0, j, widths[0])
    if kind in (OpKind.SLT, OpKind.SGE):
        # Sign test against constant zero: only the sign bit matters.
        if _is_const_zero(graph, node, 1):
            return [DepEntry(0, widths[0] - 1)]
        if _is_const_zero(graph, node, 0):
            return [DepEntry(1, widths[1] - 1)]
        return _all_bits(0, widths[0]) + _all_bits(1, widths[1])
    if kind in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE):
        # Unsigned compare against zero still reads every bit (OR-reduction),
        # except `x >= 0` / `x < 0` which are constant — left to the folder.
        return _all_bits(0, widths[0]) + _all_bits(1, widths[1])
    if kind in (OpKind.VSHL, OpKind.VSHR):
        if kind is OpKind.VSHL:
            data = _range_entries(0, 0, j, widths[0])
        else:
            data = _range_entries(0, j, widths[0] - 1, widths[0])
        return data + _all_bits(1, widths[1])

    raise CutError(f"DEP not defined for {kind.value}")  # pragma: no cover


def word_dep_sources(graph: CDFG, node: Node) -> list[int]:
    """Word-level ``DEP(v)``: unique operand slots that any output bit reads.

    Returns operand *slot* indices (not node ids) in ascending order, so the
    caller can honor per-edge distances. A slot appears if at least one
    output bit depends on at least one of its bits.
    """
    live_slots: set[int] = set()
    for j in range(node.width):
        for entry in dep_bits(graph, node, j):
            live_slots.add(entry.slot)
    return sorted(live_slots)

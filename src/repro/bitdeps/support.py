"""Bit-support computation through cones.

Assigns every (node, bit) pair a **global bit index** so per-bit supports can
be represented as Python-int bitmasks; set union is then ``|`` and support
size is ``int.bit_count()``. Given a boundary set B, the support of ``v[j]``
is the set of boundary bits reachable from ``v[j]`` by repeatedly applying
DEP without crossing B, constants, or loop-carried edges.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import CutError
from ..ir.graph import CDFG
from ..ir.types import OpKind
from .dep import dep_bits

__all__ = ["GLOBAL_BIT", "SupportCalculator", "popcount"]


def popcount(mask: int) -> int:
    """Number of set bits in a support mask."""
    return mask.bit_count()


class GLOBAL_BIT:
    """Namespace marker; see :meth:`SupportCalculator.global_index`."""


class SupportCalculator:
    """Computes per-bit boundary supports on one CDFG.

    The calculator is cheap to construct and caches only the global bit
    numbering; support queries are memoized per call (the boundary differs
    between queries).
    """

    def __init__(self, graph: CDFG) -> None:
        self.graph = graph
        # Values of the same node at different iteration distances are
        # *different* LUT inputs (x and x-from-last-iteration), so the global
        # bit space is keyed by (node, distance): each node owns a block of
        # width * (max_distance + 1) bits.
        max_dist = 0
        for node in graph:
            for op in node.operands:
                max_dist = max(max_dist, op.distance)
        self.max_distance = max_dist
        self._offset: dict[int, int] = {}
        total = 0
        for nid in graph.node_ids:
            self._offset[nid] = total
            total += graph.node(nid).width * (max_dist + 1)
        self.total_bits = total

    def global_index(self, nid: int, bit: int, distance: int = 0) -> int:
        """Global index of bit ``bit`` of node ``nid`` at ``distance``."""
        return self._offset[nid] + distance * self.graph.node(nid).width + bit

    def decode(self, mask: int) -> list[tuple[int, int, int]]:
        """Decode a support mask to sorted (node, distance, bit) triples."""
        import bisect

        offsets = sorted((off, nid) for nid, off in self._offset.items())
        starts = [off for off, _ in offsets]
        triples: list[tuple[int, int, int]] = []
        while mask:
            low = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            idx = bisect.bisect_right(starts, low) - 1
            off, nid = offsets[idx]
            width = self.graph.node(nid).width
            rel = low - off
            triples.append((nid, rel // width, rel % width))
        return triples

    def leaf_masks(self, nid: int, distance: int = 0) -> list[int]:
        """Support masks of a boundary node entering at ``distance``."""
        node = self.graph.node(nid)
        base = self._offset[nid] + distance * node.width
        return [1 << (base + j) for j in range(node.width)]

    def supports(
        self,
        target: int,
        boundary: Iterable[int],
        chosen: Mapping[int, list[int]] | None = None,
    ) -> list[int]:
        """Support masks for each output bit of ``target`` w.r.t. ``boundary``.

        ``boundary`` nodes contribute their own bits; constants contribute
        nothing; every other node reached must be expandable via DEP (not a
        black box) and must be reachable only over distance-0 edges —
        otherwise the boundary does not enclose a legal combinational cone
        and :class:`CutError` is raised.

        ``chosen`` optionally pre-seeds masks for specific nodes (used by the
        cut enumerator to compose supports from sub-cuts).
        """
        graph = self.graph
        bset = set(boundary)
        memo: dict[int, list[int]] = {}
        if chosen:
            memo.update(chosen)
        in_progress: set[int] = set()

        def rec(nid: int) -> list[int]:
            if nid in memo:
                return memo[nid]
            node = graph.node(nid)
            if nid in bset:
                result = self.leaf_masks(nid)
            elif node.kind is OpKind.CONST:
                result = [0] * node.width
            elif node.is_blackbox or node.kind is OpKind.INPUT:
                raise CutError(
                    f"boundary does not enclose node {nid} ({node.kind.value})"
                )
            else:
                if nid in in_progress:
                    raise CutError(f"combinational cycle through node {nid}")
                in_progress.add(nid)
                result = []
                operand_masks: dict[int, list[int]] = {}
                for j in range(node.width):
                    mask = 0
                    for entry in dep_bits(graph, node, j):
                        op = node.operands[entry.slot]
                        if op.distance != 0:
                            raise CutError(
                                f"cone crosses loop-carried edge into {op.source}"
                            )
                        if entry.slot not in operand_masks:
                            operand_masks[entry.slot] = rec(op.source)
                        src_masks = operand_masks[entry.slot]
                        if entry.bit < len(src_masks):
                            mask |= src_masks[entry.bit]
                    result.append(mask)
                in_progress.discard(nid)
            memo[nid] = result
            return result

        return rec(target)

    def max_support(self, target: int, boundary: Iterable[int]) -> int:
        """Largest per-output-bit support size of ``target`` w.r.t. boundary."""
        return max((popcount(m) for m in self.supports(target, boundary)), default=0)

    def is_k_feasible(self, target: int, boundary: Iterable[int], k: int) -> bool:
        """True iff every output bit's support fits in a K-input LUT."""
        try:
            return self.max_support(target, boundary) <= k
        except CutError:
            return False

"""Bit-level decomposition of a word-level CDFG.

Sec. 3.1 motivates word-level cut enumeration by noting that the intuitive
alternative — "break down the word-level DFG into a bit-level graph and use
a traditional method" — "would generate an enormous number of cuts and make
an MILP approach intractable". This module implements that alternative so
the claim can be measured (see the bit-blast ablation): every word-level
operation is expanded into single-bit logic (ripple-carry adders, borrow
chains for comparisons, per-bit muxes), producing a plain boolean network
whose cut count can be compared against the word-level enumerator's.

Black-box operations are kept as opaque word-level nodes (they are never
LUT-mapped); their operand edges connect to the blasted bit producers via
CONCAT packing.
"""

from __future__ import annotations

from ..errors import IRError
from ..ir.builder import DFGBuilder, Value
from ..ir.graph import CDFG
from ..ir.types import OpKind

__all__ = ["bit_blast", "BlastResult"]


class BlastResult:
    """Bit-level graph plus the word-to-bits correspondence."""

    def __init__(self, graph: CDFG, bit_ids: dict[int, list[int | None]]) -> None:
        self.graph = graph
        #: word node id -> blasted node ids per bit (LSB first; None when the
        #: bit was optimized away as dead, e.g. a ripple adder's final carry)
        self.bit_ids = bit_ids

    @property
    def num_bit_ops(self) -> int:
        """Operation count of the blasted network."""
        return self.graph.num_operations


def _full_adder(b: DFGBuilder, x: Value, y: Value, cin: Value
                ) -> tuple[Value, Value]:
    s = (x ^ y) ^ cin
    carry = (x & y) | (cin & (x ^ y))
    return s, carry


def bit_blast(graph: CDFG) -> BlastResult:
    """Expand ``graph`` into single-bit logic.

    Loop-carried distances are preserved on the first bit-level edge of
    each recurrence path (each blasted bit of a registered value reads the
    corresponding producer bit at the original distance).
    """
    b = DFGBuilder(graph.name + "_bits", width=1)
    bits: dict[int, list[Value]] = {}
    deferred: list[tuple[int, int, int, int]] = []  # (consumer placeholder...)

    def zeros(n: int) -> list[Value]:
        return [b.const(0, 1) for _ in range(n)]

    def bit_of(nid: int, j: int, distance: int = 0) -> Value:
        """Bit j of word-level node nid; distance > 0 reads the registered
        copy via a 1-bit recurrence placeholder."""
        if distance == 0:
            vals = bits[nid]
            return vals[j] if j < len(vals) else b.const(0, 1)
        key = (nid, j, distance)
        if key not in reg_cache:
            reg = b.recurrence(f"r{nid}_{j}_{distance}", width=1,
                               initial=(int(graph.node(nid).attrs.get(
                                   "initial", 0)) >> j) & 1)
            reg_cache[key] = reg
            pending_regs.append((reg, nid, j, distance))
        return reg_cache[key]

    reg_cache: dict[tuple[int, int, int], Value] = {}
    pending_regs: list[tuple[Value, int, int, int]] = []

    for nid in graph.topological_order():
        node = graph.node(nid)
        kind = node.kind
        w = node.width

        def op_bits(slot: int) -> list[Value]:
            op = node.operands[slot]
            src_w = graph.node(op.source).width
            return [bit_of(op.source, j, op.distance) for j in range(src_w)]

        if kind is OpKind.INPUT:
            word = b.input(node.name or f"in{nid}", w)
            bits[nid] = [word.bit(j) for j in range(w)]
            continue
        if kind is OpKind.CONST:
            bits[nid] = [b.const((node.value >> j) & 1, 1) for j in range(w)]
            continue
        if kind is OpKind.OUTPUT:
            src = node.operands[0]
            vals = [bit_of(src.source, j, src.distance) for j in range(w)]
            word = vals[0]
            for v in vals[1:]:
                word = b.concat(v, word)
            b.output(word, node.name or f"out{nid}")
            bits[nid] = vals
            continue
        if node.is_blackbox:
            # Keep opaque: repack operand bits into words, instantiate the
            # original operation.
            words = []
            for slot, op in enumerate(node.operands):
                vals = op_bits(slot)
                word = vals[0]
                for v in vals[1:]:
                    word = b.concat(v, word)
                words.append(word)
            bb = b.blackbox(kind, *words, width=w, rclass=node.rclass,
                            delay=node.delay_override, name=node.name)
            bits[nid] = [bb.bit(j) for j in range(w)]
            continue

        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
            a = op_bits(0)
            c = op_bits(1)
            out = []
            for j in range(w):
                x = a[j] if j < len(a) else b.const(0, 1)
                y = c[j] if j < len(c) else b.const(0, 1)
                out.append({OpKind.AND: x.__and__, OpKind.OR: x.__or__,
                            OpKind.XOR: x.__xor__}[kind](y))
            bits[nid] = out
        elif kind is OpKind.NOT:
            a = op_bits(0)
            bits[nid] = [~a[j] if j < len(a) else b.const(1, 1)
                         for j in range(w)]
        elif kind is OpKind.MUX:
            sel = bit_of(node.operands[0].source, 0, node.operands[0].distance)
            a = op_bits(1)
            c = op_bits(2)
            bits[nid] = [
                b.mux(sel,
                      a[j] if j < len(a) else b.const(0, 1),
                      c[j] if j < len(c) else b.const(0, 1))
                for j in range(w)
            ]
        elif kind in (OpKind.SHL, OpKind.SHR, OpKind.SLICE,
                      OpKind.TRUNC, OpKind.ZEXT):
            a = op_bits(0)
            out = []
            for j in range(w):
                if kind is OpKind.SHL:
                    src = j - node.amount
                elif kind in (OpKind.SHR, OpKind.SLICE):
                    src = j + (node.amount or 0)
                else:
                    src = j
                out.append(a[src] if 0 <= src < len(a) else b.const(0, 1))
            bits[nid] = out
        elif kind is OpKind.CONCAT:
            lo = op_bits(0)
            hi = op_bits(1)
            bits[nid] = (lo + hi)[:w]
        elif kind in (OpKind.ADD, OpKind.SUB, OpKind.NEG):
            a = op_bits(0)
            if kind is OpKind.NEG:
                # -a = ~a + 1 (ripple increment of the complement)
                inverted = [~(a[j] if j < len(a) else b.const(0, 1))
                            for j in range(w)]
                carry = b.const(1, 1)
                zero = b.const(0, 1)
                out = []
                for j in range(w):
                    s, carry = _full_adder(b, inverted[j], zero, carry)
                    out.append(s)
                bits[nid] = out
            else:
                c = op_bits(1)
                if kind is OpKind.SUB:
                    c = [~(c[j] if j < len(c) else b.const(0, 1))
                         for j in range(w)]
                    carry = b.const(1, 1)
                else:
                    c = [c[j] if j < len(c) else b.const(0, 1)
                         for j in range(w)]
                    carry = b.const(0, 1)
                a = [a[j] if j < len(a) else b.const(0, 1) for j in range(w)]
                out = []
                for j in range(w):
                    s, carry = _full_adder(b, a[j], c[j], carry)
                    out.append(s)
                bits[nid] = out
        elif kind in (OpKind.EQ, OpKind.NE):
            a = op_bits(0)
            c = op_bits(1)
            n = max(len(a), len(c))
            diff = None
            for j in range(n):
                x = a[j] if j < len(a) else b.const(0, 1)
                y = c[j] if j < len(c) else b.const(0, 1)
                d = x ^ y
                diff = d if diff is None else (diff | d)
            result = ~diff if kind is OpKind.EQ else diff
            bits[nid] = [result]
        elif kind in (OpKind.LT, OpKind.GE, OpKind.SLT, OpKind.SGE):
            a = op_bits(0)
            c = op_bits(1)
            n = max(len(a), len(c))
            a = [a[j] if j < len(a) else b.const(0, 1) for j in range(n)]
            c = [c[j] if j < len(c) else b.const(0, 1) for j in range(n)]
            if kind in (OpKind.SLT, OpKind.SGE):
                # flip sign bits: signed compare == unsigned on biased values
                a[n - 1] = ~a[n - 1]
                c[n - 1] = ~c[n - 1]
            lt = b.const(0, 1)
            for j in range(n):  # LSB-first borrow propagation
                eq = ~(a[j] ^ c[j])
                lt = (~a[j] & c[j]) | (eq & lt)
            result = lt if kind in (OpKind.LT, OpKind.SLT) else ~lt
            bits[nid] = [result]
        else:
            raise IRError(f"bit_blast does not support {kind.value}")

    # Close the 1-bit recurrences created for loop-carried reads. Producers
    # are wrapped in private zero-cost buffers (ZEXT is free wiring) so
    # shared bit producers — deduplicated constants in particular — never
    # collide on their per-recurrence initial values.
    for reg, nid, j, distance in pending_regs:
        buffer = b.op(OpKind.ZEXT, bits[nid][j], width=1)
        buffer.feed(reg, distance=distance)

    # Ripple chains leave dead tails (e.g. the final carry); drop them.
    from ..ir.transforms import eliminate_dead_code

    if b._pending_recurrences:
        raise IRError("bit_blast left unclosed recurrences")
    blasted, mapping = eliminate_dead_code(b.graph)
    bit_ids = {
        nid: [mapping.get(v.nid) for v in vals]
        for nid, vals in bits.items()
    }
    return BlastResult(blasted, bit_ids)

"""Bit-level dependence tracking on the word-level DFG (paper Sec. 3.1).

Exports the per-bit ``DEP`` function for every operation class and a
:class:`SupportCalculator` that computes, for a node and a boundary set,
which boundary *bits* each output bit transitively depends on. The cut
enumerator uses these to decide K-feasibility at the word level.
"""

from .bitblast import BlastResult, bit_blast
from .dep import DepEntry, dep_bits, word_dep_sources
from .packed import PackedSupportCalculator, Rows
from .support import GLOBAL_BIT, SupportCalculator, popcount

__all__ = [
    "BlastResult",
    "DepEntry",
    "GLOBAL_BIT",
    "PackedSupportCalculator",
    "Rows",
    "SupportCalculator",
    "bit_blast",
    "dep_bits",
    "popcount",
    "word_dep_sources",
]

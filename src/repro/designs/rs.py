"""RS — Reed–Solomon decoder syndrome cells (Table 1 application).

Each syndrome accumulator implements the recurrence
``s_j' = gfmul(s_j, alpha^j) ^ data`` over GF(2^8) (two cells by default,
so the II=1 recurrence closes even under additive delays): the Galois
constant-multiplier network (RS "utilizes GFMUL as a kernel", Sec. 4.2),
a loop-carried register per syndrome, and a black-box memory port streaming
the received codeword — the same structural recipe as the paper's Figure 2
walkthrough, at full 8-bit width.
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..sim.functional import SimEnvironment
from ._helpers import gf_mul_const
from .gfmul import reference_gfmul

__all__ = ["build_rs", "reference_rs_step", "make_rs_env", "RS_CODEWORD"]

_POLY = 0x1D  # the classic RS-255 polynomial x^8+x^4+x^3+x^2+1

RS_CODEWORD = [(37 * i + 11) & 0xFF for i in range(64)]

# Deep constants for the feed-forward locator multipliers (many set bits ->
# long xtime chains under the additive model).
_LOCATOR_COEFFS = [0xB7, 0xE5]


def _alpha_power(j: int) -> int:
    value = 1
    for _ in range(j):
        value = reference_gfmul(value, 2, poly=_POLY)
    return value


def build_rs(syndromes: int = 2, width: int = 8) -> CDFG:
    """DFG of ``syndromes`` syndrome-update cells + locator evaluation.

    The feed-forward error-locator term multiplies the fresh syndromes by
    deep GF constants (a long shift/XOR network, like the paper's RS whose
    mapping-agnostic schedule needs several stages) and tests the running
    parity of the locator — so the design has both a tight recurrence and
    deep feed-forward logic.
    """
    b = DFGBuilder("rs", width=width)
    idx = b.input("idx", 16)
    data = b.load(idx, width=width, name="codeword", rclass="mem_port")
    updated = []
    for j in range(1, syndromes + 1):
        s = b.recurrence(f"s{j}", width=width, initial=0)
        nxt = gf_mul_const(b, s, _alpha_power(j), poly=_POLY) ^ data
        nxt.feed(s)
        updated.append(nxt)
        b.output(nxt, f"syn{j}")
    # Error-locator evaluation (feed-forward, deep constant multipliers).
    locator = b.const(0, width)
    for j, syn in enumerate(updated):
        locator = locator ^ gf_mul_const(b, syn, _LOCATOR_COEFFS[j % len(_LOCATOR_COEFFS)],
                                         poly=_POLY)
    no_error = locator.eq(0)
    b.output(locator, "locator")
    b.output(no_error, "no_error")
    return b.build()


def make_rs_env(seed: int = 0) -> SimEnvironment:
    """Environment binding the received codeword memory."""
    return SimEnvironment(memories={"codeword": list(RS_CODEWORD)})


def reference_rs_step(state: list[int], data: int,
                      syndromes: int = 2) -> tuple[list[int], int, int]:
    """Golden model of one update: (new syndromes, locator, no_error)."""
    out = []
    for j in range(1, syndromes + 1):
        s = state[j - 1]
        out.append(reference_gfmul(s, _alpha_power(j), poly=_POLY) ^ data)
    locator = 0
    for j, syn in enumerate(out):
        locator ^= reference_gfmul(
            syn, _LOCATOR_COEFFS[j % len(_LOCATOR_COEFFS)], poly=_POLY
        )
    return out, locator, int(locator == 0)

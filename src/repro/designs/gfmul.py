"""GFMUL — GF(2^8) multiplication via shifts and XORs (Table 1 kernel).

The "Russian peasant" formulation unrolled over all eight multiplier bits:
each step conditionally accumulates the current multiplicand power and
doubles it modulo the field polynomial. Pure logic — the showcase for
mapping-aware scheduling ("the entire pipeline can be implemented in a
single combinational stage", Sec. 4.1).
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ._helpers import gf_double

__all__ = ["build_gfmul", "reference_gfmul"]


def build_gfmul(width: int = 8, steps: int | None = None,
                poly: int = 0x1B) -> CDFG:
    """DFG computing ``a * b`` in GF(2^8) (AES polynomial by default)."""
    b = DFGBuilder("gfmul", width=width)
    a = b.input("a", width)
    m = b.input("b", width)
    steps = width if steps is None else steps
    product = None
    power = a
    for i in range(steps):
        bit = m.bit(i)
        term = b.mux(bit, power, b.const(0, width))
        product = term if product is None else (product ^ term)
        if i + 1 < steps:
            power = gf_double(b, power, poly)
    b.output(product, "p")
    return b.build()


def reference_gfmul(a: int, m: int, width: int = 8, poly: int = 0x1B) -> int:
    """Golden model (same polynomial convention as the builder)."""
    mask = (1 << width) - 1
    product = 0
    a &= mask
    m &= mask
    for _ in range(width):
        if m & 1:
            product ^= a
        carry = a & (1 << (width - 1))
        a = (a << 1) & mask
        if carry:
            a ^= poly & mask
        m >>= 1
    return product & mask

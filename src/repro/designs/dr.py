"""DR — digit recognition by k-nearest-neighbours (Table 1 application).

The streaming kNN inner loop: XOR the query bitmap against a training
bitmap fetched through a memory port, popcount the difference (Hamming
distance), and keep a running minimum distance and its index in
loop-carried registers. Comparator + wide mux + popcount tree: the mix of
arithmetic and control logic the paper's ML benchmark exercises.
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..ir.semantics import mask
from ..sim.functional import SimEnvironment
from ._helpers import popcount_swar

__all__ = ["build_dr", "reference_dr_step", "make_dr_env", "DR_TRAINING"]

DR_TRAINING = [mask(0x9E3779B9 * (i + 1) ^ (i << 13), 32) for i in range(64)]


def build_dr(width: int = 32) -> CDFG:
    """DFG of one kNN candidate evaluation."""
    b = DFGBuilder("dr", width=width)
    query = b.input("query", width)
    idx = b.input("idx", 16)
    sample = b.load(idx, width=width, name="training", rclass="mem_port")
    dist = popcount_swar(b, query ^ sample)
    best = b.recurrence("best_dist", width=width, initial=(1 << width) - 1)
    best_idx = b.recurrence("best_idx", width=16, initial=0)
    better = dist.lt(best)
    new_best = b.mux(better, dist, best)
    new_idx = b.mux(better, idx, best_idx)
    new_best.feed(best)
    new_idx.feed(best_idx)
    b.output(new_best, "min_dist")
    b.output(new_idx, "min_idx")
    return b.build()


def make_dr_env(seed: int = 0) -> SimEnvironment:
    """Environment binding the training-set memory."""
    return SimEnvironment(memories={"training": list(DR_TRAINING)})


def reference_dr_step(query: int, idx: int, best: tuple[int, int],
                      training: list[int],
                      width: int = 32) -> tuple[int, int]:
    """Golden model: returns the updated (min_dist, min_idx)."""
    sample = training[idx % len(training)]
    dist = bin(mask(query ^ sample, width)).count("1")
    best_dist, best_idx = best
    if dist < best_dist:
        return dist, idx & 0xFFFF
    return best_dist, best_idx

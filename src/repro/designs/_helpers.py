"""Shared dataflow idioms used by several benchmark generators."""

from __future__ import annotations

from ..ir.builder import DFGBuilder, Value

__all__ = ["smear_right", "popcount_swar", "gf_double", "gf_mul_const",
           "POPCOUNT_MASKS"]

POPCOUNT_MASKS = {
    # width -> (m1, m2, m4) SWAR masks
    8: (0x55, 0x33, 0x0F),
    16: (0x5555, 0x3333, 0x0F0F),
    32: (0x55555555, 0x33333333, 0x0F0F0F0F),
    64: (0x5555555555555555, 0x3333333333333333, 0x0F0F0F0F0F0F0F0F),
}


def smear_right(b: DFGBuilder, x: Value) -> Value:
    """OR-smear every set bit to all lower positions (x |= x>>1, >>2, ...)."""
    width = x.width
    shift = 1
    y = x
    while shift < width:
        y = y | (y >> shift)
        shift *= 2
    return y


def popcount_swar(b: DFGBuilder, x: Value) -> Value:
    """SWAR population count; returns a value of the input's width."""
    width = x.width
    if width not in POPCOUNT_MASKS:
        raise ValueError(f"popcount_swar supports widths {sorted(POPCOUNT_MASKS)}")
    m1, m2, m4 = POPCOUNT_MASKS[width]
    v = x - ((x >> 1) & b.const(m1, width))
    v = (v & b.const(m2, width)) + ((v >> 2) & b.const(m2, width))
    v = (v + (v >> 4)) & b.const(m4, width)
    shift = 8
    while shift < width:
        v = v + (v >> shift)
        shift *= 2
    return v & b.const(width * 2 - 1, width)


def gf_double(b: DFGBuilder, a: Value, poly: int = 0x1B) -> Value:
    """GF(2^8) multiplication by x (the AES ``xtime`` primitive).

    The IR's constant shift already truncates to the operand width, so no
    masking AND is needed.
    """
    shifted = a << 1
    carry = a.bit(a.width - 1)
    return b.mux(carry, shifted ^ b.const(poly, a.width), shifted)


def gf_mul_const(b: DFGBuilder, a: Value, constant: int,
                 poly: int = 0x1B) -> Value:
    """GF(2^8) multiplication by a compile-time constant (shift/xor net)."""
    acc: Value | None = None
    power = a
    c = constant
    while c:
        if c & 1:
            acc = power if acc is None else (acc ^ power)
        c >>= 1
        if c:
            power = gf_double(b, power, poly)
    if acc is None:
        return b.const(0, a.width)
    return acc

"""Synthetic random DFG generation for stress and property tests."""

from __future__ import annotations

import random

from ..ir.builder import DFGBuilder, Value
from ..ir.graph import CDFG

__all__ = ["random_dfg"]


def random_dfg(seed: int, ops: int = 20, width: int = 8,
               inputs: int = 3, recurrences: int = 1,
               allow_arith: bool = True) -> CDFG:
    """Generate a random, valid, connected CDFG.

    The generator only produces constructs the whole pipeline supports
    (logic, shifts, adds/subs, comparisons feeding muxes, loop-carried
    accumulators), so any graph it returns must schedule, map, simulate and
    emit cleanly — the property the test suite checks end to end.
    """
    rng = random.Random(seed)
    b = DFGBuilder(f"rand{seed}", width=width)
    pool: list[Value] = [b.input(f"i{k}", width) for k in range(inputs)]
    recs = []
    for r in range(recurrences):
        reg = b.recurrence(f"r{r}", width=width, initial=rng.randrange(1 << width))
        recs.append(reg)
        pool.append(reg)

    def pick() -> Value:
        return rng.choice(pool)

    def select_bit() -> Value:
        """An explicitly 1-bit MUX select.

        A MUX select must be exactly 1 bit wide (IR003) — the word-level
        semantics would otherwise truncate it implicitly, and the emitted
        hardware would not. Slicing the bit index modulo the *operand's own*
        width keeps this correct even when operand widths diverge from the
        generator's nominal ``width`` parameter.
        """
        v = pick()
        if v.width == 1:
            return v
        return v.bit(rng.randrange(v.width))

    # Keep this list's contents and ORDER stable for width > 1: pinned
    # regression seeds (e.g. 2563, 3505) replay the exact historical graphs
    # only if the rng stream is consumed identically.
    choices = ["xor", "and", "or", "not", "shl", "shr", "mux"]
    if width == 1:
        choices = [c for c in choices if c not in ("shl", "shr")]
    if allow_arith:
        choices += ["add", "sub", "cmpmux"]
    for _ in range(ops):
        kind = rng.choice(choices)
        if kind in ("xor", "and", "or"):
            v = {"xor": pick().__xor__, "and": pick().__and__,
                 "or": pick().__or__}[kind](pick())
        elif kind == "not":
            v = ~pick()
        elif kind == "shl":
            v = pick() << rng.randrange(1, width)
        elif kind == "shr":
            v = pick() >> rng.randrange(1, width)
        elif kind == "mux":
            v = b.mux(select_bit(), pick(), pick())
        elif kind == "add":
            v = pick() + pick()
        elif kind == "sub":
            v = pick() - pick()
        else:  # cmpmux: a comparison driving a select
            c = pick().sge(0) if rng.random() < 0.5 else pick().lt(pick())
            v = b.mux(c, pick(), pick())
        pool.append(v)

    # Close recurrences with late values so cycles are non-trivial; each
    # recurrence gets its own producer (a shared producer would need equal
    # initial values).
    used_producers: set[int] = set()
    for reg in recs:
        candidates = [v for v in pool[-max(4, ops // 2):]
                      if v is not reg and v.nid not in used_producers]
        if not candidates:
            candidates = [v for v in pool if v is not reg
                          and v.nid not in used_producers]
        producer = rng.choice(candidates)
        used_producers.add(producer.nid)
        producer.feed(reg)
    # Tie everything together so no op is dead: xor-join a sample of the
    # pool into the output.
    sample = rng.sample(pool, min(len(pool), 4))
    out = sample[0]
    for v in sample[1:]:
        out = out ^ v
    # Any ops not reachable from `out` would fail validation; fold the whole
    # pool (including recurrence registers) into the output.
    acc = out
    for v in pool[inputs:]:
        acc = acc ^ v
    b.output(acc, "o")
    return b.build()

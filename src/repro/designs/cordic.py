"""CORDIC — coordinate rotation in fixed point (Table 1 application).

Unrolled rotation-mode iterations: each stage tests the residual angle's
sign (a single-bit dependence the cut enumerator discovers, like node C of
the paper's Figure 2) and conditionally adds or subtracts the shifted
cross terms and the arctangent constant.
"""

from __future__ import annotations

import math

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..ir.semantics import mask, to_signed

__all__ = ["build_cordic", "reference_cordic", "cordic_atan_table"]


def cordic_atan_table(iterations: int, width: int) -> list[int]:
    """atan(2^-i) constants in Q(width-3) fixed point, masked to width."""
    scale = 1 << (width - 3)
    return [
        mask(int(round(math.atan(2.0 ** -i) * scale)), width)
        for i in range(iterations)
    ]


def build_cordic(iterations: int = 5, width: int = 16) -> CDFG:
    """DFG of ``iterations`` unrolled rotation-mode CORDIC stages."""
    b = DFGBuilder("cordic", width=width)
    x = b.input("x", width)
    y = b.input("y", width)
    z = b.input("z", width)
    atans = cordic_atan_table(iterations, width)
    for i in range(iterations):
        d = z.sge(0)  # sign test: depends only on the MSB of z
        xs = x >> i
        ys = y >> i
        at = b.const(atans[i], width)
        x, y, z = (
            b.mux(d, x - ys, x + ys),
            b.mux(d, y + xs, y - xs),
            b.mux(d, z - at, z + at),
        )
    b.output(x, "x_out")
    b.output(y, "y_out")
    b.output(z, "z_out")
    return b.build()


def reference_cordic(x: int, y: int, z: int, iterations: int = 5,
                     width: int = 16) -> tuple[int, int, int]:
    """Golden model (arithmetic shifts are *logical* here, matching the
    word-level IR whose SHR is logical — documented simplification)."""
    atans = cordic_atan_table(iterations, width)
    x, y, z = mask(x, width), mask(y, width), mask(z, width)
    for i in range(iterations):
        d = to_signed(z, width) >= 0
        xs = y >> i
        ys_ = x >> i
        if d:
            x, y, z = mask(x - xs, width), mask(y + ys_, width), mask(z - atans[i], width)
        else:
            x, y, z = mask(x + xs, width), mask(y - ys_, width), mask(z + atans[i], width)
    return x, y, z

"""AES — one round over a 32-bit column (Table 1 application).

SubBytes is a black-box S-box lookup per byte (BRAM ports — the realistic
HLS implementation and the paper's "more black-box operations" trait);
MixColumns is the xtime shift/XOR network; AddRoundKey is a word XOR.
ShiftRows is a no-op at single-column granularity and is represented by the
byte slicing itself.
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..sim.functional import SimEnvironment
from ._helpers import gf_mul_const
from .gfmul import reference_gfmul

__all__ = ["build_aes_round", "reference_aes_round", "make_aes_env",
           "AES_SBOX"]


def _make_sbox() -> list[int]:
    """The AES S-box, generated from the field inverse + affine map."""
    # Build GF(2^8) inverse table via exponentiation by generator 3.
    exp = [0] * 510
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = reference_gfmul(x, 3)
    for i in range(255, 510):
        exp[i] = exp[i - 255]
    sbox = [0] * 256
    for v in range(256):
        inv = 0 if v == 0 else exp[255 - log[v]]
        s = inv
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            inv ^= s
        sbox[v] = inv ^ 0x63
    return sbox


AES_SBOX = _make_sbox()


def build_aes_round(width: int = 32) -> CDFG:
    """DFG of SubBytes + MixColumns + AddRoundKey on one state column."""
    b = DFGBuilder("aes", width=width)
    col = b.input("col", width)
    key = b.input("key", width)
    # SubBytes: four black-box S-box lookups.
    subs = []
    for byte in range(4):
        addr = col.slice(8 * byte, 8)
        subs.append(b.load(addr, width=8, name="sbox", rclass="mem_port"))
    s0, s1, s2, s3 = subs
    # MixColumns over the substituted bytes.
    def mixed(a0, a1, a2, a3):
        return (gf_mul_const(b, a0, 2) ^ gf_mul_const(b, a1, 3) ^ a2 ^ a3)
    m0 = mixed(s0, s1, s2, s3)
    m1 = mixed(s1, s2, s3, s0)
    m2 = mixed(s2, s3, s0, s1)
    m3 = mixed(s3, s0, s1, s2)
    word = b.concat(b.concat(m3, m2), b.concat(m1, m0))
    b.output(word ^ key, "col_out")
    return b.build()


def make_aes_env(seed: int = 0) -> SimEnvironment:
    """Environment binding the S-box memory (seed unused; table is fixed)."""
    return SimEnvironment(memories={"sbox": list(AES_SBOX)})


def reference_aes_round(col: int, key: int) -> int:
    """Golden model of the column round."""
    s = [AES_SBOX[(col >> (8 * i)) & 0xFF] for i in range(4)]

    def mix(a0, a1, a2, a3):
        return reference_gfmul(a0, 2) ^ reference_gfmul(a1, 3) ^ a2 ^ a3

    m = [
        mix(s[0], s[1], s[2], s[3]),
        mix(s[1], s[2], s[3], s[0]),
        mix(s[2], s[3], s[0], s[1]),
        mix(s[3], s[0], s[1], s[2]),
    ]
    word = m[0] | (m[1] << 8) | (m[2] << 16) | (m[3] << 24)
    return (word ^ key) & 0xFFFFFFFF

"""GSM — short-term synthesis filter section (Table 1 application).

One lattice-filter stage of the GSM 06.10 codec: a DSP-block multiply
(black box) on the delay-line register, Q15 rounding/shift, saturating
adds built from comparator and mux logic, and the loop-carried delay-line
update. Control-heavy saturation logic around black boxes is exactly the
profile the paper reports for GSM. The recurrence path contains a single
multiply so the section remains II=1-pipelineable at a 10 ns clock.
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..ir.semantics import mask, to_signed
from ..ir.types import OpKind

__all__ = ["build_gsm", "reference_gsm_step"]

_Q15_ROUND = 1 << 14


def _saturate(b, value, width: int):
    """Clamp a wide signed intermediate into ``width`` bits (Q15 style)."""
    hi = b.const((1 << (width - 1)) - 1, value.width)
    lo = b.const(mask(-(1 << (width - 1)), value.width), value.width)
    over = value.sge(b.const(1 << (width - 1), value.width))
    under = value.slt(lo)
    return b.mux(over, hi, b.mux(under, lo, value))


def build_gsm(width: int = 16, coeff: int = 0x4000) -> CDFG:
    """DFG of one short-term filter section (reflection coeff baked in)."""
    wide = width + 2
    b = DFGBuilder("gsm", width=wide)
    sri_in = b.input("sri", wide)
    u_prev = b.recurrence("u_prev", width=wide, initial=0)
    rp = b.const(coeff, wide)
    # DSP multiply on the delay line + Q15 rounding shift.
    prod = b.blackbox(OpKind.MUL, u_prev, rp, width=wide, rclass="dsp")
    scaled = (prod + b.const(_Q15_ROUND, wide)) >> 15
    # Filter output: subtract the reflected term, saturating.
    sri = _saturate(b, sri_in - scaled, width)
    # Delay-line update: single multiply on the loop-carried path. The
    # delay line wraps (no saturation) so the recurrence stays short enough
    # to close at II=1 even under additive delays; only the filter output
    # is saturated.
    u_next = (u_prev + scaled) & b.const((1 << wide) - 1, wide)
    u_next.feed(u_prev)
    b.output(sri, "sri_out")
    b.output(u_next, "u_out")
    return b.build()


def reference_gsm_step(sri_in: int, u_prev: int, width: int = 16,
                       coeff: int = 0x4000) -> tuple[int, int]:
    """Golden model of one section; mirrors the IR's wrap semantics."""
    wide = width + 2
    wmask = (1 << wide) - 1

    def sat(v: int) -> int:
        hi = (1 << (width - 1)) - 1
        lo = mask(-(1 << (width - 1)), wide)
        if to_signed(v, wide) >= (1 << (width - 1)):
            return hi
        if to_signed(v, wide) < to_signed(lo, wide):
            return lo
        return v

    prod = (u_prev * coeff) & wmask
    scaled = ((prod + _Q15_ROUND) & wmask) >> 15
    sri = sat((sri_in - scaled) & wmask)
    u_next = (u_prev + scaled) & wmask
    return sri, u_next

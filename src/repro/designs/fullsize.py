"""Paper-scale benchmark variants for the partition scheduler.

The Table 1 designs in :mod:`repro.designs.registry` are deliberately
sized so a monolithic MILP solve finishes in CI seconds. The paper's
actual workloads span 387-2503 CDFG nodes — far past the point where one
flat MILP blows the time cap. The variants here re-parameterize three
existing builders into that range; they exist to exercise
``SchedulerConfig(partition=...)`` (subgraph decomposition, see
docs/partitioning.md) end-to-end at realistic scale.

They live in their own registry (``FULLSIZE``), *not* in ``BENCHMARKS``:
the Table 1 registry is pinned to the paper's nine rows and every
replication harness iterates it, so full-size designs would silently
multiply experiment runtimes. CLI commands that accept a design name
(``repro schedule``, ``repro bench --fullsize``) consult both.
"""

from __future__ import annotations

import random
from typing import Mapping

from .cordic import build_cordic
from .gfmul import build_gfmul
from .registry import BenchmarkSpec
from .xorr import build_xorr

__all__ = ["FULLSIZE", "get_fullsize", "fullsize_names"]

#: x^64 + x^4 + x^3 + x + 1 (a standard GF(2^64) reduction polynomial);
#: the builder carries the implicit x^64 term, so only the low bits appear.
GF64_POLY = 0x1B


def _uniform_stream(names_widths: list[tuple[str, int]]):
    def gen(rng: random.Random, n: int) -> list[Mapping[str, int]]:
        return [
            {name: rng.randrange(1 << width) for name, width in names_widths}
            for _ in range(n)
        ]
    return gen


FULLSIZE: dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    FULLSIZE[spec.name] = spec


_register(BenchmarkSpec(
    name="GFMUL64", domain="Kernel", kind="kernel",
    description="GF(2^64) multiplication, all 64 steps unrolled (~448 nodes)",
    build=lambda: build_gfmul(width=64, poly=GF64_POLY),
    stream=_uniform_stream([("a", 64), ("b", 64)]),
    notes="full-size variant of GFMUL for partition scheduling",
))
_register(BenchmarkSpec(
    name="CORDIC48", domain="Scientific Computing", kind="application",
    description="48 unrolled 32-bit CORDIC rotation stages (~613 nodes)",
    build=lambda: build_cordic(iterations=48, width=32),
    stream=_uniform_stream([("x", 32), ("y", 32), ("z", 32)]),
    notes="full-size variant of CORDIC for partition scheduling",
))
_register(BenchmarkSpec(
    name="XORR512", domain="Kernel", kind="kernel",
    description="XOR reduction over 512 16-bit elements (~1024 nodes)",
    build=lambda: build_xorr(elements=512, width=16),
    stream=_uniform_stream([(f"x{i}", 16) for i in range(512)]),
    notes="full-size variant of XORR for partition scheduling",
))
_register(BenchmarkSpec(
    name="XORR1251", domain="Kernel", kind="kernel",
    description="XOR reduction over 1251 16-bit elements (~2502 nodes, "
                "the top of the paper's size range)",
    build=lambda: build_xorr(elements=1251, width=16),
    stream=_uniform_stream([(f"x{i}", 16) for i in range(1251)]),
    notes="full-size variant of XORR for partition scheduling",
))


def get_fullsize(name: str) -> BenchmarkSpec:
    """Look up a full-size variant by name (case-insensitive)."""
    from ..errors import ExperimentError

    key = name.upper()
    if key not in FULLSIZE:
        raise ExperimentError(
            f"unknown full-size design {name!r}; "
            f"available: {', '.join(FULLSIZE)}"
        )
    return FULLSIZE[key]


def fullsize_names() -> list[str]:
    """All full-size variant names, registration order."""
    return list(FULLSIZE)

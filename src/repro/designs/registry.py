"""Benchmark registry — the nine designs of Table 1.

Each :class:`BenchmarkSpec` bundles everything an experiment needs: the DFG
builder, the domain/description strings the paper's table prints, a
simulation-environment factory for designs with black-box memories, and a
deterministic input-stream generator for replay checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import ExperimentError
from ..ir.graph import CDFG
from ..sim.functional import SimEnvironment
from .aes import build_aes_round, make_aes_env
from .clz import build_clz
from .cordic import build_cordic
from .dr import build_dr, make_dr_env
from .gfmul import build_gfmul
from .gsm import build_gsm
from .mt import MT_TABLE_SIZE, build_mt, make_mt_env
from .rs import RS_CODEWORD, build_rs, make_rs_env
from .xorr import build_xorr

__all__ = ["BenchmarkSpec", "BENCHMARKS", "get_benchmark", "kernel_names",
           "application_names"]


def _no_env(seed: int = 0) -> SimEnvironment:
    return SimEnvironment()


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 1 row's workload definition."""

    name: str
    domain: str
    description: str
    kind: str  # "kernel" | "application"
    build: Callable[[], CDFG]
    make_env: Callable[[int], SimEnvironment] = _no_env
    stream: Callable[[random.Random, int], list[Mapping[str, int]]] = None
    notes: str = ""

    def input_stream(self, seed: int, n: int) -> list[Mapping[str, int]]:
        """Deterministic per-iteration input maps."""
        return self.stream(random.Random(seed), n)


def _uniform_stream(names_widths: list[tuple[str, int]]):
    def gen(rng: random.Random, n: int):
        return [
            {name: rng.randrange(1 << width) for name, width in names_widths}
            for _ in range(n)
        ]
    return gen


def _indexed_stream(extra: list[tuple[str, int]], idx_name: str, modulo: int):
    def gen(rng: random.Random, n: int):
        out = []
        for k in range(n):
            row = {name: rng.randrange(1 << width) for name, width in extra}
            row[idx_name] = k % modulo
            out.append(row)
        return out
    return gen


BENCHMARKS: dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    BENCHMARKS[spec.name] = spec


_register(BenchmarkSpec(
    name="CLZ", domain="Kernel", kind="kernel",
    description="Count the number of leading zeros in a 64-bit value",
    build=build_clz,
    stream=_uniform_stream([("x", 64)]),
))
_register(BenchmarkSpec(
    name="XORR", domain="Kernel", kind="kernel",
    description="XOR reduction for an array of elements",
    build=build_xorr,
    stream=_uniform_stream([(f"x{i}", 16) for i in range(128)]),
))
_register(BenchmarkSpec(
    name="GFMUL", domain="Kernel", kind="kernel",
    description="Efficient Galois field multiplication",
    build=build_gfmul,
    stream=_uniform_stream([("a", 8), ("b", 8)]),
))
_register(BenchmarkSpec(
    name="CORDIC", domain="Scientific Computing", kind="application",
    description="Coordinate Rotation Digital Computer",
    build=build_cordic,
    stream=_uniform_stream([("x", 16), ("y", 16), ("z", 16)]),
))
_register(BenchmarkSpec(
    name="MT", domain="Scientific Computing", kind="application",
    description="Mersenne Twister pseudorandom number generation",
    build=build_mt,
    make_env=make_mt_env,
    stream=_indexed_stream([], "idx", MT_TABLE_SIZE - 14),
))
_register(BenchmarkSpec(
    name="AES", domain="Cryptography", kind="application",
    description="Advanced Encryption Standard",
    build=build_aes_round,
    make_env=make_aes_env,
    stream=_uniform_stream([("col", 32), ("key", 32)]),
))
_register(BenchmarkSpec(
    name="RS", domain="Communication", kind="application",
    description="Reed-Solomon decoder",
    build=build_rs,
    make_env=make_rs_env,
    stream=_indexed_stream([], "idx", len(RS_CODEWORD)),
))
_register(BenchmarkSpec(
    name="DR", domain="Machine Learning", kind="application",
    description="Digit recognition using k-nearest neighbours algorithm",
    build=build_dr,
    make_env=make_dr_env,
    stream=_indexed_stream([("query", 32)], "idx", 64),
))
_register(BenchmarkSpec(
    name="GSM", domain="Communication", kind="application",
    description="Global system for mobile communications",
    build=build_gsm,
    stream=_uniform_stream([("sri", 18)]),
))


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by its Table 1 name (case-insensitive)."""
    key = name.upper()
    if key not in BENCHMARKS:
        raise ExperimentError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        )
    return BENCHMARKS[key]


def kernel_names() -> list[str]:
    """The Sec. 4.1 kernel set."""
    return [n for n, s in BENCHMARKS.items() if s.kind == "kernel"]


def application_names() -> list[str]:
    """The Sec. 4.2 application set."""
    return [n for n, s in BENCHMARKS.items() if s.kind == "application"]

"""The nine Table 1 benchmarks, paper-scale full-size variants, and
synthetic DFG generation."""

from .aes import AES_SBOX, build_aes_round, make_aes_env, reference_aes_round
from .clz import build_clz, reference_clz
from .cordic import build_cordic, cordic_atan_table, reference_cordic
from .dr import DR_TRAINING, build_dr, make_dr_env, reference_dr_step
from .fullsize import FULLSIZE, fullsize_names, get_fullsize
from .gfmul import build_gfmul, reference_gfmul
from .gsm import build_gsm, reference_gsm_step
from .mt import MT_TABLE_SIZE, build_mt, make_mt_env, reference_mt
from .registry import (
    BENCHMARKS,
    BenchmarkSpec,
    application_names,
    get_benchmark,
    kernel_names,
)
from .rs import RS_CODEWORD, build_rs, make_rs_env, reference_rs_step
from .synthetic import random_dfg
from .xorr import build_xorr, reference_xorr

__all__ = [
    "AES_SBOX",
    "BENCHMARKS",
    "BenchmarkSpec",
    "DR_TRAINING",
    "FULLSIZE",
    "MT_TABLE_SIZE",
    "RS_CODEWORD",
    "application_names",
    "build_aes_round",
    "build_clz",
    "build_cordic",
    "build_dr",
    "build_gfmul",
    "build_gsm",
    "build_mt",
    "build_rs",
    "build_xorr",
    "cordic_atan_table",
    "fullsize_names",
    "get_benchmark",
    "get_fullsize",
    "kernel_names",
    "make_aes_env",
    "make_dr_env",
    "make_mt_env",
    "make_rs_env",
    "random_dfg",
    "reference_aes_round",
    "reference_clz",
    "reference_cordic",
    "reference_dr_step",
    "reference_gfmul",
    "reference_gsm_step",
    "reference_mt",
    "reference_rs_step",
    "reference_xorr",
]

"""XORR — XOR reduction over an array of elements (Table 1 kernel).

The source form is a linear fold (as a C loop would produce); the builder
then applies the same reduction-tree balancing the commercial tool applied
("optimized by the HLS tool into a reduction tree with depth 9", Sec. 4.1).
The elements arrive as parallel inputs — the fully-pipelined kernel
consumes one array per initiation.
"""

from __future__ import annotations

from functools import reduce

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..ir.transforms import balance_reduction_trees

__all__ = ["build_xorr", "reference_xorr"]


def build_xorr(elements: int = 128, width: int = 16,
               balanced: bool = True) -> CDFG:
    """DFG xor-reducing ``elements`` inputs of ``width`` bits."""
    if elements < 2:
        raise ValueError("xorr needs at least 2 elements")
    b = DFGBuilder("xorr", width=width)
    values = [b.input(f"x{i}", width) for i in range(elements)]
    acc = values[0]
    for v in values[1:]:
        acc = acc ^ v
    b.output(acc, "xorr")
    graph = b.build()
    if balanced:
        graph, _ = balance_reduction_trees(graph)
    return graph


def reference_xorr(values: list[int], width: int = 16) -> int:
    """Golden model."""
    mask = (1 << width) - 1
    return reduce(lambda a, v: (a ^ v) & mask, values, 0)

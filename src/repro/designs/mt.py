"""MT — Mersenne-Twister-style pseudorandom generation (Table 1 application).

One fully-pipelined ``genrand`` step: two state words stream from the state
table through black-box memory ports (LOADs), combine through the twist
(upper/lower masking, matrix-A conditional XOR), and pass the four-stage
tempering network. The memory ports are the black boxes whose delays the
paper back-annotates; the tempering chain is where mapping-awareness packs
LUTs.
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ..ir.semantics import mask
from ..sim.functional import SimEnvironment

__all__ = ["build_mt", "reference_mt", "make_mt_env", "MT_TABLE_SIZE"]

MT_TABLE_SIZE = 64
_UPPER = 0x80000000
_LOWER = 0x7FFFFFFF
_MATRIX_A = 0x9908B0DF


def build_mt(width: int = 32) -> CDFG:
    """DFG of one MT generation step (index arrives as an input)."""
    b = DFGBuilder("mt", width=width)
    idx = b.input("idx", 16)
    one = b.const(1, 16)
    mt_i = b.load(idx, width=width, name="mt_state")
    mt_i1 = b.load(idx + one, width=width, name="mt_state")
    mt_m = b.load(idx + b.const(13, 16), width=width, name="mt_state")

    y = (mt_i & b.const(_UPPER, width)) | (mt_i1 & b.const(_LOWER, width))
    mag = b.mux(y.bit(0), b.const(_MATRIX_A, width), b.const(0, width))
    x = mt_m ^ (y >> 1) ^ mag

    # Tempering.
    t = x ^ (x >> 11)
    t = t ^ ((t << 7) & b.const(0x9D2C5680, width))
    t = t ^ ((t << 15) & b.const(0xEFC60000, width))
    t = t ^ (t >> 18)
    b.output(t, "rand")
    return b.build()


def make_mt_env(seed: int = 1) -> SimEnvironment:
    """A seeded state table for the functional/pipeline simulators."""
    state = [0] * MT_TABLE_SIZE
    state[0] = seed & 0xFFFFFFFF
    for i in range(1, MT_TABLE_SIZE):
        state[i] = mask(1812433253 * (state[i - 1] ^ (state[i - 1] >> 30)) + i,
                        32)
    return SimEnvironment(memories={"mt_state": state})


def reference_mt(idx: int, state: list[int], width: int = 32) -> int:
    """Golden model of one generation step over ``state``."""
    n = len(state)
    mt_i = state[idx % n]
    mt_i1 = state[(idx + 1) % n]
    mt_m = state[(idx + 13) % n]
    y = (mt_i & _UPPER) | (mt_i1 & _LOWER)
    x = mt_m ^ (y >> 1) ^ (_MATRIX_A if y & 1 else 0)
    t = x ^ (x >> 11)
    t = mask(t ^ ((t << 7) & 0x9D2C5680), width)
    t = mask(t ^ ((t << 15) & 0xEFC60000), width)
    return mask(t ^ (t >> 18), width)

"""CLZ — count leading zeros of a 64-bit value (Table 1 kernel).

The DFG is the branchless form: OR-smear the argument so every bit below
the leading one is set, then ``clz = width - popcount(smeared)`` with a SWAR
popcount. This matches the paper's characterization ("almost entirely
composed of logical and arithmetic operations") and gives the mapper deep
logic to collapse.
"""

from __future__ import annotations

from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG
from ._helpers import popcount_swar, smear_right

__all__ = ["build_clz", "reference_clz"]


def build_clz(width: int = 64) -> CDFG:
    """DFG computing the number of leading zeros of input ``x``."""
    b = DFGBuilder("clz", width=width)
    x = b.input("x", width)
    smeared = smear_right(b, x)
    ones = popcount_swar(b, smeared)
    count = b.const(width, width) - ones
    b.output(count, "clz")
    return b.build()


def reference_clz(x: int, width: int = 64) -> int:
    """Golden model."""
    x &= (1 << width) - 1
    return width - x.bit_length()

"""Ablation studies backing the paper's narrative claims.

* :func:`sweep_xorr_depth` — Sec. 4.1's XORR analysis: FF savings come from
  deleting whole pipeline stages of a wide reduction tree, so they grow
  with tree depth.
* :func:`sweep_alpha_beta` — Eq. 15's trade-off: shifting weight between
  LUT and register bits moves the chosen schedule along the area frontier.
* :func:`sweep_k` — Sec. 3.1's claim that cut enumeration is exponential in
  K "but typically very fast as K is small in practice (K <= 6)".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.config import SchedulerConfig
from ..cuts.enumerate import CutEnumerator
from ..runtime.cache import FlowCache
from ..runtime.parallel import run_parallel
from ..tech.device import XC7, Device
from ..designs.registry import BENCHMARKS
from ..designs.xorr import build_xorr
from .flows import run_flow
from .reporting import render_table

__all__ = [
    "XorrDepthPoint", "sweep_xorr_depth", "format_xorr_depth",
    "AlphaBetaPoint", "sweep_alpha_beta", "format_alpha_beta",
    "KSweepPoint", "sweep_k", "format_k_sweep",
    "HeuristicGapPoint", "sweep_heuristic_gap", "format_heuristic_gap",
    "BitBlastPoint", "sweep_bitblast", "format_bitblast",
]


# ----------------------------------------------------------------------
# Ablation A: XORR reduction-tree depth
# ----------------------------------------------------------------------
@dataclass
class XorrDepthPoint:
    elements: int
    depth: int
    tool_ffs: int
    map_ffs: int
    tool_stages: int
    map_stages: int


def _xorr_depth_point(task) -> XorrDepthPoint:
    n, device, config, cache_dir = task
    cache = FlowCache(cache_dir) if cache_dir else None
    graph_tool = build_xorr(elements=n, width=16)
    tool = run_flow(graph_tool, "hls-tool", device, config, design="xorr",
                    cache=cache)
    graph_map = build_xorr(elements=n, width=16)
    mapped = run_flow(graph_map, "milp-map", device, config, design="xorr",
                      cache=cache)
    return XorrDepthPoint(
        elements=n,
        depth=(n - 1).bit_length(),
        tool_ffs=tool.report.ffs,
        map_ffs=mapped.report.ffs,
        tool_stages=tool.schedule.latency,
        map_stages=mapped.schedule.latency,
    )


def sweep_xorr_depth(element_counts: list[int] | None = None,
                     device: Device = XC7,
                     config: SchedulerConfig | None = None,
                     jobs: int | None = 1,
                     cache_dir: str | None = None) -> list[XorrDepthPoint]:
    """FF usage of hls-tool vs MILP-map as the reduction tree deepens."""
    config = config or SchedulerConfig(ii=1, tcp=10.0, time_limit=60)
    tasks = [(n, device, config, cache_dir)
             for n in element_counts or [16, 32, 64, 128, 256]]
    return run_parallel(tasks, _xorr_depth_point, jobs=jobs)


def format_xorr_depth(points: list[XorrDepthPoint]) -> str:
    rows = [[p.elements, p.depth, p.tool_stages, p.tool_ffs,
             p.map_stages, p.map_ffs] for p in points]
    return render_table(
        ["elements", "tree depth", "tool stages", "tool FF",
         "map stages", "map FF"],
        rows,
        title="Ablation A: XORR pipeline registers vs reduction-tree depth",
    )


# ----------------------------------------------------------------------
# Ablation B: alpha / beta trade-off (Eq. 15)
# ----------------------------------------------------------------------
@dataclass
class AlphaBetaPoint:
    alpha: float
    beta: float
    luts: int
    ffs: int
    latency: int


def _alpha_beta_point(task) -> AlphaBetaPoint:
    design, alpha, device, config, cache_dir = task
    cache = FlowCache(cache_dir) if cache_dir else None
    spec = BENCHMARKS[design]
    flow = run_flow(spec.build(), "milp-map", device, config, design=design,
                    cache=cache)
    return AlphaBetaPoint(
        alpha=alpha, beta=1.0 - alpha,
        luts=flow.report.luts, ffs=flow.report.ffs,
        latency=flow.schedule.latency,
    )


def sweep_alpha_beta(design: str = "GFMUL", weights: list[float] | None = None,
                     device: Device = XC7,
                     base_config: SchedulerConfig | None = None,
                     jobs: int | None = 1,
                     cache_dir: str | None = None) -> list[AlphaBetaPoint]:
    """Re-solve one design with different Eq. 15 weightings."""
    base = base_config or SchedulerConfig(ii=1, tcp=10.0, time_limit=60)
    tasks = []
    for alpha in weights or [0.0, 0.25, 0.5, 0.75, 1.0]:
        config = SchedulerConfig(
            ii=base.ii, tcp=base.tcp, alpha=alpha, beta=1.0 - alpha,
            time_limit=base.time_limit, backend=base.backend,
            max_cuts=base.max_cuts,
        )
        tasks.append((design, alpha, device, config, cache_dir))
    return run_parallel(tasks, _alpha_beta_point, jobs=jobs)


def format_alpha_beta(points: list[AlphaBetaPoint], design: str) -> str:
    rows = [[f"{p.alpha:.2f}", f"{p.beta:.2f}", p.luts, p.ffs, p.latency]
            for p in points]
    return render_table(
        ["alpha (LUT)", "beta (FF)", "LUT", "FF", "depth"],
        rows,
        title=f"Ablation B: Eq. 15 weight sweep on {design}",
    )


# ----------------------------------------------------------------------
# Ablation C: cut enumeration vs K
# ----------------------------------------------------------------------
@dataclass
class KSweepPoint:
    design: str
    k: int
    cuts: int
    candidates: int
    seconds: float


def sweep_k(designs: list[str] | None = None,
            ks: list[int] | None = None) -> list[KSweepPoint]:
    """Cut-set sizes and enumeration time for K in 2..6."""
    points = []
    for name in designs or ["GFMUL", "CLZ", "MT"]:
        spec = BENCHMARKS[name]
        for k in ks or [2, 3, 4, 5, 6]:
            graph = spec.build()
            t0 = time.perf_counter()
            enumerator = CutEnumerator(graph, k)
            enumerator.run()
            points.append(KSweepPoint(
                design=name, k=k,
                cuts=enumerator.stats.total_selectable,
                candidates=enumerator.stats.candidates_generated,
                seconds=time.perf_counter() - t0,
            ))
    return points


def format_k_sweep(points: list[KSweepPoint]) -> str:
    rows = [[p.design, p.k, p.cuts, p.candidates, f"{p.seconds * 1000:.1f}"]
            for p in points]
    return render_table(
        ["design", "K", "selectable cuts", "merge candidates", "time (ms)"],
        rows,
        title="Ablation C: cut enumeration vs LUT input count K",
    )


# ----------------------------------------------------------------------
# Ablation D: exact MILP vs scalable heuristic (the future-work system)
# ----------------------------------------------------------------------
@dataclass
class HeuristicGapPoint:
    design: str
    milp_luts: int
    milp_ffs: int
    milp_seconds: float
    heur_luts: int
    heur_ffs: int
    heur_seconds: float


def _heuristic_gap_point(task) -> HeuristicGapPoint:
    name, device, config, cache_dir = task
    cache = FlowCache(cache_dir) if cache_dir else None
    spec = BENCHMARKS[name]
    milp = run_flow(spec.build(), "milp-map", device, config, design=name,
                    cache=cache)
    t0 = time.perf_counter()
    heur = run_flow(spec.build(), "heur-map", device, config, design=name,
                    cache=cache)
    heur_seconds = time.perf_counter() - t0
    if heur.cached:
        # A cache read says nothing about heuristic runtime; report the
        # original run's schedule-phase time instead.
        heur_seconds = heur.trace.total_seconds("schedule")
    return HeuristicGapPoint(
        design=name,
        milp_luts=milp.report.luts, milp_ffs=milp.report.ffs,
        milp_seconds=milp.report.solve_seconds,
        heur_luts=heur.report.luts, heur_ffs=heur.report.ffs,
        heur_seconds=heur_seconds,
    )


def sweep_heuristic_gap(designs: list[str] | None = None,
                        device: Device = XC7,
                        config: SchedulerConfig | None = None,
                        jobs: int | None = 1,
                        cache_dir: str | None = None
                        ) -> list["HeuristicGapPoint"]:
    """Quality/runtime gap between MILP-map and the polynomial heuristic."""
    config = config or SchedulerConfig(ii=1, tcp=10.0, time_limit=120)
    tasks = [(name, device, config, cache_dir)
             for name in designs or ["GFMUL", "MT", "AES", "GSM"]]
    return run_parallel(tasks, _heuristic_gap_point, jobs=jobs)


def format_heuristic_gap(points: list["HeuristicGapPoint"]) -> str:
    rows = [[p.design, p.milp_luts, p.milp_ffs, f"{p.milp_seconds:.1f}",
             p.heur_luts, p.heur_ffs, f"{p.heur_seconds:.2f}"]
            for p in points]
    return render_table(
        ["design", "MILP LUT", "MILP FF", "MILP (s)",
         "heur LUT", "heur FF", "heur (s)"],
        rows,
        title=("Ablation D: exact MILP-map vs the scalable mapping-aware "
               "heuristic (Sec. 5 future work)"),
    )


# ----------------------------------------------------------------------
# Ablation E: word-level vs bit-level cut enumeration (Sec. 3.1 claim)
# ----------------------------------------------------------------------
@dataclass
class BitBlastPoint:
    design: str
    word_ops: int
    bit_ops: int
    word_cuts: int
    bit_cuts: int
    word_seconds: float
    bit_seconds: float


def sweep_bitblast(designs: list[str] | None = None,
                   k: int = 6, max_cuts: int = 8) -> list["BitBlastPoint"]:
    """Measure the cut blowup of bit-level decomposition.

    Sec. 3.1: "bit-level decomposition would generate an enormous number of
    cuts and make an MILP approach intractable". The comparison enumerates
    cuts on the word-level DFG and on its bit-blasted equivalent.
    """
    from ..bitdeps.bitblast import bit_blast

    points = []
    for name in designs or ["GFMUL", "MT", "GSM"]:
        spec = BENCHMARKS[name]
        graph = spec.build()
        t0 = time.perf_counter()
        word_en = CutEnumerator(graph, k, max_cuts=max_cuts)
        word_en.run()
        word_seconds = time.perf_counter() - t0
        blast = bit_blast(spec.build())
        t0 = time.perf_counter()
        bit_en = CutEnumerator(blast.graph, k, max_cuts=max_cuts)
        bit_en.run()
        bit_seconds = time.perf_counter() - t0
        points.append(BitBlastPoint(
            design=name,
            word_ops=graph.num_operations,
            bit_ops=blast.num_bit_ops,
            word_cuts=word_en.stats.total_selectable,
            bit_cuts=bit_en.stats.total_selectable,
            word_seconds=word_seconds,
            bit_seconds=bit_seconds,
        ))
    return points


def format_bitblast(points: list["BitBlastPoint"]) -> str:
    rows = [[p.design, p.word_ops, p.bit_ops, p.word_cuts, p.bit_cuts,
             f"{p.bit_cuts / max(1, p.word_cuts):.1f}x",
             f"{p.word_seconds * 1000:.0f}", f"{p.bit_seconds * 1000:.0f}"]
            for p in points]
    return render_table(
        ["design", "word ops", "bit ops", "word cuts", "bit cuts",
         "blowup", "word (ms)", "bit (ms)"],
        rows,
        title=("Ablation E: word-level vs bit-level cut enumeration "
               "(Sec. 3.1 tractability claim)"),
    )

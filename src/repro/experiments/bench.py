"""``repro bench`` — tracked solver-performance benchmark harness.

Times the MILP hot path on the Table 2 designs plus a set of synthetic
solver microbenches, and writes ``BENCH_milp.json`` (schema
:data:`BENCH_SCHEMA`). Every design runs in two arms:

* ``optimized`` — whatever the supplied config enables (by default
  presolve + warm starts, the shipped defaults; ``--no-presolve`` /
  ``--no-warm-start`` ablate one feature at a time);
* ``cold`` — both features forced off, the pre-optimization behavior.

A third record kind, ``equiv`` (single arm ``validate``), times the
symbolic translation-validation chain (``repro.analysis.equiv``) over
:data:`EQUIV_DESIGNS`, so the miter/SAT hot path rides the same
baseline regression gate as the solvers.

A fourth kind, ``partition`` (single arm ``partition``), times the
subgraph-decomposition scheduler (:mod:`repro.partition`) — on the
full-size paper-scale variants (:data:`PARTITION_DESIGNS`) in the full
matrix, and on GFMUL with a deliberately small subgraph size in
``--quick`` so CI exercises cut/solve/stitch/feedback without paying
for a paper-sized design.

Two kernel kinds, ``bitdeps`` and ``cutenum``, time the vectorized
bit-level hot paths against their pure-Python reference twins (arms
``vectorized`` / ``reference``; see docs/performance.md "Vectorized
kernels"): ``bitdeps`` sweeps per-bit support computation over depth-1/2/3
cones of every node, ``cutenum`` runs full cut enumeration. Both arms
produce identical outputs (the records carry a checksum to prove it), so
the ratio is pure kernel speed; the summary reports ``bitdeps_speedup``
and ``cutenum_speedup`` geomeans. The full matrix adds the full-size
variants (:data:`KERNEL_FULLSIZE` / :data:`CUTENUM_FULLSIZE`) where the
packed kernels matter most.

A fifth kind, ``service`` (single arm ``service``), drives an
in-process scheduling-service instance (:mod:`repro.service`) with the
fuzz-sourced load generator — a cold wave plus a cache-hit wave — and
records throughput (``jobs_per_sec``), latency percentiles and the
deterministic ``cache_hit_rate``, so the job server's hot path is
baseline-gated alongside the solvers.

The summary reports geometric-mean speedups of cold over optimized —
``scipy_solve_speedup`` over the backend solve spans and
``bnb_wall_speedup`` over scheduler wall time — which is how the claims
in ``docs/performance.md`` are measured and re-checked in CI.

Measurements are read from :class:`~repro.runtime.Tracer` spans
(``presolve`` / ``warm-start`` / ``solve``), not ad-hoc timers, so the
bench reports exactly what the schedulers recorded. The JSON output is
deterministic apart from timing fields: :meth:`BenchResult.canonical_json`
strips them, and the regression gate (:func:`compare_to_baseline`)
compares only wall-clock ratios against a committed baseline.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..core.config import SchedulerConfig
from ..core.mapsched import BaseScheduler, MapScheduler
from ..designs.registry import BENCHMARKS
from ..errors import ExperimentError, ReproError
from ..ir.transforms import narrow_graph
from ..milp.model import Model, Solution, SolveStatus
from ..milp.presolve import presolve as run_presolve
from ..runtime.parallel import run_parallel
from ..runtime.trace import Tracer
from ..tech.device import XC7, Device

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "MICROBENCHES",
    "compare_to_baseline",
    "format_bench",
    "run_bench",
]

BENCH_SCHEMA = "repro-bench/v1"

#: Designs whose MILP-base models the pure-Python branch-and-bound can
#: solve in seconds; the bnb speedup claim is measured on these.
BNB_DESIGNS = ("GSM", "DR", "CLZ")

#: The ``--quick`` subset (CI perf-smoke): the three fastest designs.
QUICK_DESIGNS = ("GSM", "DR", "CLZ")

#: Designs the symbolic-equivalence arm proves end to end (small enough
#: to discharge in seconds); its wall time tracks the miter/SAT hot path
#: the same way the solver arms track the MILP hot path.
EQUIV_DESIGNS = ("CLZ", "XORR", "GFMUL", "DR")

#: Full-size variants (:mod:`repro.designs.fullsize`) the partition arm
#: schedules in the full matrix — paper-scale node counts where a flat
#: MILP would blow any reasonable cap.
PARTITION_DESIGNS = ("GFMUL64", "CORDIC48", "XORR512")

#: The ``--quick`` partition subject: a Table 1 design forced into
#: multiple subgraphs via a small ``partition_size``.
QUICK_PARTITION = ("GFMUL",)

#: Full-size subjects added to the ``bitdeps`` kernel arms in the full
#: matrix (wide masks are where packing pays).
KERNEL_FULLSIZE = ("XORR512", "CORDIC48", "GFMUL64")

#: Full-size subjects for the ``cutenum`` kernel arms. GFMUL64 is left
#: out: its reference-arm enumeration alone would dominate the whole
#: bench wall time (its vectorized run is covered by the partition arm).
CUTENUM_FULLSIZE = ("XORR512", "CORDIC48")

#: Fuzz seeds the ``service`` arm replays through an in-process
#: :class:`~repro.service.SchedulingService` (sub-second profiles only —
#: the seed-routed heavy profiles like ``multi-rec`` would dominate the
#: arm's wall time with one MILP solve).
SERVICE_SEEDS = (1, 2, 3, 5, 6, 7)

#: Re-submitted after the cold wave drains: with the arm's flow cache
#: these are deterministic cache hits, so ``cache_hit_rate`` is exactly
#: ``len(warm) / (len(cold) + len(warm))`` on a healthy service.
SERVICE_WARM_SEEDS = (1, 2, 3)

#: Timing fields stripped from the canonical (byte-stable) JSON form.
_TIMING_KEYS = frozenset({
    "wall_seconds", "solve_seconds", "presolve_seconds",
    "warm_start_seconds", "build_seconds", "elapsed", "jobs",
    "scipy_solve_speedup", "bnb_wall_speedup", "micro_wall_speedup",
    "scipy_solve_reduction_pct", "bnb_wall_reduction_pct",
    "stage_seconds", "equiv_wall_seconds",
    "jobs_per_sec", "latency_p50", "latency_p95", "service_jobs_per_sec",
    "bitdeps_speedup", "cutenum_speedup",
})


# ----------------------------------------------------------------------
# Synthetic solver microbenches
# ----------------------------------------------------------------------
def _micro_knapsack() -> tuple[Model, dict[int, float]]:
    """0/1 knapsack with a greedy warm start (bound-lift friendly)."""
    n = 24
    model = Model("micro-knapsack")
    weights = [3 + (i * 7) % 11 for i in range(n)]
    values = [2 + (i * 5) % 9 for i in range(n)]
    xs = [model.binary(f"x{i}") for i in range(n)]
    cap = sum(weights) // 3
    model.add(sum(w * x for w, x in zip(weights, xs)) <= cap)
    model.minimize(sum(-v * x for v, x in zip(values, xs)))
    order = sorted(range(n), key=lambda i: values[i] / weights[i],
                   reverse=True)
    warm: dict[int, float] = {x.index: 0.0 for x in xs}
    load = 0
    for i in order:
        if load + weights[i] <= cap:
            warm[xs[i].index] = 1.0
            load += weights[i]
    return model, warm


def _micro_assignment() -> tuple[Model, dict[int, float]]:
    """One-hot slot assignment with precedence — a miniature scheduler.

    Exercises exactly the structure presolve's group-aware pass targets:
    one-hot rows, big-M-free precedence over ``sum t*x``, and a
    continuous length variable chained to the chosen slot.
    """
    groups, slots = 8, 6
    model = Model("micro-assignment")
    xs = [[model.binary(f"s{g}_{t}") for t in range(slots)]
          for g in range(groups)]
    ls = [model.continuous(f"L{g}", lo=0.0, hi=float(slots))
          for g in range(groups)]
    warm: dict[int, float] = {}
    for g in range(groups):
        model.add(sum(xs[g]) == 1)
        slot_expr = sum(t * xs[g][t] for t in range(1, slots))
        model.add(ls[g] >= slot_expr)
        if g:
            prev = sum(t * xs[g - 1][t] for t in range(1, slots))
            model.add(slot_expr >= prev)
        chosen = min(g, slots - 1)
        for t in range(slots):
            warm[xs[g][t].index] = 1.0 if t == chosen else 0.0
        warm[ls[g].index] = float(chosen)
    cost = sum(((g * 3 + t * 5) % 7 + 1) * xs[g][t]
               for g in range(groups) for t in range(slots))
    model.minimize(cost + sum(0.25 * l for l in ls))
    return model, warm


def _micro_bigm_chain() -> tuple[Model, dict[int, float]]:
    """One-hot slots chained through loose big-M rows.

    The shape of the paper's Eq. 5/6 timing-chain constraints: the big-M
    coefficients are far looser than the one-hot structure allows, which
    is exactly what the group-aware Savelsbergh tightening in presolve
    repairs. Cold branch-and-bound pays for the loose LP bound.
    """
    stages, slots, big = 7, 6, 120.0
    model = Model("micro-bigm-chain")
    xs = [[model.binary(f"s{g}_{t}") for t in range(slots)]
          for g in range(stages)]
    ms = [model.binary(f"m{g}") for g in range(stages)]
    ls = [model.continuous(f"L{g}", lo=0.0, hi=float(2 * stages))
          for g in range(stages)]
    warm: dict[int, float] = {}
    for g in range(stages):
        model.add(sum(xs[g]) == 1)
        slot_expr = sum(t * xs[g][t] for t in range(1, slots))
        model.add(ls[g] >= slot_expr)
        if g:
            model.add(ls[g] >= ls[g - 1] + 2 - big * ms[g])
        chosen = min(2 * g, slots - 1)
        for t in range(slots):
            warm[xs[g][t].index] = 1.0 if t == chosen else 0.0
        warm[ms[g].index] = 0.0 if g < 3 else 1.0
        warm[ls[g].index] = float(max(chosen, 2 * g))
    model.add(sum(ms) <= stages - 3)
    cost = sum(((g * 5 + t * 3) % 6 + 1) * xs[g][t]
               for g in range(stages) for t in range(slots))
    model.minimize(cost + sum(ls) + 3.0 * sum(ms))
    return model, warm


MICROBENCHES: dict[str, Callable[[], tuple[Model, dict[int, float]]]] = {
    "knapsack": _micro_knapsack,
    "assignment": _micro_assignment,
    "bigm-chain": _micro_bigm_chain,
}


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BenchTask:
    kind: str            # "design" | "micro"
    name: str
    method: str          # "milp-map" | "milp-base" | "micro"
    backend: str         # "scipy" | "bnb"
    arm: str             # "optimized" | "cold"
    device: Device
    config: SchedulerConfig


def _span_total(tracer: Tracer, name: str) -> float:
    return tracer.total_seconds(name, fresh_only=True)


def _run_design_task(task: _BenchTask) -> dict[str, Any]:
    graph = BENCHMARKS[task.name].build()
    if task.config.narrow:
        graph, _ = narrow_graph(graph)
    cls = MapScheduler if task.method == "milp-map" else BaseScheduler
    scheduler = cls(graph, task.device, task.config)
    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
    }
    t0 = time.perf_counter()
    try:
        schedule = scheduler.schedule()
    except ReproError as exc:
        record.update(ok=False, error=type(exc).__name__,
                      wall_seconds=time.perf_counter() - t0)
        return record
    wall = time.perf_counter() - t0
    tracer = scheduler.tracer
    build = tracer.last("milp-build")
    presolve_span = tracer.last("presolve")
    warm = tracer.last("warm-start")
    solve = tracer.last("solve")
    record.update(
        ok=True,
        ii=schedule.ii,
        optimal=schedule.optimal,
        objective=(round(schedule.objective, 6)
                   if schedule.objective is not None else None),
        wall_seconds=wall,
        build_seconds=_span_total(tracer, "milp-build"),
        presolve_seconds=_span_total(tracer, "presolve"),
        warm_start_seconds=_span_total(tracer, "warm-start"),
        solve_seconds=_span_total(tracer, "solve"),
        constraints=int(build.meta.get("constraints", 0)) if build else 0,
        variables=int(build.meta.get("variables", 0)) if build else 0,
    )
    if presolve_span is not None:
        record["presolve"] = {
            k: presolve_span.meta[k]
            for k in ("vars_after", "cons_after", "vars_fixed",
                      "rows_dropped", "bounds_tightened", "coeffs_tightened",
                      "one_hot_groups")
            if k in presolve_span.meta
        }
    if warm is not None:
        record["warm_start_used"] = bool(warm.meta.get("used", False))
    if solve is not None and "solver_stats" in solve.meta:
        record["solver_stats"] = dict(solve.meta["solver_stats"])
    return record


def _run_micro_task(task: _BenchTask) -> dict[str, Any]:
    model, warm = MICROBENCHES[task.name]()
    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
        "constraints": model.num_constraints, "variables": model.num_vars,
    }
    t0 = time.perf_counter()
    if task.arm == "cold":
        sol = model.solve(backend=task.backend, time_limit=60.0)
    else:
        reduced, post = run_presolve(model)
        if post.status is not None:
            sol = Solution(status=post.status, objective=None)
        else:
            restricted = post.restrict(warm)
            sol = reduced.solve(backend=task.backend, time_limit=60.0,
                                warm_start=restricted,
                                branch_hints=restricted)
            sol = post.expand(sol)
        record["presolve"] = post.stats.to_dict()
    record.update(
        ok=sol.ok,
        optimal=sol.status == SolveStatus.OPTIMAL,
        objective=(round(sol.objective, 6)
                   if sol.objective is not None else None),
        wall_seconds=time.perf_counter() - t0,
        solve_seconds=time.perf_counter() - t0,
    )
    if sol.stats:
        record["solver_stats"] = {k: sol.stats[k]
                                  for k in ("nodes", "lps")
                                  if k in sol.stats}
    return record


def _run_equiv_task(task: _BenchTask) -> dict[str, Any]:
    from ..analysis.equiv import validate_flow

    original = BENCHMARKS[task.name].build()
    graph = original
    if task.config.narrow:
        graph, _ = narrow_graph(original)
    scheduler = MapScheduler(graph, task.device, task.config)
    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
    }
    try:
        schedule = scheduler.schedule()
    except ReproError as exc:
        record.update(ok=False, error=type(exc).__name__, wall_seconds=0.0)
        return record
    # Only the validation is timed: the schedule itself is the design
    # arms' job, and validate_flow recomputes the narrowing internally
    # so the full narrow -> cover -> pipeline -> rtl chain is proved.
    t0 = time.perf_counter()
    report = validate_flow(original, schedule, design=task.name,
                           method=task.method)
    record.update(
        ok=report.ok,
        optimal=report.ok,
        wall_seconds=time.perf_counter() - t0,
        stages={v.stage: v.status for v in report.stages},
        stage_seconds={v.stage: round(v.seconds, 4)
                       for v in report.stages},
        goals=sum(v.goals for v in report.stages),
        conflicts=sum(v.conflicts for v in report.stages),
    )
    if not report.ok:
        bad = [v.stage for v in report.stages
               if v.status in ("inequivalent", "error")]
        record["error"] = "equiv:" + ",".join(bad)
    return record


def _run_partition_task(task: _BenchTask) -> dict[str, Any]:
    from ..designs.fullsize import FULLSIZE
    from ..partition import PartitionScheduler

    spec = BENCHMARKS.get(task.name) or FULLSIZE[task.name]
    graph = spec.build()
    if task.config.narrow:
        graph, _ = narrow_graph(graph)
    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
        "nodes": len(graph.node_ids),
        "partition_size": task.config.partition_size,
        "partition_rounds": task.config.partition_rounds,
    }
    t0 = time.perf_counter()
    try:
        scheduler = PartitionScheduler(graph, task.device, task.config,
                                       method=task.method)
        schedule = scheduler.schedule()
    except ReproError as exc:
        record.update(ok=False, error=type(exc).__name__,
                      wall_seconds=time.perf_counter() - t0)
        return record
    record.update(
        ok=True,
        ii=schedule.ii,
        optimal=schedule.optimal,
        objective=(round(schedule.objective, 6)
                   if schedule.objective is not None else None),
        wall_seconds=time.perf_counter() - t0,
        solve_seconds=schedule.solve_seconds,
        subgraphs=scheduler.subgraph_counts[0],
        rounds=scheduler.rounds_run,
        boundary_bits=(scheduler.info.total_boundary_bits
                       if scheduler.info else 0),
    )
    return record


def _kernel_graph(name):
    from ..designs.fullsize import FULLSIZE

    spec = BENCHMARKS.get(name) or FULLSIZE[name]
    graph, _ = narrow_graph(spec.build())
    return graph


def _cone_boundary(graph, target: int, depth: int):
    """Boundary of the depth-``depth`` combinational cone under ``target``.

    Walks distance-0 operand edges; a node becomes a boundary leaf when
    the depth budget runs out or it cannot be expanded through DEP
    (input, black box, loop-carried operands). Constants are skipped —
    the support calculators treat interior constants as zero-support.
    Returns ``None`` for targets that are not themselves expandable.
    """
    from ..ir.graph import OpKind

    node = graph.node(target)
    if (node.kind in (OpKind.INPUT, OpKind.CONST) or node.is_blackbox
            or any(op.distance for op in node.operands)):
        return None
    boundary: set[int] = set()

    def walk(nid: int, d: int) -> None:
        n = graph.node(nid)
        if n.kind is OpKind.CONST:
            return
        if (d >= depth or n.kind is OpKind.INPUT or n.is_blackbox
                or any(op.distance for op in n.operands)):
            boundary.add(nid)
            return
        for op in n.operands:
            walk(op.source, d + 1)

    for op in node.operands:
        walk(op.source, 1)
    return boundary


def _run_bitdeps_task(task: _BenchTask) -> dict[str, Any]:
    """Support-mask sweep: every node against its depth-1/2/3 cones.

    The two arms run the packed uint64 kernel and the big-int reference
    over identical cones; each accumulates the per-target max support
    through its native popcount path (what the cut enumerator's
    K-feasibility check pays for). The checksum is part of the canonical
    record, so any divergence between the arms fails the bench diff.
    """
    from ..bitdeps import PackedSupportCalculator, SupportCalculator, popcount
    from ..bitdeps.packed import max_popcount
    from ..errors import CutError

    graph = _kernel_graph(task.name)
    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
        "nodes": len(graph.node_ids),
    }
    vectorized = task.arm == "vectorized"
    cones = [(nid, b) for nid in graph.topological_order()
             for depth in (1, 2, 3)
             if (b := _cone_boundary(graph, nid, depth))]

    def sweep() -> int:
        calc = (PackedSupportCalculator(graph) if vectorized
                else SupportCalculator(graph))
        checksum = 0
        for nid, boundary in cones:
            try:
                if vectorized:
                    checksum += max_popcount(
                        calc.supports_rows(nid, boundary, None))
                else:
                    checksum += max(
                        map(popcount, calc.supports(nid, boundary)),
                        default=0)
            except CutError:
                # Some deeper cones are illegal (e.g. reconvergence
                # through a black box); both arms raise on exactly the
                # same targets.
                checksum -= 1
        return checksum

    wall, checksum = _best_of(sweep)
    record.update(
        ok=True, optimal=True,
        cones=len(cones), checksum=checksum,
        wall_seconds=wall,
    )
    return record


def _best_of(workload, min_elapsed: float = 0.5, max_reps: int = 3):
    """(best wall, result) over adaptive repeats of ``workload``.

    Fast workloads repeat up to ``max_reps`` times and keep the minimum
    wall time — the sub-100ms kernel arms would otherwise measure pool
    contention, not the kernel. A single rep that already spends
    ``min_elapsed`` is trusted as-is, so the slow reference arms on the
    FULLSIZE subjects never triple their cost.
    """
    best = float("inf")
    total = 0.0
    result = None
    for _ in range(max_reps):
        t0 = time.perf_counter()
        result = workload()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        total += dt
        if total >= min_elapsed:
            break
    return best, result


def _run_cutenum_task(task: _BenchTask) -> dict[str, Any]:
    """Full cut enumeration with the chosen kernel implementation."""
    from ..cuts.enumerate import CutEnumerator

    graph = _kernel_graph(task.name)
    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
        "nodes": len(graph.node_ids),
    }

    def enumerate_once():
        enumerator = CutEnumerator(graph, task.device.k,
                                   max_cuts=task.config.max_cuts,
                                   vectorize=task.arm == "vectorized")
        cuts = enumerator.run()
        stats = enumerator.stats
        return (stats.total_selectable, stats.candidates_generated,
                sum(len(cs) for cs in cuts.values()))

    wall, (selectable, candidates, checksum) = _best_of(enumerate_once)
    record.update(
        ok=True, optimal=True,
        cuts=selectable,
        candidates=candidates,
        checksum=checksum,
        wall_seconds=wall,
    )
    return record


def _run_service_task(task: _BenchTask) -> dict[str, Any]:
    """Throughput/latency of the job server on a fuzz-sourced load.

    Runs an in-process :class:`~repro.service.SchedulingService` (two
    worker shards, fresh flow cache) through the same load generator the
    service tests and CI smoke use: the :data:`SERVICE_SEEDS` cold wave
    followed by the :data:`SERVICE_WARM_SEEDS` cache-hit wave. The
    record's ``wall_seconds`` rides the standard baseline gate;
    ``jobs_per_sec`` / ``latency_p50`` / ``latency_p95`` are reported as
    timing fields, and ``cache_hit_rate`` is deterministic and canonical.
    """
    import tempfile

    from ..service import InProcessClient, SchedulingService
    from ..service.loadgen import run_load

    record: dict[str, Any] = {
        "kind": task.kind, "name": task.name, "method": task.method,
        "backend": task.backend, "arm": task.arm,
        "cold_jobs": len(SERVICE_SEEDS),
        "warm_jobs": len(SERVICE_WARM_SEEDS),
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        service = SchedulingService(workers=2, cache=tmp)
        service.start()
        try:
            client = InProcessClient(service)
            report = run_load(client, seeds=SERVICE_SEEDS,
                              method=task.method,
                              warm_seeds=SERVICE_WARM_SEEDS)
        except ReproError as exc:
            service.shutdown()
            record.update(ok=False, error=type(exc).__name__,
                          wall_seconds=0.0)
            return record
        service.shutdown()
    data = report.to_dict()
    submitted = data["submitted"]
    record.update(
        ok=data["failed"] == 0 and data["completed"] == submitted,
        optimal=data["failed"] == 0,
        submitted=submitted,
        completed=data["completed"],
        failed=data["failed"],
        cached=data["cached"],
        deduped=data["deduped"],
        cache_hit_rate=(round(data["cached"] / submitted, 4)
                        if submitted else 0.0),
        wall_seconds=data["elapsed"],
        jobs_per_sec=data["jobs_per_sec"],
        latency_p50=data["latency_p50"],
        latency_p95=data["latency_p95"],
    )
    if not record["ok"]:
        record["error"] = "service:failed-jobs"
    return record


_WARMED = False


def _warmup() -> None:
    """Pay scipy/HiGHS import and first-call costs outside the timers.

    The first ``optimize.milp`` call in a process costs ~0.8s of library
    loading — enough to invert any sub-second comparison. Once per
    worker process is enough.
    """
    global _WARMED
    if _WARMED:
        return
    for backend in ("scipy", "bnb"):
        model = Model(f"warmup-{backend}")
        x = model.binary("x")
        model.add(x <= 1)
        model.minimize(x)
        model.solve(backend=backend)
    _WARMED = True


def _run_bench_task(task: _BenchTask) -> dict[str, Any]:
    _warmup()
    if task.kind == "micro":
        return _run_micro_task(task)
    if task.kind == "equiv":
        return _run_equiv_task(task)
    if task.kind == "partition":
        return _run_partition_task(task)
    if task.kind == "service":
        return _run_service_task(task)
    if task.kind == "bitdeps":
        return _run_bitdeps_task(task)
    if task.kind == "cutenum":
        return _run_cutenum_task(task)
    return _run_design_task(task)


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class BenchResult:
    """All bench records plus the derived speedup summary."""

    config: SchedulerConfig
    device: Device
    quick: bool = False
    records: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    jobs: int = 1

    # -- derived -------------------------------------------------------
    def _pairs(self, pred) -> list[tuple[dict, dict]]:
        """(optimized, cold) record pairs matching ``pred``, both ok."""
        keyed: dict[tuple, dict[str, dict]] = {}
        for rec in self.records:
            if not rec.get("ok"):
                continue
            key = (rec["kind"], rec["name"], rec["method"], rec["backend"])
            keyed.setdefault(key, {})[rec["arm"]] = rec
        pairs = []
        for key, arms in sorted(keyed.items()):
            if "optimized" in arms and "cold" in arms and pred(arms["cold"]):
                pairs.append((arms["optimized"], arms["cold"]))
        return pairs

    def _kernel_speedup(self, kind: str) -> float | None:
        """Geomean reference/vectorized wall ratio for a kernel kind."""
        keyed: dict[str, dict[str, dict]] = {}
        for rec in self.records:
            if rec.get("kind") == kind and rec.get("ok"):
                keyed.setdefault(rec["name"], {})[rec["arm"]] = rec
        pairs = [(arms["vectorized"], arms["reference"])
                 for _, arms in sorted(keyed.items())
                 if "vectorized" in arms and "reference" in arms]
        return self._geomean_speedup(pairs, "wall_seconds")

    @staticmethod
    def _geomean_speedup(pairs: list[tuple[dict, dict]],
                         field_name: str) -> float | None:
        ratios = []
        for opt, cold in pairs:
            denom = max(opt.get(field_name, 0.0), 1e-6)
            ratios.append(max(cold.get(field_name, 0.0), 1e-6) / denom)
        if not ratios:
            return None
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def summary(self) -> dict[str, Any]:
        scipy_pairs = self._pairs(
            lambda r: r["kind"] == "design" and r["backend"] == "scipy")
        bnb_pairs = self._pairs(
            lambda r: r["kind"] == "design" and r["backend"] == "bnb")
        micro_pairs = self._pairs(lambda r: r["kind"] == "micro")
        out: dict[str, Any] = {
            "designs_ok": sorted({r["name"] for r in self.records
                                  if r["kind"] == "design" and r.get("ok")}),
            "failed": sorted({f"{r['name']}:{r['backend']}"
                              for r in self.records if not r.get("ok")}),
        }
        scipy_speed = self._geomean_speedup(scipy_pairs, "solve_seconds")
        bnb_speed = self._geomean_speedup(bnb_pairs, "wall_seconds")
        micro_speed = self._geomean_speedup(micro_pairs, "wall_seconds")
        if scipy_speed is not None:
            out["scipy_solve_speedup"] = round(scipy_speed, 3)
            out["scipy_solve_reduction_pct"] = round(
                100.0 * (1.0 - 1.0 / scipy_speed), 1)
        if bnb_speed is not None:
            out["bnb_wall_speedup"] = round(bnb_speed, 3)
            out["bnb_wall_reduction_pct"] = round(
                100.0 * (1.0 - 1.0 / bnb_speed), 1)
        if micro_speed is not None:
            out["micro_wall_speedup"] = round(micro_speed, 3)
        for kind, key in (("bitdeps", "bitdeps_speedup"),
                          ("cutenum", "cutenum_speedup")):
            speed = self._kernel_speedup(kind)
            if speed is not None:
                out[key] = round(speed, 3)
        equiv_recs = [r for r in self.records if r["kind"] == "equiv"]
        if equiv_recs:
            out["equiv_proved"] = sorted(r["name"] for r in equiv_recs
                                         if r.get("ok"))
            out["equiv_wall_seconds"] = round(
                sum(r.get("wall_seconds", 0.0) for r in equiv_recs), 3)
        service_recs = [r for r in self.records if r["kind"] == "service"]
        if service_recs:
            rec = service_recs[0]
            out["service_jobs_per_sec"] = rec.get("jobs_per_sec")
            out["service_cache_hit_rate"] = rec.get("cache_hit_rate")
        return out

    # -- serialization -------------------------------------------------
    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        records = self.records
        if not include_timing:
            records = [self._strip_timing(r) for r in records]
        data: dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "quick": self.quick,
            "config": self.config.fingerprint_fields(),
            "device": self.device.name,
            "records": records,
            "summary": {k: v for k, v in self.summary().items()
                        if include_timing or k not in _TIMING_KEYS},
        }
        if include_timing:
            data["elapsed"] = self.elapsed
            data["jobs"] = self.jobs
        return data

    @staticmethod
    def _strip_timing(record: dict[str, Any]) -> dict[str, Any]:
        return {k: v for k, v in record.items() if k not in _TIMING_KEYS}

    def canonical_json(self) -> str:
        """Byte-stable form: every wall-clock field removed."""
        return json.dumps(self.to_dict(include_timing=False),
                          sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_bench(designs: list[str] | None = None, device: Device = XC7,
              config: SchedulerConfig | None = None, quick: bool = False,
              jobs: int | None = 1,
              progress: Callable[[str], None] | None = None) -> BenchResult:
    """Run the benchmark matrix and return a :class:`BenchResult`.

    ``config`` selects the *optimized* arm's features (so the
    ``--no-presolve`` / ``--no-warm-start`` CLI flags ablate one lever
    at a time); the cold arm always disables both. ``quick`` restricts
    the matrix to :data:`QUICK_DESIGNS` and a shorter time limit — the
    CI perf-smoke shape.
    """
    from ..designs.fullsize import FULLSIZE

    config = config or SchedulerConfig()
    if designs:
        requested = [d.upper() for d in designs]
        unknown = [n for n in requested
                   if n not in BENCHMARKS and n not in FULLSIZE]
        if unknown:
            raise ExperimentError(f"unknown design(s) "
                                  f"{', '.join(map(repr, unknown))}")
        names = [n for n in requested if n in BENCHMARKS]
        partition_names = [n for n in requested if n in FULLSIZE]
        if quick:
            partition_names += [n for n in requested
                                if n in QUICK_PARTITION]
    else:
        names = list(QUICK_DESIGNS) if quick else list(BENCHMARKS)
        partition_names = (list(QUICK_PARTITION) if quick
                           else list(PARTITION_DESIGNS))
    if quick:
        config = replace(config, time_limit=min(config.time_limit or 60.0,
                                                60.0))
    cold = replace(config, presolve=False, warm_start=False)

    tasks: list[_BenchTask] = []
    for name in names:
        for arm, cfg in (("optimized", config), ("cold", cold)):
            tasks.append(_BenchTask("design", name, "milp-map", "scipy",
                                    arm, device, replace(cfg,
                                                         backend="scipy")))
        if name in BNB_DESIGNS:
            for arm, cfg in (("optimized", config), ("cold", cold)):
                tasks.append(_BenchTask("design", name, "milp-base", "bnb",
                                        arm, device,
                                        replace(cfg, backend="bnb",
                                                use_mapping=False)))
    micro_names = list(MICROBENCHES)[:1] if quick else list(MICROBENCHES)
    for name in micro_names:
        for arm in ("optimized", "cold"):
            tasks.append(_BenchTask("micro", name, "micro", "bnb", arm,
                                    device, config))
    equiv_names = [n for n in names if n in EQUIV_DESIGNS]
    if quick:
        equiv_names = equiv_names[:2]
    for name in equiv_names:
        tasks.append(_BenchTask("equiv", name, "milp-map", "miter",
                                "validate", device,
                                replace(config, backend="scipy")))
    for name in partition_names:
        # Table 1 subjects (quick) are forced into multiple subgraphs
        # with a small partition_size; full-size variants use the
        # shipped default. One feedback round keeps the arm's wall time
        # proportional to two stitches, not a full convergence run.
        part_cfg = replace(config, backend="scipy", partition=True,
                           partition_rounds=1,
                           partition_size=12 if name in BENCHMARKS else 48)
        tasks.append(_BenchTask("partition", name, "milp-map", "scipy",
                                "partition", device, part_cfg))
    # Kernel arms: the vectorized numpy hot paths vs their pure-Python
    # references over identical workloads (docs/performance.md). The
    # full-size subjects only join the default full matrix — an explicit
    # design list keeps its exact scope, and quick stays CI-sized.
    kernel_names = list(names)
    cutenum_names = list(names)
    if not designs and not quick:
        kernel_names += list(KERNEL_FULLSIZE)
        cutenum_names += list(CUTENUM_FULLSIZE)
    for name in kernel_names:
        for arm in ("vectorized", "reference"):
            tasks.append(_BenchTask("bitdeps", name, "kernel", "packed",
                                    arm, device, config))
    for name in cutenum_names:
        for arm in ("vectorized", "reference"):
            tasks.append(_BenchTask("cutenum", name, "kernel", "cuts",
                                    arm, device, config))
    # The service arm (job server over a fuzz load; docs/service.md) is
    # part of the standard matrix, like the microbenches.
    tasks.append(_BenchTask("service", "fuzz-load", "milp-map", "service",
                            "service", device, config))

    t0 = time.perf_counter()
    records = run_parallel(
        tasks, _run_bench_task, jobs=jobs,
        progress=(lambda t: progress(f"{t.name}:{t.backend}:{t.arm}"))
        if progress else None)
    result = BenchResult(config=config, device=device, quick=quick,
                         records=records,
                         elapsed=time.perf_counter() - t0,
                         jobs=jobs or 1)
    return result


# ----------------------------------------------------------------------
# Baseline comparison + rendering
# ----------------------------------------------------------------------
def compare_to_baseline(current: dict[str, Any], baseline: dict[str, Any],
                        max_ratio: float = 3.0,
                        abs_slack: float = 0.2) -> list[str]:
    """Wall-clock regressions of ``current`` vs a stored bench file.

    Returns human-readable regression lines for every record whose
    ``wall_seconds`` grew by more than ``max_ratio`` over the baseline's
    matching record (same kind/name/method/backend/arm). Records missing
    on either side are skipped — the gate flags slowdowns, not matrix
    changes. Sub-10ms baselines are also skipped: at that scale the
    ratio measures scheduler jitter, not the solver. ``abs_slack``
    additionally requires the absolute growth to exceed a floor — a
    50ms record tripling under pool contention is noise, a genuine
    hot-path regression costs real seconds and clears both bars.
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        raise ExperimentError(
            f"baseline schema {baseline.get('schema')!r} != {BENCH_SCHEMA}")

    def key(rec: dict[str, Any]) -> tuple:
        return (rec.get("kind"), rec.get("name"), rec.get("method"),
                rec.get("backend"), rec.get("arm"))

    base = {key(r): r for r in baseline.get("records", [])}
    regressions = []
    for rec in current.get("records", []):
        ref = base.get(key(rec))
        if ref is None or not rec.get("ok") or not ref.get("ok"):
            continue
        ref_wall = float(ref.get("wall_seconds", 0.0))
        cur_wall = float(rec.get("wall_seconds", 0.0))
        if ref_wall < 0.01:
            continue
        ratio = cur_wall / ref_wall
        if ratio > max_ratio and cur_wall - ref_wall > abs_slack:
            regressions.append(
                f"{rec['name']}:{rec['method']}:{rec['backend']}:{rec['arm']}"
                f" {cur_wall:.3f}s vs baseline {ref_wall:.3f}s "
                f"({ratio:.1f}x > {max_ratio:.1f}x)")
    return regressions


def format_bench(result: BenchResult) -> str:
    """Text rendering: per-record table plus the speedup summary."""
    lines = [f"bench ({'quick' if result.quick else 'full'}, "
             f"{len(result.records)} records, {result.elapsed:.1f}s)"]
    header = (f"{'name':<14s} {'method':<10s} {'backend':<7s} {'arm':<10s} "
              f"{'wall':>8s} {'solve':>8s} {'cons':>6s} {'status':<s}")
    lines.append(header)
    lines.append("-" * len(header))
    for rec in result.records:
        if rec.get("ok"):
            status = "optimal" if rec.get("optimal") else "feasible"
        else:
            status = f"FAILED:{rec.get('error', '?')}"
        lines.append(
            f"{rec['name']:<14s} {rec['method']:<10s} {rec['backend']:<7s} "
            f"{rec['arm']:<10s} {rec.get('wall_seconds', 0.0):>7.2f}s "
            f"{rec.get('solve_seconds', 0.0):>7.2f}s "
            f"{rec.get('constraints', 0):>6d} {status}")
    summary = result.summary()
    lines.append("")
    for key in ("scipy_solve_speedup", "bnb_wall_speedup",
                "micro_wall_speedup", "bitdeps_speedup",
                "cutenum_speedup"):
        if key in summary:
            lines.append(f"{key}: {summary[key]:.2f}x")
    if "equiv_wall_seconds" in summary:
        lines.append(f"equiv_wall_seconds: {summary['equiv_wall_seconds']:.2f}s"
                     f" ({len(summary.get('equiv_proved', []))} proved)")
    if summary.get("service_jobs_per_sec") is not None:
        lines.append(f"service_jobs_per_sec: "
                     f"{summary['service_jobs_per_sec']:.2f} "
                     f"(cache hit rate "
                     f"{summary.get('service_cache_hit_rate', 0.0):.0%})")
    if summary.get("failed"):
        lines.append("failed: " + ", ".join(summary["failed"]))
    return "\n".join(lines)

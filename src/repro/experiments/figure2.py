"""Figure 2 — word-level cut enumeration on the RS decoder kernel.

Reproduces the paper's enumeration walkthrough at 2-bit width with K=4,
including the two behaviours the figure highlights: the comparison
``B >= 0`` collapsing to a sign-bit dependence, and the loop-carried cycle
through nodes D and E being handled by treating registered values as cone
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cuts.cut import CutSet
from ..cuts.enumerate import CutEnumerator, EnumerationStats
from ..ir.builder import DFGBuilder
from ..ir.graph import CDFG

__all__ = ["build_figure2_kernel", "run_figure2", "format_figure2",
           "Figure2Result"]


def build_figure2_kernel(width: int = 2) -> CDFG:
    """The Figure 2 DFG: A = shift, B = xor, C = sign test, D/E = loop."""
    b = DFGBuilder("rs_decoder", width=width)
    s = b.input("s", width)
    t = b.input("t", width)
    a = s >> 1
    a.node.name = "A"
    x = t ^ a
    x.node.name = "B"
    c = x.sge(0)
    c.node.name = "C"
    d = b.recurrence("D", width=width, initial=0)
    e = b.mux(c, d ^ t, d)
    e.node.name = "E"
    e.feed(d)
    b.output(e, "out")
    return b.build()


@dataclass
class Figure2Result:
    """Cut sets plus enumeration statistics."""

    kernel: CDFG
    cuts: dict[int, CutSet]
    stats: EnumerationStats
    k: int


def run_figure2(k: int = 4, width: int = 2) -> Figure2Result:
    """Enumerate cuts for the Figure 2 kernel."""
    kernel = build_figure2_kernel(width)
    enumerator = CutEnumerator(kernel, k)
    cuts = enumerator.run()
    return Figure2Result(kernel=kernel, cuts=cuts,
                         stats=enumerator.stats, k=k)


def format_figure2(result: Figure2Result) -> str:
    """Print each node's cut set like the figure's annotations."""
    graph = result.kernel
    lines = [
        f"Figure 2: cut enumeration for the Reed-Solomon decoder "
        f"(width 2, K={result.k})",
        "",
    ]
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.is_boundary:
            continue
        cs = result.cuts[nid]
        lines.append(f"{node.label} ({node.kind.value}):")
        for cut in cs.selectable:
            entries = ", ".join(
                graph.node(u).label + (f"[d{d}]" if d else "")
                for u, d in cut.entries
            )
            lines.append(
                f"  {cut.kind:>6} cut {{{entries}}} "
                f"max-support={cut.max_support}"
            )
    lines.append("")
    lines.append(
        f"{result.stats.total_selectable} selectable cuts from "
        f"{result.stats.candidates_generated} merge candidates in "
        f"{result.stats.worklist_visits} worklist visits"
    )
    sign = None
    for node in graph:
        if node.kind.value == "sge":
            sign = result.cuts[node.nid]
    if sign is not None and any(c.max_support == 1 for c in sign.selectable):
        lines.append("sign-test refinement: C's output depends on a single "
                     "bit (the MSB of B), as the paper observes")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure2(run_figure2()))


if __name__ == "__main__":  # pragma: no cover
    main()

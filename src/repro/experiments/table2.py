"""Table 2 — MILP solver runtime per benchmark.

Measures, for MILP-base and MILP-map, the solver wall time (excluding cut
enumeration and model construction, exactly as the paper's caption states)
plus the model sizes that explain the gap ("the runtime scaled primarily
with the number of unique constraints", Sec. 4.3).

Measurements come from the flow's trace spans (``cut-enum`` /
``milp-build`` / ``solve``) rather than ad-hoc timers, so Table 2 reports
exactly what :func:`repro.experiments.run_flow` recorded — including when
the result is replayed from the on-disk cache, where the *original* solve
time is reported instead of a meaningless cache-read time. Like Table 1,
the per-design tasks run through :func:`repro.runtime.run_parallel`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.config import SchedulerConfig
from ..runtime.cache import FlowCache
from ..runtime.parallel import run_parallel, task_seed
from ..runtime.trace import Tracer
from ..tech.device import XC7, Device
from ..designs.registry import BENCHMARKS
from ..errors import ExperimentError
from .flows import run_flow
from .reporting import render_table

__all__ = ["Table2Row", "Table2Result", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """Solver-runtime measurements for one design."""

    design: str
    num_ops: int
    base_seconds: float
    map_seconds: float
    base_constraints: int
    map_constraints: int
    base_optimal: bool
    map_optimal: bool
    enumeration_cuts: int = 0
    #: Traces of the two flows (cached spans marked so).
    base_trace: Tracer | None = None
    map_trace: Tracer | None = None


@dataclass
class Table2Result:
    config: SchedulerConfig
    device: Device
    rows: list[Table2Row] = field(default_factory=list)


@dataclass(frozen=True)
class _Table2Task:
    design: str
    device: Device
    config: SchedulerConfig
    cache_dir: str | None


def _milp_measurements(trace: Tracer, schedule) -> tuple[float, int, int, bool]:
    """(solve seconds, constraints, cuts, optimal) from a flow's spans.

    Uses the *last* spans — the ones belonging to the attempt that
    produced the returned schedule (earlier spans may be a failed
    narrowed-graph attempt or an infeasible-horizon retry).
    """
    build = trace.last("milp-build")
    enum = trace.last("cut-enum")
    constraints = int(build.meta.get("constraints", 0)) if build else 0
    cuts = int(enum.meta.get("cuts", 0)) if enum else 0
    return schedule.solve_seconds, constraints, cuts, schedule.optimal


def _run_table2_task(task: _Table2Task) -> Table2Row:
    """Worker: both MILP flows for one design, measured via their traces."""
    random.seed(task_seed(task.design, "table2"))
    spec = BENCHMARKS[task.design]
    cache = FlowCache(task.cache_dir) if task.cache_dir else None
    num_ops = spec.build().num_operations
    base = run_flow(spec.build(), "milp-base", task.device, task.config,
                    design=task.design, cache=cache)
    mapped = run_flow(spec.build(), "milp-map", task.device, task.config,
                      design=task.design, cache=cache)
    base_seconds, base_cons, _, base_opt = \
        _milp_measurements(base.trace, base.schedule)
    map_seconds, map_cons, map_cuts, map_opt = \
        _milp_measurements(mapped.trace, mapped.schedule)
    return Table2Row(
        design=task.design,
        num_ops=num_ops,
        base_seconds=base_seconds,
        map_seconds=map_seconds,
        base_constraints=base_cons,
        map_constraints=map_cons,
        base_optimal=base_opt,
        map_optimal=map_opt,
        enumeration_cuts=map_cuts,
        base_trace=base.trace,
        map_trace=mapped.trace,
    )


def run_table2(designs: list[str] | None = None, device: Device = XC7,
               config: SchedulerConfig | None = None,
               progress=None,
               jobs: int | None = 1,
               cache_dir: str | None = None) -> Table2Result:
    """Run both MILPs per design and collect solve times and model sizes."""
    config = config or SchedulerConfig(ii=1, tcp=10.0)
    names = designs or list(BENCHMARKS)
    for name in names:
        if name not in BENCHMARKS:
            raise ExperimentError(f"unknown design {name!r}")
    tasks = [_Table2Task(design=name, device=device, config=config,
                         cache_dir=cache_dir) for name in names]
    rows = run_parallel(
        tasks, _run_table2_task, jobs=jobs,
        progress=(lambda t: progress(t.design)) if progress else None,
    )
    return Table2Result(config=config, device=device, rows=rows)


def format_table2(result: Table2Result) -> str:
    """Render in the paper's Table 2 layout (plus model-size columns)."""
    headers = ["Design", "Ops", "Cuts", "MILP-base (s)", "MILP-map (s)",
               "base cons", "map cons", "proved optimal"]
    rows = []
    total_ops = total_base = total_map = 0.0
    for r in result.rows:
        total_ops += r.num_ops
        total_base += r.base_seconds
        total_map += r.map_seconds
        opt = ("both" if r.base_optimal and r.map_optimal
               else "base" if r.base_optimal
               else "map" if r.map_optimal else "neither")
        rows.append([r.design, r.num_ops, r.enumeration_cuts,
                     f"{r.base_seconds:.1f}", f"{r.map_seconds:.1f}",
                     r.base_constraints, r.map_constraints, opt])
    n = max(1, len(result.rows))
    rows.append(["Mean", f"{total_ops / n:.1f}", "",
                 f"{total_base / n:.1f}", f"{total_map / n:.1f}", "", "", ""])
    return render_table(
        headers, rows,
        title=("Table 2: MILP solver runtime (cut enumeration and model "
               f"construction excluded; time cap {result.config.time_limit}s)"),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_table2(progress=lambda s: print(f"  solving {s}..."))
    print(format_table2(result))


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 2 — MILP solver runtime per benchmark.

Measures, for MILP-base and MILP-map, the solver wall time (excluding cut
enumeration and model construction, exactly as the paper's caption states)
plus the model sizes that explain the gap ("the runtime scaled primarily
with the number of unique constraints", Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import SchedulerConfig
from ..core.mapsched import BaseScheduler, MapScheduler
from ..tech.device import XC7, Device
from ..designs.registry import BENCHMARKS
from .reporting import render_table

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """Solver-runtime measurements for one design."""

    design: str
    num_ops: int
    base_seconds: float
    map_seconds: float
    base_constraints: int
    map_constraints: int
    base_optimal: bool
    map_optimal: bool
    enumeration_cuts: int = 0


@dataclass
class Table2Result:
    config: SchedulerConfig
    device: Device
    rows: list[Table2Row] = field(default_factory=list)


def run_table2(designs: list[str] | None = None, device: Device = XC7,
               config: SchedulerConfig | None = None,
               progress=None) -> Table2Result:
    """Run both MILPs per design and collect solve times and model sizes."""
    config = config or SchedulerConfig(ii=1, tcp=10.0)
    result = Table2Result(config=config, device=device)
    for name in designs or list(BENCHMARKS):
        spec = BENCHMARKS[name]
        if progress:
            progress(name)
        base = BaseScheduler(spec.build(), device, config)
        base_sched = base.schedule()
        mapper = MapScheduler(spec.build(), device, config)
        map_sched = mapper.schedule()
        result.rows.append(Table2Row(
            design=name,
            num_ops=base.graph.num_operations,
            base_seconds=base_sched.solve_seconds,
            map_seconds=map_sched.solve_seconds,
            base_constraints=base.formulation.stats.num_constraints,
            map_constraints=mapper.formulation.stats.num_constraints,
            base_optimal=base_sched.optimal,
            map_optimal=map_sched.optimal,
            enumeration_cuts=mapper.enumerator.stats.total_selectable,
        ))
    return result


def format_table2(result: Table2Result) -> str:
    """Render in the paper's Table 2 layout (plus model-size columns)."""
    headers = ["Design", "Ops", "Cuts", "MILP-base (s)", "MILP-map (s)",
               "base cons", "map cons", "proved optimal"]
    rows = []
    total_ops = total_base = total_map = 0.0
    for r in result.rows:
        total_ops += r.num_ops
        total_base += r.base_seconds
        total_map += r.map_seconds
        opt = ("both" if r.base_optimal and r.map_optimal
               else "base" if r.base_optimal
               else "map" if r.map_optimal else "neither")
        rows.append([r.design, r.num_ops, r.enumeration_cuts,
                     f"{r.base_seconds:.1f}", f"{r.map_seconds:.1f}",
                     r.base_constraints, r.map_constraints, opt])
    n = max(1, len(result.rows))
    rows.append(["Mean", f"{total_ops / n:.1f}", "",
                 f"{total_base / n:.1f}", f"{total_map / n:.1f}", "", "", ""])
    return render_table(
        headers, rows,
        title=("Table 2: MILP solver runtime (cut enumeration and model "
               f"construction excluded; time cap {result.config.time_limit}s)"),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_table2(progress=lambda s: print(f"  solving {s}..."))
    print(format_table2(result))


if __name__ == "__main__":  # pragma: no cover
    main()

"""Experiment harnesses: Table 1, Table 2, Figure 1, Figure 2, ablations."""

from .ablation import (
    format_alpha_beta,
    format_bitblast,
    format_heuristic_gap,
    format_k_sweep,
    format_xorr_depth,
    sweep_alpha_beta,
    sweep_bitblast,
    sweep_heuristic_gap,
    sweep_k,
    sweep_xorr_depth,
)
from .bench import (
    BENCH_SCHEMA,
    BenchResult,
    compare_to_baseline,
    format_bench,
    run_bench,
)
from .figure1 import build_figure1_kernel, format_figure1, run_figure1
from .figure2 import build_figure2_kernel, format_figure2, run_figure2
from .flows import ALL_METHODS, METHODS, FlowResult, run_flow
from .reporting import percent, render_table
from .table1 import Table1Result, Table1Row, format_table1, run_table1
from .table2 import Table2Result, Table2Row, format_table2, run_table2

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "FlowResult",
    "ALL_METHODS",
    "METHODS",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "build_figure1_kernel",
    "build_figure2_kernel",
    "compare_to_baseline",
    "format_bench",
    "format_alpha_beta",
    "format_figure1",
    "format_figure2",
    "format_bitblast",
    "format_heuristic_gap",
    "format_k_sweep",
    "format_table1",
    "format_table2",
    "format_xorr_depth",
    "percent",
    "render_table",
    "run_bench",
    "run_figure1",
    "run_figure2",
    "run_flow",
    "run_table1",
    "run_table2",
    "sweep_alpha_beta",
    "sweep_bitblast",
    "sweep_heuristic_gap",
    "sweep_k",
    "sweep_xorr_depth",
]

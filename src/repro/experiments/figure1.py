"""Figure 1 — the Reed–Solomon encoder scheduling walkthrough.

Reproduces the paper's motivating example on the K=4 teaching device
(target clock 5 ns, one LUT level = 2 ns): the additive-delay flow needs
multiple pipeline stages and LUTs, while the mapping-aware schedule chains
two LUT levels in a single cycle — "2 LUTs and 1 pipeline stage".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import SchedulerConfig
from ..hw.cost import HardwareReport
from ..ir.builder import DFGBuilder
from ..ir.dot import to_dot
from ..ir.graph import CDFG
from ..tech.device import TUTORIAL4, Device
from .flows import run_flow

__all__ = ["build_figure1_kernel", "run_figure1", "format_figure1",
           "Figure1Result"]


def build_figure1_kernel(width: int = 2) -> CDFG:
    """The Figure 1 DFG: shift, XOR, sign test, conditional update.

    At word width 2 this is exactly the graph of the paper's Figure 2 cut
    enumeration; Figure 1 shows its schedule.
    """
    b = DFGBuilder("rs_encoder", width=width)
    s = b.input("s", width)
    t = b.input("t", width)
    a = s >> 1                      # A: each bit depends on one shifted bit
    x = t ^ a                       # B: bitwise combine
    c = x.sge(0)                    # C: sign test -> depends on MSB only
    d = t ^ s                       # D: feedback term
    e = b.mux(c, d, t)              # E: conditional select
    b.output(e, "out")
    return b.build()


@dataclass
class Figure1Result:
    """Reports + schedules for the walkthrough."""

    kernel: CDFG
    reports: dict[str, HardwareReport]
    schedules: dict[str, object]
    dots: dict[str, str]


def run_figure1(device: Device = TUTORIAL4, tcp: float = 5.0,
                width: int = 2) -> Figure1Result:
    """Run the three flows on the Figure 1 kernel."""
    config = SchedulerConfig(ii=1, tcp=tcp, time_limit=60.0)
    reports = {}
    schedules = {}
    dots = {}
    for method in ("hls-tool", "milp-base", "milp-map"):
        flow = run_flow(build_figure1_kernel(width), method, device, config,
                        design="fig1")
        reports[method] = flow.report
        schedules[method] = flow.schedule
        dots[method] = to_dot(
            flow.schedule.graph,
            cycle_of=flow.schedule.cycle,
            highlight_roots=set(flow.schedule.cover),
        )
    return Figure1Result(kernel=build_figure1_kernel(width),
                         reports=reports, schedules=schedules, dots=dots)


def format_figure1(result: Figure1Result) -> str:
    """Human-readable comparison in the spirit of Figure 1's caption."""
    lines = [
        "Figure 1: pipeline schedule for the Reed-Solomon encoder kernel",
        f"(target clock 5 ns on device {TUTORIAL4.name}; "
        "one LUT level = 2 ns)",
        "",
    ]
    for method, label in (("hls-tool", "HLS tool (additive delays)"),
                          ("milp-base", "MILP-base (exact, additive)"),
                          ("milp-map", "MILP-map (mapping-aware)")):
        r = result.reports[method]
        sched = result.schedules[method]
        lines.append(
            f"{label}: {r.luts} LUT(s), {max(sched.latency, 1)} stage(s), "
            f"{r.ffs} FF bit(s), CP {r.cp:.2f} ns"
        )
        lines.append(sched.describe())
        lines.append("")
    mmap = result.reports["milp-map"]
    base = result.reports["hls-tool"]
    lines.append(
        f"mapping-aware scheduling: {base.luts} -> {mmap.luts} LUTs and "
        f"{result.schedules['hls-tool'].latency} -> "
        f"{result.schedules['milp-map'].latency} stage(s)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure1(run_figure1()))


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 1 — resource usage comparison across the three flows.

For every benchmark, runs the commercial-tool proxy, MILP-base and MILP-map
at the paper's operating point (target clock 10 ns, II = 1, alpha = beta =
0.5) and reports achieved CP / LUT / FF with percentages relative to the
HLS-tool row, in the paper's layout.

The 9 x 3 (design, method) grid runs through
:func:`repro.runtime.run_parallel`: ``jobs=1`` (default) is the exact
serial path, ``jobs=N`` fans tasks over a process pool with an ordered
merge, so the rendered table is byte-identical either way. Passing
``cache_dir`` serves every previously computed flow from the on-disk
:class:`~repro.runtime.FlowCache` — a warm rerun performs zero MILP
solves (the per-row traces prove it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.config import SchedulerConfig
from ..errors import ExperimentError
from ..hw.cost import HardwareReport
from ..runtime.cache import FlowCache
from ..runtime.parallel import run_parallel, task_seed
from ..runtime.trace import Tracer
from ..sim.pipeline import replay_equivalent
from ..tech.device import XC7, Device
from ..designs.registry import BENCHMARKS, BenchmarkSpec
from .flows import METHODS, run_flow
from .reporting import percent, render_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]


@dataclass
class Table1Row:
    """One (design, method) measurement."""

    design: str
    domain: str
    description: str
    method: str
    report: HardwareReport
    replay_ok: bool | None = None
    #: Per-phase spans of the producing flow (cached spans marked so).
    trace: Tracer | None = None
    #: True when the flow result came from the cache.
    cached: bool = False


@dataclass
class Table1Result:
    """All Table 1 measurements plus the configuration used."""

    config: SchedulerConfig
    device: Device
    rows: list[Table1Row] = field(default_factory=list)

    def rows_for(self, design: str) -> dict[str, Table1Row]:
        return {r.method: r for r in self.rows if r.design == design}


@dataclass(frozen=True)
class _FlowTask:
    """One picklable (design, method) work item."""

    design: str
    method: str
    device: Device
    config: SchedulerConfig
    check_replay: bool
    replay_iterations: int
    cache_dir: str | None


def _run_flow_task(task: _FlowTask) -> Table1Row:
    """Worker: run one flow (possibly in a pool process) and build its row."""
    # Deterministic per-task seed: no library path consumes the global RNG
    # today, but reseeding pins the result against any future drift and
    # makes parallel scheduling order irrelevant by construction.
    random.seed(task_seed(task.design, task.method))
    spec: BenchmarkSpec = BENCHMARKS[task.design]
    cache = FlowCache(task.cache_dir) if task.cache_dir else None
    flow = run_flow(spec.build(), task.method, task.device, task.config,
                    design=task.design, cache=cache)
    replay_ok = None
    if task.check_replay:
        stream = spec.input_stream(seed=7, n=task.replay_iterations)
        replay_ok = replay_equivalent(
            flow.schedule, task.device, stream,
            env_factory=lambda: spec.make_env(1),
        )
    return Table1Row(
        design=task.design, domain=spec.domain,
        description=spec.description, method=task.method,
        report=flow.report, replay_ok=replay_ok,
        trace=flow.trace, cached=flow.cached,
    )


def run_table1(designs: list[str] | None = None,
               device: Device = XC7,
               config: SchedulerConfig | None = None,
               check_replay: bool = True,
               replay_iterations: int = 24,
               progress=None,
               jobs: int | None = 1,
               cache_dir: str | None = None) -> Table1Result:
    """Run the Table 1 experiment.

    ``check_replay`` additionally replays every produced schedule against
    the functional reference on a random input stream — a correctness gate
    the paper delegated to "verify from the synthesis report". The replay
    always runs, even for cached flows: the cache stores results, not
    verdicts.

    ``jobs`` > 1 fans the (design, method) grid over a process pool;
    ``cache_dir`` enables the on-disk flow cache.
    """
    config = config or SchedulerConfig(ii=1, tcp=10.0, alpha=0.5, beta=0.5)
    names = designs or list(BENCHMARKS)
    for name in names:
        if name not in BENCHMARKS:
            raise ExperimentError(f"unknown design {name!r}")
    tasks = [
        _FlowTask(design=name, method=method, device=device, config=config,
                  check_replay=check_replay,
                  replay_iterations=replay_iterations, cache_dir=cache_dir)
        for name in names for method in METHODS
    ]
    rows = run_parallel(
        tasks, _run_flow_task, jobs=jobs,
        progress=(lambda t: progress(f"{t.design}:{t.method}"))
        if progress else None,
    )
    return Table1Result(config=config, device=device, rows=rows)


def format_table1(result: Table1Result) -> str:
    """Render in the paper's Table 1 layout.

    Percentages are relative to the HLS-tool row; when that row is absent
    (a filtered or partially cached result) the percentage cells are left
    blank instead of failing.
    """
    headers = ["Design", "Domain", "Method", "CP(ns)", "LUT", "%", "FF", "%",
               "II", "Depth", "ok"]
    rows = []
    for name in dict.fromkeys(r.design for r in result.rows):
        per_method = result.rows_for(name)
        base = per_method.get("hls-tool")
        first = True
        for method in METHODS:
            row = per_method.get(method)
            if row is None:
                continue
            r = row.report
            lut_pct = "" if method == "hls-tool" or base is None else \
                percent(r.luts, base.report.luts)
            ff_pct = "" if method == "hls-tool" or base is None else \
                percent(r.ffs, base.report.ffs)
            ok = "" if row.replay_ok is None else \
                ("yes" if row.replay_ok else "NO")
            rows.append([
                name if first else "",
                row.domain if first else "",
                {"hls-tool": "HLS Tool", "milp-base": "MILP-base",
                 "milp-map": "MILP-map"}[method],
                f"{r.cp:.2f}", r.luts, lut_pct, r.ffs, ff_pct,
                r.ii, r.latency, ok,
            ])
            first = False
    title = (f"Table 1: Resource usage comparison "
             f"(target clock {result.config.tcp:g} ns, II={result.config.ii}, "
             f"alpha=beta={result.config.alpha:g}, device {result.device.name})")
    return render_table(headers, rows, title=title)


def main() -> None:  # pragma: no cover - CLI convenience
    random.seed(0)
    result = run_table1(progress=lambda s: print(f"  running {s}..."))
    print(format_table1(result))


if __name__ == "__main__":  # pragma: no cover
    main()

"""Table 1 — resource usage comparison across the three flows.

For every benchmark, runs the commercial-tool proxy, MILP-base and MILP-map
at the paper's operating point (target clock 10 ns, II = 1, alpha = beta =
0.5) and reports achieved CP / LUT / FF with percentages relative to the
HLS-tool row, in the paper's layout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.config import SchedulerConfig
from ..errors import ExperimentError
from ..hw.cost import HardwareReport
from ..sim.pipeline import replay_equivalent
from ..tech.device import XC7, Device
from ..designs.registry import BENCHMARKS, BenchmarkSpec
from .flows import METHODS, run_flow
from .reporting import percent, render_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]


@dataclass
class Table1Row:
    """One (design, method) measurement."""

    design: str
    domain: str
    description: str
    method: str
    report: HardwareReport
    replay_ok: bool | None = None


@dataclass
class Table1Result:
    """All Table 1 measurements plus the configuration used."""

    config: SchedulerConfig
    device: Device
    rows: list[Table1Row] = field(default_factory=list)

    def rows_for(self, design: str) -> dict[str, Table1Row]:
        return {r.method: r for r in self.rows if r.design == design}


def run_table1(designs: list[str] | None = None,
               device: Device = XC7,
               config: SchedulerConfig | None = None,
               check_replay: bool = True,
               replay_iterations: int = 24,
               progress=None) -> Table1Result:
    """Run the Table 1 experiment.

    ``check_replay`` additionally replays every produced schedule against
    the functional reference on a random input stream — a correctness gate
    the paper delegated to "verify from the synthesis report".
    """
    config = config or SchedulerConfig(ii=1, tcp=10.0, alpha=0.5, beta=0.5)
    names = designs or list(BENCHMARKS)
    result = Table1Result(config=config, device=device)
    for name in names:
        if name not in BENCHMARKS:
            raise ExperimentError(f"unknown design {name!r}")
        spec: BenchmarkSpec = BENCHMARKS[name]
        for method in METHODS:
            if progress:
                progress(f"{name}:{method}")
            flow = run_flow(spec.build(), method, device, config, design=name)
            replay_ok = None
            if check_replay:
                stream = spec.input_stream(seed=7, n=replay_iterations)
                replay_ok = replay_equivalent(
                    flow.schedule, device, stream,
                    env_factory=lambda: spec.make_env(1),
                )
            result.rows.append(Table1Row(
                design=name, domain=spec.domain,
                description=spec.description, method=method,
                report=flow.report, replay_ok=replay_ok,
            ))
    return result


def format_table1(result: Table1Result) -> str:
    """Render in the paper's Table 1 layout."""
    headers = ["Design", "Domain", "Method", "CP(ns)", "LUT", "%", "FF", "%",
               "II", "Depth", "ok"]
    rows = []
    for name in dict.fromkeys(r.design for r in result.rows):
        per_method = result.rows_for(name)
        base = per_method.get("hls-tool")
        for method in METHODS:
            row = per_method.get(method)
            if row is None:
                continue
            r = row.report
            lut_pct = "" if method == "hls-tool" else \
                percent(r.luts, base.report.luts)
            ff_pct = "" if method == "hls-tool" else \
                percent(r.ffs, base.report.ffs)
            ok = "" if row.replay_ok is None else \
                ("yes" if row.replay_ok else "NO")
            rows.append([
                name if method == "hls-tool" else "",
                row.domain if method == "hls-tool" else "",
                {"hls-tool": "HLS Tool", "milp-base": "MILP-base",
                 "milp-map": "MILP-map"}[method],
                f"{r.cp:.2f}", r.luts, lut_pct, r.ffs, ff_pct,
                r.ii, r.latency, ok,
            ])
    title = (f"Table 1: Resource usage comparison "
             f"(target clock {result.config.tcp:g} ns, II={result.config.ii}, "
             f"alpha=beta={result.config.alpha:g}, device {result.device.name})")
    return render_table(headers, rows, title=title)


def main() -> None:  # pragma: no cover - CLI convenience
    random.seed(0)
    result = run_table1(progress=lambda s: print(f"  running {s}..."))
    print(format_table1(result))


if __name__ == "__main__":  # pragma: no cover
    main()

"""The three evaluation flows of Sec. 4, with the paper's protocol.

Every flow ends in the *same* downstream technology mapping and the same
hardware cost model, mirroring the paper where all three schedules go
through Vivado synthesis/P&R:

* **hls-tool** — heuristic additive-delay schedule, then per-stage mapping;
* **milp-base** — exact additive-delay MILP schedule ("skipping cut
  enumeration"), then the same per-stage mapping downstream;
* **milp-map** — the mapping-aware MILP; its jointly-optimized cover *is*
  the mapping (a downstream mapper honoring the schedule could only match
  it, since the MILP already chose the per-stage optimum it wanted).

Every run is traced (:class:`~repro.runtime.Tracer` spans for lint /
narrow / cut-enum / milp-build / solve / verify / evaluate) and can be
served from a content-addressed :class:`~repro.runtime.FlowCache`, in
which case the stored result — including its original spans, marked
``cached`` — comes back without touching the scheduler or the solver.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable

from ..core.config import SchedulerConfig
from ..core.mapsched import BaseScheduler, MapScheduler
from ..core.verify import verify_schedule
from ..errors import ExperimentError, FlowCancelled
from ..hls.tool import CommercialHLSProxy
from ..hw.cost import HardwareReport, evaluate
from ..ir.graph import CDFG
from ..mapping.stage_mapper import map_schedule
from ..runtime.cache import FlowCache
from ..runtime.fingerprint import flow_fingerprint
from ..runtime.trace import Tracer
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device

__all__ = ["ALL_METHODS", "FlowResult", "run_flow", "METHODS"]

logger = logging.getLogger(__name__)

METHODS = ("hls-tool", "milp-base", "milp-map")

#: METHODS plus the scalable mapping-aware heuristic (the paper's future
#: work, built here as an extension — see repro.core.heuristic).
ALL_METHODS = METHODS + ("heur-map",)


@dataclass
class FlowResult:
    """Schedule + hardware report (+ trace) for one (design, method) pair.

    Attributes
    ----------
    schedule / report:
        The QoR artifacts every harness consumes.
    trace:
        Per-phase spans recorded while the result was computed. For a
        cache hit these are the *original* run's spans, each marked
        ``cached=True``, plus a fresh ``cache-load`` span.
    cached:
        True when this result came from a :class:`FlowCache` without any
        recomputation.
    fingerprint:
        The content fingerprint of (graph, method, device, config) when a
        cache was consulted; ``None`` for uncached runs.
    source_graph:
        ``"narrowed"`` when the returned schedule was produced on the
        dataflow-narrowed graph, ``"original"`` otherwise (including the
        retry path after a narrowed-graph failure).
    equiv:
        The translation-validation report
        (:class:`~repro.analysis.equiv.EquivReport`) when the flow was
        run with ``validate=``; ``None`` otherwise.
    """

    schedule: Schedule
    report: HardwareReport
    trace: Tracer = field(default_factory=Tracer)
    cached: bool = False
    fingerprint: str | None = None
    source_graph: str = "original"
    equiv: "object | None" = None


def _checkpoint(cancel: "Callable[[], bool] | None", phase: str) -> None:
    """Cooperative cancellation point: raise before entering ``phase``."""
    if cancel is not None and cancel():
        raise FlowCancelled(f"flow cancelled before {phase}", phase=phase)


def run_flow(graph: CDFG, method: str, device: Device = XC7,
             config: SchedulerConfig | None = None,
             design: str | None = None, lint: bool = True,
             narrow: bool | None = None,
             cache: FlowCache | None = None,
             tracer: Tracer | None = None,
             validate: "bool | tuple[str, ...] | list[str] | None" = None,
             jobs: int | None = 1,
             cancel: "Callable[[], bool] | None" = None,
             on_phase: "Callable[[str, object], None] | None" = None,
             ) -> FlowResult:
    """Run one Table 1 flow on ``graph`` and evaluate the hardware.

    Unless ``lint=False``, the design is first checked by the static
    analyzer and error-severity findings abort the flow with
    :class:`~repro.errors.AnalysisError` (the report rides on the
    exception) — a scheduler fed a malformed or DEP-unsound graph would
    otherwise produce QoR numbers that look valid.

    ``narrow`` (default: ``config.narrow``) shrinks the graph with
    dataflow-proven facts (:func:`repro.ir.transforms.narrow_graph`)
    before any scheduling, cut enumeration or MILP construction; the
    narrowed graph is functionally equivalent, so reports and schedules
    describe the same kernel with fewer bits. Narrowing is strictly an
    optimization: if the flow fails on the narrowed model — a time-capped
    solver losing the incumbent lottery (:class:`SolverError`), the
    independent verifier rejecting the narrowed schedule
    (:class:`ScheduleVerificationError` or any other
    :class:`SchedulingError`), or the analyzer flagging the narrowed graph
    (:class:`AnalysisError`) — the flow retries once on the original graph
    rather than surfacing the failure. The returned result records which
    graph produced it (``FlowResult.source_graph``, also logged and traced).

    ``cache`` short-circuits everything: when the fingerprint of
    (``graph``, ``method``, ``device``, ``config``) has a stored result,
    it is returned without scheduling or solving anything.

    ``validate`` opts into symbolic translation validation
    (:func:`repro.analysis.equiv.validate_flow`): ``True`` proves every
    stage, a stage tuple (e.g. ``("narrow", "rtl")``) a subset. The
    report rides on ``FlowResult.equiv`` under an ``equiv`` tracer span;
    with a ``cache``, verdicts are stored next to the flow result under
    the same fingerprint, so warm reruns re-prove nothing.

    ``config.partition`` routes ``milp-base``/``milp-map`` through
    :class:`~repro.partition.PartitionScheduler` (subgraph decomposition;
    docs/partitioning.md). ``jobs`` sets that scheduler's per-subgraph
    solve parallelism; being runtime-only it never enters fingerprints —
    the partition *parameters* (``partition``/``partition_size``/
    ``partition_rounds``) do, via ``SchedulerConfig.fingerprint_fields``.

    ``cancel`` makes the flow cooperatively cancellable: the predicate is
    checked at every phase boundary (before lint, narrow, dispatch,
    verify, evaluate and cache-store) and, when true, the flow raises
    :class:`~repro.errors.FlowCancelled` instead of entering the next
    phase. A phase already running (e.g. a capped MILP solve) finishes
    first — cancellation never tears down a solver mid-call, so worker
    pools spawned by a phase are always joined before the exception
    surfaces. ``on_phase`` receives live ``("start"|"end", Span)`` phase
    transitions from every layer that records spans through this flow's
    tracer (both are runtime-only and never enter fingerprints).
    """
    config = config or SchedulerConfig()
    if method not in ALL_METHODS:
        raise ExperimentError(
            f"unknown method {method!r}; expected one of {ALL_METHODS}"
        )
    tracer = tracer or Tracer()
    if on_phase is not None:
        tracer.listener = on_phase
    _checkpoint(cancel, "cache-load")
    fingerprint = None
    if cache is not None:
        fingerprint = flow_fingerprint(graph, method, device, config)
        with tracer.span("cache-load", fingerprint=fingerprint) as span:
            hit = cache.load(fingerprint)
            span.meta["hit"] = hit is not None
        if hit is not None:
            tracer.absorb(hit.trace.spans, cached=True)
            hit.trace = tracer
            if validate:
                _attach_validation(hit, graph, validate, cache, tracer,
                                   design, method)
            return hit

    if lint:
        from ..analysis import lint_graph

        _checkpoint(cancel, "lint")
        with tracer.span("lint"):
            lint_graph(graph, device=device).raise_if("error")
    if narrow is None:
        narrow = config.narrow
    result = None
    if narrow:
        from ..errors import AnalysisError, SchedulingError, SolverError
        from ..ir.transforms import narrow_graph

        _checkpoint(cancel, "narrow")
        with tracer.span("narrow") as span:
            narrowed, _ = narrow_graph(graph)
            span.meta["nodes"] = len(narrowed.node_ids)
        try:
            with tracer.context(graph="narrowed"):
                result = _dispatch(narrowed, method, device, config,
                                   design, tracer, jobs, cancel)
            result.source_graph = "narrowed"
        except (SolverError, SchedulingError, AnalysisError) as exc:
            # Narrowing must never turn a schedulable kernel into a
            # failure: fall through to the un-narrowed graph. This covers
            # the solver (lost incumbent on the perturbed MILP), the
            # independent verifier, and the analyzer alike.
            logger.warning(
                "flow %s/%s failed on the narrowed graph (%s: %s); "
                "retrying on the original graph",
                design or graph.name, method, type(exc).__name__, exc)
            with tracer.span("narrow-fallback", error=type(exc).__name__,
                             message=str(exc)[:200]):
                pass
    if result is None:
        with tracer.context(graph="original"):
            result = _dispatch(graph, method, device, config, design,
                               tracer, jobs, cancel)
        result.source_graph = "original"
    result.trace = tracer
    result.fingerprint = fingerprint
    if cache is not None:
        _checkpoint(cancel, "cache-store")
        with tracer.span("cache-store", fingerprint=fingerprint):
            cache.store(fingerprint, result, design=design or graph.name,
                        method=method)
    if validate:
        _attach_validation(result, graph, validate, cache, tracer,
                           design, method)
    return result


def _attach_validation(result: FlowResult, graph: CDFG, validate,
                       cache: FlowCache | None, tracer: Tracer,
                       design: str | None, method: str) -> None:
    """Prove (or load proven) stage equivalences onto ``result.equiv``."""
    from ..analysis.equiv import STAGES, validate_flow

    stages = STAGES if validate is True else tuple(validate)
    fingerprint = result.fingerprint
    if cache is not None and fingerprint is not None:
        hit = cache.load_equiv(fingerprint, stages)
        if hit is not None:
            result.equiv = hit
            return
    with tracer.span("equiv", stages=",".join(stages)) as span:
        report = validate_flow(graph, result.schedule, stages=stages,
                               tracer=tracer,
                               design=design or graph.name, method=method)
        span.meta["ok"] = report.ok
        span.meta["statuses"] = {v.stage: v.status for v in report.stages}
    result.equiv = report
    if cache is not None and fingerprint is not None:
        cache.store_equiv(fingerprint, report)


def _dispatch(graph: CDFG, method: str, device: Device,
              config: SchedulerConfig, design: str | None,
              tracer: Tracer, jobs: int | None = 1,
              cancel: "Callable[[], bool] | None" = None) -> FlowResult:
    _checkpoint(cancel, "schedule")
    if method == "hls-tool":
        with tracer.span("schedule", method=method):
            result = CommercialHLSProxy(graph, device, tcp=config.tcp)\
                .run(target_ii=config.ii)
            schedule = result.schedule
    elif method == "milp-base":
        if config.partition:
            from ..partition import PartitionScheduler

            schedule = PartitionScheduler(
                graph, device, config, method=method, tracer=tracer,
                jobs=jobs, design=design).schedule()
        else:
            schedule = BaseScheduler(graph, device, config,
                                     tracer=tracer).schedule()
        # Downstream mapping respects the frozen register boundaries but
        # still packs logic within each stage (as Vivado would).
        with tracer.span("map", method=method):
            schedule.cover = {}
            schedule = map_schedule(schedule, device)
            schedule.method = "milp-base"
    elif method == "milp-map":
        if config.partition:
            from ..partition import PartitionScheduler

            schedule = PartitionScheduler(
                graph, device, config, method=method, tracer=tracer,
                jobs=jobs, design=design).schedule()
        else:
            schedule = MapScheduler(graph, device, config,
                                    tracer=tracer).schedule()
    elif method == "heur-map":
        from ..core.heuristic import MappingAwareHeuristicScheduler

        with tracer.span("schedule", method=method):
            schedule = MappingAwareHeuristicScheduler(graph, device, config)\
                .schedule(target_ii=config.ii)
    else:  # pragma: no cover - guarded above
        raise ExperimentError(f"unknown method {method!r}")
    _checkpoint(cancel, "verify")
    with tracer.span("verify"):
        verify_schedule(schedule, device)
    _checkpoint(cancel, "evaluate")
    with tracer.span("evaluate"):
        report = evaluate(schedule, device, design=design or graph.name)
    report.method = method
    return FlowResult(schedule=schedule, report=report)

"""The three evaluation flows of Sec. 4, with the paper's protocol.

Every flow ends in the *same* downstream technology mapping and the same
hardware cost model, mirroring the paper where all three schedules go
through Vivado synthesis/P&R:

* **hls-tool** — heuristic additive-delay schedule, then per-stage mapping;
* **milp-base** — exact additive-delay MILP schedule ("skipping cut
  enumeration"), then the same per-stage mapping downstream;
* **milp-map** — the mapping-aware MILP; its jointly-optimized cover *is*
  the mapping (a downstream mapper honoring the schedule could only match
  it, since the MILP already chose the per-stage optimum it wanted).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import SchedulerConfig
from ..core.mapsched import BaseScheduler, MapScheduler
from ..core.verify import verify_schedule
from ..errors import ExperimentError
from ..hls.tool import CommercialHLSProxy
from ..hw.cost import HardwareReport, evaluate
from ..ir.graph import CDFG
from ..mapping.stage_mapper import map_schedule
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device

__all__ = ["ALL_METHODS", "FlowResult", "run_flow", "METHODS"]

METHODS = ("hls-tool", "milp-base", "milp-map")

#: METHODS plus the scalable mapping-aware heuristic (the paper's future
#: work, built here as an extension — see repro.core.heuristic).
ALL_METHODS = METHODS + ("heur-map",)


@dataclass
class FlowResult:
    """Schedule + hardware report for one (design, method) pair."""

    schedule: Schedule
    report: HardwareReport


def run_flow(graph: CDFG, method: str, device: Device = XC7,
             config: SchedulerConfig | None = None,
             design: str | None = None, lint: bool = True,
             narrow: bool | None = None) -> FlowResult:
    """Run one Table 1 flow on ``graph`` and evaluate the hardware.

    Unless ``lint=False``, the design is first checked by the static
    analyzer and error-severity findings abort the flow with
    :class:`~repro.errors.AnalysisError` (the report rides on the
    exception) — a scheduler fed a malformed or DEP-unsound graph would
    otherwise produce QoR numbers that look valid.

    ``narrow`` (default: ``config.narrow``) shrinks the graph with
    dataflow-proven facts (:func:`repro.ir.transforms.narrow_graph`)
    before any scheduling, cut enumeration or MILP construction; the
    narrowed graph is functionally equivalent, so reports and schedules
    describe the same kernel with fewer bits. Narrowing is strictly an
    optimization: if the time-capped solver fails on the narrowed model
    (the perturbed MILP can lose the incumbent lottery), the flow retries
    once on the original graph rather than surfacing the failure.
    """
    config = config or SchedulerConfig()
    if method not in ("hls-tool", "milp-base", "milp-map", "heur-map"):
        raise ExperimentError(
            f"unknown method {method!r}; expected one of "
            f"{METHODS + ('heur-map',)}"
        )
    if lint:
        from ..analysis import lint_graph

        lint_graph(graph, device=device).raise_if("error")
    if narrow is None:
        narrow = config.narrow
    if narrow:
        from ..errors import SolverError
        from ..ir.transforms import narrow_graph

        narrowed, _ = narrow_graph(graph)
        try:
            return _dispatch(narrowed, method, device, config, design)
        except SolverError:
            pass  # fall through to the un-narrowed graph
    return _dispatch(graph, method, device, config, design)


def _dispatch(graph: CDFG, method: str, device: Device,
              config: SchedulerConfig, design: str | None) -> FlowResult:
    if method == "hls-tool":
        result = CommercialHLSProxy(graph, device, tcp=config.tcp)\
            .run(target_ii=config.ii)
        schedule = result.schedule
    elif method == "milp-base":
        schedule = BaseScheduler(graph, device, config).schedule()
        # Downstream mapping respects the frozen register boundaries but
        # still packs logic within each stage (as Vivado would).
        schedule.cover = {}
        schedule = map_schedule(schedule, device)
        schedule.method = "milp-base"
    elif method == "milp-map":
        schedule = MapScheduler(graph, device, config).schedule()
    elif method == "heur-map":
        from ..core.heuristic import MappingAwareHeuristicScheduler

        schedule = MappingAwareHeuristicScheduler(graph, device, config)\
            .schedule(target_ii=config.ii)
    else:  # pragma: no cover - guarded above
        raise ExperimentError(f"unknown method {method!r}")
    verify_schedule(schedule, device)
    report = evaluate(schedule, device, design=design or graph.name)
    report.method = method
    return FlowResult(schedule=schedule, report=report)

"""ASCII table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "percent"]


def percent(new: float, base: float) -> str:
    """Relative change formatted like the paper: ``(-42.1%)``."""
    if base == 0:
        return "(n/a)" if new else "(+0.0%)"
    delta = (new - base) / base * 100.0
    sign = "+" if delta >= 0 else "-"
    return f"({sign}{abs(delta):.1f}%)"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Monospace table with a header rule; all cells stringified."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)

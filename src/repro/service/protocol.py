"""Wire schema for the scheduling service (``repro-service/v1``).

A *job request* is a JSON document describing one flow to run:

.. code-block:: json

    {
      "schema": "repro-service/v1",
      "client": "alice",
      "method": "milp-map",
      "design": "GFMUL",            // or "graph": {<serialized CDFG>}
      "device": "xc7",
      "config": {"ii": 1, "tcp": 10.0},
      "lint": true,
      "time_budget": 30.0
    }

``design`` names a registered benchmark (Table 1 or FULLSIZE); ``graph``
carries an inline CDFG in the :mod:`repro.ir.serialize` format. Exactly
one of the two must be present. ``config`` holds any subset of
:class:`~repro.core.config.SchedulerConfig` fields; omitted fields take
the shipped defaults, and the *fingerprint* of the fully-resolved
(graph, method, device, config) tuple — the same
:func:`~repro.runtime.fingerprint.flow_fingerprint` the flow cache uses —
is what the server dedupes on.

A *job document* (every ``GET /jobs/<id>`` response) carries the job's
state machine position, its fingerprint, and — once ``state`` is
``done`` — the result: the schedule and hardware report serialized with
the exact same functions the flow cache uses, so a service result is
byte-comparable to a local :func:`~repro.experiments.run_flow` of the
same inputs (see :func:`canonical_result_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..core.config import SchedulerConfig
from ..errors import ProtocolError
from ..ir.graph import CDFG
from ..tech.device import TUTORIAL4, XC7, Device

__all__ = [
    "SERVICE_SCHEMA",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRequest",
    "parse_request",
    "canonical_result_json",
]

SERVICE_SCHEMA = "repro-service/v1"

#: Job lifecycle: queued -> running -> {done, failed, cancelled}; a
#: retried job transitions running -> queued again (event "retry").
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

_DEVICES = {XC7.name: XC7, TUTORIAL4.name: TUTORIAL4}

#: SchedulerConfig fields a request may set. Anything else is a typo the
#: client should hear about, not a silently-ignored knob.
_CONFIG_FIELDS = frozenset(SchedulerConfig.__dataclass_fields__)


@dataclass
class JobRequest:
    """One parsed, validated job submission."""

    client: str
    method: str
    graph: CDFG
    design: str | None
    device: Device
    config: SchedulerConfig
    lint: bool = True
    time_budget: float | None = None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_request(payload: Any) -> JobRequest:
    """Validate a decoded JSON payload into a :class:`JobRequest`.

    Raises :class:`~repro.errors.ProtocolError` (HTTP 400) on any
    malformed field — unknown design, bad config knob, missing graph.
    """
    from ..designs.fullsize import FULLSIZE
    from ..designs.registry import BENCHMARKS
    from ..experiments.flows import ALL_METHODS

    _require(isinstance(payload, dict), "request body must be a JSON object")
    schema = payload.get("schema", SERVICE_SCHEMA)
    _require(schema == SERVICE_SCHEMA,
             f"unsupported schema {schema!r} (expected {SERVICE_SCHEMA!r})")

    client = payload.get("client", "anonymous")
    _require(isinstance(client, str) and client != "",
             "client must be a non-empty string")

    method = payload.get("method", "milp-map")
    _require(method in ALL_METHODS,
             f"unknown method {method!r}; expected one of {ALL_METHODS}")

    design = payload.get("design")
    graph_data = payload.get("graph")
    _require((design is None) != (graph_data is None),
             "exactly one of 'design' or 'graph' must be supplied")
    if design is not None:
        _require(isinstance(design, str), "design must be a string")
        name = design.upper()
        spec = BENCHMARKS.get(name) or FULLSIZE.get(name)
        _require(spec is not None, f"unknown design {design!r}")
        graph = spec.build()
        design = name
    else:
        from ..errors import ReproError
        from ..ir.serialize import graph_from_dict

        try:
            graph = graph_from_dict(graph_data)
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(f"invalid graph payload: {exc}") from exc

    device_name = payload.get("device", XC7.name)
    _require(device_name in _DEVICES,
             f"unknown device {device_name!r}; expected one of "
             f"{sorted(_DEVICES)}")

    config_data = payload.get("config")
    if config_data is None:
        config_data = {}
    _require(isinstance(config_data, dict), "config must be a JSON object")
    unknown = sorted(set(config_data) - _CONFIG_FIELDS)
    _require(not unknown,
             f"unknown config field(s): {', '.join(unknown)}")
    from ..errors import SchedulingError

    try:
        config = SchedulerConfig(**config_data)
    except (SchedulingError, TypeError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from exc

    lint = payload.get("lint", True)
    _require(isinstance(lint, bool), "lint must be a boolean")
    time_budget = payload.get("time_budget")
    _require(time_budget is None
             or (isinstance(time_budget, (int, float)) and time_budget > 0),
             "time_budget must be a positive number of seconds")

    return JobRequest(client=client, method=method, graph=graph,
                      design=design, device=_DEVICES[device_name],
                      config=config, lint=lint,
                      time_budget=(float(time_budget)
                                   if time_budget is not None else None))


def canonical_result_json(result: dict[str, Any]) -> str:
    """Byte-stable form of a job result (schedule + report only).

    Traces carry wall-clock timings and therefore never two identical
    runs; the *artifacts* — schedule and hardware report — must be
    byte-identical between a service solve and a serial
    :func:`~repro.experiments.run_flow` of the same inputs. This is the
    same canonicalization idea as the fuzz cache oracle: serialize with
    the flow-cache serializers, strip the wall-clock ``solve_seconds``
    both carry, dump with sorted keys.
    """
    schedule = {k: v for k, v in result["schedule"].items()
                if k != "solve_seconds"}
    report = {k: v for k, v in result["report"].items()
              if k != "solve_seconds"}
    return json.dumps({"schedule": schedule, "report": report},
                      sort_keys=True, separators=(",", ":"))

"""Fuzz-sourced load generator for the scheduling service.

Traffic comes from :mod:`repro.fuzz.generate`: seed ``k`` deterministically
produces one validate-clean CDFG (profile routed by seed, exactly as the
fuzz campaign routes it), so a load run is *replayable* — the oracle test
regenerates each graph from its seed and byte-compares the service's
result against a serial :func:`~repro.experiments.run_flow`.

The generator drives any client exposing the
:class:`~repro.service.client.ServiceClient` API (HTTP or in-process),
politely retrying 429 backpressure rejections, and returns a
:class:`LoadReport` (schema ``repro-service-load/v1``) with throughput,
latency percentiles, cache-hit counts, and one record per submission
carrying the canonical result JSON for oracle comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..errors import ServiceError
from .protocol import SERVICE_SCHEMA, canonical_result_json

__all__ = ["LOAD_SCHEMA", "LoadReport", "run_load", "load_payload",
           "DEFAULT_LOAD_CONFIG"]

LOAD_SCHEMA = "repro-service-load/v1"

#: Keeps fuzz-sized MILPs small and fast — the same shape the fuzz CLI
#: forces (``max_cuts=8``) plus a solver cap no tiny model ever hits.
DEFAULT_LOAD_CONFIG: dict[str, Any] = {"max_cuts": 8, "time_limit": 30.0}


def load_payload(seed: int, method: str = "milp-map",
                 config: dict[str, Any] | None = None,
                 client: str = "loadgen") -> dict[str, Any]:
    """The job payload for fuzz seed ``seed`` (deterministic)."""
    from ..fuzz.generate import generate_graph, profile_for_seed
    from ..ir.serialize import graph_to_dict

    profile = profile_for_seed(seed)
    graph = generate_graph(seed, profile)
    return {
        "schema": SERVICE_SCHEMA,
        "client": client,
        "method": method,
        "graph": graph_to_dict(graph),
        "config": dict(config if config is not None
                       else DEFAULT_LOAD_CONFIG),
    }


@dataclass
class LoadReport:
    """Outcome of one load run."""

    jobs: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    retries_429: int = 0
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs if j["state"] == "done")

    @property
    def failed(self) -> int:
        return sum(1 for j in self.jobs if j["state"] == "failed")

    def to_dict(self, include_results: bool = False) -> dict[str, Any]:
        latencies = sorted(j["latency"] for j in self.jobs
                           if j.get("latency") is not None)

        def pct(p: float) -> float | None:
            if not latencies:
                return None
            k = min(len(latencies) - 1, int(p * len(latencies)))
            return round(latencies[k], 6)

        jobs = self.jobs if include_results else [
            {k: v for k, v in j.items() if k != "canonical"}
            for j in self.jobs
        ]
        return {
            "schema": LOAD_SCHEMA,
            "jobs": jobs,
            "submitted": len(self.jobs),
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": sum(1 for j in self.jobs
                             if j["state"] == "cancelled"),
            "cached": sum(1 for j in self.jobs if j.get("cached")),
            "deduped": sum(1 for j in self.jobs if j.get("deduped")),
            "retries_429": self.retries_429,
            "elapsed": round(self.elapsed, 3),
            "jobs_per_sec": (round(self.completed / self.elapsed, 4)
                             if self.elapsed > 0 else 0.0),
            "latency_p50": pct(0.50),
            "latency_p95": pct(0.95),
            "service_stats": self.stats,
        }


def run_load(client: Any, seeds: Iterable[int] = range(50),
             method: str = "milp-map",
             config: dict[str, Any] | None = None,
             warm_seeds: Iterable[int] = (),
             duration: float | None = None,
             submit_timeout: float = 60.0,
             wait_timeout: float = 300.0,
             progress: "Callable[[str], None] | None" = None) -> LoadReport:
    """Drive ``client`` with fuzz-generated jobs and wait them all out.

    ``seeds`` submits one job per seed as fast as admission control
    allows (429 rejections back off and retry — backpressure must never
    lose traffic, only delay it). ``warm_seeds`` are submitted *after*
    every cold job finished, so with a flow cache attached they are
    deterministic cache hits. ``duration`` (seconds) keeps cycling
    through ``seeds`` with distinct client names until the clock runs
    out — the CI smoke shape; dedupe/caching then absorbs the repeats.
    """
    report = LoadReport()
    t0 = time.perf_counter()

    def submit_one(seed: int, wave: str, client_name: str) -> str | None:
        payload = load_payload(seed, method=method, config=config,
                               client=client_name)
        deadline = time.time() + submit_timeout
        while True:
            status, document = client.submit(payload)
            if status in (200, 202):
                report.jobs.append({
                    "seed": seed, "wave": wave, "id": document["id"],
                    "fingerprint": document.get("fingerprint"),
                    "deduped": bool(document.get("deduped")),
                    "state": "submitted",
                })
                return document["id"]
            if status == 429:
                report.retries_429 += 1
                if time.time() > deadline:
                    raise ServiceError(
                        f"seed {seed}: still rejected (429) after "
                        f"{submit_timeout:.0f}s: {document.get('message')}")
                time.sleep(0.05)
                continue
            raise ServiceError(f"seed {seed}: submit failed "
                               f"({status}): {document.get('message')}")

    def drain() -> None:
        for record in report.jobs:
            if record["state"] != "submitted":
                continue
            document = client.wait(record["id"], timeout=wait_timeout)
            record["state"] = document["state"]
            record["fingerprint"] = document.get("fingerprint")
            if document.get("started") and document.get("finished"):
                record["latency"] = round(
                    document["finished"] - document["created"], 6)
            result = document.get("result")
            if result is not None:
                record["cached"] = bool(result.get("cached"))
                record["canonical"] = canonical_result_json(result)
            error = document.get("error")
            if error is not None:
                record["error"] = dict(error)
            if progress is not None:
                progress(f"{record['id']} seed {record['seed']} "
                         f"-> {record['state']}")

    seeds = list(seeds)
    for seed in seeds:
        submit_one(seed, "cold", "loadgen")
    if duration is not None:
        lap = 0
        while time.perf_counter() - t0 < duration:
            lap += 1
            for seed in seeds:
                if time.perf_counter() - t0 >= duration:
                    break
                submit_one(seed, f"lap-{lap}", f"loadgen-{lap}")
            drain()
    drain()
    for seed in warm_seeds:
        submit_one(seed, "warm", "loadgen-warm")
    drain()
    report.elapsed = time.perf_counter() - t0
    status, stats = client.stats()
    if status == 200:
        report.stats = stats
    return report


def format_load(report: LoadReport) -> str:
    """One-paragraph human rendering of a load run."""
    data = report.to_dict()
    lines = [
        f"load: {data['submitted']} submissions in {data['elapsed']:.1f}s "
        f"({data['jobs_per_sec']:.2f} jobs/s)",
        f"  done {data['completed']}  failed {data['failed']}  "
        f"cancelled {data['cancelled']}  cached {data['cached']}  "
        f"deduped {data['deduped']}  429-retries {data['retries_429']}",
    ]
    if data["latency_p50"] is not None:
        lines.append(f"  latency p50 {data['latency_p50'] * 1000:.0f} ms  "
                     f"p95 {data['latency_p95'] * 1000:.0f} ms")
    failed = [j for j in data["jobs"] if j["state"] == "failed"]
    for job in failed[:5]:
        error = job.get("error") or {}
        lines.append(f"  FAILED seed {job['seed']}: "
                     f"{error.get('type')}: {error.get('message')}")
    return "\n".join(lines)

"""Clients for the scheduling service.

Two interchangeable clients expose the same five calls with the same
``(status, document)`` return shape, so tests and the load generator can
run against either:

* :class:`ServiceClient` — a real HTTP client (stdlib ``http.client``)
  for a running ``repro serve`` endpoint; this is what ``repro submit``
  uses and what the HTTP-layer tests drive.
* :class:`InProcessClient` — the same API mapped directly onto a
  :class:`~repro.service.jobs.SchedulingService`, with the HTTP status
  codes synthesized from the same exceptions the server maps. Zero
  sockets: this is the in-process fixture the tier-1 harness and the
  bench arm use.

Both stream ``events()`` as parsed NDJSON dicts and offer ``wait()``
for submit→poll→result flows.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from ..errors import (
    ProtocolError,
    QuotaExceeded,
    ServiceBusy,
    ServiceError,
)
from .jobs import SchedulingService
from .protocol import SERVICE_SCHEMA, TERMINAL_STATES

__all__ = ["ServiceClient", "InProcessClient", "job_payload"]


def job_payload(design: str | None = None, graph: Any = None,
                method: str = "milp-map", device: str = "xc7",
                config: dict[str, Any] | None = None, client: str = "cli",
                lint: bool = True,
                time_budget: float | None = None) -> dict[str, Any]:
    """Assemble a ``repro-service/v1`` job request payload.

    ``graph`` may be a :class:`~repro.ir.graph.CDFG` (serialized here)
    or an already-serialized graph dict.
    """
    from ..ir.graph import CDFG
    from ..ir.serialize import graph_to_dict

    payload: dict[str, Any] = {"schema": SERVICE_SCHEMA, "client": client,
                               "method": method, "device": device,
                               "lint": lint}
    if design is not None:
        payload["design"] = design
    if graph is not None:
        payload["graph"] = (graph_to_dict(graph)
                            if isinstance(graph, CDFG) else graph)
    if config:
        payload["config"] = dict(config)
    if time_budget is not None:
        payload["time_budget"] = time_budget
    return payload


class ServiceClient:
    """Blocking HTTP client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw request ---------------------------------------------------
    def request(self, method: str, path: str,
                payload: dict[str, Any] | None = None
                ) -> tuple[int, dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"}
                         if body else {})
            response = conn.getresponse()
            data = response.read()
            try:
                document = json.loads(data.decode("utf-8")) if data else {}
            except ValueError:
                document = {"error": "BadResponse",
                            "message": data[:200].decode("latin-1")}
            return response.status, document
        finally:
            conn.close()

    # -- API -----------------------------------------------------------
    def health(self) -> tuple[int, dict[str, Any]]:
        return self.request("GET", "/healthz")

    def stats(self) -> tuple[int, dict[str, Any]]:
        return self.request("GET", "/stats")

    def submit(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        return self.request("POST", "/jobs", payload)

    def job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> tuple[int, dict[str, Any]]:
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str, start: int = 0
               ) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON events until the terminal event."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events?from={start}")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    f"event stream for {job_id!r} failed: "
                    f"{response.status} {response.read()[:200]!r}")
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the doc."""
        deadline = time.time() + timeout
        while True:
            status, document = self.job(job_id)
            if status != 200:
                raise ServiceError(f"job {job_id!r} lookup failed: {status}")
            if document.get("state") in TERMINAL_STATES:
                return document
            if time.time() > deadline:
                raise ServiceError(f"timed out waiting for {job_id!r} "
                                   f"(state {document.get('state')!r})")
            time.sleep(poll)


class InProcessClient:
    """The :class:`ServiceClient` API directly over a service instance."""

    def __init__(self, service: SchedulingService) -> None:
        self.service = service

    def health(self) -> tuple[int, dict[str, Any]]:
        return 200, {"ok": True, "schema": SERVICE_SCHEMA}

    def stats(self) -> tuple[int, dict[str, Any]]:
        return 200, self.service.stats()

    def submit(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        try:
            job, created = self.service.submit(payload)
        except ProtocolError as exc:
            return 400, {"error": "ProtocolError", "message": str(exc)}
        except (QuotaExceeded, ServiceBusy) as exc:
            return 429, {"error": type(exc).__name__, "message": str(exc)}
        document = job.document(include_result=False)
        document["deduped"] = not created
        return (202 if created else 200), document

    def job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        job = self.service.get(job_id)
        if job is None:
            return 404, {"error": "NotFound",
                         "message": f"unknown job {job_id!r}"}
        return 200, job.document()

    def cancel(self, job_id: str) -> tuple[int, dict[str, Any]]:
        job = self.service.cancel(job_id)
        if job is None:
            return 404, {"error": "NotFound",
                         "message": f"unknown job {job_id!r}"}
        return 200, job.document(include_result=False)

    def events(self, job_id: str, start: int = 0
               ) -> Iterator[dict[str, Any]]:
        job = self.service.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        index = start
        while True:
            batch = job.wait_events(index, timeout=0.25)
            yield from batch
            index += len(batch)
            if job.done.is_set() and index >= len(job.events):
                return

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.02) -> dict[str, Any]:
        job = self.service.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if not job.done.wait(timeout=timeout):
            raise ServiceError(f"timed out waiting for {job_id!r} "
                               f"(state {job.state!r})")
        return job.document()

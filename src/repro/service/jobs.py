"""Job manager for the scheduling service.

:class:`SchedulingService` is the transport-free core of ``repro serve``:
it owns the job table, the sharded worker pool, and every admission /
lifecycle policy. The HTTP layer (:mod:`repro.service.server`) is a thin
codec over it, which is what makes the whole state machine testable
in-process (tests drive the service directly, or through the in-process
client, with zero sockets).

Design notes
------------
* **Dedupe.** Jobs are content-fingerprinted with the exact
  :func:`~repro.runtime.fingerprint.flow_fingerprint` the flow cache
  uses. A submission whose fingerprint matches a *queued or running* job
  joins that job (same id, one solve) instead of creating a new one;
  a submission matching a *finished* job becomes a new job whose flow
  is served by the :class:`~repro.runtime.FlowCache` (zero solves on a
  warm cache). In-flight dedupe and the cache therefore compose: at most
  one solve ever runs per fingerprint, no matter how many clients ask.

* **Shards.** The pool is ``workers`` threads, each with its own deque;
  jobs land on ``int(fp[:8], 16) % workers`` so repeated traffic for one
  kernel has a home shard, and idle shards steal from the longest queue
  so a hot shard never strands work. Dedupe guarantees two jobs with the
  same fingerprint are never in flight together, which is what makes
  stealing safe. Heavy per-subgraph MILP fan-out *inside* a flow still
  goes through :func:`~repro.runtime.run_parallel` process pools via
  ``run_flow(jobs=flow_jobs)`` — shards parallelize across jobs, the
  pool parallelizes within one.

* **Backpressure.** Admission is bounded by ``queue_limit`` *queued*
  jobs (running jobs have left the queue) and by a per-client quota of
  active (queued + running) jobs. Both rejections are HTTP 429; neither
  touches jobs already accepted.

* **Cancellation.** Cancelling a queued job removes it immediately; a
  running job's flow observes its cancel event at the next phase
  checkpoint (:func:`~repro.experiments.run_flow` ``cancel=``) and
  raises :class:`~repro.errors.FlowCancelled` — the worker thread then
  frees its slot. A solver mid-call always finishes its phase first, so
  no worker pool is ever abandoned.

* **Retries.** :class:`~repro.service.faults.WorkerCrashFault` (the
  injected stand-in for transient infrastructure failure) re-queues the
  job at the front of its home shard up to ``max_retries`` extra
  attempts; every :class:`~repro.errors.ReproError` is a property of the
  job and fails it immediately.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Any, Callable

from ..errors import (
    FlowCancelled,
    QuotaExceeded,
    ReproError,
    ServiceBusy,
    ServiceError,
)
from ..runtime.cache import FlowCache
from ..runtime.fingerprint import flow_fingerprint
from .faults import FaultPlan, WorkerCrashFault
from .protocol import SERVICE_SCHEMA, TERMINAL_STATES, JobRequest, parse_request

__all__ = ["Job", "SchedulingService"]

logger = logging.getLogger(__name__)


class Job:
    """One accepted submission: state machine, events, and (later) result.

    Events are an append-only, sequence-numbered NDJSON-able log —
    ``state`` transitions, ``phase`` start/end pairs sourced from Tracer
    spans, ``dedup`` joins and ``retry`` re-queues — that the event
    stream endpoint replays and tails.
    """

    def __init__(self, job_id: str, seq: int, request: JobRequest,
                 fingerprint: str) -> None:
        self.id = job_id
        self.seq = seq
        self.request = request
        self.fingerprint = fingerprint
        self.state = "queued"
        self.error: dict[str, str] | None = None
        self.result: dict[str, Any] | None = None
        self.attempts = 0
        self.submissions = 1
        self.shard: int | None = None
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.cancel_event = threading.Event()
        self.done = threading.Event()
        self.events: list[dict[str, Any]] = []
        self._cond = threading.Condition()

    # -- events --------------------------------------------------------
    def add_event(self, event: str, **fields: Any) -> None:
        with self._cond:
            entry = {"seq": len(self.events), "event": event,
                     "t": round(time.time() - self.created, 6), **fields}
            self.events.append(entry)
            self._cond.notify_all()

    def wait_events(self, start: int, timeout: float = 0.5) -> list[dict]:
        """Events with ``seq >= start``, blocking up to ``timeout`` for new
        ones; an empty list means the wait timed out (poll again)."""
        with self._cond:
            if len(self.events) <= start:
                self._cond.wait(timeout)
            return [dict(e) for e in self.events[start:]]

    # -- documents -----------------------------------------------------
    def document(self, include_result: bool = True) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "schema": SERVICE_SCHEMA,
            "id": self.id,
            "state": self.state,
            "client": self.request.client,
            "method": self.request.method,
            "design": self.request.design,
            "fingerprint": self.fingerprint,
            "submissions": self.submissions,
            "attempts": self.attempts,
            "shard": self.shard,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "events": len(self.events),
        }
        if include_result:
            doc["result"] = self.result
        return doc


class SchedulingService:
    """The job table + sharded worker pool behind ``repro serve``."""

    def __init__(self, workers: int = 2, queue_limit: int = 32,
                 quota: int = 8, cache: "FlowCache | str | None" = None,
                 flow_jobs: int | None = 1, max_retries: int = 1,
                 default_time_budget: float | None = None,
                 faults: FaultPlan | None = None) -> None:
        self.workers = max(1, int(workers))
        self.queue_limit = max(1, int(queue_limit))
        self.quota = max(1, int(quota))
        self.cache = FlowCache(cache) if isinstance(cache, str) else cache
        self.flow_jobs = flow_jobs
        self.max_retries = max(0, int(max_retries))
        self.default_time_budget = default_time_budget
        self.faults = faults or FaultPlan()

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: list[deque[Job]] = [deque()
                                          for _ in range(self.workers)]
        self._jobs: dict[str, Job] = {}
        self._active_fp: dict[str, Job] = {}
        self._threads: list[threading.Thread] = []
        self._stop = False
        self._seq = 0
        self._started_at: float | None = None
        self._latencies: list[float] = []
        self.counters = {
            "submitted": 0, "accepted": 0, "deduped": 0, "completed": 0,
            "failed": 0, "cancelled": 0, "retried": 0,
            "rejected_quota": 0, "rejected_queue": 0, "cache_hits": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SchedulingService":
        if self._threads:
            raise ServiceError("service already started")
        self._started_at = time.time()
        for shard in range(self.workers):
            thread = threading.Thread(target=self._worker, args=(shard,),
                                      name=f"repro-shard-{shard}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, cancel_active: bool = True,
                 timeout: float = 30.0) -> None:
        """Stop the shards. With ``cancel_active`` every non-terminal job
        gets its cancel event set, so running flows stop at their next
        checkpoint instead of draining to completion."""
        with self._cond:
            self._stop = True
            if cancel_active:
                for job in self._jobs.values():
                    if job.state not in TERMINAL_STATES:
                        job.cancel_event.set()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "SchedulingService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- admission -----------------------------------------------------
    def submit(self, payload: "dict[str, Any] | JobRequest"
               ) -> tuple[Job, bool]:
        """Admit one submission; returns ``(job, created)``.

        ``created=False`` means the submission joined an in-flight job
        with the same fingerprint. Raises
        :class:`~repro.errors.ProtocolError` on malformed payloads,
        :class:`~repro.errors.QuotaExceeded` /
        :class:`~repro.errors.ServiceBusy` on admission-control
        rejections (both HTTP 429; neither affects accepted jobs).
        """
        request = payload if isinstance(payload, JobRequest) \
            else parse_request(payload)
        fingerprint = flow_fingerprint(request.graph, request.method,
                                       request.device, request.config)
        with self._cond:
            if self._stop:
                raise ServiceError("service is shutting down")
            self.counters["submitted"] += 1
            active = self._active_fp.get(fingerprint)
            if active is not None and active.state not in TERMINAL_STATES \
                    and not active.cancel_event.is_set():
                active.submissions += 1
                self.counters["deduped"] += 1
                active.add_event("dedup", client=request.client)
                return active, False
            owned = sum(1 for job in self._jobs.values()
                        if job.state not in TERMINAL_STATES
                        and job.request.client == request.client)
            if owned >= self.quota:
                self.counters["rejected_quota"] += 1
                raise QuotaExceeded(
                    f"client {request.client!r} has {owned} active job(s); "
                    f"quota is {self.quota}")
            queued = sum(len(q) for q in self._queues)
            if queued >= self.queue_limit:
                self.counters["rejected_queue"] += 1
                raise ServiceBusy(
                    f"job queue is full ({queued}/{self.queue_limit}); "
                    f"retry later")
            self._seq += 1
            job = Job(f"j-{self._seq:06d}", self._seq - 1, request,
                      fingerprint)
            shard = int(fingerprint[:8], 16) % self.workers
            self._jobs[job.id] = job
            self._active_fp[fingerprint] = job
            self._queues[shard].append(job)
            self.counters["accepted"] += 1
            job.add_event("state", state="queued", shard=shard)
            self._cond.notify_all()
            return job, True

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job; terminal jobs are returned unchanged."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state in TERMINAL_STATES:
                return job
            job.cancel_event.set()
            for queue in self._queues:
                if job in queue:
                    queue.remove(job)
                    self._finish(job, "cancelled", reason="queued")
                    return job
            # Running: the flow observes the event at its next phase
            # checkpoint and the worker marks the job cancelled.
            job.add_event("cancel-requested")
            return job

    # -- workers -------------------------------------------------------
    def _take(self, shard: int) -> Job | None:
        """Pop from the shard's own queue, else steal from the longest."""
        if self._queues[shard]:
            return self._queues[shard].popleft()
        victim = max(range(self.workers), key=lambda s: len(self._queues[s]))
        if self._queues[victim]:
            return self._queues[victim].popleft()
        return None

    def _worker(self, shard: int) -> None:
        while True:
            with self._cond:
                job = self._take(shard)
                while job is None and not self._stop:
                    self._cond.wait(0.2)
                    job = self._take(shard)
                if job is None:
                    return
            if job.cancel_event.is_set():
                with self._cond:
                    if job.state not in TERMINAL_STATES:
                        self._finish(job, "cancelled", reason="queued")
                continue
            self._run_job(job, shard)
            if self._stop and job.state not in TERMINAL_STATES:
                # Shutdown raced a retry re-queue; don't spin on it.
                with self._cond:
                    if job.state not in TERMINAL_STATES:
                        self._finish(job, "cancelled", reason="shutdown")

    def _run_job(self, job: Job, shard: int) -> None:
        from ..experiments.flows import run_flow

        job.attempts += 1
        job.shard = shard
        if job.started is None:
            job.started = time.time()
        job.state = "running"
        job.add_event("state", state="running", shard=shard,
                      attempt=job.attempts)
        budget = job.request.time_budget
        if budget is None:
            budget = self.default_time_budget
        deadline = (time.time() + budget) if budget is not None else None

        def cancelled() -> bool:
            return job.cancel_event.is_set() \
                or (deadline is not None and time.time() > deadline)

        def on_phase(event: str, span: Any) -> None:
            if event == "start":
                job.add_event("phase", phase=span.name, status="start")
                self.faults.on_phase_start(span.name)
            else:
                job.add_event("phase", phase=span.name, status="end",
                              seconds=round(span.seconds, 6))

        request = job.request
        try:
            self.faults.before_start()
            self.faults.before_attempt(job.seq, job.attempts)
            flow = run_flow(request.graph, request.method,
                            device=request.device, config=request.config,
                            design=request.design, lint=request.lint,
                            cache=self.cache, jobs=self.flow_jobs,
                            cancel=cancelled, on_phase=on_phase)
            self.faults.after_store(self.cache, flow.fingerprint)
            job.result = self._result_document(job, flow)
            with self._cond:
                if flow.cached:
                    self.counters["cache_hits"] += 1
                self._finish(job, "done", cached=flow.cached)
        except FlowCancelled as exc:
            with self._cond:
                if deadline is not None and time.time() > deadline \
                        and not job.cancel_event.is_set():
                    job.error = {"type": "TimeBudgetExceeded",
                                 "message": f"time budget {budget:.3f}s "
                                            f"exceeded ({exc})"}
                    self._finish(job, "failed", phase=exc.phase)
                else:
                    self._finish(job, "cancelled", phase=exc.phase)
        except WorkerCrashFault as exc:
            with self._cond:
                if job.attempts <= self.max_retries \
                        and not job.cancel_event.is_set() and not self._stop:
                    self.counters["retried"] += 1
                    job.state = "queued"
                    job.add_event("retry", attempt=job.attempts + 1,
                                  error=str(exc))
                    home = int(job.fingerprint[:8], 16) % self.workers
                    self._queues[home].appendleft(job)
                    self._cond.notify_all()
                else:
                    job.error = {"type": "WorkerCrashFault",
                                 "message": str(exc)}
                    self._finish(job, "failed")
        except ReproError as exc:
            with self._cond:
                job.error = {"type": type(exc).__name__, "message": str(exc)}
                self._finish(job, "failed")
        except Exception as exc:  # noqa: BLE001 - a worker must never die
            logger.exception("unexpected worker failure on %s", job.id)
            with self._cond:
                job.error = {"type": type(exc).__name__, "message": str(exc)}
                self._finish(job, "failed")

    def _finish(self, job: Job, state: str, **fields: Any) -> None:
        """Terminal transition; caller holds the lock (or is pre-start)."""
        job.state = state
        job.finished = time.time()
        if self._active_fp.get(job.fingerprint) is job:
            del self._active_fp[job.fingerprint]
        self.counters[{"done": "completed", "failed": "failed",
                       "cancelled": "cancelled"}[state]] += 1
        if state == "done":
            self._latencies.append(job.finished - job.created)
        job.add_event("state", state=state, **fields)
        job.done.set()

    @staticmethod
    def _result_document(job: Job, flow: Any) -> dict[str, Any]:
        from ..ir.serialize import schedule_to_dict

        return {
            "schedule": schedule_to_dict(flow.schedule),
            "report": flow.report.to_dict(),
            "cached": flow.cached,
            "source_graph": flow.source_graph,
            "fingerprint": flow.fingerprint or job.fingerprint,
            "spans": [s.to_dict() for s in flow.trace.spans],
        }

    # -- introspection -------------------------------------------------
    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait_idle(self, timeout: float = 60.0,
                  poll: float = 0.02) -> bool:
        """Block until no job is queued or running (testing aid)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._lock:
                if all(job.state in TERMINAL_STATES
                       for job in self._jobs.values()):
                    return True
            time.sleep(poll)
        return False

    def stats(self) -> dict[str, Any]:
        with self._lock:
            latencies = sorted(self._latencies)
            active = sum(1 for j in self._jobs.values()
                         if j.state not in TERMINAL_STATES)
            queued = sum(len(q) for q in self._queues)
            uptime = (time.time() - self._started_at
                      if self._started_at else 0.0)
            completed = self.counters["completed"]

            def pct(p: float) -> float | None:
                if not latencies:
                    return None
                k = min(len(latencies) - 1, int(p * len(latencies)))
                return round(latencies[k], 6)

            return {
                "schema": SERVICE_SCHEMA,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "quota": self.quota,
                "active": active,
                "queued": queued,
                "uptime_seconds": round(uptime, 3),
                "jobs_per_sec": (round(completed / uptime, 4)
                                 if uptime > 0 else 0.0),
                "latency_p50": pct(0.50),
                "latency_p95": pct(0.95),
                "cache": (None if self.cache is None else {
                    "hits": self.cache.hits, "misses": self.cache.misses,
                    "stores": self.cache.stores,
                }),
                **self.counters,
            }

"""Scheduling-as-a-service: an async job server over the flow pipeline.

Layers, transport-free first:

* :mod:`repro.service.protocol` — the ``repro-service/v1`` wire schema:
  request validation and the canonical (byte-comparable) result form.
* :mod:`repro.service.jobs` — :class:`SchedulingService`, the job
  manager: content-fingerprint dedupe, sharded worker pool, per-client
  quotas, bounded-queue backpressure, cooperative cancellation, time
  budgets, crash retry. No sockets anywhere in this layer.
* :mod:`repro.service.server` — the asyncio HTTP/JSON front end
  (``repro serve``), including NDJSON event streaming.
* :mod:`repro.service.client` — HTTP and in-process clients with one
  shared API.
* :mod:`repro.service.loadgen` — fuzz-sourced load generator
  (``repro submit --load``) whose results are replayable byte-for-byte
  against serial :func:`~repro.experiments.run_flow`.
* :mod:`repro.service.faults` — deterministic fault injection
  (:class:`FaultPlan`) for the tier-1 failure-path tests.
"""

from .client import InProcessClient, ServiceClient, job_payload
from .faults import FaultPlan, WorkerCrashFault
from .jobs import Job, SchedulingService
from .loadgen import LOAD_SCHEMA, LoadReport, format_load, run_load
from .protocol import (
    JOB_STATES,
    SERVICE_SCHEMA,
    TERMINAL_STATES,
    JobRequest,
    canonical_result_json,
    parse_request,
)
from .server import ServiceServer

__all__ = [
    "SERVICE_SCHEMA",
    "LOAD_SCHEMA",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRequest",
    "parse_request",
    "canonical_result_json",
    "Job",
    "SchedulingService",
    "ServiceServer",
    "ServiceClient",
    "InProcessClient",
    "job_payload",
    "LoadReport",
    "run_load",
    "format_load",
    "FaultPlan",
    "WorkerCrashFault",
]

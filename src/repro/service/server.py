"""Asyncio HTTP/JSON front end for :class:`SchedulingService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
``http.server``, no third-party framework — because the API is five
routes and the interesting machinery (dedupe, quotas, backpressure,
cancellation) all lives in the transport-free job manager:

========================== ==========================================
``GET /healthz``            liveness probe (also ``GET /``)
``GET /stats``              service counters + latency percentiles
``POST /jobs``              submit (202 created / 200 deduped /
                            400 malformed / 429 quota or queue full)
``GET /jobs/<id>``          job document (404 unknown)
``POST /jobs/<id>/cancel``  request cancellation (404 unknown)
``GET /jobs/<id>/events``   NDJSON event stream; ``?from=N`` resumes
                            after event ``N-1``; closes at terminal
========================== ==========================================

Every response closes its connection (``Connection: close``) so the
codec never needs keep-alive/chunked framing; the event stream is an
EOF-delimited NDJSON body. Blocking service calls (submission parses a
graph; event tailing waits on a condition) run in the default executor
so the event loop stays responsive under concurrent clients.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Any

from ..errors import ProtocolError, QuotaExceeded, ServiceBusy, ServiceError
from .jobs import SchedulingService
from .protocol import SERVICE_SCHEMA, TERMINAL_STATES

__all__ = ["ServiceServer"]

logger = logging.getLogger(__name__)

#: Submission payload size cap — a 2503-node serialized CDFG is ~1 MB,
#: so this is generous without letting one client exhaust memory.
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error"}


class ServiceServer:
    """One listening endpoint over one :class:`SchedulingService`."""

    def __init__(self, service: SchedulingService, host: str = "127.0.0.1",
                 port: int = 8321) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (``port=0`` picks a free port)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def serve_in_thread(self) -> "ServiceServer":
        """Run the event loop in a daemon thread (tests, fixtures).

        Returns once the port is bound; :meth:`stop` tears it down.
        """
        started = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.start())
            started.set()
            try:
                loop.run_forever()
            finally:
                if self._server is not None:
                    self._server.close()
                    loop.run_until_complete(self._server.wait_closed())
                loop.close()

        self._thread = threading.Thread(target=runner, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not started.wait(timeout=10.0):
            raise ServiceError("service server failed to start")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- request handling ----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": "HttpError",
                                     "message": exc.message})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # noqa: BLE001 - serve 500, keep running
            logger.exception("request handling failed")
            try:
                await self._respond(writer, 500,
                                    {"error": type(exc).__name__,
                                     "message": str(exc)})
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path, body

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, body: bytes) -> None:
        path, _, query = path.partition("?")
        if path in ("/", "/healthz") and method == "GET":
            await self._respond(writer, 200, {"ok": True,
                                              "schema": SERVICE_SCHEMA})
            return
        if path == "/stats" and method == "GET":
            await self._respond(writer, 200, self.service.stats())
            return
        if path == "/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/cancel") and method == "POST":
                await self._cancel(writer, rest[:-len("/cancel")])
                return
            if rest.endswith("/events") and method == "GET":
                await self._events(writer, rest[:-len("/events")], query)
                return
            if "/" not in rest and method == "GET":
                await self._get_job(writer, rest)
                return
        await self._respond(writer, 404, {"error": "NotFound",
                                          "message": f"no route {path!r}"})

    async def _submit(self, writer: asyncio.StreamWriter,
                      body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400,
                                {"error": "ProtocolError",
                                 "message": "body is not valid JSON"})
            return
        loop = asyncio.get_running_loop()
        try:
            # Parsing a large inline graph and fingerprinting it are CPU
            # work; keep them off the event loop.
            job, created = await loop.run_in_executor(
                None, self.service.submit, payload)
        except ProtocolError as exc:
            await self._respond(writer, 400, {"error": "ProtocolError",
                                              "message": str(exc)})
            return
        except (QuotaExceeded, ServiceBusy) as exc:
            await self._respond(writer, 429, {"error": type(exc).__name__,
                                              "message": str(exc)})
            return
        except ServiceError as exc:
            await self._respond(writer, 500, {"error": type(exc).__name__,
                                              "message": str(exc)})
            return
        document = job.document(include_result=False)
        document["deduped"] = not created
        await self._respond(writer, 202 if created else 200, document)

    async def _get_job(self, writer: asyncio.StreamWriter,
                       job_id: str) -> None:
        job = self.service.get(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": "NotFound",
                                 "message": f"unknown job {job_id!r}"})
            return
        await self._respond(writer, 200, job.document())

    async def _cancel(self, writer: asyncio.StreamWriter,
                      job_id: str) -> None:
        job = self.service.cancel(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": "NotFound",
                                 "message": f"unknown job {job_id!r}"})
            return
        await self._respond(writer, 200, job.document(include_result=False))

    async def _events(self, writer: asyncio.StreamWriter, job_id: str,
                      query: str) -> None:
        job = self.service.get(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": "NotFound",
                                 "message": f"unknown job {job_id!r}"})
            return
        start = 0
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == "from" and value.isdigit():
                start = int(value)
        writer.write(self._head(200, "application/x-ndjson"))
        await writer.drain()
        loop = asyncio.get_running_loop()
        index = start
        while True:
            batch = await loop.run_in_executor(
                None, job.wait_events, index, 0.25)
            for event in batch:
                writer.write(json.dumps(event, sort_keys=True)
                             .encode("utf-8") + b"\n")
            index += len(batch)
            await writer.drain()
            # Terminal + fully flushed: the final "state" event has been
            # written, so the stream is complete.
            if job.done.is_set() and index >= len(job.events):
                return

    # -- response plumbing ---------------------------------------------
    @staticmethod
    def _head(status: int, content_type: str,
              length: int | None = None) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 f"Content-Type: {content_type}",
                 "Connection: close"]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       document: dict[str, Any]) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        writer.write(self._head(status, "application/json", len(body))
                     + body)
        await writer.drain()


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message

"""Deterministic fault injection for the scheduling service.

The service's hard paths — retry after a worker crash, cancellation of a
running solve, backpressure under a full queue, recovery from a corrupt
cache entry — are exactly the paths a load test exercises only by
accident. A :class:`FaultPlan` makes them *deterministic*: the test
harness hands one to :class:`~repro.service.jobs.SchedulingService` and
every hook fires at a precisely controlled point.

All hooks are no-ops on the default plan, and the production CLI never
installs one — this module is test infrastructure that ships with the
server because the ISSUE's archetype demands the failure paths be tier-1
tested, not nightly-only.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "WorkerCrashFault"]


class WorkerCrashFault(RuntimeError):
    """Simulated infrastructure failure inside a worker.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crashed
    worker is transient infrastructure trouble, not a property of the
    job, so the service retries it (up to ``max_retries``) instead of
    failing the job outright.
    """


@dataclass
class FaultPlan:
    """Switchboard of deterministic faults.

    Attributes
    ----------
    hold_start:
        When set, every worker blocks on this event *before* starting a
        job. Tests use it to pin jobs in the queue deterministically
        (fill the queue -> assert 429 -> release).
    stall_phases:
        Map of phase name -> event; when a flow enters that phase, the
        worker blocks until the event is set. This is how a test holds a
        job "mid-solve" long enough to cancel it, with zero sleeps.
    crash_seqs:
        Submission sequence numbers whose *first* attempt raises
        :class:`WorkerCrashFault` before any flow work happens. The
        retry path re-queues the job; the second attempt runs clean.
    slow_phase_seconds:
        Map of phase name -> seconds slept when the phase starts — the
        "slow solve" fault for time-budget tests.
    corrupt_stores:
        When true, every flow-cache entry the service writes is
        overwritten with garbage immediately after the store, so the
        next same-fingerprint submission must re-solve (corrupt entries
        degrade to misses by FlowCache contract).
    """

    hold_start: threading.Event | None = None
    stall_phases: dict[str, threading.Event] = field(default_factory=dict)
    crash_seqs: set[int] = field(default_factory=set)
    slow_phase_seconds: dict[str, float] = field(default_factory=dict)
    corrupt_stores: bool = False

    # -- hooks (called by the worker shards) ---------------------------
    def before_start(self) -> None:
        if self.hold_start is not None:
            self.hold_start.wait()

    def before_attempt(self, seq: int, attempt: int) -> None:
        if attempt == 1 and seq in self.crash_seqs:
            raise WorkerCrashFault(f"injected worker crash (job seq {seq})")

    def on_phase_start(self, phase: str) -> None:
        gate = self.stall_phases.get(phase)
        if gate is not None:
            gate.wait()
        delay = self.slow_phase_seconds.get(phase)
        if delay:
            time.sleep(delay)

    def after_store(self, cache, fingerprint: str | None) -> None:
        if self.corrupt_stores and cache is not None and fingerprint:
            path = cache.path_for(fingerprint)
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write("{ corrupted by FaultPlan")
            except OSError:  # pragma: no cover - cache dir vanished
                pass

"""Content-addressed fingerprints for flow results.

A fingerprint is the SHA-256 of a canonical JSON payload covering every
input that can change a :class:`~repro.experiments.flows.FlowResult`:

* the serialized CDFG (:func:`repro.ir.serialize.graph_to_dict` — node
  kinds, widths, operands, attrs, names),
* the flow method (``hls-tool`` / ``milp-base`` / ``milp-map`` / ...),
* the full device characterization (K, delays, resource counts, ...),
* the :class:`~repro.core.config.SchedulerConfig` fingerprint fields, and
* :data:`CACHE_SCHEMA_VERSION`, so a cache written by an older layout can
  never be misread as current.

Anything *not* hashed here must not influence the result (jobs count,
progress callbacks, cache directory).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..core.config import SchedulerConfig
from ..ir.graph import CDFG
from ..tech.device import Device

__all__ = ["CACHE_SCHEMA_VERSION", "flow_fingerprint", "fingerprint_payload"]

#: Bump whenever the cached FlowResult layout or the semantics of any
#: hashed field changes; every existing cache entry then misses cleanly.
#: v2: SchedulerConfig grew the partition / partition_size /
#: partition_rounds fields (they are hashed via fingerprint_fields, and
#: partitioned schedules may carry composed covers older readers never saw).
CACHE_SCHEMA_VERSION = 2


def _device_fields(device: Device) -> dict[str, Any]:
    fields = dataclasses.asdict(device)
    # dict ordering is insertion order; sort the maps for canonical JSON.
    fields["blackbox_delays"] = dict(sorted(fields["blackbox_delays"].items()))
    fields["blackbox_counts"] = dict(sorted(fields["blackbox_counts"].items()))
    return fields


def fingerprint_payload(graph: CDFG, method: str, device: Device,
                        config: SchedulerConfig) -> dict[str, Any]:
    """The exact dict that gets hashed (exposed for tests and debugging)."""
    from ..ir.serialize import graph_to_dict

    return {
        "schema": CACHE_SCHEMA_VERSION,
        "graph": graph_to_dict(graph),
        "method": method,
        "device": _device_fields(device),
        "config": config.fingerprint_fields(),
    }


def flow_fingerprint(graph: CDFG, method: str, device: Device,
                     config: SchedulerConfig) -> str:
    """Hex digest identifying one (graph, method, device, config) flow."""
    payload = fingerprint_payload(graph, method, device, config)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Process-pool fan-out for experiment tasks.

:func:`run_parallel` dispatches picklable tasks to a
``concurrent.futures.ProcessPoolExecutor`` and merges results back **in
task order**, so a parallel run is byte-identical to the serial one for
any deterministic worker. ``jobs=1`` (the default) does not touch
multiprocessing at all — it is literally a list comprehension over the
same worker, which keeps the serial path exactly as it was before this
module existed.

Workers must be module-level functions (the pool pickles them), and every
worker seeds Python's global RNG from :func:`task_seed` before doing any
work, so a task's result cannot depend on which process — or in which
order — it ran.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["run_parallel", "resolve_jobs", "task_seed"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when an experiment is called with
#: ``jobs=None`` — lets CI run the whole suite under ``--jobs 2`` without
#: threading a flag through every harness.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Resolve an explicit/env/default jobs count (always >= 1)."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    return max(1, jobs)


def task_seed(*parts: object) -> int:
    """Deterministic 32-bit seed for one task (stable across processes)."""
    blob = "\x1f".join(str(p) for p in parts).encode("utf-8")
    return zlib.crc32(blob) & 0xFFFFFFFF


def run_parallel(tasks: Sequence[T], worker: Callable[[T], R],
                 jobs: int | None = 1,
                 progress: Callable[[T], None] | None = None) -> list[R]:
    """Map ``worker`` over ``tasks``; results keep task order.

    With ``jobs <= 1`` the work runs serially in-process and ``progress``
    fires immediately before each task executes. With more, tasks fan out
    over a process pool sized ``min(jobs, len(tasks))`` and ``progress``
    fires as each task *completes* (completion order), so progress output
    reflects work actually done rather than bursting at submission. The
    first worker exception shuts the pool down with ``cancel_futures=True``
    — queued tasks never start — and re-raises in the caller; among tasks
    that already ran, the earliest by task order decides which exception
    surfaces.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            if progress:
                progress(task)
            results.append(worker(task))
        return results

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = {pool.submit(worker, task): index
                   for index, task in enumerate(tasks)}
        results: list[R | None] = [None] * len(tasks)
        errors: dict[int, BaseException] = {}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                if future.cancelled():
                    continue
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                    if progress:
                        progress(tasks[index])
                    continue
                if not errors:
                    # Drop every queued task: a failing solve must not
                    # wait on unrelated work that has not started yet.
                    # Tasks already executing still drain through this
                    # loop.
                    pool.shutdown(wait=False, cancel_futures=True)
                errors[index] = exc
            if errors:
                # shutdown(cancel_futures=True) discards queued work
                # items without ever resolving their futures, so wait()
                # would block on them forever — drop them by hand. What
                # remains is genuinely running and will complete.
                pending = {f for f in pending if not f.cancelled()}
        if errors:
            raise errors[min(errors)]
        return results  # type: ignore[return-value]

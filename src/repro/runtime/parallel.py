"""Process-pool fan-out for experiment tasks.

:func:`run_parallel` dispatches picklable tasks to a
``concurrent.futures.ProcessPoolExecutor`` and merges results back **in
task order**, so a parallel run is byte-identical to the serial one for
any deterministic worker. ``jobs=1`` (the default) does not touch
multiprocessing at all — it is literally a list comprehension over the
same worker, which keeps the serial path exactly as it was before this
module existed.

Workers must be module-level functions (the pool pickles them), and every
worker seeds Python's global RNG from :func:`task_seed` before doing any
work, so a task's result cannot depend on which process — or in which
order — it ran.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["run_parallel", "resolve_jobs", "task_seed"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when an experiment is called with
#: ``jobs=None`` — lets CI run the whole suite under ``--jobs 2`` without
#: threading a flag through every harness.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Resolve an explicit/env/default jobs count (always >= 1)."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    return max(1, jobs)


def task_seed(*parts: object) -> int:
    """Deterministic 32-bit seed for one task (stable across processes)."""
    blob = "\x1f".join(str(p) for p in parts).encode("utf-8")
    return zlib.crc32(blob) & 0xFFFFFFFF


def run_parallel(tasks: Sequence[T], worker: Callable[[T], R],
                 jobs: int | None = 1,
                 progress: Callable[[T], None] | None = None) -> list[R]:
    """Map ``worker`` over ``tasks``; results keep task order.

    With ``jobs <= 1`` the work runs serially in-process. With more, tasks
    fan out over a process pool sized ``min(jobs, len(tasks))``; a worker
    exception cancels the remaining futures and re-raises in the caller,
    matching the serial failure behavior.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for task in tasks:
            if progress:
                progress(task)
            results.append(worker(task))
        return results

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = []
        for task in tasks:
            if progress:
                progress(task)
            futures.append(pool.submit(worker, task))
        # Collect in submission order: the first failing task (by task
        # order, not completion order) decides which exception surfaces.
        return [f.result() for f in futures]

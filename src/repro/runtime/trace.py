"""Structured per-phase tracing for experiment flows.

A :class:`Tracer` records :class:`Span` objects — named, timed phases such
as ``lint``, ``narrow``, ``cut-enum``, ``milp-build``, ``solve``, ``verify``
and ``evaluate`` — while a flow executes. Spans carry free-form ``meta``
(model sizes, solver status, which graph was scheduled, ...) so downstream
consumers (Table 2, the cache tests, ``repro trace``) read measurements
from one place instead of re-instrumenting each harness.

Spans restored from the on-disk flow cache are marked ``cached=True``;
counting only *fresh* spans is how the test suite proves a warm-cache rerun
performed zero MILP solves.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "SPAN_NAMES", "TRACE_SCHEMA"]

TRACE_SCHEMA = "repro-trace/v1"

#: The canonical phase names recorded by :func:`repro.experiments.run_flow`
#: and the schedulers. Consumers should match on these, not re-derive them.
SPAN_NAMES = (
    "lint", "narrow", "cut-enum", "milp-build", "presolve", "warm-start",
    "solve", "schedule", "map", "verify", "evaluate", "cache-load",
    "cache-store", "miter", "equiv",
)


@dataclass
class Span:
    """One timed phase.

    Attributes
    ----------
    name:
        Phase name (see :data:`SPAN_NAMES`).
    start:
        Seconds since the owning tracer's epoch when the phase began.
    seconds:
        Wall-clock duration. Filled when the span closes.
    meta:
        Free-form measurements attached by the phase (e.g. ``constraints``,
        ``status``, ``graph``).
    cached:
        True when the span was replayed from a cache entry rather than
        measured in this process.
    """

    name: str
    start: float = 0.0
    seconds: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    cached: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "meta": dict(self.meta),
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], cached: bool | None = None) -> "Span":
        return cls(
            name=data["name"],
            start=float(data.get("start", 0.0)),
            seconds=float(data.get("seconds", 0.0)),
            meta=dict(data.get("meta", {})),
            cached=bool(data.get("cached", False)) if cached is None else cached,
        )


class Tracer:
    """Collects spans for one flow (cheap enough to be always-on).

    ``listener`` — an optional callable ``(event, span)`` with ``event``
    one of ``"start"`` / ``"end"`` — fires synchronously when any span
    opens or closes. This is how the job server streams live per-phase
    progress (:mod:`repro.service`) without the flows threading a
    callback through every scheduler: everything that records a span
    through this tracer is observable. Listener exceptions propagate
    into the traced phase, so listeners must not raise (the service's
    fault-injection stalls *wait* inside the listener deliberately).
    Spans replayed via :meth:`absorb`/:meth:`from_dict` do not fire it —
    they describe work done elsewhere, possibly long ago.
    """

    def __init__(self, listener: "Any | None" = None) -> None:
        self.spans: list[Span] = []
        self.listener = listener
        self._epoch = time.perf_counter()
        self._context: dict[str, Any] = {}

    # -- recording -----------------------------------------------------
    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Span]:
        """Time a phase; the yielded span accepts late ``meta`` updates.

        The span is appended even when the body raises, so failed attempts
        (e.g. the narrowed-graph solve that triggers the original-graph
        retry) stay visible in the trace.
        """
        t0 = time.perf_counter()
        entry = Span(name=name, start=t0 - self._epoch,
                     meta={**self._context, **meta})
        if self.listener is not None:
            self.listener("start", entry)
        try:
            yield entry
        finally:
            entry.seconds = time.perf_counter() - t0
            self.spans.append(entry)
            if self.listener is not None:
                self.listener("end", entry)

    @contextmanager
    def context(self, **meta: Any) -> Iterator[None]:
        """Attach ``meta`` to every span opened inside the block."""
        old = self._context
        self._context = {**old, **meta}
        try:
            yield
        finally:
            self._context = old

    def absorb(self, spans: list[Span], cached: bool = False) -> None:
        """Append externally produced spans (e.g. loaded from the cache)."""
        for span in spans:
            if cached:
                span = Span(name=span.name, start=span.start,
                            seconds=span.seconds, meta=dict(span.meta),
                            cached=True)
            self.spans.append(span)

    # -- queries -------------------------------------------------------
    def find(self, name: str, fresh_only: bool = False) -> list[Span]:
        """All spans named ``name`` (optionally only non-cached ones)."""
        return [s for s in self.spans
                if s.name == name and (not fresh_only or not s.cached)]

    def count(self, name: str, fresh_only: bool = False) -> int:
        return len(self.find(name, fresh_only=fresh_only))

    def total_seconds(self, name: str, fresh_only: bool = False) -> float:
        return sum(s.seconds for s in self.find(name, fresh_only=fresh_only))

    def last(self, name: str) -> Span | None:
        spans = self.find(name)
        return spans[-1] if spans else None

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"schema": TRACE_SCHEMA,
                "spans": [s.to_dict() for s in self.spans]}

    @classmethod
    def from_dict(cls, data: dict[str, Any],
                  cached: bool = False) -> "Tracer":
        tracer = cls()
        tracer.spans = [Span.from_dict(s, cached=True if cached else None)
                        for s in data.get("spans", [])]
        return tracer

    def render_text(self) -> str:
        """Human-readable span listing (``repro trace`` default output)."""
        lines = []
        for span in self.spans:
            meta = " ".join(f"{k}={v}" for k, v in sorted(span.meta.items()))
            tag = " [cached]" if span.cached else ""
            lines.append(f"{span.name:<12s} {span.seconds * 1000:9.2f} ms"
                         f"{tag}" + (f"  {meta}" if meta else ""))
        return "\n".join(lines)

"""Experiment runtime: parallel dispatch, result caching, phase tracing.

The three pieces compose but do not require each other:

* :class:`~repro.runtime.trace.Tracer` / :class:`~repro.runtime.trace.Span`
  — structured per-phase timing that rides on every
  :class:`~repro.experiments.flows.FlowResult`;
* :func:`~repro.runtime.fingerprint.flow_fingerprint` +
  :class:`~repro.runtime.cache.FlowCache` — content-addressed on-disk
  reuse of flow results (``--cache-dir``);
* :func:`~repro.runtime.parallel.run_parallel` — ordered process-pool
  fan-out of (design, method) tasks (``--jobs N``).

See ``docs/runtime.md`` for the cache layout, fingerprint fields and the
trace span schema.
"""

from .cache import CACHE_FILE_SCHEMA, FlowCache
from .fingerprint import CACHE_SCHEMA_VERSION, flow_fingerprint
from .parallel import resolve_jobs, run_parallel, task_seed
from .trace import SPAN_NAMES, TRACE_SCHEMA, Span, Tracer

__all__ = [
    "CACHE_FILE_SCHEMA",
    "CACHE_SCHEMA_VERSION",
    "FlowCache",
    "SPAN_NAMES",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "flow_fingerprint",
    "resolve_jobs",
    "run_parallel",
    "task_seed",
]

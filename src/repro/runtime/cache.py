"""Content-addressed on-disk cache for flow results.

Layout (under the user-chosen ``--cache-dir``)::

    <root>/<fp[:2]>/<fp>.json

where ``fp`` is the :func:`~repro.runtime.fingerprint.flow_fingerprint`
of the (graph, method, device, config) that produced the entry. Each file
is a versioned JSON document carrying the full
:class:`~repro.experiments.flows.FlowResult`: the schedule (including its
graph and cut cover, via :mod:`repro.ir.serialize`), the hardware report,
and the trace spans recorded when the result was first computed. A warm
rerun of Table 1 / Table 2 / the ablations therefore performs **zero**
MILP solves — the replayed spans are marked ``cached=True`` so tests can
prove exactly that.

Corrupt, unreadable or schema-mismatched entries are treated as misses,
never as errors: a cache must not be able to break an experiment.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from typing import TYPE_CHECKING, Any

from .fingerprint import CACHE_SCHEMA_VERSION
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.flows import FlowResult

__all__ = ["FlowCache", "CACHE_FILE_SCHEMA", "flow_result_to_dict",
           "flow_result_from_dict"]

CACHE_FILE_SCHEMA = f"repro-flow-cache/v{CACHE_SCHEMA_VERSION}"

logger = logging.getLogger(__name__)


def flow_result_to_dict(result: "FlowResult") -> dict[str, Any]:
    """Serialize a FlowResult (schedule + report + trace) to JSON-safe form."""
    from ..ir.serialize import schedule_to_dict

    return {
        "schedule": schedule_to_dict(result.schedule),
        "report": result.report.to_dict(),
        "trace": result.trace.to_dict() if result.trace is not None else None,
        "source_graph": result.source_graph,
        "fingerprint": result.fingerprint,
    }


def flow_result_from_dict(data: dict[str, Any]) -> "FlowResult":
    """Rebuild a FlowResult; its trace spans are marked ``cached=True``."""
    from ..experiments.flows import FlowResult
    from ..hw.cost import HardwareReport
    from ..ir.serialize import schedule_from_dict

    trace_data = data.get("trace")
    tracer = (Tracer.from_dict(trace_data, cached=True)
              if trace_data is not None else Tracer())
    return FlowResult(
        schedule=schedule_from_dict(data["schedule"]),
        report=HardwareReport.from_dict(data["report"]),
        trace=tracer,
        cached=True,
        fingerprint=data.get("fingerprint"),
        source_graph=data.get("source_graph", "original"),
    )


class FlowCache:
    """Store/load :class:`FlowResult` objects keyed by fingerprint."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2],
                            f"{fingerprint}.json")

    def load(self, fingerprint: str) -> "FlowResult | None":
        """Return the cached result or ``None`` (miss/corrupt/stale)."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("schema") != CACHE_FILE_SCHEMA \
                or data.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        try:
            result = flow_result_from_dict(data["result"])
        except Exception as exc:
            # A corrupt entry (truncated write, hand-edited file, version
            # skew inside the payload) must degrade to a miss — but not an
            # invisible one, or payload bugs would never surface.
            logger.debug("flow cache entry %s is corrupt, treating as a "
                         "miss: %s", path, exc)
            self.misses += 1
            return None
        result.fingerprint = fingerprint
        self.hits += 1
        return result

    def store(self, fingerprint: str, result: "FlowResult",
              design: str | None = None, method: str | None = None) -> str:
        """Atomically persist ``result`` under ``fingerprint``."""
        path = self.path_for(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        document = {
            "schema": CACHE_FILE_SCHEMA,
            "fingerprint": fingerprint,
            "design": design or result.report.design,
            "method": method or result.report.method,
            "result": flow_result_to_dict(result),
        }
        # Write-to-temp + rename so a crashed run never leaves a torn
        # entry that a later run would have to detect.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    # Equivalence verdicts (see repro.analysis.equiv). Keyed by the same
    # flow fingerprint as the result they validate: a verdict is a fact
    # about (graph, method, device, config), so the key that makes the
    # schedule reusable makes the proof reusable too.
    def equiv_path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, "equiv", f"{fingerprint}.json")

    def load_equiv(self, fingerprint: str,
                   stages: tuple[str, ...]) -> "Any | None":
        """Return the cached :class:`EquivReport` or ``None``.

        A hit requires the stored verdicts to cover exactly the requested
        ``stages`` — a report proving fewer stages must not satisfy a
        request for more, and extra stages would mislabel the run.
        """
        from ..analysis.equiv.validate import EquivReport

        try:
            with open(self.equiv_path_for(fingerprint), "r",
                      encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("fingerprint") != fingerprint:
            return None
        try:
            report = EquivReport.from_dict(data["report"])
        except Exception as exc:
            # Corrupt entries degrade to misses, like results — logged so
            # a systematically-broken payload is still diagnosable.
            logger.debug("equiv cache entry %s is corrupt, treating as a "
                         "miss: %s", self.equiv_path_for(fingerprint), exc)
            return None
        if tuple(v.stage for v in report.stages) != tuple(stages):
            return None
        return report

    def store_equiv(self, fingerprint: str, report: "Any") -> str:
        """Atomically persist an :class:`EquivReport` under ``fingerprint``."""
        path = self.equiv_path_for(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        document = {
            "fingerprint": fingerprint,
            "report": report.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".json"))
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowCache({self.root!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")
